//! Quickstart: align one read pair on the simulated QUETZAL machine.
//!
//! Builds the paper's evaluated system (A64FX-like core + QZ_8P
//! accelerator), aligns a pair with the QUETZAL+C WFA kernel, validates
//! the result against the scalar reference, and prints what the
//! accelerator saved.
//!
//! Run with: `cargo run --release --example quickstart`

use quetzal::{Machine, MachineConfig};
use quetzal_algos::wfa::wfa_edit_align;
use quetzal_algos::wfa_sim::wfa_sim;
use quetzal_algos::Tier;
use quetzal_genomics::Alphabet;

fn main() {
    let pattern = b"GATTACAGATTACAGATTACAGATTACAGATTACA";
    let text = b"GATTACAGATTACATATTACAGATTACAGATTACA"; // one mismatch

    // Scalar reference: optimal score and transcript.
    let reference = wfa_edit_align(pattern, text);
    println!(
        "reference: score = {}, cigar = {}",
        reference.score, reference.cigar
    );

    // Simulate the same alignment on the QUETZAL machine at two tiers.
    for tier in [Tier::Vec, Tier::QuetzalC] {
        let mut machine = Machine::new(MachineConfig::default());
        let out =
            wfa_sim(&mut machine, pattern, text, Alphabet::Dna, tier).expect("simulation succeeds");
        assert_eq!(
            out.value, reference.score as i64,
            "simulated kernel is exact"
        );
        println!(
            "{tier:10}: score = {}, cycles = {}, cache requests = {}, QBUFFER accesses = {}",
            out.value, out.stats.cycles, out.stats.mem_requests, out.stats.qz_accesses
        );
    }
    println!("QUETZAL+C serves the sequence accesses from its scratchpads —");
    println!("fewer cache requests, fewer cycles, same exact alignment.");
}
