//! Filtering + alignment pipeline: the paper's use case 5.
//!
//! Half of the candidate pairs are genuine (few edits), half are random
//! (distant). SneakySnake rejects the distant ones cheaply; WFA aligns
//! the survivors — both stages accelerated by the same QUETZAL hardware.
//!
//! Run with: `cargo run --release --example edit_distance_filter`

use quetzal::{Machine, MachineConfig};
use quetzal_algos::pipeline::{mixed_pairs, pipeline_ref, pipeline_sim};
use quetzal_algos::Tier;
use quetzal_genomics::dataset::DatasetSpec;
use quetzal_genomics::Alphabet;

fn main() {
    let spec = DatasetSpec::d100();
    let pairs = mixed_pairs(&spec, 99, 10, 0.5);
    let threshold = 8;

    let reference = pipeline_ref(&pairs, threshold);
    println!(
        "{} candidate pairs, threshold {threshold}: {} accepted, {} rejected (reference)",
        pairs.len(),
        reference.accepted,
        reference.rejected
    );

    let mut cycles = Vec::new();
    for tier in [Tier::Vec, Tier::QuetzalC] {
        let mut machine = Machine::new(MachineConfig::default());
        let (result, stats) = pipeline_sim(&mut machine, &pairs, Alphabet::Dna, threshold, tier)
            .expect("pipeline succeeds");
        assert_eq!(
            result, reference,
            "simulated pipeline matches the reference"
        );
        println!(
            "{tier:10}: {} cycles, {} filter+align kernels share one accelerator",
            stats.cycles,
            pairs.len() + result.accepted
        );
        cycles.push(stats.cycles);
    }
    println!(
        "pipeline speedup QUETZAL+C over VEC: {:.2}x",
        cycles[0] as f64 / cycles[1] as f64
    );
}
