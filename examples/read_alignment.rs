//! Batch read alignment: the paper's use case 1 end to end.
//!
//! Generates an Illumina-like dataset, aligns every pair with WFA and
//! BiWFA at the VEC and QUETZAL+C tiers on one warm machine, validates
//! every score against the scalar references, and reports the speedups.
//!
//! Run with: `cargo run --release --example read_alignment`

use quetzal::{Machine, MachineConfig};
use quetzal_algos::biwfa::biwfa_sim;
use quetzal_algos::wfa::wfa_edit_align;
use quetzal_algos::wfa_sim::wfa_sim;
use quetzal_algos::Tier;
use quetzal_genomics::dataset::DatasetSpec;

fn main() {
    let pairs = DatasetSpec::d250().generate_n(7, 4);
    println!("aligning {} pairs of {}bp reads\n", pairs.len(), 250);

    for (name, biwfa) in [("WFA", false), ("BiWFA", true)] {
        let mut cycles = Vec::new();
        for tier in [Tier::Vec, Tier::QuetzalC] {
            let mut machine = Machine::new(MachineConfig::default());
            let mut total = 0u64;
            for pair in &pairs {
                let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
                let want = wfa_edit_align(p, t).score as i64;
                let out = if biwfa {
                    biwfa_sim(&mut machine, p, t, pair.pattern.alphabet(), tier)
                } else {
                    wfa_sim(&mut machine, p, t, pair.pattern.alphabet(), tier)
                }
                .expect("simulation succeeds");
                assert_eq!(out.value, want, "every alignment is optimal");
                total += out.stats.cycles;
            }
            println!("{name:6} {tier:10}: {total:>9} cycles total");
            cycles.push(total);
        }
        println!(
            "{name:6} QUETZAL+C speedup over VEC: {:.2}x\n",
            cycles[0] as f64 / cycles[1] as f64
        );
    }
}
