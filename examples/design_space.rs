//! Design-space exploration: how many QBUFFER read ports are worth
//! their area? (Paper §VI, Fig. 12 + Table III.)
//!
//! Sweeps the four port configurations, measuring WFA QUETZAL+C
//! performance and the modelled 7 nm area/power of each instance.
//!
//! Run with: `cargo run --release --example design_space`

use quetzal::accel::area::area_report;
use quetzal::{Machine, MachineConfig, QzConfig};
use quetzal_algos::wfa_sim::wfa_sim;
use quetzal_algos::Tier;
use quetzal_genomics::dataset::DatasetSpec;
use quetzal_genomics::Alphabet;

fn main() {
    let pairs = DatasetSpec::d250().generate_n(3, 3);
    println!("config   read-lat  cycles     vs QZ_1P  area(mm2)  power(uW)");
    let mut base = 0u64;
    for qz in [
        QzConfig::QZ_1P,
        QzConfig::QZ_2P,
        QzConfig::QZ_4P,
        QzConfig::QZ_8P,
    ] {
        let mut machine = Machine::new(MachineConfig::with_qz(qz));
        let mut cycles = 0u64;
        for pair in &pairs {
            cycles += wfa_sim(
                &mut machine,
                pair.pattern.as_bytes(),
                pair.text.as_bytes(),
                Alphabet::Dna,
                Tier::QuetzalC,
            )
            .expect("simulation succeeds")
            .stats
            .cycles;
        }
        if base == 0 {
            base = cycles;
        }
        let area = area_report(qz);
        println!(
            "{:7}  {:>8}  {:>9}  {:>7.2}x  {:>9.3}  {:>9.0}",
            qz.ports.to_string(),
            qz.read_latency(),
            cycles,
            base as f64 / cycles as f64,
            area.area_mm2,
            area.power_uw,
        );
    }
    println!("\nthe paper picks QZ_8P: best performance at 1.4% SoC area overhead");
}
