//! Integration tests for crash-safe genome-scale ingestion.
//!
//! Covers the durability acceptance criteria end to end over real
//! alignment workloads (Table II `100bp_1` pairs through the SS +
//! QUETZAL-C pipeline):
//!
//! * a killed run (crash injected at a shard boundary or mid-manifest-
//!   write) **resumes byte-identical** to an uninterrupted run, at 1
//!   and 4 worker threads and across thread-count changes between the
//!   killed run and the resume;
//! * torn manifests (truncated or bit-flipped) are detected by the
//!   content checksum, treated as "shard not done", and re-run —
//!   never trusted, never fatal;
//! * the `qzserved` `ingest` job streams the same shard frames the
//!   offline path produces and resuming via resubmission validates
//!   checkpoints instead of recomputing.

use quetzal::ingest::{
    self, manifest, pair_digest, CrashPlan, IngestConfig, IngestError, IngestSummary, ItemOutput,
};
use quetzal::{BatchRunner, MachineConfig, MachinePool};
use quetzal_algos::Tier;
use quetzal_bench::workloads::{try_simulate_pair_outcome, Algo, SEED};
use quetzal_genomics::{Alphabet, DatasetSpec};
use quetzal_served::{
    job, Budgets, Client, Daemon, DaemonConfig, JobSpec, Response, SubmitOutcome,
};
use std::io::Write;
use std::path::{Path, PathBuf};

/// A unique scratch directory per test (no tempfile crate in the
/// zero-dependency workspace).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qz-ingest-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Writes `n` generated pairs of the 100bp dataset as a pair file.
fn stage_pairs(path: &Path, n: usize) {
    let spec = DatasetSpec::d100();
    let file = std::fs::File::create(path).expect("create pair file");
    let mut w = std::io::BufWriter::new(file);
    for pair in spec.pair_stream(SEED).take(n) {
        writeln!(w, "{}\t{}", pair.pattern, pair.text).expect("write pair");
    }
    w.flush().expect("flush pair file");
}

/// Runs (or resumes) the pair file through the checkpointed pipeline.
fn ingest_file(
    input: &Path,
    ckpt: &Path,
    threads: usize,
    crash: CrashPlan,
    retry_quarantined: bool,
) -> Result<IngestSummary, IngestError> {
    let config = IngestConfig {
        shard_items: 8,
        chunk_items: 4,
        heartbeat: None,
        crash,
        retry_quarantined,
        ..IngestConfig::new(ckpt)
    };
    let runner = BatchRunner::new(threads);
    let pool = MachinePool::new(&MachineConfig::default(), runner.exec_mode());
    let file = std::fs::File::open(input).expect("open pair file");
    let source =
        quetzal_genomics::fasta::PairReader::new(std::io::BufReader::new(file), Alphabet::Dna);
    ingest::run_ingest(
        &config,
        &runner,
        &pool,
        source,
        pair_digest,
        |m, _g, pair| {
            let out =
                try_simulate_pair_outcome(m, Algo::Ss, Alphabet::Dna, 100, pair, Tier::QuetzalC)?;
            Ok(ItemOutput {
                value: out.value,
                cycles: out.stats.cycles,
                instructions: out.stats.instructions,
            })
        },
        |_| {},
    )
}

/// Assembles the final report bytes from a completed checkpoint dir.
fn assembled(ckpt: &Path, shards: u64) -> Vec<u8> {
    let mut out = Vec::new();
    ingest::concat_output(ckpt, shards, &mut out).expect("assemble output");
    out
}

#[test]
fn fresh_runs_are_thread_invariant() {
    let dir = scratch("thread-invariant");
    let input = dir.join("pairs.tsv");
    stage_pairs(&input, 20);
    let s1 = ingest_file(&input, &dir.join("ck1"), 1, CrashPlan::default(), false).expect("run @1");
    let s4 = ingest_file(&input, &dir.join("ck4"), 4, CrashPlan::default(), false).expect("run @4");
    assert_eq!(s1.shards, 3, "20 items in 8-item shards");
    assert_eq!(s1.items, 20);
    assert_eq!(s1.shards_resumed, 0);
    assert_eq!(s4.shards_resumed, 0);
    assert_eq!(
        assembled(&dir.join("ck1"), s1.shards),
        assembled(&dir.join("ck4"), s4.shards),
        "final report must not depend on thread count"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_run_resumes_byte_identical_across_thread_counts() {
    let dir = scratch("kill-resume");
    let input = dir.join("pairs.tsv");
    stage_pairs(&input, 20);
    let fresh = ingest_file(&input, &dir.join("fresh"), 1, CrashPlan::default(), false)
        .expect("uninterrupted run");
    let golden = assembled(&dir.join("fresh"), fresh.shards);

    // Kill at the shard-0 boundary (in-process: typed error, no exit).
    let killed = ingest_file(
        &input,
        &dir.join("ck"),
        1,
        CrashPlan {
            after_shard: Some(0),
            ..CrashPlan::default()
        },
        false,
    );
    assert!(
        matches!(killed, Err(IngestError::CrashInjected(_))),
        "crash injection must surface as a typed error, got {killed:?}"
    );
    // Resume at a different thread count.
    let resumed =
        ingest_file(&input, &dir.join("ck"), 4, CrashPlan::default(), false).expect("resume");
    assert_eq!(resumed.shards_resumed, 1, "shard 0 validated, not re-run");
    assert_eq!(resumed.shards, fresh.shards);
    assert_eq!(assembled(&dir.join("ck"), resumed.shards), golden);

    // Kill again mid-manifest-write on shard 1 of a fresh directory:
    // the torn manifest must be detected and the shard re-run.
    let torn = ingest_file(
        &input,
        &dir.join("ck-torn"),
        1,
        CrashPlan {
            mid_manifest: Some(1),
            ..CrashPlan::default()
        },
        false,
    );
    assert!(matches!(torn, Err(IngestError::CrashInjected(_))));
    let recovered =
        ingest_file(&input, &dir.join("ck-torn"), 4, CrashPlan::default(), false).expect("recover");
    assert_eq!(recovered.manifests_torn, 1, "the half-written manifest");
    assert_eq!(
        recovered.shards_resumed, 1,
        "shard 0 was committed before the crash"
    );
    assert_eq!(assembled(&dir.join("ck-torn"), recovered.shards), golden);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_and_bitflipped_manifests_are_rerun_not_trusted() {
    let dir = scratch("manifest-damage");
    let input = dir.join("pairs.tsv");
    stage_pairs(&input, 20);
    let ckpt = dir.join("ck");
    let fresh = ingest_file(&input, &ckpt, 1, CrashPlan::default(), false).expect("fresh run");
    let golden = assembled(&ckpt, fresh.shards);

    // Truncate shard 1's manifest (a torn write the rename never hid).
    let m1 = manifest::manifest_path(&ckpt, 1);
    let bytes = std::fs::read(&m1).expect("read manifest");
    std::fs::write(&m1, &bytes[..bytes.len() / 2]).expect("truncate manifest");
    // Flip one content bit in shard 2's manifest.
    let m2 = manifest::manifest_path(&ckpt, 2);
    let mut bytes = std::fs::read(&m2).expect("read manifest");
    bytes[10] ^= 0x01;
    std::fs::write(&m2, &bytes).expect("corrupt manifest");

    let resumed = ingest_file(&input, &ckpt, 4, CrashPlan::default(), false).expect("resume");
    assert_eq!(resumed.manifests_torn, 2, "both damaged manifests detected");
    assert_eq!(resumed.shards_resumed, 1, "only the intact shard 0 resumed");
    assert_eq!(assembled(&ckpt, resumed.shards), golden);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Starts a daemon on an ephemeral loopback port.
fn start_daemon(config: DaemonConfig) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let daemon = Daemon::bind("127.0.0.1:0", config).expect("bind ephemeral loopback port");
    let addr = daemon.local_addr().expect("bound address").to_string();
    (addr, std::thread::spawn(move || daemon.run()))
}

#[test]
fn served_ingest_matches_offline_and_resubmission_resumes() {
    let dir = scratch("served");
    let input = dir.join("pairs.tsv");
    stage_pairs(&input, 20);
    let spec_for = |ckpt: &Path, output: &Path| JobSpec::Ingest {
        input: input.display().to_string(),
        checkpoint_dir: ckpt.display().to_string(),
        output: Some(output.display().to_string()),
        algo: Algo::Ss,
        tier: Tier::QuetzalC,
        alphabet: Alphabet::Dna,
        ss_threshold: 100,
        budgets: Budgets::default(),
        shard_items: 8,
        deadline_ms: None,
        shard_insts: None,
        retry_quarantined: false,
    };

    // Offline reference through the same job core.
    let offline_spec = spec_for(&dir.join("ck-offline"), &dir.join("offline.out"));
    let runner = BatchRunner::new(1);
    let pool = MachinePool::new(&MachineConfig::default(), runner.exec_mode());
    let mut offline_frames = Vec::new();
    job::execute(&runner, &pool, &offline_spec, 16, &mut |f| {
        offline_frames.push(f)
    });
    let offline_report = quetzal_served::render_report(&offline_frames);

    let (addr, handle) = start_daemon(DaemonConfig::default());
    let served_spec = spec_for(&dir.join("ck-served"), &dir.join("served.out"));
    let mut client = Client::connect(&addr).expect("connect");
    let frames = match client.submit("acme", &served_spec).expect("submit") {
        SubmitOutcome::Report(frames) => frames,
        other => panic!("expected a streamed report, got {other:?}"),
    };
    assert_eq!(
        quetzal_served::render_report(&frames),
        offline_report,
        "served ingest must stream the same frames as the offline path"
    );
    assert_eq!(
        std::fs::read(dir.join("served.out")).expect("served output"),
        std::fs::read(dir.join("offline.out")).expect("offline output"),
        "assembled outputs must be byte-identical"
    );
    let shard_frames: Vec<bool> = frames
        .iter()
        .filter_map(|f| match f {
            Response::ShardDone { resumed, .. } => Some(*resumed),
            _ => None,
        })
        .collect();
    assert_eq!(shard_frames, vec![false, false, false], "3 fresh shards");

    // Resubmitting against the same checkpoint dir resumes every shard.
    let frames = match client.submit("acme", &served_spec).expect("resubmit") {
        SubmitOutcome::Report(frames) => frames,
        other => panic!("expected a streamed report, got {other:?}"),
    };
    let resumed: Vec<bool> = frames
        .iter()
        .filter_map(|f| match f {
            Response::ShardDone { resumed, .. } => Some(*resumed),
            _ => None,
        })
        .collect();
    assert_eq!(resumed, vec![true, true, true], "all shards validated");
    assert_eq!(
        std::fs::read(dir.join("served.out")).expect("served output"),
        std::fs::read(dir.join("offline.out")).expect("offline output"),
        "resumed assembly is unchanged"
    );

    let mut shutdown_client = Client::connect(&addr).expect("connect for shutdown");
    shutdown_client.shutdown().expect("shutdown");
    handle.join().expect("accept loop").expect("daemon exit");
    let _ = std::fs::remove_dir_all(&dir);
}
