//! Integration tests for `qzserved`, the alignment-as-a-service daemon.
//!
//! Covers the service-layer acceptance criteria end to end over real
//! loopback TCP:
//!
//! * served batches are **byte-identical** to offline `BatchRunner`
//!   runs, at 1 and 4 worker threads, including the order of typed
//!   failure frames;
//! * seeded malformed frames (truncated lengths, oversized prefixes,
//!   garbage payloads, mid-frame disconnects) produce typed errors and
//!   never panic, hang, or poison a tenant pool;
//! * graceful shutdown drains in-flight jobs, refuses new submissions
//!   with a typed `draining` frame, and exits with quarantined machines
//!   accounted in the final stats;
//! * provably-fatal fault programs are rejected at admission without a
//!   single machine checkout from the tenant pool.

use quetzal::{BatchRunner, MachineConfig, MachinePool};
use quetzal_bench::workloads::{Workload, SEED};
use quetzal_genomics::DatasetSpec;
use quetzal_served::wire;
use quetzal_served::{
    job, render_report, Budgets, Client, Daemon, DaemonConfig, JobSpec, Request, Response,
    SubmitOutcome,
};
use std::io::Write;
use std::net::TcpStream;

/// Starts a daemon on an ephemeral loopback port; returns its address
/// and the accept-loop handle (joins cleanly after a `shutdown` frame).
fn start_daemon(config: DaemonConfig) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let daemon = Daemon::bind("127.0.0.1:0", config).expect("bind ephemeral loopback port");
    let addr = daemon.local_addr().expect("bound address").to_string();
    (addr, std::thread::spawn(move || daemon.run()))
}

fn align_spec(pairs: usize) -> JobSpec {
    let spec = DatasetSpec::d100();
    let wl = Workload {
        pairs: spec.generate_n(SEED, pairs),
        spec,
    };
    JobSpec::Align {
        algo: quetzal_bench::workloads::Algo::Ss,
        tier: quetzal_algos::Tier::QuetzalC,
        alphabet: wl.spec.alphabet,
        ss_threshold: wl.ss_threshold(),
        budgets: Budgets::default(),
        pairs: wl.pairs,
    }
}

fn fault_spec(seed: u64, cases: std::ops::Range<u64>) -> JobSpec {
    JobSpec::Fault {
        seed,
        cases: cases.collect(),
    }
}

/// Runs `spec` through the in-process path the daemon shares
/// (`job::execute` over a fresh pool) and renders the report.
fn offline_report(spec: &JobSpec, threads: usize) -> (String, Vec<Response>) {
    let runner = BatchRunner::new(threads);
    let config = MachineConfig::default();
    let pool = MachinePool::new(&config, runner.exec_mode());
    let mut frames = Vec::new();
    job::execute(&runner, &pool, spec, 16, &mut |f| frames.push(f));
    (render_report(&frames), frames)
}

fn daemon_report(addr: &str, tenant: &str, spec: &JobSpec) -> String {
    let mut client = Client::connect(addr).expect("connect");
    match client.submit(tenant, spec).expect("submit") {
        SubmitOutcome::Report(frames) => render_report(&frames),
        other => panic!("expected a streamed report, got {other:?}"),
    }
}

fn shutdown(addr: &str) -> quetzal_trace::json::Value {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    client.shutdown().expect("bye frame")
}

fn i64_at<'v>(
    v: &'v quetzal_trace::json::Value,
    path: &[&str],
) -> Option<(i64, &'v quetzal_trace::json::Value)> {
    let mut cur = v;
    for key in path {
        cur = cur.get(key)?;
    }
    Some((cur.as_i64()?, cur))
}

#[test]
fn loopback_daemon_is_byte_identical_to_offline_batchrunner() {
    let align = align_spec(6);
    let fault = fault_spec(0xF4417, 0..24);

    let (align_ref, _) = offline_report(&align, 1);
    let (fault_ref, _) = offline_report(&fault, 1);
    assert_eq!(
        align_ref,
        offline_report(&align, 4).0,
        "offline align report must be worker-thread invariant"
    );
    assert_eq!(
        fault_ref,
        offline_report(&fault, 4).0,
        "offline fault report must be worker-thread invariant"
    );
    assert!(
        fault_ref.contains("\"cause\":\"rejected\""),
        "seed 0xF4417 must exercise verifier-gated rejection"
    );

    for threads in [1usize, 4] {
        let (addr, handle) = start_daemon(DaemonConfig {
            threads,
            ..DaemonConfig::default()
        });
        assert_eq!(
            daemon_report(&addr, "e2e", &align),
            align_ref,
            "served align report must match offline bytes at {threads} thread(s)"
        );
        assert_eq!(
            daemon_report(&addr, "e2e", &fault),
            fault_ref,
            "served fault report must match offline bytes at {threads} thread(s)"
        );
        shutdown(&addr);
        handle.join().expect("accept loop").expect("clean exit");
    }
}

#[test]
fn malformed_frames_get_typed_errors_and_never_poison_the_daemon() {
    let (addr, handle) = start_daemon(DaemonConfig::default());

    // Garbage payload inside a well-formed frame: typed `bad-frame`
    // error, connection stays usable.
    let mut conn = TcpStream::connect(&addr).unwrap();
    wire::write_frame(&mut conn, b"definitely not json").unwrap();
    let answer = wire::read_value(&mut conn).unwrap().expect("error frame");
    match Response::from_value(&answer).unwrap() {
        Response::Error { kind, .. } => assert_eq!(kind, "bad-frame"),
        other => panic!("expected typed error, got {other:?}"),
    }
    wire::write_value(&mut conn, &Request::Ping.to_value()).unwrap();
    let pong = wire::read_value(&mut conn).unwrap().expect("pong frame");
    assert!(matches!(
        Response::from_value(&pong).unwrap(),
        Response::Pong
    ));

    // Valid JSON, invalid request: typed `bad-request`, still usable.
    let bogus: quetzal_trace::json::Value = [("type".to_string(), "warp-core-eject".into())]
        .into_iter()
        .collect();
    wire::write_value(&mut conn, &bogus).unwrap();
    let answer = wire::read_value(&mut conn).unwrap().expect("error frame");
    match Response::from_value(&answer).unwrap() {
        Response::Error { kind, .. } => assert_eq!(kind, "bad-request"),
        other => panic!("expected typed error, got {other:?}"),
    }
    drop(conn);

    // Oversized length prefix: best-effort typed error, then the daemon
    // hangs up (fatal framing error).
    let mut conn = TcpStream::connect(&addr).unwrap();
    conn.write_all(&u32::MAX.to_be_bytes()).unwrap();
    conn.flush().unwrap();
    if let Ok(Some(answer)) = wire::read_value(&mut conn) {
        assert!(matches!(
            Response::from_value(&answer).unwrap(),
            Response::Error {
                kind: "bad-frame",
                ..
            }
        ));
    }
    assert!(
        matches!(wire::read_value(&mut conn), Ok(None) | Err(_)),
        "daemon must close after an oversized prefix"
    );
    drop(conn);

    // Truncated frame / mid-frame disconnect: claim 100 bytes, send 10,
    // hang up.
    let mut conn = TcpStream::connect(&addr).unwrap();
    conn.write_all(&100u32.to_be_bytes()).unwrap();
    conn.write_all(b"ten bytes!").unwrap();
    drop(conn);

    // Partial length prefix then disconnect.
    let mut conn = TcpStream::connect(&addr).unwrap();
    conn.write_all(&[0x00, 0x00]).unwrap();
    drop(conn);

    // Seeded garbage: raw pseudo-random bytes from a fixed xorshift
    // stream, several rounds, mid-stream hangups included.
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..8 {
        let mut conn = TcpStream::connect(&addr).unwrap();
        let len = 1 + (next() % 64) as usize + round;
        let bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
        let _ = conn.write_all(&bytes);
        drop(conn);
    }

    // The daemon survived every attack: fresh connections still serve,
    // the tenant pool still runs real jobs, and the abuse is tallied.
    let mut client = Client::connect(&addr).unwrap();
    client.ping().expect("daemon must still answer pings");
    let align = align_spec(3);
    let (offline, _) = offline_report(&align, 1);
    assert_eq!(
        daemon_report(&addr, "survivor", &align),
        offline,
        "pools must not be poisoned by protocol abuse"
    );
    let stats = client.stats().expect("stats frame");
    let (errors, _) = i64_at(&stats, &["protocol_errors"]).expect("protocol_errors counter");
    assert!(
        errors >= 4,
        "malformed frames must be tallied, got {errors}"
    );

    shutdown(&addr);
    handle.join().expect("accept loop").expect("clean exit");
}

#[test]
fn graceful_shutdown_drains_inflight_and_refuses_new_jobs() {
    let (addr, handle) = start_daemon(DaemonConfig {
        threads: 1,
        ..DaemonConfig::default()
    });

    // Seed 0x51EE9 produces runtime (non-rejected) failures, so the
    // drain also leaves quarantined machines to account for. 1000 cases
    // keep the job in flight long enough to observe the drain window.
    let long_job = fault_spec(0x51EE9, 0..1000);
    let mut conn1 = TcpStream::connect(&addr).unwrap();
    wire::write_value(
        &mut conn1,
        &Request::Submit {
            tenant: "drain".to_string(),
            job: long_job,
        }
        .to_value(),
    )
    .unwrap();
    let read_frame = |conn: &mut TcpStream| {
        let v = wire::read_value(conn).unwrap().expect("frame");
        Response::from_value(&v).unwrap()
    };
    assert!(matches!(read_frame(&mut conn1), Response::Accepted { .. }));
    // One streamed result means the job is provably in flight.
    let first = read_frame(&mut conn1);
    assert!(
        matches!(first, Response::Item { .. } | Response::ItemFailed { .. }),
        "expected a streamed result, got {first:?}"
    );

    let shutdown_addr = addr.clone();
    let byer = std::thread::spawn(move || shutdown(&shutdown_addr));

    // New submissions during the drain get a typed `draining` frame.
    let probe = align_spec(2);
    let mut saw_draining = false;
    for _ in 0..500 {
        let Ok(mut c) = Client::connect(&addr) else {
            break;
        };
        // A submission that raced in before the shutdown frame
        // landed is legal; so is a hangup while the drain ends.
        if let Ok(SubmitOutcome::Draining) = c.submit("latecomer", &probe) {
            saw_draining = true;
            break;
        }
    }
    assert!(
        saw_draining,
        "a submission during the drain must get a typed draining frame"
    );

    // The in-flight job still streams to completion: drain, not drop.
    let done = loop {
        match read_frame(&mut conn1) {
            Response::Done(summary) => break summary,
            Response::Item { .. } | Response::ItemFailed { .. } => {}
            other => panic!("unexpected frame during drain: {other:?}"),
        }
    };
    assert_eq!(done.items, 1000, "every admitted item must be answered");
    assert!(done.failed > 0, "seed 0x51EE9 must exercise quarantine");

    // The `bye` frame carries the final stats, quarantine included.
    let bye = byer.join().expect("shutdown thread");
    let (quarantined, _) =
        i64_at(&bye, &["tenants", "drain", "quarantined"]).expect("tenant quarantine stat");
    assert!(
        quarantined > 0,
        "failed items must leave quarantined machines in the final stats"
    );
    let (draining, _) = i64_at(&bye, &["jobs", "draining"]).expect("draining counter");
    assert!(draining > 0, "the refused submission must be tallied");

    handle.join().expect("accept loop").expect("clean exit");
    assert!(
        TcpStream::connect(&addr).is_err(),
        "the listener must be gone after a clean exit"
    );
}

#[test]
fn fatal_fault_programs_are_rejected_without_a_pool_checkout() {
    // Discover the provably-fatal cases offline first.
    let sweep = fault_spec(0xF4417, 0..24);
    let (_, frames) = offline_report(&sweep, 1);
    let rejected_cases: Vec<u64> = frames
        .iter()
        .filter_map(|f| match f {
            Response::ItemFailed {
                item,
                cause: "rejected",
                ..
            } => Some(*item as u64),
            _ => None,
        })
        .collect();
    assert!(
        !rejected_cases.is_empty(),
        "seed 0xF4417 must produce statically-fatal mutants"
    );

    // A job made only of fatal cases: every item is refused at
    // admission and the tenant's pool never builds a machine.
    let (addr, handle) = start_daemon(DaemonConfig::default());
    let mut client = Client::connect(&addr).unwrap();
    let spec = JobSpec::Fault {
        seed: 0xF4417,
        cases: rejected_cases.clone(),
    };
    let frames = match client.submit("admission", &spec).expect("submit") {
        SubmitOutcome::Report(frames) => frames,
        other => panic!("expected a report, got {other:?}"),
    };
    let mut rejected = 0;
    for frame in &frames {
        match frame {
            Response::Accepted { .. } => {}
            Response::ItemFailed {
                cause: "rejected", ..
            } => rejected += 1,
            Response::Done(summary) => {
                assert_eq!(summary.rejected, rejected_cases.len() as u64);
                assert_eq!(summary.ok, 0);
            }
            other => panic!("fatal-only job must not execute anything, got {other:?}"),
        }
    }
    assert_eq!(rejected, rejected_cases.len());

    let stats = client.stats().expect("stats frame");
    let (built, _) = i64_at(&stats, &["tenants", "admission", "built"]).expect("tenant built stat");
    assert_eq!(
        built, 0,
        "rejected-only jobs must never check a machine out of the pool"
    );

    shutdown(&addr);
    handle.join().expect("accept loop").expect("clean exit");
}
