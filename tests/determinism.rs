//! Reproducibility: every simulation is bit-deterministic — same
//! inputs, same cycle counts, same statistics — which is what makes the
//! experiment tables in `quetzal-bench` stable across runs and machines.

use quetzal::{Machine, MachineConfig};
use quetzal_algos::histogram::histogram_sim;
use quetzal_algos::sneakysnake::ss_sim;
use quetzal_algos::wfa_sim::wfa_sim;
use quetzal_algos::Tier;
use quetzal_genomics::dataset::DatasetSpec;
use quetzal_genomics::Alphabet;

#[test]
fn dataset_generation_is_stable() {
    let a = DatasetSpec::d250().generate_n(42, 5);
    let b = DatasetSpec::d250().generate_n(42, 5);
    assert_eq!(a, b);
    // And sensitive to the seed.
    let c = DatasetSpec::d250().generate_n(43, 5);
    assert_ne!(a, c);
}

#[test]
fn wfa_simulation_is_cycle_deterministic() {
    let pair = &DatasetSpec::d100().generate_n(7, 1)[0];
    let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
    let mut outs = Vec::new();
    for _ in 0..2 {
        let mut m = Machine::new(MachineConfig::default());
        outs.push(wfa_sim(&mut m, p, t, Alphabet::Dna, Tier::QuetzalC).unwrap());
    }
    assert_eq!(outs[0].value, outs[1].value);
    assert_eq!(
        outs[0].stats, outs[1].stats,
        "identical statistics, cycle for cycle"
    );
}

#[test]
fn ss_simulation_is_cycle_deterministic() {
    let pair = &DatasetSpec::d100().generate_n(9, 1)[0];
    let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
    let run = || {
        let mut m = Machine::new(MachineConfig::default());
        ss_sim(&mut m, p, t, Alphabet::Dna, 6, Tier::Vec).unwrap()
    };
    assert_eq!(run().stats, run().stats);
}

#[test]
fn kernel_order_on_one_machine_is_reproducible() {
    // A whole batch on a shared machine (warm caches, persistent clock)
    // reproduces exactly.
    let pairs = DatasetSpec::d100().generate_n(11, 3);
    let run = || {
        let mut m = Machine::new(MachineConfig::default());
        let mut cycles = Vec::new();
        for pair in &pairs {
            let out = wfa_sim(
                &mut m,
                pair.pattern.as_bytes(),
                pair.text.as_bytes(),
                Alphabet::Dna,
                Tier::Vec,
            )
            .unwrap();
            cycles.push(out.stats.cycles);
        }
        cycles
    };
    assert_eq!(run(), run());
}

#[test]
fn histogram_is_deterministic_including_memory_layout() {
    let vals: Vec<u8> = (0..500).map(|i| (i * 7 % 64) as u8).collect();
    let run = || {
        let mut m = Machine::new(MachineConfig::default());
        let (out, addr) = histogram_sim(&mut m, &vals, 64, Tier::Quetzal).unwrap();
        let table: Vec<u64> = (0..64).map(|i| m.read_u64(addr + 8 * i)).collect();
        (out.stats, table)
    };
    assert_eq!(run(), run());
}
