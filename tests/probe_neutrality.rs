//! Probe-neutrality pins.
//!
//! The observation [`Probe`](quetzal::Probe) threaded through the
//! out-of-order engine must be *strictly* timing-neutral: attaching a
//! recording probe may never change a single `RunStats` field, because
//! every observation site is read-only and the engine's control flow is
//! identical whether `P::ENABLED` is true or false. This test replays
//! the same Fig. 3 workload grid that `timing_golden.rs` pins — every
//! Table II dataset, WFA and SneakySnake, three tiers — once on plain
//! machines and once on `Machine<RecordingProbe>`, and asserts per-pair
//! bit-equality.
//!
//! It also pins the probe's *internal* consistency: the fine
//! [`StallKind`](quetzal_trace::StallKind) taxonomy must partition
//! exactly the cycles the engine attributed (the probe audits this
//! against the engine's own coarse accounting at every run end), and a
//! CPI stack built from the probe must sum back to the measured cycle
//! total.

use quetzal::uarch::RunStats;
use quetzal::{BatchRunner, Machine, MachineConfig};
use quetzal_algos::Tier;
use quetzal_bench::workloads::{run_algo_pairs, simulate_pair, table2_workloads, Algo};
use quetzal_trace::{CpiStack, RecordingProbe, StallKind};

/// The replayed grid: every Table II dataset, the two grid algorithms,
/// at the baseline, hand-vectorised and fully accelerated tiers.
const ALGOS: [Algo; 2] = [Algo::Wfa, Algo::Ss];
const TIERS: [Tier; 3] = [Tier::Base, Tier::Vec, Tier::QuetzalC];

#[test]
fn recording_probe_is_timing_neutral_on_fig03_grid() {
    let scale = 0.1;
    let cfg = MachineConfig::default();
    let serial = BatchRunner::new(1);

    let mut combos = 0;
    for wl in table2_workloads(scale) {
        let alphabet = wl.spec.alphabet;
        let threshold = wl.ss_threshold();
        for algo in ALGOS {
            for tier in TIERS {
                combos += 1;
                let unprobed = run_algo_pairs(&serial, &cfg, algo, &wl, tier);

                // Probed replay: one machine, reset between pairs —
                // the batch runner's fresh-machine-per-shard timing.
                let mut machine = Machine::with_probe(cfg.clone(), RecordingProbe::new(4096));
                let mut probed = Vec::with_capacity(wl.pairs.len());
                for pair in &wl.pairs {
                    machine.reset();
                    probed.push(simulate_pair(
                        &mut machine,
                        algo,
                        alphabet,
                        threshold,
                        pair,
                        tier,
                    ));
                }

                assert_eq!(unprobed.len(), probed.len());
                for (i, (u, p)) in unprobed.iter().zip(&probed).enumerate() {
                    assert_eq!(
                        u, p,
                        "probe perturbed timing: {algo}/{}/{tier}/pair{i}",
                        wl.spec.name
                    );
                }

                check_probe_consistency(
                    machine.probe(),
                    &RunStats::merged(&probed),
                    &format!("{algo}/{}/{tier}", wl.spec.name),
                );
            }
        }
    }
    assert_eq!(combos, 4 * ALGOS.len() * TIERS.len());
}

/// Asserts the probe's aggregates reconcile with the engine's.
fn check_probe_consistency(probe: &RecordingProbe, merged: &RunStats, label: &str) {
    // The per-run audit compares the fine taxonomy, re-coarsened,
    // against the engine's own stall_cycles — any mismatch is recorded.
    assert!(
        probe.audit_failures().is_empty(),
        "{label}: stall audit failed: {:?}",
        probe.audit_failures()
    );
    assert_eq!(
        probe.instructions(),
        merged.instructions,
        "{label}: probe saw a different retire count"
    );
    assert_eq!(probe.cycles(), merged.cycles, "{label}: cycle totals");

    // A CPI stack is a partition: base plus every fine kind sums back
    // to the cycle total, and the kind totals match the probe's cells.
    let stack = CpiStack::from_probe(label, probe);
    let total = stack.base_cycles + stack.by_kind.iter().sum::<u64>();
    assert_eq!(total, stack.cycles, "{label}: CPI stack must sum to cycles");
    for kind in StallKind::ALL {
        assert_eq!(
            stack.kind_cycles(kind),
            probe.stall_of(kind),
            "{label}: stack/probe disagree on {}",
            kind.label()
        );
    }
    let class_insts: u64 = stack.by_class.iter().map(|(_, n, _)| n).sum();
    assert_eq!(
        class_insts, merged.instructions,
        "{label}: per-class instruction counts must cover every retire"
    );
}

/// The engine reports identical results whether observation is compiled
/// out (`NullProbe`), attached and recording, or attached after a
/// [`RecordingProbe::clear`] — the probe has no feedback path into the
/// simulation.
#[test]
fn cleared_probe_keeps_recording_consistently() {
    let cfg = MachineConfig::default();
    let wl = &table2_workloads(0.1)[0];
    let pair = &wl.pairs[0];

    let mut machine = Machine::with_probe(cfg, RecordingProbe::new(512));
    let s1 = simulate_pair(
        &mut machine,
        Algo::Wfa,
        wl.spec.alphabet,
        wl.ss_threshold(),
        pair,
        Tier::Vec,
    );
    machine.probe_mut().clear();
    machine.reset();
    let s2 = simulate_pair(
        &mut machine,
        Algo::Wfa,
        wl.spec.alphabet,
        wl.ss_threshold(),
        pair,
        Tier::Vec,
    );
    assert_eq!(s1, s2, "clearing the probe must not change timing");
    assert_eq!(machine.probe().instructions(), s2.instructions);
    assert!(machine.probe().audit_failures().is_empty());
}
