//! Thread-count invariance of the deterministic batch engine, end to
//! end: the per-pair results and merged statistics an experiment
//! observes must be bit-identical between `QUETZAL_THREADS=1` and any
//! other thread count. A golden snapshot of one canonical kernel's
//! statistics additionally pins the simulator against silent drift.

use quetzal::uarch::RunStats;
use quetzal::{BatchRunner, MachineConfig};
use quetzal_algos::pipeline::{mixed_pairs, pipeline_batch};
use quetzal_algos::Tier;
use quetzal_bench::workloads::{run_algo_pairs, Algo, Workload, SEED};
use quetzal_genomics::dataset::DatasetSpec;
use quetzal_genomics::Alphabet;

fn workload(pairs: usize) -> Workload {
    Workload {
        spec: DatasetSpec::d100(),
        pairs: DatasetSpec::d100().generate_n(SEED, pairs),
    }
}

/// Per-pair results and the merged total are bit-identical between a
/// 1-thread and a 4-thread run, for both a compute-bound aligner (WFA)
/// and the filtering kernel (SneakySnake), at every tier the
/// experiments compare.
#[test]
fn wfa_and_ss_are_thread_invariant() {
    let wl = workload(6);
    let cfg = MachineConfig::default();
    for algo in [Algo::Wfa, Algo::Ss] {
        for tier in [Tier::Vec, Tier::QuetzalC] {
            let serial = run_algo_pairs(&BatchRunner::new(1), &cfg, algo, &wl, tier);
            let parallel = run_algo_pairs(&BatchRunner::new(4), &cfg, algo, &wl, tier);
            assert_eq!(serial.len(), 6);
            assert_eq!(serial, parallel, "{algo} {tier}: per-pair results diverge");
            assert_eq!(
                RunStats::merged(&serial),
                RunStats::merged(&parallel),
                "{algo} {tier}: merged totals diverge"
            );
        }
    }
}

/// Shard size must not interact with thread count: grouping pairs
/// four-per-machine still yields identical results for 1 vs 4 threads.
#[test]
fn shard_size_is_thread_invariant() {
    let wl = workload(9);
    let cfg = MachineConfig::default();
    let serial = run_algo_pairs(
        &BatchRunner::new(1).with_shard_size(4),
        &cfg,
        Algo::Wfa,
        &wl,
        Tier::QuetzalC,
    );
    let parallel = run_algo_pairs(
        &BatchRunner::new(4).with_shard_size(4),
        &cfg,
        Algo::Wfa,
        &wl,
        Tier::QuetzalC,
    );
    assert_eq!(serial, parallel);
}

/// The two-stage SS→WFA pipeline (accept set, scores, and merged
/// statistics) is thread-invariant too.
#[test]
fn pipeline_is_thread_invariant() {
    let spec = DatasetSpec::d100();
    let pairs = mixed_pairs(&spec, SEED, 8, 0.5);
    let cfg = MachineConfig::default();
    let threshold = 8;
    let (r1, s1) = pipeline_batch(
        &BatchRunner::new(1),
        &cfg,
        &pairs,
        Alphabet::Dna,
        threshold,
        Tier::QuetzalC,
    )
    .expect("pipeline");
    let (r4, s4) = pipeline_batch(
        &BatchRunner::new(4),
        &cfg,
        &pairs,
        Alphabet::Dna,
        threshold,
        Tier::QuetzalC,
    )
    .expect("pipeline");
    assert_eq!(r1, r4);
    assert_eq!(s1, s4);
    assert_eq!(r1.accepted + r1.rejected, 8);
}

/// Graceful degradation is thread-invariant: with K of N items
/// faulting, the healthy items' per-item `RunStats` and their merged
/// total are bit-identical between 1 and 4 threads, and the failure
/// list is stable, ordered by item index, and carries the typed cause.
#[test]
fn faulting_items_are_thread_invariant() {
    use quetzal::{FailureCause, ItemFailure, SimError};
    use quetzal_isa::{ProgramBuilder, SAluOp, X0};

    let cfg = MachineConfig::default();
    let items: Vec<i64> = (0..12).collect();
    let faulty = |i: usize| i % 5 == 3; // items 3 and 8
    let run = |threads: usize| {
        BatchRunner::new(threads)
            .run_machines_report(&cfg, &items, |m, i, &x| {
                let mut b = ProgramBuilder::new();
                let top = b.label();
                b.mov_imm(X0, x);
                b.alu_ri(SAluOp::Mul, X0, X0, 3);
                if faulty(i) {
                    b.bind(top);
                    b.jump(top); // spin until the instruction budget
                    m.core_mut().set_budget(64);
                }
                b.halt();
                let stats = m.run(&b.build().expect("kernel"))?;
                Ok((m.core().state().x(X0), stats))
            })
            .expect("infrastructure")
    };

    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.results, parallel.results, "per-item results diverge");
    assert_eq!(serial.failures, parallel.failures, "failure lists diverge");

    // Healthy items: present, correct, and merged totals identical.
    let healthy_stats = |report: &quetzal::RunReport<(u64, RunStats)>| {
        report
            .healthy()
            .map(|(_, (_, s))| s.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(serial.healthy().count(), 10);
    for (i, (value, _)) in serial.healthy() {
        assert_eq!(*value, 3 * i as u64, "healthy item {i} result");
    }
    assert_eq!(
        RunStats::merged(&healthy_stats(&serial)),
        RunStats::merged(&healthy_stats(&parallel)),
        "merged healthy totals diverge"
    );

    // Failures: ordered by item index with the typed cause.
    let expect_failure = |item: usize| ItemFailure {
        item,
        cause: FailureCause::Sim(SimError::InstLimit { budget: 64 }),
        recovered: false,
    };
    assert_eq!(serial.failures, vec![expect_failure(3), expect_failure(8)]);
    assert!(serial.results[3].is_none() && serial.results[8].is_none());
}

/// Golden snapshot: every statistic of the canonical kernel (WFA at
/// QUETZAL+C tier, first 100 bp Table II pair, default machine). If an
/// intentional simulator change moves these numbers, re-record them —
/// any *unintentional* diff here means simulation results silently
/// changed.
#[test]
fn canonical_kernel_stats_snapshot() {
    let wl = workload(1);
    let cfg = MachineConfig::default();
    let stats = run_algo_pairs(&BatchRunner::new(1), &cfg, Algo::Wfa, &wl, Tier::QuetzalC);
    let want = RunStats {
        cycles: 750,
        instructions: 398,
        uops: 398,
        mem_requests: 39,
        l1_hits: 44,
        l1_misses: 12,
        l2_misses: 12,
        dram_bytes: 768,
        prefetches: 0,
        branches: 68,
        mispredicts: 16,
        indexed_ops: 0,
        qz_accesses: 11,
        stall_cycles: [34, 67, 35, 198, 410, 6],
    };
    assert_eq!(stats, vec![want]);
}
