//! Thread-count invariance of the deterministic batch engine, end to
//! end: the per-pair results and merged statistics an experiment
//! observes must be bit-identical between `QUETZAL_THREADS=1` and any
//! other thread count. A golden snapshot of one canonical kernel's
//! statistics additionally pins the simulator against silent drift.

use quetzal::uarch::RunStats;
use quetzal::{BatchRunner, MachineConfig};
use quetzal_algos::pipeline::{mixed_pairs, pipeline_batch};
use quetzal_algos::Tier;
use quetzal_bench::workloads::{run_algo_pairs, Algo, Workload, SEED};
use quetzal_genomics::dataset::DatasetSpec;
use quetzal_genomics::Alphabet;

fn workload(pairs: usize) -> Workload {
    Workload {
        spec: DatasetSpec::d100(),
        pairs: DatasetSpec::d100().generate_n(SEED, pairs),
    }
}

/// Per-pair results and the merged total are bit-identical between a
/// 1-thread and a 4-thread run, for both a compute-bound aligner (WFA)
/// and the filtering kernel (SneakySnake), at every tier the
/// experiments compare.
#[test]
fn wfa_and_ss_are_thread_invariant() {
    let wl = workload(6);
    let cfg = MachineConfig::default();
    for algo in [Algo::Wfa, Algo::Ss] {
        for tier in [Tier::Vec, Tier::QuetzalC] {
            let serial = run_algo_pairs(&BatchRunner::new(1), &cfg, algo, &wl, tier);
            let parallel = run_algo_pairs(&BatchRunner::new(4), &cfg, algo, &wl, tier);
            assert_eq!(serial.len(), 6);
            assert_eq!(serial, parallel, "{algo} {tier}: per-pair results diverge");
            assert_eq!(
                RunStats::merged(&serial),
                RunStats::merged(&parallel),
                "{algo} {tier}: merged totals diverge"
            );
        }
    }
}

/// Shard size must not interact with thread count: grouping pairs
/// four-per-machine still yields identical results for 1 vs 4 threads.
#[test]
fn shard_size_is_thread_invariant() {
    let wl = workload(9);
    let cfg = MachineConfig::default();
    let serial = run_algo_pairs(
        &BatchRunner::new(1).with_shard_size(4),
        &cfg,
        Algo::Wfa,
        &wl,
        Tier::QuetzalC,
    );
    let parallel = run_algo_pairs(
        &BatchRunner::new(4).with_shard_size(4),
        &cfg,
        Algo::Wfa,
        &wl,
        Tier::QuetzalC,
    );
    assert_eq!(serial, parallel);
}

/// The two-stage SS→WFA pipeline (accept set, scores, and merged
/// statistics) is thread-invariant too.
#[test]
fn pipeline_is_thread_invariant() {
    let spec = DatasetSpec::d100();
    let pairs = mixed_pairs(&spec, SEED, 8, 0.5);
    let cfg = MachineConfig::default();
    let threshold = 8;
    let (r1, s1) = pipeline_batch(
        &BatchRunner::new(1),
        &cfg,
        &pairs,
        Alphabet::Dna,
        threshold,
        Tier::QuetzalC,
    )
    .expect("pipeline");
    let (r4, s4) = pipeline_batch(
        &BatchRunner::new(4),
        &cfg,
        &pairs,
        Alphabet::Dna,
        threshold,
        Tier::QuetzalC,
    )
    .expect("pipeline");
    assert_eq!(r1, r4);
    assert_eq!(s1, s4);
    assert_eq!(r1.accepted + r1.rejected, 8);
}

/// Golden snapshot: every statistic of the canonical kernel (WFA at
/// QUETZAL+C tier, first 100 bp Table II pair, default machine). If an
/// intentional simulator change moves these numbers, re-record them —
/// any *unintentional* diff here means simulation results silently
/// changed.
#[test]
fn canonical_kernel_stats_snapshot() {
    let wl = workload(1);
    let cfg = MachineConfig::default();
    let stats = run_algo_pairs(&BatchRunner::new(1), &cfg, Algo::Wfa, &wl, Tier::QuetzalC);
    let want = RunStats {
        cycles: 750,
        instructions: 398,
        uops: 398,
        mem_requests: 39,
        l1_hits: 44,
        l1_misses: 12,
        l2_misses: 12,
        dram_bytes: 768,
        prefetches: 0,
        branches: 68,
        mispredicts: 16,
        indexed_ops: 0,
        qz_accesses: 11,
        stall_cycles: [34, 67, 35, 198, 410, 6],
    };
    assert_eq!(stats, vec![want]);
}
