//! Accelerator semantics exercised through whole-machine programs:
//! the QUETZAL ISA extension behaves exactly like its architectural
//! specification (paper §III-A / §IV).

use quetzal::isa::*;
use quetzal::{Machine, MachineConfig};
use quetzal_genomics::distance::common_prefix_len;
use quetzal_genomics::packed::Packed2;
use quetzal_genomics::Alphabet;

fn machine() -> Machine {
    Machine::new(MachineConfig::default())
}

/// Stages a DNA pair through qzconf/vload/qzencode instructions.
fn stage(m: &mut Machine, pattern: &[u8], text: &[u8]) {
    let pa = m.alloc(pattern.len() as u64 + 64);
    m.write_bytes(pa, pattern);
    let ta = m.alloc(text.len() as u64 + 64);
    m.write_bytes(ta, text);
    let mut b = ProgramBuilder::new();
    quetzal_algos::common::emit_qz_stage_pair(&mut b, pa, pattern.len(), ta, text.len(), 0);
    b.halt();
    m.run(&b.build().unwrap()).unwrap();
}

#[test]
fn qzencode_matches_reference_packing_everywhere() {
    let mut m = machine();
    let seq: Vec<u8> = (0..300).map(|i| b"ACGT"[(i * 13 + 1) % 4]).collect();
    stage(&mut m, &seq, &seq);
    let packed = Packed2::from_bytes(&seq, Alphabet::Dna);
    for i in (0..seq.len()).step_by(17) {
        assert_eq!(
            m.core()
                .state()
                .qz
                .buf(0)
                .read_segment(i as u64, EncSize::E2),
            packed.segment(i),
            "offset {i}"
        );
    }
}

#[test]
fn qzmhm_count_equals_common_prefix_of_sequences() {
    // The hardware count over staged sequences equals the software
    // common-prefix length at arbitrary (v, h) offsets, clamped to the
    // 32-base segment the count ALU sees.
    let pattern: Vec<u8> = (0..200).map(|i| b"ACGT"[(i * 7 + 2) % 4]).collect();
    let mut text = pattern.clone();
    text[60] = if text[60] == b'A' { b'C' } else { b'A' };
    let mut m = machine();
    stage(&mut m, &pattern, &text);

    for (v, h) in [(0usize, 0usize), (40, 40), (59, 59), (60, 60), (100, 100)] {
        let mut b = ProgramBuilder::new();
        b.ptrue(P0, ElemSize::B64);
        b.mov_imm(X0, v as i64);
        b.dup(V0, X0, ElemSize::B64);
        b.mov_imm(X1, h as i64);
        b.dup(V1, X1, ElemSize::B64);
        b.qzmhm(QzOp::Count, V2, V0, V1, P0);
        b.halt();
        m.run(&b.build().unwrap()).unwrap();
        let got = m
            .core()
            .state()
            .qz
            .mhm(QzOp::Count, &[v as u64; 8], &[h as u64; 8], &[true; 8]);
        let want = common_prefix_len(&pattern[v..], &text[h..]).min(32) as u64;
        assert_eq!(m.core().state().v_elem_check(V2), want, "v={v} h={h}");
        assert_eq!(got.0[0], want);
    }
}

trait VElemCheck {
    fn v_elem_check(&self, r: VReg) -> u64;
}

impl VElemCheck for quetzal::uarch::ArchState {
    fn v_elem_check(&self, r: VReg) -> u64 {
        self.v_elem(r, 0, ElemSize::B64)
    }
}

#[test]
fn qzstore_at_commit_survives_branchy_code() {
    // qzstore executes at commit (paper §IV-E): interleave stores with
    // data-dependent branches and verify the final buffer state.
    let mut m = machine();
    let mut b = ProgramBuilder::new();
    b.mov_imm(X0, 64).mov_imm(X1, 64).mov_imm(X2, 2);
    b.qzconf(X0, X1, X2);
    b.ptrue(P0, ElemSize::B64);
    b.mov_imm(X3, 0); // i
    b.mov_imm(X4, 16); // n
    let top = b.label();
    let skip = b.label();
    let done = b.label();
    b.bind(top);
    b.branch(BranchCond::Ge, X3, X4, done);
    // Store value i at index i, but only for even i.
    b.alu_ri(SAluOp::And, X5, X3, 1);
    b.mov_imm(X6, 0);
    b.branch(BranchCond::Ne, X5, X6, skip);
    b.dup(V0, X3, ElemSize::B64);
    b.mov_imm(X7, 1);
    b.pwhilelt(P1, X7, ElemSize::B64);
    b.qzstore(V0, V0, QBufSel::Q0, P1);
    b.bind(skip);
    b.alu_ri(SAluOp::Add, X3, X3, 1);
    b.jump(top);
    b.bind(done);
    b.halt();
    m.run(&b.build().unwrap()).unwrap();
    for i in 0..16u64 {
        let want = if i % 2 == 0 { i } else { 0 };
        assert_eq!(
            m.core().state().qz.buf(0).read_segment(i, EncSize::E64),
            want,
            "slot {i}"
        );
    }
}

#[test]
fn qz_reads_leave_the_cache_hierarchy_untouched() {
    let mut m = machine();
    let seq: Vec<u8> = (0..128).map(|i| b"ACGT"[i % 4]).collect();
    stage(&mut m, &seq, &seq);
    // A burst of qzload/qzmhm must generate zero cache requests.
    let mut b = ProgramBuilder::new();
    b.ptrue(P0, ElemSize::B64);
    b.mov_imm(X0, 0);
    b.index(V0, X0, 4, ElemSize::B64);
    for _ in 0..16 {
        b.qzload(V1, V0, QBufSel::Q0, P0);
        b.qzmhm(QzOp::Count, V2, V0, V0, P0);
    }
    b.halt();
    let stats = m.run(&b.build().unwrap()).unwrap();
    assert_eq!(stats.mem_requests, 0, "QBUFFER traffic bypasses the caches");
    assert!(stats.qz_accesses >= 32);
}

#[test]
fn invalid_qzconf_faults_cleanly() {
    let mut m = machine();
    let mut b = ProgramBuilder::new();
    b.mov_imm(X0, 4).mov_imm(X1, 4).mov_imm(X2, 5);
    b.qzconf(X0, X1, X2);
    b.halt();
    let err = m.run(&b.build().unwrap()).unwrap_err();
    assert!(matches!(
        err,
        quetzal::SimError::InvalidQzConf { esiz: 5, .. }
    ));
}
