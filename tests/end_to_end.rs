//! End-to-end integration: datasets → kernels → validated results,
//! crossing every crate of the workspace.

use quetzal::{Machine, MachineConfig, QzConfig};
use quetzal_algos::biwfa::biwfa_sim;
use quetzal_algos::dp_sim::{dp_sim, LinearCosts};
use quetzal_algos::pipeline::{mixed_pairs, pipeline_ref, pipeline_sim};
use quetzal_algos::sneakysnake::{ss_filter, ss_sim};
use quetzal_algos::wfa_sim::wfa_sim;
use quetzal_algos::Tier;
use quetzal_genomics::dataset::DatasetSpec;
use quetzal_genomics::distance::levenshtein;
use quetzal_genomics::Alphabet;

#[test]
fn every_aligner_is_exact_on_every_tier() {
    let pairs = DatasetSpec::d100().generate_n(1001, 2);
    for pair in &pairs {
        let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
        let d = levenshtein(p, t) as i64;
        for tier in Tier::all() {
            let mut m = Machine::new(MachineConfig::default());
            assert_eq!(wfa_sim(&mut m, p, t, Alphabet::Dna, tier).unwrap().value, d);
            let mut m = Machine::new(MachineConfig::default());
            assert_eq!(
                biwfa_sim(&mut m, p, t, Alphabet::Dna, tier).unwrap().value,
                d
            );
            let mut m = Machine::new(MachineConfig::default());
            assert_eq!(
                dp_sim(&mut m, p, t, LinearCosts::UNIT, None, tier)
                    .unwrap()
                    .value,
                d
            );
        }
    }
}

#[test]
fn filter_never_rejects_close_pairs_on_any_tier() {
    let pairs = DatasetSpec::d100().generate_n(1003, 3);
    for pair in &pairs {
        let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
        let d = levenshtein(p, t);
        let e = d + 2; // true distance is within the threshold
        for tier in Tier::all() {
            let mut m = Machine::new(MachineConfig::default());
            let bound = ss_sim(&mut m, p, t, Alphabet::Dna, e, tier).unwrap().value;
            assert!(
                bound as u32 <= e,
                "{tier}: filter must accept a pair with distance {d} at threshold {e}"
            );
        }
    }
}

#[test]
fn pipeline_agrees_with_reference_on_mixed_batch() {
    let spec = DatasetSpec::d100();
    let pairs = mixed_pairs(&spec, 1005, 8, 0.5);
    let want = pipeline_ref(&pairs, 8);
    assert!(want.accepted > 0 && want.rejected > 0, "mixed batch");
    for tier in [Tier::Base, Tier::Vec, Tier::Quetzal, Tier::QuetzalC] {
        let mut m = Machine::new(MachineConfig::default());
        let (got, _) = pipeline_sim(&mut m, &pairs, Alphabet::Dna, 8, tier).unwrap();
        assert_eq!(got, want, "{tier}");
    }
}

#[test]
fn warm_machine_reuses_state_across_many_kernels() {
    // One machine, many submissions: accelerator + caches persist, every
    // result still exact.
    let mut m = Machine::new(MachineConfig::default());
    for seed in 0..6 {
        let pair = &DatasetSpec::d100().generate_n(2000 + seed, 1)[0];
        let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
        let out = wfa_sim(&mut m, p, t, Alphabet::Dna, Tier::QuetzalC).unwrap();
        assert_eq!(out.value, levenshtein(p, t) as i64, "seed {seed}");
    }
}

#[test]
fn port_configurations_do_not_change_results() {
    let pair = &DatasetSpec::d250().generate_n(1007, 1)[0];
    let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
    let d = levenshtein(p, t) as i64;
    let mut cycles = Vec::new();
    for qz in [
        QzConfig::QZ_1P,
        QzConfig::QZ_2P,
        QzConfig::QZ_4P,
        QzConfig::QZ_8P,
    ] {
        let mut m = Machine::new(MachineConfig::with_qz(qz));
        let out = wfa_sim(&mut m, p, t, Alphabet::Dna, Tier::Quetzal).unwrap();
        assert_eq!(out.value, d, "{qz}");
        cycles.push(out.stats.cycles);
    }
    // More ports never hurt.
    for w in cycles.windows(2) {
        assert!(
            w[1] <= w[0],
            "cycles must not increase with ports: {cycles:?}"
        );
    }
}

#[test]
fn protein_and_dna_alphabets_agree_with_references() {
    let pair = &DatasetSpec::protein().generate_n(1009, 1)[0];
    let p = &pair.pattern.as_bytes()[..80];
    let t = &pair.text.as_bytes()[..80];
    let d = levenshtein(p, t) as i64;
    let mut m = Machine::new(MachineConfig::default());
    assert_eq!(
        wfa_sim(&mut m, p, t, Alphabet::Protein, Tier::QuetzalC)
            .unwrap()
            .value,
        d
    );
    let e = d as u32 + 1;
    let want = ss_filter(p, t, e).bound as i64;
    let mut m = Machine::new(MachineConfig::default());
    assert_eq!(
        ss_sim(&mut m, p, t, Alphabet::Protein, e, Tier::QuetzalC)
            .unwrap()
            .value,
        want
    );
}

#[test]
fn tier_performance_ordering_holds_end_to_end() {
    // The paper's headline ordering on a modern algorithm:
    // QUETZAL+C < QUETZAL < VEC in cycles.
    let pair = &DatasetSpec::d250().generate_n(1011, 1)[0];
    let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
    let mut cycles = std::collections::HashMap::new();
    for tier in Tier::all() {
        let mut m = Machine::new(MachineConfig::default());
        cycles.insert(
            tier,
            wfa_sim(&mut m, p, t, Alphabet::Dna, tier)
                .unwrap()
                .stats
                .cycles,
        );
    }
    assert!(cycles[&Tier::QuetzalC] < cycles[&Tier::Quetzal]);
    assert!(cycles[&Tier::Quetzal] < cycles[&Tier::Vec]);
}
