//! Golden timing-neutrality pins.
//!
//! The predecoded micro-op hot path must be *strictly* timing-neutral:
//! every cycle count, stall attribution, and cache counter must stay
//! bit-identical to the pre-predecode simulator. This test pins the
//! full [`RunStats`] of one representative program per [`InstClass`]
//! group, captured from the seed (pre-predecode) simulator; any timing
//! drift — intended or not — fails here first with the exact field.
//!
//! Regenerating the pins (only legitimate after a *deliberate* timing
//! model change, never for a performance refactor):
//!
//! ```text
//! cargo test -q --offline --test timing_golden -- --ignored --nocapture
//! ```
//!
//! and paste the printed table over `GOLDEN`.

use quetzal::isa::*;
use quetzal::uarch::RunStats;
use quetzal::{Machine, MachineConfig};

/// One pinned run: every `RunStats` field of the named program on the
/// default machine configuration.
struct Golden {
    name: &'static str,
    cycles: u64,
    instructions: u64,
    uops: u64,
    mem_requests: u64,
    l1_hits: u64,
    l1_misses: u64,
    l2_misses: u64,
    dram_bytes: u64,
    prefetches: u64,
    branches: u64,
    mispredicts: u64,
    indexed_ops: u64,
    qz_accesses: u64,
    stall_cycles: [u64; 6],
}

/// Pinned seed-simulator stats (see module docs for regeneration).
const GOLDEN: &[Golden] = &[
    Golden {
        name: "scalar_alu_mul",
        cycles: 268,
        instructions: 245,
        uops: 245,
        mem_requests: 0,
        l1_hits: 0,
        l1_misses: 0,
        l2_misses: 0,
        dram_bytes: 0,
        prefetches: 0,
        branches: 40,
        mispredicts: 2,
        indexed_ops: 0,
        qz_accesses: 0,
        stall_cycles: [0, 12, 256, 0, 0, 0],
    },
    Golden {
        name: "scalar_mem",
        cycles: 530,
        instructions: 774,
        uops: 774,
        mem_requests: 128,
        l1_hits: 124,
        l1_misses: 4,
        l2_misses: 4,
        dram_bytes: 768,
        prefetches: 8,
        branches: 128,
        mispredicts: 4,
        indexed_ops: 0,
        qz_accesses: 0,
        stall_cycles: [124, 9, 38, 0, 359, 0],
    },
    Golden {
        name: "branch",
        cycles: 988,
        instructions: 749,
        uops: 749,
        mem_requests: 0,
        l1_hits: 0,
        l1_misses: 0,
        l2_misses: 0,
        dram_bytes: 0,
        prefetches: 0,
        branches: 192,
        mispredicts: 26,
        indexed_ops: 0,
        qz_accesses: 0,
        stall_cycles: [0, 12, 976, 0, 0, 0],
    },
    Golden {
        name: "vector_alu_mul",
        cycles: 317,
        instructions: 128,
        uops: 128,
        mem_requests: 0,
        l1_hits: 0,
        l1_misses: 0,
        l2_misses: 0,
        dram_bytes: 0,
        prefetches: 0,
        branches: 24,
        mispredicts: 2,
        indexed_ops: 0,
        qz_accesses: 0,
        stall_cycles: [0, 0, 3, 314, 0, 0],
    },
    Golden {
        name: "vector_mem",
        cycles: 557,
        instructions: 230,
        uops: 230,
        mem_requests: 64,
        l1_hits: 56,
        l1_misses: 8,
        l2_misses: 8,
        dram_bytes: 4608,
        prefetches: 64,
        branches: 32,
        mispredicts: 2,
        indexed_ops: 0,
        qz_accesses: 0,
        stall_cycles: [53, 0, 3, 0, 501, 0],
    },
    Golden {
        name: "gather_scatter",
        cycles: 558,
        instructions: 89,
        uops: 281,
        mem_requests: 192,
        l1_hits: 188,
        l1_misses: 4,
        l2_misses: 4,
        dram_bytes: 1152,
        prefetches: 14,
        branches: 12,
        mispredicts: 2,
        indexed_ops: 24,
        qz_accesses: 0,
        stall_cycles: [11, 0, 9, 0, 538, 0],
    },
    Golden {
        name: "horizontal",
        cycles: 310,
        instructions: 134,
        uops: 134,
        mem_requests: 0,
        l1_hits: 0,
        l1_misses: 0,
        l2_misses: 0,
        dram_bytes: 0,
        prefetches: 0,
        branches: 16,
        mispredicts: 2,
        indexed_ops: 0,
        qz_accesses: 0,
        stall_cycles: [0, 0, 310, 0, 0, 0],
    },
    Golden {
        name: "predicate",
        cycles: 81,
        instructions: 83,
        uops: 83,
        mem_requests: 0,
        l1_hits: 0,
        l1_misses: 0,
        l2_misses: 0,
        dram_bytes: 0,
        prefetches: 0,
        branches: 8,
        mispredicts: 2,
        indexed_ops: 0,
        qz_accesses: 0,
        stall_cycles: [0, 12, 69, 0, 0, 0],
    },
    Golden {
        name: "quetzal",
        cycles: 152,
        instructions: 121,
        uops: 121,
        mem_requests: 8,
        l1_hits: 0,
        l1_misses: 8,
        l2_misses: 8,
        dram_bytes: 512,
        prefetches: 0,
        branches: 10,
        mispredicts: 2,
        indexed_ops: 0,
        qz_accesses: 39,
        stall_cycles: [28, 0, 3, 0, 121, 0],
    },
];

/// Builds every golden program, one per `InstClass` group, on a fresh
/// default machine with its inputs staged.
fn golden_programs() -> Vec<(&'static str, Machine, Program)> {
    let mut out: Vec<(&'static str, Machine, Program)> = Vec::new();

    // ScalarAlu + ScalarMul: dependent add/mul chain inside a counted
    // loop (exercises scalar-compute stalls and taken branches).
    {
        let m = Machine::new(MachineConfig::default());
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.mov_imm(X0, 0); // i
        b.mov_imm(X1, 1); // product
        b.mov_imm(X2, 0); // sum
        b.mov_imm(X3, 40); // trip count
        b.bind(top);
        b.alu_ri(SAluOp::Add, X4, X0, 3);
        b.alu_rr(SAluOp::Mul, X1, X1, X4);
        b.alu_rr(SAluOp::And, X1, X1, X3);
        b.alu_rr(SAluOp::Add, X2, X2, X1);
        b.alu_ri(SAluOp::Add, X0, X0, 1);
        b.branch(BranchCond::Lt, X0, X3, top);
        b.halt();
        out.push(("scalar_alu_mul", m, b.build().unwrap()));
    }

    // ScalarLoad + ScalarStore: pointer-chased stores then loads over a
    // small array (L1 hits and misses, store-to-load forwarding).
    {
        let mut m = Machine::new(MachineConfig::default());
        let base = m.alloc(4096);
        let mut b = ProgramBuilder::new();
        let fill = b.label();
        let read = b.label();
        b.mov_imm(X0, base as i64);
        b.mov_imm(X1, 0); // i
        b.mov_imm(X2, 64); // elems
        b.bind(fill);
        b.alu_rr(SAluOp::Shl, X3, X1, X2); // scratch dep
        b.alu_ri(SAluOp::Shl, X3, X1, 3);
        b.alu_rr(SAluOp::Add, X3, X3, X0);
        b.store(X1, X3, 0, MemSize::B8);
        b.alu_ri(SAluOp::Add, X1, X1, 1);
        b.branch(BranchCond::Lt, X1, X2, fill);
        b.mov_imm(X1, 0);
        b.mov_imm(X4, 0); // sum
        b.bind(read);
        b.alu_ri(SAluOp::Shl, X3, X1, 3);
        b.alu_rr(SAluOp::Add, X3, X3, X0);
        b.load(X5, X3, 0, MemSize::B8);
        b.alu_rr(SAluOp::Add, X4, X4, X5);
        b.alu_ri(SAluOp::Add, X1, X1, 1);
        b.branch(BranchCond::Lt, X1, X2, read);
        b.halt();
        out.push(("scalar_mem", m, b.build().unwrap()));
    }

    // Branch: data-dependent taken/not-taken pattern the 2-bit
    // predictor cannot learn perfectly (mispredict refill cycles).
    {
        let m = Machine::new(MachineConfig::default());
        let mut b = ProgramBuilder::new();
        let top = b.label();
        let skip = b.label();
        b.mov_imm(X0, 0); // i
        b.mov_imm(X1, 0); // acc
        b.mov_imm(X2, 96); // trips
        b.mov_imm(X3, 0); // lfsr-ish state
        b.bind(top);
        b.alu_ri(SAluOp::Mul, X3, X3, 13);
        b.alu_ri(SAluOp::Add, X3, X3, 7);
        b.alu_ri(SAluOp::And, X4, X3, 3);
        b.mov_imm(X5, 1);
        b.branch(BranchCond::Lt, X4, X5, skip); // taken 1/4 of trips
        b.alu_ri(SAluOp::Add, X1, X1, 5);
        b.bind(skip);
        b.alu_ri(SAluOp::Add, X0, X0, 1);
        b.branch(BranchCond::Lt, X0, X2, top);
        b.halt();
        out.push(("branch", m, b.build().unwrap()));
    }

    // VectorAlu + VectorMul: dependent vector chain under a merged
    // predicate (vector-compute stalls).
    {
        let m = Machine::new(MachineConfig::default());
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.mov_imm(X0, 0);
        b.mov_imm(X1, 24);
        b.mov_imm(X2, 5);
        b.ptrue(P0, ElemSize::B64);
        b.pwhilelt(P1, X2, ElemSize::B64);
        b.dup_imm(V0, 3, ElemSize::B64);
        b.index(V1, X0, 1, ElemSize::B64);
        b.bind(top);
        b.valu_vv(VAluOp::Mul, V2, V1, V0, P0, ElemSize::B64);
        b.valu_vv(VAluOp::Add, V1, V2, V0, P1, ElemSize::B64);
        b.valu_vi(VAluOp::And, V1, V1, 0xFFFF, P0, ElemSize::B64);
        b.alu_ri(SAluOp::Add, X0, X0, 1);
        b.branch(BranchCond::Lt, X0, X1, top);
        b.halt();
        out.push(("vector_alu_mul", m, b.build().unwrap()));
    }

    // VectorLoad + VectorStore: unit-stride streaming copy (vector
    // memory pipeline, prefetcher, DRAM traffic).
    {
        let mut m = Machine::new(MachineConfig::default());
        let src = m.alloc(8192);
        let dst = m.alloc(8192);
        let bytes: Vec<u8> = (0..4096u32).map(|i| (i * 7) as u8).collect();
        m.write_bytes(src, &bytes);
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.mov_imm(X0, src as i64);
        b.mov_imm(X1, dst as i64);
        b.mov_imm(X2, 0);
        b.mov_imm(X3, 32); // 32 full-vector iterations
        b.ptrue(P0, ElemSize::B8);
        b.bind(top);
        b.vload(V0, X0, P0, ElemSize::B8);
        b.valu_vi(VAluOp::Add, V0, V0, 1, P0, ElemSize::B8);
        b.vstore(V0, X1, P0, ElemSize::B8);
        b.alu_ri(SAluOp::Add, X0, X0, 64);
        b.alu_ri(SAluOp::Add, X1, X1, 64);
        b.alu_ri(SAluOp::Add, X2, X2, 1);
        b.branch(BranchCond::Lt, X2, X3, top);
        b.halt();
        out.push(("vector_mem", m, b.build().unwrap()));
    }

    // Gather + Scatter: strided indices over a staged table (per-lane
    // cracking, gather pipe serialisation, indexed-op accounting).
    {
        let mut m = Machine::new(MachineConfig::default());
        let base = m.alloc(8192);
        for i in 0..512u64 {
            m.write_u64(base + i * 8, i * 3 + 1);
        }
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.mov_imm(X0, base as i64);
        b.mov_imm(X1, 0);
        b.mov_imm(X2, 12);
        b.ptrue(P0, ElemSize::B64);
        b.bind(top);
        b.alu_ri(SAluOp::Mul, X3, X1, 5);
        b.index(V0, X3, 7, ElemSize::B64); // indices stride 7
        b.vgather(V1, X0, V0, P0, ElemSize::B64, MemSize::B8, 8);
        b.valu_vi(VAluOp::Add, V1, V1, 1, P0, ElemSize::B64);
        b.vscatter(V1, X0, V0, P0, ElemSize::B64, MemSize::B8, 8);
        b.alu_ri(SAluOp::Add, X1, X1, 1);
        b.branch(BranchCond::Lt, X1, X2, top);
        b.halt();
        out.push(("gather_scatter", m, b.build().unwrap()));
    }

    // VectorHorizontal: reductions, extracts, inserts and slides.
    {
        let m = Machine::new(MachineConfig::default());
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.mov_imm(X0, 0);
        b.mov_imm(X1, 16);
        b.mov_imm(X2, 1);
        b.ptrue(P0, ElemSize::B64);
        b.index(V0, X2, 2, ElemSize::B64);
        b.bind(top);
        b.vreduce(RedOp::Add, X3, V0, P0, ElemSize::B64);
        b.vreduce(RedOp::Max, X4, V0, P0, ElemSize::B64);
        b.vextract(X5, V0, 2, ElemSize::B64);
        b.vslidedown(V1, V0, 1, ElemSize::B64);
        b.vslide1up(V0, V1, X3, ElemSize::B64);
        b.vinsert(V0, X4, 7, ElemSize::B64);
        b.alu_ri(SAluOp::Add, X0, X0, 1);
        b.branch(BranchCond::Lt, X0, X1, top);
        b.halt();
        out.push(("horizontal", m, b.build().unwrap()));
    }

    // Predicate: while-loops, predicate logic, pcount-driven exit.
    {
        let m = Machine::new(MachineConfig::default());
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.mov_imm(X0, 61); // remaining
        b.mov_imm(X1, 0); // acc
        b.bind(top);
        b.pwhilelt(P0, X0, ElemSize::B64);
        b.ptrue(P1, ElemSize::B64);
        b.pand(P2, P0, P1);
        b.por(P3, P2, P0);
        b.pbic(P3, P1, P2);
        b.pcount(X2, P2, ElemSize::B64);
        b.alu_rr(SAluOp::Add, X1, X1, X2);
        b.alu_ri(SAluOp::Sub, X0, X0, 8);
        b.mov_imm(X3, 0);
        b.branch(BranchCond::Gt, X0, X3, top);
        b.halt();
        out.push(("predicate", m, b.build().unwrap()));
    }

    // QzConfig + QzWrite + QzRead + QzCountOp: stage a DNA pair into
    // the QBUFFERs, then qzload / qzmhm / qzcount / qzupdate over it.
    {
        let mut m = Machine::new(MachineConfig::default());
        let seq: Vec<u8> = (0..256).map(|i| b"ACGT"[(i * 11 + 2) % 4]).collect();
        let pa = m.alloc(seq.len() as u64 + 64);
        m.write_bytes(pa, &seq);
        let ta = m.alloc(seq.len() as u64 + 64);
        m.write_bytes(ta, &seq);
        let mut b = ProgramBuilder::new();
        quetzal_algos::common::emit_qz_stage_pair(&mut b, pa, seq.len(), ta, seq.len(), 0);
        let top = b.label();
        b.mov_imm(X0, 0);
        b.mov_imm(X1, 10);
        b.ptrue(P0, ElemSize::B64);
        b.bind(top);
        b.alu_ri(SAluOp::Mul, X2, X0, 16);
        b.index(V0, X2, 2, ElemSize::B64);
        b.qzload(V1, V0, QBufSel::Q0, P0);
        b.qzmhm(QzOp::Count, V2, V0, V0, P0);
        b.qzcount(V3, V1, V1);
        b.qzmm(QzOp::Add, V4, V1, V0, QBufSel::Q1, P0);
        b.alu_ri(SAluOp::Add, X0, X0, 1);
        b.branch(BranchCond::Lt, X0, X1, top);
        b.halt();
        out.push(("quetzal", m, b.build().unwrap()));
    }

    out
}

/// Prints the `GOLDEN` table for the current simulator. Ignored by
/// default; see module docs.
#[test]
#[ignore = "regenerates the pinned table; run with --ignored --nocapture"]
fn dump_golden_table() {
    for (name, mut m, p) in golden_programs() {
        let s = m.run(&p).unwrap();
        println!(
            "    Golden {{\n        name: \"{name}\",\n        cycles: {},\n        \
             instructions: {},\n        uops: {},\n        mem_requests: {},\n        \
             l1_hits: {},\n        l1_misses: {},\n        l2_misses: {},\n        \
             dram_bytes: {},\n        prefetches: {},\n        branches: {},\n        \
             mispredicts: {},\n        indexed_ops: {},\n        qz_accesses: {},\n        \
             stall_cycles: {:?},\n    }},",
            s.cycles,
            s.instructions,
            s.uops,
            s.mem_requests,
            s.l1_hits,
            s.l1_misses,
            s.l2_misses,
            s.dram_bytes,
            s.prefetches,
            s.branches,
            s.mispredicts,
            s.indexed_ops,
            s.qz_accesses,
            s.stall_cycles,
        );
    }
}

#[test]
fn runstats_pinned_per_inst_class_group() {
    let programs = golden_programs();
    assert_eq!(
        programs.len(),
        GOLDEN.len(),
        "one pinned entry per golden program"
    );
    for ((name, mut m, p), g) in programs.into_iter().zip(GOLDEN) {
        assert_eq!(name, g.name, "pin order matches program order");
        let s = m.run(&p).unwrap();
        let pinned = RunStats {
            cycles: g.cycles,
            instructions: g.instructions,
            uops: g.uops,
            mem_requests: g.mem_requests,
            l1_hits: g.l1_hits,
            l1_misses: g.l1_misses,
            l2_misses: g.l2_misses,
            dram_bytes: g.dram_bytes,
            prefetches: g.prefetches,
            branches: g.branches,
            mispredicts: g.mispredicts,
            indexed_ops: g.indexed_ops,
            qz_accesses: g.qz_accesses,
            stall_cycles: g.stall_cycles,
        };
        assert_eq!(s, pinned, "timing drift in golden program `{name}`");
        assert_eq!(
            s.stall_cycles.iter().sum::<u64>(),
            s.cycles,
            "stall attribution must cover every cycle in `{name}`"
        );
    }
}

/// Drives the full Fig. 3 workload grid (every Table II dataset, WFA
/// and SneakySnake, baseline and vectorised tiers) through both decode
/// paths and asserts per-pair [`RunStats`] equality. The pins above
/// catch drift per instruction class; this catches it end to end, on
/// the exact programs the figures simulate — including the decode-cache
/// reuse pattern of a driver that submits many kernels per machine.
#[test]
fn predecoded_path_matches_reference_on_fig03_workload() {
    use quetzal::BatchRunner;
    use quetzal_algos::sneakysnake::ss_sim;
    use quetzal_algos::wfa_sim::wfa_sim;
    use quetzal_algos::Tier;
    use quetzal_bench::workloads::{table2_workloads, Algo};

    // One pair per dataset keeps both replays inside a few seconds
    // while still covering short and long reads.
    let scale = 0.1;
    let cfg = MachineConfig::default();
    let serial = BatchRunner::new(1);

    let run_grid = |reference: bool| -> Vec<(String, RunStats)> {
        let mut out = Vec::new();
        for wl in table2_workloads(scale) {
            let alphabet = wl.spec.alphabet;
            let threshold = wl.ss_threshold();
            for algo in [Algo::Wfa, Algo::Ss] {
                for tier in [Tier::Base, Tier::Vec] {
                    let stats = serial
                        .run_machines(&cfg, &wl.pairs, |m, i, pair| {
                            m.core_mut().set_reference_path(reference);
                            let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
                            let s = match algo {
                                Algo::Wfa => wfa_sim(m, p, t, alphabet, tier).unwrap().stats,
                                _ => ss_sim(m, p, t, alphabet, threshold, tier).unwrap().stats,
                            };
                            (format!("{algo}/{}/{tier}/pair{i}", wl.spec.name), s)
                        })
                        .unwrap();
                    out.extend(stats);
                }
            }
        }
        out
    };

    let hot = run_grid(false);
    let reference = run_grid(true);
    assert_eq!(hot.len(), reference.len());
    assert!(
        hot.len() >= 16,
        "grid covers 4 datasets x 2 algos x 2 tiers"
    );
    for ((name_h, s_h), (name_r, s_r)) in hot.iter().zip(&reference) {
        assert_eq!(name_h, name_r);
        assert_eq!(
            s_h, s_r,
            "predecoded path diverged from reference on {name_h}"
        );
    }
}
