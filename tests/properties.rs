//! Property-based tests over the workspace's core invariants.
//!
//! The harness is in-tree (no external framework, per the offline
//! build policy): every property runs over a deterministic stream of
//! seeded random cases from [`SplitMix64`], plus exhaustive sweeps
//! where the input space is small enough. Failures print the case
//! number and the generating inputs, so a reported case can be
//! replayed by construction — the stream only depends on the
//! per-property seed constant.

use quetzal::accel::qbuffer::QBuffers;
use quetzal::accel::QzConfig;
use quetzal::isa::EncSize;
use quetzal::{ExecMode, Machine, MachineConfig};
use quetzal_algos::biwfa::biwfa_edit_align;
use quetzal_algos::dp_sim::LinearCosts;
use quetzal_algos::nw::nw_align;
use quetzal_algos::sneakysnake::ss_filter;
use quetzal_algos::wfa::wfa_edit_align;
use quetzal_algos::wfa_sim::wfa_sim;
use quetzal_algos::Tier;
use quetzal_genomics::cigar::Cigar;
use quetzal_genomics::distance::{banded_levenshtein, gotoh_score, levenshtein, myers_distance};
use quetzal_genomics::packed::Packed2;
use quetzal_genomics::rng::SplitMix64;
use quetzal_genomics::{Alphabet, Seq};

/// Cases per fast property (matches the proptest budget this harness
/// replaced).
const CASES: usize = 64;

/// A random DNA sequence of length `0..=max_len`.
fn dna(rng: &mut SplitMix64, max_len: usize) -> Vec<u8> {
    let len = rng.below(max_len as u64 + 1) as usize;
    (0..len).map(|_| b"ACGT"[rng.below(4) as usize]).collect()
}

/// Runs `check(case, rng)` for [`CASES`] deterministic cases.
fn cases(seed: u64, mut check: impl FnMut(usize, &mut SplitMix64)) {
    let mut rng = SplitMix64::new(seed);
    for case in 0..CASES {
        check(case, &mut rng);
    }
}

fn text(s: &[u8]) -> String {
    String::from_utf8_lossy(s).into_owned()
}

/// Both exact-distance oracles agree for any input.
#[test]
fn myers_equals_dp() {
    cases(0x5EED_0001, |case, rng| {
        let (a, b) = (dna(rng, 150), dna(rng, 150));
        assert_eq!(
            myers_distance(&a, &b),
            levenshtein(&a, &b),
            "case {case}: a={} b={}",
            text(&a),
            text(&b)
        );
    });
}

/// Banded edit distance is exact whenever the band is wide enough.
#[test]
fn banded_is_exact_within_threshold() {
    cases(0x5EED_0002, |case, rng| {
        let (a, b) = (dna(rng, 80), dna(rng, 80));
        let d = levenshtein(&a, &b);
        assert_eq!(
            banded_levenshtein(&a, &b, d + 1),
            Some(d),
            "case {case}: a={} b={}",
            text(&a),
            text(&b)
        );
        if d > 0 {
            assert_eq!(
                banded_levenshtein(&a, &b, d - 1),
                None,
                "case {case}: a={} b={}",
                text(&a),
                text(&b)
            );
        }
    });
}

/// WFA is an exact aligner: optimal score, valid optimal transcript.
#[test]
fn wfa_is_exact() {
    cases(0x5EED_0003, |case, rng| {
        let (a, b) = (dna(rng, 120), dna(rng, 120));
        let r = wfa_edit_align(&a, &b);
        assert_eq!(
            r.score,
            levenshtein(&a, &b),
            "case {case}: a={} b={}",
            text(&a),
            text(&b)
        );
        assert!(r.cigar.validate(&a, &b).is_ok(), "case {case}");
        assert_eq!(r.cigar.edit_distance(), r.score, "case {case}");
    });
}

/// BiWFA computes the same optimal result in O(s) memory.
#[test]
fn biwfa_equals_wfa() {
    cases(0x5EED_0004, |case, rng| {
        let (a, b) = (dna(rng, 200), dna(rng, 200));
        let r = biwfa_edit_align(&a, &b);
        assert_eq!(
            r.score,
            levenshtein(&a, &b),
            "case {case}: a={} b={}",
            text(&a),
            text(&b)
        );
        assert!(r.cigar.validate(&a, &b).is_ok(), "case {case}");
    });
}

/// NW with unit costs is the Levenshtein distance; its transcript
/// validates and scores itself consistently.
#[test]
fn nw_is_exact() {
    cases(0x5EED_0005, |case, rng| {
        let (a, b) = (dna(rng, 60), dna(rng, 60));
        let r = nw_align(&a, &b, LinearCosts::UNIT);
        assert_eq!(
            r.score,
            levenshtein(&a, &b) as i64,
            "case {case}: a={} b={}",
            text(&a),
            text(&b)
        );
        assert!(r.cigar.validate(&a, &b).is_ok(), "case {case}");
    });
}

/// Gotoh with zero open cost reduces to linear-gap DP.
#[test]
fn gotoh_linear_gap_consistency() {
    use quetzal_genomics::cigar::Penalties;
    cases(0x5EED_0006, |case, rng| {
        let (a, b) = (dna(rng, 50), dna(rng, 50));
        let pen = Penalties {
            mismatch: 1,
            gap_open: 0,
            gap_extend: 1,
        };
        assert_eq!(
            gotoh_score(&a, &b, pen),
            levenshtein(&a, &b),
            "case {case}: a={} b={}",
            text(&a),
            text(&b)
        );
    });
}

/// SneakySnake's bound is a true lower bound: rejecting at
/// threshold E implies the real distance exceeds E.
#[test]
fn ss_is_a_lower_bound() {
    cases(0x5EED_0007, |case, rng| {
        let (a, b) = (dna(rng, 100), dna(rng, 100));
        let e = rng.below(8) as u32;
        let v = ss_filter(&a, &b, e);
        if !v.accepted {
            assert!(
                levenshtein(&a, &b) > e,
                "case {case}: e={e} a={} b={}",
                text(&a),
                text(&b)
            );
        }
    });
}

/// 2-bit packing round-trips and the unaligned segment accessor
/// matches per-base reads — for random sequences and random starts.
#[test]
fn packed2_round_trip() {
    cases(0x5EED_0008, |case, rng| {
        let bytes = dna(rng, 200);
        let start = (rng.below(200) as usize).min(bytes.len());
        let seq = Seq::dna(bytes.clone()).unwrap();
        let p = Packed2::from_seq(&seq);
        assert_eq!(p.decode(), seq, "case {case}");
        let seg = p.segment(start);
        for i in 0..32usize {
            let idx = start + i;
            let want = if idx < bytes.len() {
                p.get(idx) as u64
            } else {
                0
            };
            assert_eq!(
                (seg >> (2 * i)) & 3,
                want,
                "case {case}: start={start} element {i}"
            );
        }
    });
}

/// QBUFFER element writes followed by segment reads behave like a
/// flat array — random values, exhaustively for every element size.
#[test]
fn qbuffer_matches_flat_array() {
    cases(0x5EED_0009, |case, rng| {
        let n = 1 + rng.below(63) as usize;
        let values: Vec<u64> = (0..n).map(|_| rng.below(256)).collect();
        for esiz in 0u64..3 {
            let mut q = QBuffers::new(QzConfig::QZ_8P);
            q.conf(values.len() as u64, values.len() as u64, esiz);
            let esize = EncSize::from_field(esiz).unwrap();
            let mask = match esize {
                EncSize::E2 => 3,
                EncSize::E8 => 0xFF,
                EncSize::E64 => u64::MAX,
            };
            for (i, &v) in values.iter().enumerate() {
                q.buf_mut(0).write_elem(i as u64, v & mask, esize);
            }
            for (i, &v) in values.iter().enumerate() {
                let got = q.buf(0).read_segment(i as u64, esize) & mask;
                assert_eq!(got, v & mask, "case {case}: esiz={esiz} element {i}");
            }
        }
    });
}

/// CIGAR strings round-trip through their text form (random op
/// sequences).
#[test]
fn cigar_display_parse_round_trip() {
    use quetzal_genomics::cigar::CigarOp;
    const OPS: [CigarOp; 4] = [
        CigarOp::Match,
        CigarOp::Mismatch,
        CigarOp::Insertion,
        CigarOp::Deletion,
    ];
    cases(0x5EED_000A, |case, rng| {
        let n = rng.below(50) as usize;
        let cigar: Cigar = (0..n).map(|_| OPS[rng.below(4) as usize]).collect();
        let parsed: Cigar = cigar.to_string().parse().unwrap();
        assert_eq!(parsed, cigar, "case {case}");
    });
}

/// Every DNA sequence of length `0..=max_len` (the exhaustive corpora
/// below enumerate all `sum(4^k) = 341` sequences up to length 4).
fn all_seqs(max_len: usize) -> Vec<Vec<u8>> {
    let mut out = vec![Vec::new()];
    let mut frontier = vec![Vec::new()];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for s in &frontier {
            for &b in b"ACGT" {
                let mut t = s.clone();
                t.push(b);
                out.push(t.clone());
                next.push(t);
            }
        }
        frontier = next;
    }
    out
}

/// Edit distances on an exhaustive sweep of all short sequence pairs:
/// every oracle and the WFA aligner agree on every DNA pair up to
/// length 4 (341² = 116_281 pairs — small enough to enumerate fully).
#[test]
fn distance_oracles_agree_exhaustively_on_short_inputs() {
    let seqs = all_seqs(4);
    for a in &seqs {
        for b in &seqs {
            let d = levenshtein(a, b);
            assert_eq!(myers_distance(a, b), d, "a={} b={}", text(a), text(b));
            let r = wfa_edit_align(a, b);
            assert_eq!(r.score, d, "a={} b={}", text(a), text(b));
            assert!(
                r.cigar.validate(a, b).is_ok(),
                "a={} b={}",
                text(a),
                text(b)
            );
        }
    }
}

/// The full simulated WFA kernel is exact on arbitrary inputs — on
/// both execution engines, which must also retire the same instruction
/// count. Simulated-kernel cases are slower, so fewer run (the ported
/// configuration used 8).
#[test]
fn simulated_wfa_is_exact() {
    let mut rng = SplitMix64::new(0x5EED_000B);
    let mut done = 0;
    while done < 8 {
        let (a, b) = (dna(&mut rng, 60), dna(&mut rng, 60));
        if a.is_empty() || b.is_empty() {
            continue;
        }
        let d = levenshtein(&a, &b) as i64;
        for tier in [Tier::Vec, Tier::QuetzalC] {
            let mut m = Machine::new(MachineConfig::default());
            let out = wfa_sim(&mut m, &a, &b, Alphabet::Dna, tier).unwrap();
            assert_eq!(
                out.value,
                d,
                "case {done} ({tier}): a={} b={}",
                text(&a),
                text(&b)
            );

            let mut mf = Machine::new(MachineConfig::default());
            mf.set_exec_mode(ExecMode::Functional);
            let fun = wfa_sim(&mut mf, &a, &b, Alphabet::Dna, tier).unwrap();
            assert_eq!(
                fun.value,
                d,
                "functional case {done} ({tier}): a={} b={}",
                text(&a),
                text(&b)
            );
            assert_eq!(
                fun.stats.instructions, out.stats.instructions,
                "case {done} ({tier}): engines retired different counts"
            );
            assert_eq!(fun.stats.cycles, 0, "case {done} ({tier})");
        }
        done += 1;
    }
}

/// The functional execution tier validated against the *algorithmic*
/// oracle on the exhaustive short-input space: the simulated WFA kernel
/// run on the compiled tier computes the Levenshtein distance for every
/// non-empty DNA pair up to length 4 (340² = 115_600 pairs). This is an
/// end-to-end independent check — the oracle is host-side DP, not the
/// cycle-level simulator — so a semantics bug shared by both engines
/// would still be caught here.
#[test]
fn functional_tier_is_exact_on_exhaustive_short_inputs() {
    let seqs = all_seqs(4);
    let mut machine = Machine::new(MachineConfig::default());
    for a in &seqs {
        for b in &seqs {
            // The simulated kernel requires non-empty inputs (same
            // precondition `simulated_wfa_is_exact` applies).
            if a.is_empty() || b.is_empty() {
                continue;
            }
            let d = levenshtein(a, b) as i64;
            machine.reset();
            machine.set_exec_mode(ExecMode::Functional);
            let out = wfa_sim(&mut machine, a, b, Alphabet::Dna, Tier::Vec).unwrap();
            assert_eq!(out.value, d, "a={} b={}", text(a), text(b));
        }
    }
}
