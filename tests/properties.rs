//! Property-based tests over the workspace's core invariants.

use proptest::prelude::*;
use quetzal::accel::qbuffer::QBuffers;
use quetzal::accel::QzConfig;
use quetzal::isa::EncSize;
use quetzal::{Machine, MachineConfig};
use quetzal_algos::biwfa::biwfa_edit_align;
use quetzal_algos::nw::nw_align;
use quetzal_algos::dp_sim::LinearCosts;
use quetzal_algos::sneakysnake::ss_filter;
use quetzal_algos::wfa::wfa_edit_align;
use quetzal_algos::wfa_sim::wfa_sim;
use quetzal_algos::Tier;
use quetzal_genomics::cigar::Cigar;
use quetzal_genomics::distance::{banded_levenshtein, gotoh_score, levenshtein, myers_distance};
use quetzal_genomics::packed::Packed2;
use quetzal_genomics::{Alphabet, Seq};

fn dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(b"ACGT".to_vec()), 0..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both exact-distance oracles agree for any input.
    #[test]
    fn myers_equals_dp((a, b) in (dna(150), dna(150))) {
        prop_assert_eq!(myers_distance(&a, &b), levenshtein(&a, &b));
    }

    /// Banded edit distance is exact whenever the band is wide enough.
    #[test]
    fn banded_is_exact_within_threshold((a, b) in (dna(80), dna(80))) {
        let d = levenshtein(&a, &b);
        prop_assert_eq!(banded_levenshtein(&a, &b, d + 1), Some(d));
        if d > 0 {
            prop_assert_eq!(banded_levenshtein(&a, &b, d - 1), None);
        }
    }

    /// WFA is an exact aligner: optimal score, valid optimal transcript.
    #[test]
    fn wfa_is_exact((a, b) in (dna(120), dna(120))) {
        let r = wfa_edit_align(&a, &b);
        prop_assert_eq!(r.score, levenshtein(&a, &b));
        prop_assert!(r.cigar.validate(&a, &b).is_ok());
        prop_assert_eq!(r.cigar.edit_distance(), r.score);
    }

    /// BiWFA computes the same optimal result in O(s) memory.
    #[test]
    fn biwfa_equals_wfa((a, b) in (dna(200), dna(200))) {
        let r = biwfa_edit_align(&a, &b);
        prop_assert_eq!(r.score, levenshtein(&a, &b));
        prop_assert!(r.cigar.validate(&a, &b).is_ok());
    }

    /// NW with unit costs is the Levenshtein distance; its transcript
    /// validates and scores itself consistently.
    #[test]
    fn nw_is_exact((a, b) in (dna(60), dna(60))) {
        let r = nw_align(&a, &b, LinearCosts::UNIT);
        prop_assert_eq!(r.score, levenshtein(&a, &b) as i64);
        prop_assert!(r.cigar.validate(&a, &b).is_ok());
    }

    /// Gotoh with zero open cost reduces to linear-gap DP.
    #[test]
    fn gotoh_linear_gap_consistency((a, b) in (dna(50), dna(50))) {
        use quetzal_genomics::cigar::Penalties;
        let pen = Penalties { mismatch: 1, gap_open: 0, gap_extend: 1 };
        prop_assert_eq!(gotoh_score(&a, &b, pen), levenshtein(&a, &b));
    }

    /// SneakySnake's bound is a true lower bound: rejecting at
    /// threshold E implies the real distance exceeds E.
    #[test]
    fn ss_is_a_lower_bound((a, b) in (dna(100), dna(100)), e in 0u32..8) {
        let v = ss_filter(&a, &b, e);
        if !v.accepted {
            prop_assert!(levenshtein(&a, &b) > e);
        }
    }

    /// 2-bit packing round-trips and the unaligned segment accessor
    /// matches per-base reads.
    #[test]
    fn packed2_round_trip(bytes in dna(200), start in 0usize..200) {
        let seq = Seq::dna(bytes.clone()).unwrap();
        let p = Packed2::from_seq(&seq);
        prop_assert_eq!(p.decode(), seq);
        let seg = p.segment(start.min(bytes.len()));
        for i in 0..32usize {
            let idx = start.min(bytes.len()) + i;
            let want = if idx < bytes.len() { p.get(idx) as u64 } else { 0 };
            prop_assert_eq!((seg >> (2 * i)) & 3, want);
        }
    }

    /// QBUFFER element writes followed by segment reads behave like a
    /// flat array, for every element size.
    #[test]
    fn qbuffer_matches_flat_array(values in proptest::collection::vec(0u64..256, 1..64),
                                  esiz in 0u64..3) {
        let mut q = QBuffers::new(QzConfig::QZ_8P);
        q.conf(values.len() as u64, values.len() as u64, esiz);
        let esize = EncSize::from_field(esiz).unwrap();
        let mask = match esize {
            EncSize::E2 => 3,
            EncSize::E8 => 0xFF,
            EncSize::E64 => u64::MAX,
        };
        for (i, &v) in values.iter().enumerate() {
            q.buf_mut(0).write_elem(i as u64, v & mask, esize);
        }
        for (i, &v) in values.iter().enumerate() {
            let got = q.buf(0).read_segment(i as u64, esize) & mask;
            prop_assert_eq!(got, v & mask, "element {}", i);
        }
    }

    /// CIGAR strings round-trip through their text form.
    #[test]
    fn cigar_display_parse_round_trip(ops in proptest::collection::vec(0u8..4, 0..50)) {
        use quetzal_genomics::cigar::CigarOp;
        let cigar: Cigar = ops
            .iter()
            .map(|&o| [CigarOp::Match, CigarOp::Mismatch, CigarOp::Insertion, CigarOp::Deletion][o as usize])
            .collect();
        let parsed: Cigar = cigar.to_string().parse().unwrap();
        prop_assert_eq!(parsed, cigar);
    }
}

proptest! {
    // Simulated-kernel properties are slower: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The full simulated WFA kernel is exact on arbitrary inputs.
    #[test]
    fn simulated_wfa_is_exact((a, b) in (dna(60), dna(60))) {
        prop_assume!(!a.is_empty() && !b.is_empty());
        let d = levenshtein(&a, &b) as i64;
        for tier in [Tier::Vec, Tier::QuetzalC] {
            let mut m = Machine::new(MachineConfig::default());
            let out = wfa_sim(&mut m, &a, &b, Alphabet::Dna, tier).unwrap();
            prop_assert_eq!(out.value, d);
        }
    }
}
