//! Fault-injection sweep: the machine boundary must turn every
//! adversarial input into a typed [`SimError`] (or a successful run) —
//! never a panic, never a hang.
//!
//! Each case is a pure function of `(seed, case index)` via
//! [`FaultPlan`], so any failure replays exactly from the printed case
//! number. CI runs this sweep in release with debug assertions enabled
//! (`CARGO_PROFILE_RELEASE_DEBUG_ASSERTIONS=true`), so internal
//! invariant checks and integer-overflow panics are live.
//!
//! Environment knobs:
//! - `QUETZAL_FAULT_CASES` — number of cases (default 12 000).
//! - `QUETZAL_FAULT_SEED` — sweep seed (default `0xF4417`).

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use quetzal::{FaultPlan, Machine, MachineConfig, RunStats, SimError};

const DEFAULT_CASES: u64 = 12_000;
const DEFAULT_SEED: u64 = 0xF4417;

/// Staged machines allocate a few KiB (tens of pages at most); a wild
/// store loop sweeping a large stride must exhaust this budget — and
/// surface `MemoryFault` — well before the instruction budget does.
const PAGE_BUDGET: usize = 512;
const INST_BUDGET: u64 = 20_000;
const CYCLE_BUDGET: u64 = 2_000_000;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| {
            if let Some(hex) = v.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()
            } else {
                v.parse().ok()
            }
        })
        .unwrap_or(default)
}

fn variant_name(e: &SimError) -> &'static str {
    match e {
        SimError::InstLimit { .. } => "InstLimit",
        SimError::CycleLimit { .. } => "CycleLimit",
        SimError::InvalidQzConf { .. } => "InvalidQzConf",
        SimError::DecodeError { .. } => "DecodeError",
        SimError::InvalidRegister { .. } => "InvalidRegister",
        SimError::MemoryFault { .. } => "MemoryFault",
        SimError::QBufferIndexOutOfRange { .. } => "QBufferIndexOutOfRange",
    }
}

/// Runs one case; `Err` carries the payload of an escaped panic.
fn run_case(plan: &FaultPlan, case: u64) -> Result<Result<RunStats, SimError>, String> {
    catch_unwind(AssertUnwindSafe(|| {
        let mut machine = Machine::new(MachineConfig::default());
        let (program, _) = plan.stage(case, &mut machine);
        machine
            .core_mut()
            .state_mut()
            .mem
            .set_page_budget(PAGE_BUDGET);
        machine.core_mut().set_budget(INST_BUDGET);
        machine.core_mut().set_cycle_budget(CYCLE_BUDGET);
        machine.run(&program)
    }))
    .map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string())
    })
}

#[test]
fn sweep_never_panics_and_always_terminates() {
    let cases = env_u64("QUETZAL_FAULT_CASES", DEFAULT_CASES);
    let seed = env_u64("QUETZAL_FAULT_SEED", DEFAULT_SEED);
    let plan = FaultPlan::new(seed);

    let mut ok = 0u64;
    let mut errors: BTreeMap<&'static str, u64> = BTreeMap::new();
    for case in 0..cases {
        match run_case(&plan, case) {
            Ok(Ok(_)) => ok += 1,
            Ok(Err(e)) => *errors.entry(variant_name(&e)).or_insert(0) += 1,
            Err(panic_msg) => panic!(
                "case {case} (seed {seed:#x}) escaped the machine boundary \
                 as a panic: {panic_msg}\n\
                 replay with QUETZAL_FAULT_SEED={seed:#x} QUETZAL_FAULT_CASES={}",
                case + 1
            ),
        }
    }

    let faulted: u64 = errors.values().sum();
    eprintln!("fault sweep: {cases} cases, {ok} clean, {faulted} typed errors {errors:?}");
    assert!(ok > 0, "sweep produced no clean runs — generator is broken");
    assert!(
        faulted > 0,
        "sweep produced no faults — mutations are not adversarial"
    );
    assert!(
        errors.len() >= 3,
        "expected >= 3 distinct SimError variants, saw {errors:?}"
    );
}

#[test]
fn sweep_outcomes_are_deterministic() {
    let seed = env_u64("QUETZAL_FAULT_SEED", DEFAULT_SEED);
    let plan = FaultPlan::new(seed);
    let describe = |case: u64| match run_case(&plan, case) {
        Ok(Ok(stats)) => format!("ok cycles={} insts={}", stats.cycles, stats.instructions),
        Ok(Err(e)) => format!("err {e}"),
        Err(p) => format!("panic {p}"),
    };
    for case in 0..200 {
        let first = describe(case);
        let second = describe(case);
        assert_eq!(first, second, "case {case} diverged between runs");
        assert!(!first.starts_with("panic"), "case {case}: {first}");
    }
}
