//! Fault-injection sweep: the machine boundary must turn every
//! adversarial input into a typed [`SimError`] (or a successful run) —
//! never a panic, never a hang.
//!
//! Each case is a pure function of `(seed, case index)` via
//! [`FaultPlan`], so any failure replays exactly from the printed case
//! number. CI runs this sweep in release with debug assertions enabled
//! (`CARGO_PROFILE_RELEASE_DEBUG_ASSERTIONS=true`), so internal
//! invariant checks and integer-overflow panics are live.
//!
//! The sweep doubles as the **differential oracle for `quetzal-verify`**:
//! every mutant program is also run through the static verifier, and
//! [`assert_verdict_consistent`] pins the two directions of its
//! contract against the observed runtime outcome —
//!
//! * *soundness*: a `Clean` verdict forbids the statically decidable
//!   [`SimError`] variants (`DecodeError`, `InvalidRegister`,
//!   `InvalidQzConf`, `QBufferIndexOutOfRange`) from occurring;
//! * *completeness on decidable faults*: when the runtime does raise
//!   one of those variants, the verifier must have flagged that kind
//!   (at the faulting pc, for the pc-precise kinds).
//!
//! Since PR 6 the sweep is additionally the **differential oracle for
//! the compiled functional tier**: every case is replayed on
//! [`ExecMode::Functional`] with the same staging and budgets, and must
//! either match the cycle-level run bit-exactly (retire count plus the
//! complete architectural state) or fail with the *identical* typed
//! [`SimError`]. The only exclusion is `CycleLimit` — a timing budget
//! the clockless tier cannot enforce — and those cases are counted in
//! the sweep summary rather than silently skipped.
//!
//! Environment knobs:
//! - `QUETZAL_FAULT_CASES` — number of cases (default 12 000).
//! - `QUETZAL_FAULT_SEED` — sweep seed (default `0xF4417`).
//! - `QUETZAL_VERIFY_FUZZ_CASES` — random whole programs for the
//!   verifier property fuzz (default 4 000).

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use quetzal::fault::random_instruction;
use quetzal::genomics::rng::SplitMix64;
use quetzal::isa::Instruction;
use quetzal::verify::{self, DiagKind, Verdict};
use quetzal::{ExecMode, FaultPlan, Machine, MachineConfig, Program, RunStats, SimError};

const DEFAULT_CASES: u64 = 12_000;
const DEFAULT_SEED: u64 = 0xF4417;
const DEFAULT_FUZZ_CASES: u64 = 4_000;

/// Staged machines allocate a few KiB (tens of pages at most); a wild
/// store loop sweeping a large stride must exhaust this budget — and
/// surface `MemoryFault` — well before the instruction budget does.
const PAGE_BUDGET: usize = 512;
const INST_BUDGET: u64 = 20_000;
const CYCLE_BUDGET: u64 = 2_000_000;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| {
            if let Some(hex) = v.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()
            } else {
                v.parse().ok()
            }
        })
        .unwrap_or(default)
}

fn variant_name(e: &SimError) -> &'static str {
    match e {
        SimError::InstLimit { .. } => "InstLimit",
        SimError::CycleLimit { .. } => "CycleLimit",
        SimError::InvalidQzConf { .. } => "InvalidQzConf",
        SimError::DecodeError { .. } => "DecodeError",
        SimError::InvalidRegister { .. } => "InvalidRegister",
        SimError::MemoryFault { .. } => "MemoryFault",
        SimError::QBufferIndexOutOfRange { .. } => "QBufferIndexOutOfRange",
    }
}

fn set_budgets(machine: &mut Machine) {
    machine
        .core_mut()
        .state_mut()
        .mem
        .set_page_budget(PAGE_BUDGET);
    machine.core_mut().set_budget(INST_BUDGET);
    machine.core_mut().set_cycle_budget(CYCLE_BUDGET);
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// How one case's functional-tier replay compared against the
/// cycle-level outcome.
enum FunctionalAgreement {
    /// Bit-equal result (same retire count and architectural state) or
    /// the identical typed [`SimError`].
    Match,
    /// The cycle engine raised `CycleLimit` — a *timing* budget the
    /// functional tier has no clock to enforce. These cases are
    /// excluded from the differential (and counted, so the exclusion
    /// stays visible in the sweep summary).
    CycleLimitExcluded,
    /// The engines disagreed; the payload says how.
    Mismatch(String),
}

/// Compares the complete architectural state two machines were left in.
fn arch_state_mismatch(cycle: &Machine, functional: &Machine) -> Option<String> {
    use quetzal::isa::{PReg, VReg, XReg};
    let (c, f) = (cycle.core().state(), functional.core().state());
    for i in 0..quetzal::isa::reg::NUM_XREGS {
        let r = XReg::new(i);
        if c.x(r) != f.x(r) {
            return Some(format!("x{i}: {:#x} vs {:#x}", c.x(r), f.x(r)));
        }
    }
    for i in 0..quetzal::isa::reg::NUM_VREGS {
        let r = VReg::new(i);
        if c.v_lanes64(r) != f.v_lanes64(r) {
            return Some(format!("v{i} lanes diverged"));
        }
    }
    for i in 0..quetzal::isa::reg::NUM_PREGS {
        let r = PReg::new(i);
        if c.p(r) != f.p(r) {
            return Some(format!("p{i}: {:#x} vs {:#x}", c.p(r), f.p(r)));
        }
    }
    if c.mem.resident_pages() != f.mem.resident_pages() {
        return Some(format!(
            "resident pages: {} vs {}",
            c.mem.resident_pages(),
            f.mem.resident_pages()
        ));
    }
    for sel in 0..2 {
        if c.qz.buf(sel).words() != f.qz.buf(sel).words() {
            return Some(format!("qbuffer {sel} diverged"));
        }
    }
    None
}

/// Replays `outcome`'s case on the functional tier (freshly staged
/// machine, same budgets) and classifies the agreement.
fn diff_functional(
    plan: &FaultPlan,
    case: u64,
    cycle_machine: &Machine,
    outcome: &Result<RunStats, SimError>,
) -> FunctionalAgreement {
    if matches!(outcome, Err(SimError::CycleLimit { .. })) {
        return FunctionalAgreement::CycleLimitExcluded;
    }
    let mut machine = Machine::new(MachineConfig::default());
    let (program, _) = plan.stage(case, &mut machine);
    set_budgets(&mut machine);
    machine.set_exec_mode(ExecMode::Functional);
    let functional = machine.run(&program);
    match (outcome, &functional) {
        (Ok(c), Ok(f)) => {
            if c.instructions != f.instructions {
                FunctionalAgreement::Mismatch(format!(
                    "retire counts: cycle {} vs functional {}",
                    c.instructions, f.instructions
                ))
            } else if let Some(diff) = arch_state_mismatch(cycle_machine, &machine) {
                FunctionalAgreement::Mismatch(diff)
            } else {
                FunctionalAgreement::Match
            }
        }
        (Err(ce), Err(fe)) if ce == fe => FunctionalAgreement::Match,
        (c, f) => {
            FunctionalAgreement::Mismatch(format!("outcomes: cycle {c:?} vs functional {f:?}"))
        }
    }
}

/// Runs one case on both execution engines and hands the mutant program
/// back for static cross-validation; `Err` carries the payload of an
/// escaped panic (from either engine).
#[allow(clippy::type_complexity)]
fn run_case(
    plan: &FaultPlan,
    case: u64,
) -> Result<(Program, Result<RunStats, SimError>, FunctionalAgreement), String> {
    catch_unwind(AssertUnwindSafe(|| {
        let mut machine = Machine::new(MachineConfig::default());
        let (program, _) = plan.stage(case, &mut machine);
        set_budgets(&mut machine);
        let outcome = machine.run(&program);
        let agreement = diff_functional(plan, case, &machine, &outcome);
        (program, outcome, agreement)
    }))
    .map_err(panic_text)
}

/// Cross-validates the static verdict on `program` against its runtime
/// outcome. `context` prefixes every assertion message with replay
/// instructions.
///
/// Both directions are checked: a `Clean` verdict must rule out the
/// statically decidable fault variants, and any decidable fault the
/// runtime raised must appear in the report — at the faulting pc for
/// `InvalidRegister` / `InvalidQzConf` / `QBufferIndexOutOfRange`
/// (those are properties of one instruction site), at any pc for
/// `DecodeError` (the runtime reports the out-of-range pc itself, the
/// verifier the instruction that leads there).
///
/// The reverse of soundness is deliberately *not* asserted: a `Fatal`
/// verdict need not fault at runtime, because the poisoned instruction
/// may sit behind a conditional branch the injected inputs never take.
fn assert_verdict_consistent(
    context: &str,
    program: &Program,
    outcome: &Result<RunStats, SimError>,
) -> Verdict {
    let report = verify::verify(program);
    if let Err(e) = outcome {
        let decidable = matches!(
            e,
            SimError::DecodeError { .. }
                | SimError::InvalidRegister { .. }
                | SimError::InvalidQzConf { .. }
                | SimError::QBufferIndexOutOfRange { .. }
        );
        assert!(
            !(report.is_clean() && decidable),
            "{context}: verifier said Clean but runtime raised {e}\n{report}"
        );
        let flagged = match e {
            SimError::DecodeError { .. } => report.has_fatal_kind(DiagKind::DecodeError),
            SimError::InvalidRegister { pc, .. } => {
                report.has_kind_at(DiagKind::InvalidRegister, *pc)
            }
            SimError::InvalidQzConf { pc, .. } => report.has_kind_at(DiagKind::InvalidQzConf, *pc),
            SimError::QBufferIndexOutOfRange { pc, .. } => {
                report.has_kind_at(DiagKind::QBufferIndexOutOfRange, *pc)
            }
            _ => true,
        };
        assert!(
            flagged,
            "{context}: runtime raised {e} but the verifier did not flag it\n{report}"
        );
    }
    report.verdict()
}

#[test]
fn sweep_never_panics_and_always_terminates() {
    let cases = env_u64("QUETZAL_FAULT_CASES", DEFAULT_CASES);
    let seed = env_u64("QUETZAL_FAULT_SEED", DEFAULT_SEED);
    let plan = FaultPlan::new(seed);

    let mut ok = 0u64;
    let mut excluded = 0u64;
    let mut errors: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut verdicts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for case in 0..cases {
        match run_case(&plan, case) {
            Ok((program, outcome, agreement)) => {
                let context = format!(
                    "case {case} (replay with QUETZAL_FAULT_SEED={seed:#x} \
                     QUETZAL_FAULT_CASES={})",
                    case + 1
                );
                match agreement {
                    FunctionalAgreement::Match => {}
                    FunctionalAgreement::CycleLimitExcluded => excluded += 1,
                    FunctionalAgreement::Mismatch(diff) => {
                        panic!("{context}: functional tier diverged: {diff}")
                    }
                }
                let verdict = assert_verdict_consistent(&context, &program, &outcome);
                *verdicts
                    .entry(match verdict {
                        Verdict::Clean => "Clean",
                        Verdict::Warnings => "Warnings",
                        Verdict::Fatal => "Fatal",
                    })
                    .or_insert(0) += 1;
                match outcome {
                    Ok(_) => ok += 1,
                    Err(e) => *errors.entry(variant_name(&e)).or_insert(0) += 1,
                }
            }
            Err(panic_msg) => panic!(
                "case {case} (seed {seed:#x}) escaped the machine boundary \
                 as a panic: {panic_msg}\n\
                 replay with QUETZAL_FAULT_SEED={seed:#x} QUETZAL_FAULT_CASES={}",
                case + 1
            ),
        }
    }

    let faulted: u64 = errors.values().sum();
    eprintln!("fault sweep: {cases} cases, {ok} clean, {faulted} typed errors {errors:?}");
    eprintln!("fault sweep: static verdicts {verdicts:?}");
    eprintln!(
        "fault sweep: functional differential matched {} cases \
         ({excluded} timing-only CycleLimit cases excluded)",
        cases - excluded
    );
    assert!(ok > 0, "sweep produced no clean runs — generator is broken");
    assert!(
        faulted > 0,
        "sweep produced no faults — mutations are not adversarial"
    );
    assert!(
        errors.len() >= 3,
        "expected >= 3 distinct SimError variants, saw {errors:?}"
    );
    assert!(
        verdicts.contains_key("Fatal"),
        "12k adversarial mutants should include statically provable faults, saw {verdicts:?}"
    );
}

#[test]
fn sweep_outcomes_are_deterministic() {
    let seed = env_u64("QUETZAL_FAULT_SEED", DEFAULT_SEED);
    let plan = FaultPlan::new(seed);
    let describe = |case: u64| match run_case(&plan, case) {
        Ok((_, Ok(stats), _)) => format!("ok cycles={} insts={}", stats.cycles, stats.instructions),
        Ok((_, Err(e), _)) => format!("err {e}"),
        Err(p) => format!("panic {p}"),
    };
    for case in 0..200 {
        let first = describe(case);
        let second = describe(case);
        assert_eq!(first, second, "case {case} diverged between runs");
        assert!(!first.starts_with("panic"), "case {case}: {first}");
    }
}

/// Property fuzz for the verifier itself: whole random programs (drawn
/// from the same instruction distribution the sweep mutates with, plus
/// a trailing `Halt` so a straight-line fall-through is well-formed)
/// are verified and then executed. [`assert_verdict_consistent`] pins
/// the same two-directional contract as the sweep — in particular,
/// programs the verifier passes as `Clean` must never raise
/// `DecodeError`, `InvalidRegister`, `InvalidQzConf`, or
/// `QBufferIndexOutOfRange` at runtime.
#[test]
fn verifier_verdicts_match_runtime_on_random_programs() {
    let cases = env_u64("QUETZAL_VERIFY_FUZZ_CASES", DEFAULT_FUZZ_CASES);
    let seed = env_u64("QUETZAL_FAULT_SEED", DEFAULT_SEED);
    let mut verdicts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for case in 0..cases {
        let mut rng = SplitMix64::new(
            seed ^ case
                .wrapping_mul(0xA076_1D64_78BD_642F)
                .wrapping_add(0x5EED),
        );
        let body = 3 + rng.below(13) as usize;
        // Half the corpus gets a prologue defining every architectural
        // register with a small constant. Without it, almost every
        // random program reads an undefined register and lands in
        // `Warnings`; with it, straight-line bodies routinely verify
        // fully `Clean`, which is what makes the soundness direction of
        // the contract non-vacuous. (The prologue constants also feed
        // the verifier's constant propagation, so lane indices, element
        // sizes, and branch bounds in the body become decidable.)
        let mut insts: Vec<Instruction> = Vec::new();
        if rng.chance(0.5) {
            for i in 0..quetzal::isa::reg::NUM_XREGS {
                insts.push(Instruction::MovImm {
                    rd: quetzal::isa::XReg::new(i),
                    imm: rng.i64_in(0, 64),
                });
            }
            for i in 0..quetzal::isa::reg::NUM_VREGS {
                insts.push(Instruction::DupImm {
                    vd: quetzal::isa::VReg::new(i),
                    imm: rng.i64_in(0, 64),
                    esize: quetzal::isa::ElemSize::B64,
                });
            }
            for i in 0..quetzal::isa::reg::NUM_PREGS {
                insts.push(Instruction::PTrue {
                    pd: quetzal::isa::PReg::new(i),
                    esize: quetzal::isa::ElemSize::B64,
                });
            }
        }
        let prologue = insts.len();
        let len = prologue + body + 1;
        // Branch targets are drawn in `[0, 2 * len)`: about half the
        // branchy programs are decode-fatal, the rest exercise real
        // control flow (including jumps back into the prologue).
        insts.extend((0..body).map(|_| random_instruction(&mut rng, len)));
        insts.push(Instruction::Halt);
        let program = Program::from_raw(insts, format!("fuzz-{case}"));

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut machine = Machine::new(MachineConfig::default());
            set_budgets(&mut machine);
            machine.run(&program)
        }))
        .unwrap_or_else(|payload| {
            panic!(
                "fuzz case {case} (seed {seed:#x}) escaped as a panic: {}",
                panic_text(payload)
            )
        });

        let context = format!("fuzz case {case} (seed {seed:#x})");
        let verdict = assert_verdict_consistent(&context, &program, &outcome);
        *verdicts
            .entry(match verdict {
                Verdict::Clean => "Clean",
                Verdict::Warnings => "Warnings",
                Verdict::Fatal => "Fatal",
            })
            .or_insert(0) += 1;
    }
    eprintln!("verifier fuzz: {cases} programs, verdicts {verdicts:?}");
    if cases == DEFAULT_FUZZ_CASES && seed == DEFAULT_SEED {
        // With the default corpus the soundness direction must not be
        // vacuous: some random programs do verify fully Clean.
        assert!(
            verdicts.contains_key("Clean"),
            "no random program verified Clean — soundness check is vacuous: {verdicts:?}"
        );
        assert!(
            verdicts.contains_key("Fatal"),
            "no fatal verdicts: {verdicts:?}"
        );
    }
}
