//! Functional-tier differential oracle.
//!
//! The compiled functional tier (`quetzal::uarch::functional`) promises
//! *bit-identical architectural results* to the cycle-level out-of-order
//! model: same alignment scores, same register and memory outcomes, same
//! retired-instruction counts, same typed [`SimError`]s — it only drops
//! the clock. This suite replays the full Fig. 3 workload grid — every
//! Table II dataset (both alphabets, short and long reads), the three
//! modern algorithms, at the baseline, hand-vectorised and fully
//! accelerated tiers — once per engine, and asserts per-pair equality of
//! the algorithm's value and the complete architectural machine state.
//!
//! The two engines share the decoded micro-op records but *not* the
//! execution path: the interpreter dispatches per instruction while the
//! functional tier runs flat-step-table superblocks with whole-block
//! budget accounting, so agreement here is a genuine differential check
//! of decode, dispatch, predication, control flow, memory and QBUFFER
//! semantics.

use quetzal::isa::{PReg, VReg, XReg};
use quetzal::uarch::{ExecMode, RunStats};
use quetzal::{BatchRunner, Machine, MachineConfig, Probe};
use quetzal_algos::Tier;
use quetzal_bench::workloads::{run_algo_pairs, table2_workloads, try_simulate_pair_outcome, Algo};

/// The replayed grid: the paper's three modern algorithms at every tier
/// the simulator implements.
const ALGOS: [Algo; 3] = [Algo::Wfa, Algo::BiWfa, Algo::Ss];
const TIERS: [Tier; 3] = [Tier::Base, Tier::Vec, Tier::QuetzalC];
const SCALE: f64 = 0.1;

/// Every architectural fact a kernel can leave behind: the algorithm's
/// numeric result, the retired-instruction count, and the full machine
/// state (scalar/vector/predicate registers, touched memory pages,
/// both QBUFFERs).
#[derive(Debug, PartialEq, Eq)]
struct ArchDigest {
    value: i64,
    instructions: u64,
    x: [u64; 32],
    v: [[u64; 8]; 32],
    p: [u64; 8],
    resident_pages: usize,
    qbuf: [Vec<u64>; 2],
}

fn digest<P: Probe>(machine: &Machine<P>, value: i64, instructions: u64) -> ArchDigest {
    let s = machine.core().state();
    ArchDigest {
        value,
        instructions,
        x: std::array::from_fn(|i| s.x(XReg::new(i as u8))),
        v: std::array::from_fn(|i| s.v_lanes64(VReg::new(i as u8))),
        p: std::array::from_fn(|i| s.p(PReg::new(i as u8))),
        resident_pages: s.mem.resident_pages(),
        qbuf: [s.qz.buf(0).words().to_vec(), s.qz.buf(1).words().to_vec()],
    }
}

#[test]
fn functional_tier_matches_cycle_level_on_fig03_grid() {
    let cfg = MachineConfig::default();
    let mut cycle = Machine::new(cfg.clone());
    let mut functional = Machine::new(cfg);
    functional.set_exec_mode(ExecMode::Functional);

    let mut combos = 0;
    for wl in table2_workloads(SCALE) {
        let alphabet = wl.spec.alphabet;
        let threshold = wl.ss_threshold();
        for algo in ALGOS {
            for tier in TIERS {
                combos += 1;
                for (i, pair) in wl.pairs.iter().enumerate() {
                    let label = format!("{algo}/{}/{tier}/pair{i}", wl.spec.name);

                    cycle.reset();
                    let c = try_simulate_pair_outcome(
                        &mut cycle, algo, alphabet, threshold, pair, tier,
                    )
                    .unwrap_or_else(|e| panic!("{label}: cycle engine faulted: {e}"));

                    functional.reset();
                    functional.set_exec_mode(ExecMode::Functional);
                    let f = try_simulate_pair_outcome(
                        &mut functional,
                        algo,
                        alphabet,
                        threshold,
                        pair,
                        tier,
                    )
                    .unwrap_or_else(|e| panic!("{label}: functional engine faulted: {e}"));

                    assert_eq!(
                        digest(&cycle, c.value, c.stats.instructions),
                        digest(&functional, f.value, f.stats.instructions),
                        "{label}: engines left different architectural state"
                    );
                    // The functional tier has no clock: everything but
                    // the retire count must be zero.
                    assert_eq!(
                        f.stats,
                        RunStats {
                            instructions: f.stats.instructions,
                            ..RunStats::default()
                        },
                        "{label}: functional stats must carry no timing"
                    );
                    assert!(c.stats.cycles > 0, "{label}: cycle engine must tick");
                }
            }
        }
    }
    assert_eq!(combos, 4 * ALGOS.len() * TIERS.len());
}

/// The batch runner drives the functional tier deterministically: the
/// per-pair stats are thread-count-invariant and agree with the cycle
/// engine's retire counts pair by pair.
#[test]
fn batched_functional_runs_are_deterministic_and_retire_identically() {
    let cfg = MachineConfig::default();
    let wl = &table2_workloads(SCALE)[0];
    let serial_cycle = BatchRunner::new(1);
    let serial_fn = BatchRunner::new(1).with_exec_mode(ExecMode::Functional);
    let threaded_fn = BatchRunner::new(4).with_exec_mode(ExecMode::Functional);

    for algo in [Algo::Wfa, Algo::Ss] {
        for tier in TIERS {
            let cycle = run_algo_pairs(&serial_cycle, &cfg, algo, wl, tier);
            let f1 = run_algo_pairs(&serial_fn, &cfg, algo, wl, tier);
            let f4 = run_algo_pairs(&threaded_fn, &cfg, algo, wl, tier);
            assert_eq!(f1, f4, "{algo}/{tier}: thread count changed results");
            assert_eq!(cycle.len(), f1.len());
            for (i, (c, f)) in cycle.iter().zip(&f1).enumerate() {
                assert_eq!(
                    c.instructions, f.instructions,
                    "{algo}/{tier}/pair{i}: retire counts diverged"
                );
                assert_eq!(f.cycles, 0, "{algo}/{tier}/pair{i}: functional ticked");
                assert!(f.instructions > 0, "{algo}/{tier}/pair{i}: empty run");
            }
        }
    }
}

/// `Machine::run_functional` is a one-off: it drives the compiled tier
/// without flipping the machine's configured engine, and `reset`
/// restores the cycle-level default after an explicit mode switch.
#[test]
fn exec_mode_selection_round_trips() {
    let mut m = Machine::default();
    assert_eq!(m.exec_mode(), ExecMode::Cycle);
    m.set_exec_mode(ExecMode::Functional);
    assert_eq!(m.exec_mode(), ExecMode::Functional);
    m.reset();
    assert_eq!(m.exec_mode(), ExecMode::Cycle);

    let mut b = quetzal::isa::ProgramBuilder::new();
    b.mov_imm(quetzal::isa::X0, 7).halt();
    let p = b.build().expect("build");
    let executed = m.run_functional(&p).expect("functional run");
    assert_eq!(executed, 2);
    assert_eq!(m.exec_mode(), ExecMode::Cycle, "one-off must not latch");
    let stats = m.run(&p).expect("cycle run");
    assert_eq!(stats.instructions, executed);
    assert!(stats.cycles > 0);
}
