//! Biological alphabets supported by QUETZAL.
//!
//! The paper's data encoder (§IV-A) distinguishes two encodings: a 2-bit
//! encoding for the four-character DNA/RNA alphabets and an 8-bit encoding
//! for proteins (20 amino acids) or nucleotide data containing the
//! ambiguous base `N`.

/// The biological alphabet a sequence is drawn from.
///
/// The alphabet decides which QUETZAL encoding applies: DNA and RNA use
/// the 2-bit packed encoding, proteins fall back to plain 8-bit bytes.
///
/// ```
/// use quetzal_genomics::Alphabet;
/// assert_eq!(Alphabet::Dna.bits_per_symbol(), 2);
/// assert_eq!(Alphabet::Protein.bits_per_symbol(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Alphabet {
    /// Deoxyribonucleic acid: `A`, `C`, `G`, `T`.
    Dna,
    /// Ribonucleic acid: `A`, `C`, `G`, `U`.
    Rna,
    /// The 20 standard amino acids (one-letter codes).
    Protein,
}

/// The 20 standard amino-acid one-letter codes, alphabetically ordered.
pub const AMINO_ACIDS: &[u8; 20] = b"ACDEFGHIKLMNPQRSTVWY";

impl Alphabet {
    /// The symbols of this alphabet, as uppercase ASCII bytes.
    pub fn symbols(self) -> &'static [u8] {
        match self {
            Alphabet::Dna => b"ACGT",
            Alphabet::Rna => b"ACGU",
            Alphabet::Protein => AMINO_ACIDS,
        }
    }

    /// Number of distinct symbols (4 for nucleic acids, 20 for proteins).
    pub fn cardinality(self) -> usize {
        self.symbols().len()
    }

    /// Bits required by QUETZAL's data encoder for one symbol: 2 for
    /// DNA/RNA, 8 for proteins (paper §IV-A).
    pub fn bits_per_symbol(self) -> u32 {
        match self {
            Alphabet::Dna | Alphabet::Rna => 2,
            Alphabet::Protein => 8,
        }
    }

    /// Whether `byte` (uppercase ASCII) is a symbol of this alphabet.
    pub fn contains(self, byte: u8) -> bool {
        self.symbols().contains(&byte)
    }

    /// Watson-Crick complement for nucleic-acid alphabets.
    ///
    /// Returns `None` for [`Alphabet::Protein`] or bytes outside the
    /// alphabet.
    pub fn complement(self, byte: u8) -> Option<u8> {
        match self {
            Alphabet::Dna => match byte {
                b'A' => Some(b'T'),
                b'T' => Some(b'A'),
                b'C' => Some(b'G'),
                b'G' => Some(b'C'),
                _ => None,
            },
            Alphabet::Rna => match byte {
                b'A' => Some(b'U'),
                b'U' => Some(b'A'),
                b'C' => Some(b'G'),
                b'G' => Some(b'C'),
                _ => None,
            },
            Alphabet::Protein => None,
        }
    }
}

impl std::fmt::Display for Alphabet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Alphabet::Dna => "DNA",
            Alphabet::Rna => "RNA",
            Alphabet::Protein => "protein",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_counts() {
        assert_eq!(Alphabet::Dna.cardinality(), 4);
        assert_eq!(Alphabet::Rna.cardinality(), 4);
        assert_eq!(Alphabet::Protein.cardinality(), 20);
    }

    #[test]
    fn dna_complement_is_involutive() {
        for &b in Alphabet::Dna.symbols() {
            let c = Alphabet::Dna.complement(b).unwrap();
            assert_eq!(Alphabet::Dna.complement(c), Some(b));
        }
    }

    #[test]
    fn rna_complement_is_involutive() {
        for &b in Alphabet::Rna.symbols() {
            let c = Alphabet::Rna.complement(b).unwrap();
            assert_eq!(Alphabet::Rna.complement(c), Some(b));
        }
    }

    #[test]
    fn protein_has_no_complement() {
        assert_eq!(Alphabet::Protein.complement(b'A'), None);
    }

    #[test]
    fn membership() {
        assert!(Alphabet::Dna.contains(b'T'));
        assert!(!Alphabet::Dna.contains(b'U'));
        assert!(Alphabet::Rna.contains(b'U'));
        assert!(!Alphabet::Rna.contains(b'T'));
        assert!(Alphabet::Protein.contains(b'W'));
        assert!(!Alphabet::Protein.contains(b'B'));
    }

    #[test]
    fn complement_rejects_foreign_bytes() {
        assert_eq!(Alphabet::Dna.complement(b'N'), None);
        assert_eq!(Alphabet::Rna.complement(b'T'), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(Alphabet::Dna.to_string(), "DNA");
        assert_eq!(Alphabet::Protein.to_string(), "protein");
    }
}
