//! Validated, owned biological sequences.

use crate::alphabet::Alphabet;

/// Error returned when constructing a [`Seq`] from invalid input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqError {
    /// Byte offset of the first offending symbol.
    pub position: usize,
    /// The offending byte.
    pub byte: u8,
    /// The alphabet the sequence was validated against.
    pub alphabet: Alphabet,
}

impl std::fmt::Display for SeqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid {} symbol {:?} at position {}",
            self.alphabet, self.byte as char, self.position
        )
    }
}

impl std::error::Error for SeqError {}

/// An owned, validated biological sequence.
///
/// Every byte is guaranteed to belong to the sequence's [`Alphabet`]
/// (lowercase input is normalised to uppercase during construction).
///
/// ```
/// use quetzal_genomics::{Seq, Alphabet};
///
/// let s = Seq::dna(b"acag")?;
/// assert_eq!(s.as_bytes(), b"ACAG");
/// assert_eq!(s.alphabet(), Alphabet::Dna);
/// assert_eq!(s.reverse_complement().as_bytes(), b"CTGT");
/// # Ok::<(), quetzal_genomics::SeqError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Seq {
    bytes: Vec<u8>,
    alphabet: Alphabet,
}

impl Seq {
    /// Creates a sequence after validating every symbol against
    /// `alphabet`. Lowercase ASCII is accepted and normalised.
    ///
    /// # Errors
    ///
    /// Returns [`SeqError`] describing the first invalid byte.
    pub fn new(bytes: impl Into<Vec<u8>>, alphabet: Alphabet) -> Result<Self, SeqError> {
        let mut bytes = bytes.into();
        for (position, b) in bytes.iter_mut().enumerate() {
            let up = b.to_ascii_uppercase();
            if !alphabet.contains(up) {
                return Err(SeqError {
                    position,
                    byte: *b,
                    alphabet,
                });
            }
            *b = up;
        }
        Ok(Seq { bytes, alphabet })
    }

    /// Convenience constructor for DNA.
    ///
    /// # Errors
    ///
    /// Returns [`SeqError`] if a byte is not one of `ACGT` (any case).
    pub fn dna(bytes: impl Into<Vec<u8>>) -> Result<Self, SeqError> {
        Seq::new(bytes, Alphabet::Dna)
    }

    /// Convenience constructor for RNA.
    ///
    /// # Errors
    ///
    /// Returns [`SeqError`] if a byte is not one of `ACGU` (any case).
    pub fn rna(bytes: impl Into<Vec<u8>>) -> Result<Self, SeqError> {
        Seq::new(bytes, Alphabet::Rna)
    }

    /// Convenience constructor for protein sequences.
    ///
    /// # Errors
    ///
    /// Returns [`SeqError`] if a byte is not a standard amino-acid code.
    pub fn protein(bytes: impl Into<Vec<u8>>) -> Result<Self, SeqError> {
        Seq::new(bytes, Alphabet::Protein)
    }

    /// The sequence contents as uppercase ASCII bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The alphabet this sequence was validated against.
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Extracts `self[start..end]` as a new sequence.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub fn subseq(&self, start: usize, end: usize) -> Seq {
        Seq {
            bytes: self.bytes[start..end].to_vec(),
            alphabet: self.alphabet,
        }
    }

    /// The sequence reversed (3'→5' of the same strand).
    pub fn reversed(&self) -> Seq {
        let mut bytes = self.bytes.clone();
        bytes.reverse();
        Seq {
            bytes,
            alphabet: self.alphabet,
        }
    }

    /// Watson-Crick reverse complement.
    ///
    /// # Panics
    ///
    /// Panics for protein sequences, which have no complement.
    pub fn reverse_complement(&self) -> Seq {
        let bytes = self
            .bytes
            .iter()
            .rev()
            .map(|&b| {
                self.alphabet
                    .complement(b)
                    .expect("protein sequences have no complement")
            })
            .collect();
        Seq {
            bytes,
            alphabet: self.alphabet,
        }
    }

    /// Consumes the sequence and returns the underlying byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

impl AsRef<[u8]> for Seq {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

impl std::fmt::Display for Seq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Sequences are validated ASCII, so this cannot fail.
        f.write_str(std::str::from_utf8(&self.bytes).expect("sequences are ASCII"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalises_case() {
        let s = Seq::dna(b"AcGt").unwrap();
        assert_eq!(s.as_bytes(), b"ACGT");
    }

    #[test]
    fn construction_rejects_invalid() {
        let err = Seq::dna(b"ACGN").unwrap_err();
        assert_eq!(err.position, 3);
        assert_eq!(err.byte, b'N');
        assert!(err.to_string().contains("position 3"));
    }

    #[test]
    fn empty_sequence_is_valid() {
        let s = Seq::dna(b"").unwrap();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn reverse_complement_dna() {
        let s = Seq::dna(b"ACAG").unwrap();
        assert_eq!(s.reverse_complement().as_bytes(), b"CTGT");
    }

    #[test]
    fn reverse_complement_is_involutive() {
        let s = Seq::dna(b"GATTACA").unwrap();
        assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    fn rna_reverse_complement() {
        let s = Seq::rna(b"ACGU").unwrap();
        assert_eq!(s.reverse_complement().as_bytes(), b"ACGU");
    }

    #[test]
    #[should_panic(expected = "no complement")]
    fn protein_reverse_complement_panics() {
        let s = Seq::protein(b"MW").unwrap();
        let _ = s.reverse_complement();
    }

    #[test]
    fn subseq_and_reverse() {
        let s = Seq::dna(b"ACGTAC").unwrap();
        assert_eq!(s.subseq(1, 4).as_bytes(), b"CGT");
        assert_eq!(s.reversed().as_bytes(), b"CATGCA");
    }

    #[test]
    fn display_round_trip() {
        let s = Seq::protein(b"MKWV").unwrap();
        assert_eq!(s.to_string(), "MKWV");
    }
}
