//! Self-contained, seeded pseudo-random number generators.
//!
//! The workspace has a zero-external-dependency policy (it must build
//! hermetically offline), so dataset generation, property tests and the
//! differential interpreter tests all draw their randomness from the
//! two small, well-studied generators in this module:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer. One word of
//!   state, passes BigCrush, and is the standard seeder for the
//!   xoshiro family. The default generator everywhere in this
//!   workspace.
//! * [`Xoshiro256StarStar`] — Blackman & Vigna's xoshiro256**, for
//!   callers that want a longer period (2^256 − 1) or independent
//!   streams via [`Xoshiro256StarStar::jump`].
//!
//! Both are bit-stable across platforms, which is what makes every
//! generated dataset and every experiment table reproducible.

/// Implements the distribution helpers shared by both generators in
/// terms of an inherent `next_u64`.
macro_rules! impl_rng_helpers {
    ($ty:ty) => {
        impl $ty {
            /// Uniform integer in `[0, bound)` (unbiased by rejection).
            ///
            /// # Panics
            ///
            /// Panics if `bound == 0`.
            pub fn below(&mut self, bound: u64) -> u64 {
                assert!(bound > 0, "bound must be positive");
                let zone = u64::MAX - (u64::MAX % bound);
                loop {
                    let v = self.next_u64();
                    if v < zone {
                        return v % bound;
                    }
                }
            }

            /// Uniform float in `[0, 1)`.
            pub fn f64(&mut self) -> f64 {
                (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
            }

            /// Uniform integer in `[lo, hi)` as `i64`.
            ///
            /// # Panics
            ///
            /// Panics if `lo >= hi`.
            pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
                assert!(lo < hi, "empty range");
                lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
            }

            /// A uniformly chosen element of a non-empty slice.
            ///
            /// # Panics
            ///
            /// Panics if `items` is empty.
            pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
                &items[self.below(items.len() as u64) as usize]
            }

            /// `true` with probability `p` (clamped to `[0, 1]`).
            pub fn chance(&mut self, p: f64) -> bool {
                self.f64() < p
            }
        }
    };
}

/// A tiny, high-quality, self-contained PRNG (SplitMix64): one `u64` of
/// state, an additive Weyl sequence through a 64-bit finalising mixer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl_rng_helpers!(SplitMix64);

/// Blackman & Vigna's xoshiro256**: four `u64` of state, period
/// 2^256 − 1, with a `jump` function for 2^128 non-overlapping
/// subsequences. Seeded through [`SplitMix64`], as its authors
/// prescribe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator from a seed (expanded via [`SplitMix64`]).
    pub fn new(seed: u64) -> Xoshiro256StarStar {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Advances the state by 2^128 steps: calling `jump` `n` times on
    /// clones of one seed yields `n` non-overlapping streams (one per
    /// worker shard, for example).
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut acc = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j >> b) & 1 != 0 {
                    for (a, s) in acc.iter_mut().zip(self.s) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl_rng_helpers!(Xoshiro256StarStar);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 0 and seed 1234567, from the public
        // reference implementation (Vigna, splitmix64.c).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn xoshiro_is_deterministic_and_differs_from_splitmix() {
        let mut a = Xoshiro256StarStar::new(42);
        let mut b = Xoshiro256StarStar::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut sm = SplitMix64::new(42);
        assert!(xs.iter().any(|&x| x != sm.next_u64()));
    }

    #[test]
    fn xoshiro_jump_decorrelates_streams() {
        let mut a = Xoshiro256StarStar::new(7);
        let mut b = a.clone();
        b.jump();
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn below_is_in_range_for_both() {
        let mut s = SplitMix64::new(99);
        let mut x = Xoshiro256StarStar::new(99);
        for _ in 0..1000 {
            assert!(s.below(7) < 7);
            assert!(x.below(7) < 7);
        }
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn i64_in_and_pick_cover_their_domains() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.i64_in(-2, 3);
            assert!((-2..3).contains(&v));
            seen[(v + 2) as usize] = true;
            let p = *r.pick(&[10, 20, 30]);
            assert!([10, 20, 30].contains(&p));
        }
        assert!(seen.iter().all(|&s| s), "all values of [-2,3) reached");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        SplitMix64::new(0).below(0);
    }
}
