//! 2-bit nucleotide packing — the software twin of QUETZAL's data encoder.
//!
//! The paper's data encoder (§IV-A, Fig. 9) derives the 2-bit code of a
//! nucleotide by extracting bits 1 and 2 of its ASCII representation:
//!
//! | Base | ASCII      | bits 2..1 | code |
//! |------|------------|-----------|------|
//! | A    | `0100_0001` | `00`     | 0    |
//! | C    | `0100_0011` | `01`     | 1    |
//! | T    | `0101_0100` | `10`     | 2    |
//! | U    | `0101_0101` | `10`     | 2    |
//! | G    | `0100_0111` | `11`     | 3    |
//!
//! This makes hardware encoding a pure wiring operation. The same trick is
//! used here so that the simulator's QBUFFER contents match what the RTL
//! would hold bit-for-bit.

use crate::alphabet::Alphabet;
use crate::sequence::Seq;

/// Number of 2-bit symbols stored per 64-bit word.
pub const BASES_PER_WORD: usize = 32;

/// Encodes one nucleotide byte to its 2-bit code (`(b >> 1) & 3`).
///
/// The input is assumed to be a valid uppercase `A`/`C`/`G`/`T`/`U`; other
/// bytes produce an unspecified (but in-range) code, mirroring the
/// hardware, which performs no validation.
#[inline]
pub fn encode_base(b: u8) -> u8 {
    (b >> 1) & 0b11
}

/// Decodes a 2-bit code back to an ASCII base for the given alphabet.
///
/// # Panics
///
/// Panics if `code > 3` or if `alphabet` is [`Alphabet::Protein`].
pub fn decode_base(code: u8, alphabet: Alphabet) -> u8 {
    let t_or_u = match alphabet {
        Alphabet::Dna => b'T',
        Alphabet::Rna => b'U',
        Alphabet::Protein => panic!("protein symbols are not 2-bit encodable"),
    };
    match code {
        0 => b'A',
        1 => b'C',
        2 => t_or_u,
        3 => b'G',
        _ => panic!("2-bit code out of range: {code}"),
    }
}

/// A nucleotide sequence packed at 2 bits per base, 32 bases per `u64`
/// word, least-significant bits first.
///
/// This is exactly the layout QUETZAL's QBUFFERs hold after `qzencode`,
/// so the [`segment`](Packed2::segment) accessor reproduces what the
/// read-logic module's unaligned slicing (paper Fig. 10) returns.
///
/// ```
/// use quetzal_genomics::{Packed2, Seq};
///
/// let s = Seq::dna(b"ACGT")?;
/// let p = Packed2::from_seq(&s);
/// assert_eq!(p.get(0), 0); // A
/// assert_eq!(p.get(3), 2); // T
/// assert_eq!(p.decode(), s);
/// # Ok::<(), quetzal_genomics::SeqError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Packed2 {
    words: Vec<u64>,
    len: usize,
    alphabet: Alphabet,
}

impl Packed2 {
    /// Packs a DNA/RNA sequence.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is a protein sequence (2-bit encoding only
    /// exists for four-letter alphabets).
    pub fn from_seq(seq: &Seq) -> Self {
        assert_ne!(
            seq.alphabet(),
            Alphabet::Protein,
            "2-bit packing requires a nucleic-acid alphabet"
        );
        Self::from_bytes(seq.as_bytes(), seq.alphabet())
    }

    /// Packs raw uppercase nucleotide bytes without validation.
    pub fn from_bytes(bytes: &[u8], alphabet: Alphabet) -> Self {
        let mut words = vec![0u64; bytes.len().div_ceil(BASES_PER_WORD)];
        for (i, &b) in bytes.iter().enumerate() {
            let code = encode_base(b) as u64;
            words[i / BASES_PER_WORD] |= code << (2 * (i % BASES_PER_WORD));
        }
        Packed2 {
            words,
            len: bytes.len(),
            alphabet,
        }
    }

    /// Number of bases stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bases are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The alphabet the packing was created from.
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// The 2-bit code of base `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> u8 {
        assert!(i < self.len, "base index {i} out of range ({})", self.len);
        ((self.words[i / BASES_PER_WORD] >> (2 * (i % BASES_PER_WORD))) & 0b11) as u8
    }

    /// Returns the 64-bit segment holding the 32 bases starting at element
    /// index `i` (bases past the end read as zero).
    ///
    /// This is the software equivalent of the QBUFFER read logic's
    /// unaligned access: it reads two consecutive words and splices them
    /// at the bit offset (paper Fig. 10, steps 2–5).
    pub fn segment(&self, i: usize) -> u64 {
        let word = i / BASES_PER_WORD;
        let bit = 2 * (i % BASES_PER_WORD);
        let lo = self.words.get(word).copied().unwrap_or(0);
        if bit == 0 {
            lo
        } else {
            let hi = self.words.get(word + 1).copied().unwrap_or(0);
            (lo >> bit) | (hi << (64 - bit))
        }
    }

    /// The underlying packed words (little-endian base order).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// The packed representation as bytes, as it would sit in a QBUFFER.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        self.words.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    /// Decodes back to an ASCII sequence.
    pub fn decode(&self) -> Seq {
        let bytes: Vec<u8> = (0..self.len)
            .map(|i| decode_base(self.get(i), self.alphabet))
            .collect();
        Seq::new(bytes, self.alphabet).expect("decoded bases are always valid")
    }

    /// Iterator over the 2-bit codes.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_matches_paper_table() {
        assert_eq!(encode_base(b'A'), 0);
        assert_eq!(encode_base(b'C'), 1);
        assert_eq!(encode_base(b'T'), 2);
        assert_eq!(encode_base(b'U'), 2);
        assert_eq!(encode_base(b'G'), 3);
    }

    #[test]
    fn decode_round_trip_dna() {
        for &b in b"ACGT" {
            assert_eq!(decode_base(encode_base(b), Alphabet::Dna), b);
        }
    }

    #[test]
    fn decode_round_trip_rna() {
        for &b in b"ACGU" {
            assert_eq!(decode_base(encode_base(b), Alphabet::Rna), b);
        }
    }

    #[test]
    fn pack_unpack_round_trip() {
        let s = Seq::dna(b"ACGTACGTTTGACCA").unwrap();
        let p = Packed2::from_seq(&s);
        assert_eq!(p.len(), 15);
        assert_eq!(p.decode(), s);
    }

    #[test]
    fn segment_aligned_reads_word() {
        // 32 'G's = all-ones word.
        let s = Seq::dna(&b"G".repeat(32)[..]).unwrap();
        let p = Packed2::from_seq(&s);
        assert_eq!(p.segment(0), u64::MAX);
    }

    #[test]
    fn segment_unaligned_splices_words() {
        // 31 'A's then 'C' then 'G': element 31 is C (01), element 32 is G (11).
        let mut v = b"A".repeat(31);
        v.push(b'C');
        v.push(b'G');
        let p = Packed2::from_bytes(&v, Alphabet::Dna);
        let seg = p.segment(31);
        assert_eq!(seg & 0b11, 0b01, "first element of segment is C");
        assert_eq!((seg >> 2) & 0b11, 0b11, "second element is G");
        assert_eq!(seg >> 4, 0, "rest reads as zero past the end");
    }

    #[test]
    fn segment_past_end_is_zero() {
        let p = Packed2::from_bytes(b"AC", Alphabet::Dna);
        assert_eq!(p.segment(2), 0);
        assert_eq!(p.segment(100), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let p = Packed2::from_bytes(b"AC", Alphabet::Dna);
        let _ = p.get(2);
    }

    #[test]
    fn le_bytes_layout() {
        let p = Packed2::from_bytes(b"GAAA", Alphabet::Dna); // G=11 in LSBs
        let bytes = p.to_le_bytes();
        assert_eq!(bytes[0], 0b11);
    }

    #[test]
    fn iter_matches_get() {
        let p = Packed2::from_bytes(b"ACGTTGCA", Alphabet::Dna);
        let via_iter: Vec<u8> = p.iter().collect();
        let via_get: Vec<u8> = (0..p.len()).map(|i| p.get(i)).collect();
        assert_eq!(via_iter, via_get);
    }
}
