//! Genome sequence substrate for the QUETZAL reproduction.
//!
//! This crate provides everything the accelerator framework needs to know
//! about biological sequences, independent of any micro-architecture:
//!
//! * [`Alphabet`] — DNA / RNA / protein alphabets and their properties.
//! * [`Seq`] — validated, owned sequences with the usual genomics helpers
//!   (reverse complement, sub-sequences, …).
//! * [`packed`] — 2-bit packing used by QUETZAL's data encoder
//!   (paper §IV-A): DNA/RNA bases are stored as `(byte >> 1) & 3`.
//! * [`cigar`] — alignment description (CIGAR strings), scoring and
//!   validation.
//! * [`distance`] — exact edit-distance oracles (classic DP, banded
//!   Ukkonen, and Myers' bit-parallel algorithm) used to validate the
//!   accelerated aligners.
//! * [`dataset`] — deterministic read-pair generators reproducing the
//!   paper's Table II datasets (100 bp, 250 bp, 10 Kbp, 30 Kbp) and a
//!   BAliBASE-like protein set.
//! * [`rng`] — seeded, bit-stable in-tree PRNGs (SplitMix64,
//!   xoshiro256**) so nothing in the workspace needs an external
//!   randomness crate.
//! * [`fasta`] — minimal FASTA and pair-file I/O so real data can be used
//!   in place of the generators.
//!
//! # Example
//!
//! ```
//! use quetzal_genomics::Seq;
//! use quetzal_genomics::distance::levenshtein;
//!
//! let a = Seq::dna(b"ACAG")?;
//! let b = Seq::dna(b"AAGT")?;
//! assert_eq!(levenshtein(a.as_bytes(), b.as_bytes()), 2);
//! # Ok::<(), quetzal_genomics::SeqError>(())
//! ```

pub mod alphabet;
pub mod cigar;
pub mod dataset;
pub mod distance;
pub mod fasta;
pub mod packed;
pub mod rng;
pub mod sequence;

pub use alphabet::Alphabet;
pub use cigar::{Cigar, CigarOp};
pub use dataset::{DatasetSpec, ErrorProfile, SeqPair};
pub use packed::Packed2;
pub use sequence::{Seq, SeqError};
