//! Minimal FASTA and pair-file I/O.
//!
//! The generators in [`crate::dataset`] stand in for the paper's input
//! files, but real data can be used instead: plain FASTA for sequence
//! collections and the SneakySnake-style *pair file* (one tab-separated
//! `pattern text` pair per line) for filter/alignment workloads.

use std::io::{self, BufRead, Write};

use crate::alphabet::Alphabet;
use crate::dataset::SeqPair;
use crate::sequence::{Seq, SeqError};

/// A FASTA record: a header line (without `>`) and a sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header text following the `>` marker.
    pub id: String,
    /// The sequence.
    pub seq: Seq,
}

/// Error reading FASTA or pair files.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A sequence contained symbols outside the expected alphabet.
    Seq {
        /// 1-based line number of the offending record.
        line: usize,
        /// The validation failure.
        source: SeqError,
    },
    /// Structural problem (e.g. sequence data before any header).
    Format {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for FastaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "i/o error: {e}"),
            FastaError::Seq { line, source } => write!(f, "line {line}: {source}"),
            FastaError::Format { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for FastaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FastaError::Io(e) => Some(e),
            FastaError::Seq { source, .. } => Some(source),
            FastaError::Format { .. } => None,
        }
    }
}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> Self {
        FastaError::Io(e)
    }
}

/// Reads all records from FASTA-formatted input.
///
/// Multi-line sequences are concatenated; blank lines are ignored.
///
/// # Errors
///
/// Returns [`FastaError`] on I/O failure, on sequence data appearing
/// before the first header, or on symbols outside `alphabet`.
pub fn read_fasta<R: BufRead>(
    reader: R,
    alphabet: Alphabet,
) -> Result<Vec<FastaRecord>, FastaError> {
    let mut records = Vec::new();
    let mut current: Option<(String, Vec<u8>, usize)> = None;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(id) = line.strip_prefix('>') {
            if let Some((id, bytes, start)) = current.take() {
                records.push(FastaRecord {
                    id,
                    seq: Seq::new(bytes, alphabet).map_err(|source| FastaError::Seq {
                        line: start,
                        source,
                    })?,
                });
            }
            current = Some((id.trim().to_string(), Vec::new(), i + 1));
        } else {
            match &mut current {
                Some((_, bytes, _)) => bytes.extend_from_slice(line.as_bytes()),
                None => {
                    return Err(FastaError::Format {
                        line: i + 1,
                        message: "sequence data before first '>' header".into(),
                    })
                }
            }
        }
    }
    if let Some((id, bytes, start)) = current {
        records.push(FastaRecord {
            id,
            seq: Seq::new(bytes, alphabet).map_err(|source| FastaError::Seq {
                line: start,
                source,
            })?,
        });
    }
    Ok(records)
}

/// Writes records as FASTA with 70-column wrapping.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_fasta<W: Write>(mut writer: W, records: &[FastaRecord]) -> io::Result<()> {
    for r in records {
        writeln!(writer, ">{}", r.id)?;
        for chunk in r.seq.as_bytes().chunks(70) {
            writer.write_all(chunk)?;
            writeln!(writer)?;
        }
    }
    Ok(())
}

/// Reads a SneakySnake-style pair file: one `pattern<TAB>text` pair per
/// line (spaces also accepted as the separator).
///
/// # Errors
///
/// Returns [`FastaError`] on I/O failure, missing fields, or invalid
/// symbols.
pub fn read_pairs<R: BufRead>(reader: R, alphabet: Alphabet) -> Result<Vec<SeqPair>, FastaError> {
    let mut pairs = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let (p, t) = match (fields.next(), fields.next()) {
            (Some(p), Some(t)) => (p, t),
            _ => {
                return Err(FastaError::Format {
                    line: i + 1,
                    message: "expected two whitespace-separated sequences".into(),
                })
            }
        };
        let pattern =
            Seq::new(p.as_bytes().to_vec(), alphabet).map_err(|source| FastaError::Seq {
                line: i + 1,
                source,
            })?;
        let text = Seq::new(t.as_bytes().to_vec(), alphabet).map_err(|source| FastaError::Seq {
            line: i + 1,
            source,
        })?;
        pairs.push(SeqPair { pattern, text });
    }
    Ok(pairs)
}

/// Writes pairs in the pair-file format read by [`read_pairs`].
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_pairs<W: Write>(mut writer: W, pairs: &[SeqPair]) -> io::Result<()> {
    for p in pairs {
        writeln!(writer, "{}\t{}", p.pattern, p.text)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fasta_round_trip() {
        let records = vec![
            FastaRecord {
                id: "read1".into(),
                seq: Seq::dna(b"ACGTACGT").unwrap(),
            },
            FastaRecord {
                id: "read2 extra".into(),
                seq: Seq::dna(&b"A".repeat(150)[..]).unwrap(),
            },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records).unwrap();
        let parsed = read_fasta(&buf[..], Alphabet::Dna).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn fasta_multiline_and_blank_lines() {
        let input = b">r1\nACGT\n\nACGT\n>r2\nTTTT\n";
        let recs = read_fasta(&input[..], Alphabet::Dna).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq.as_bytes(), b"ACGTACGT");
    }

    #[test]
    fn fasta_rejects_headerless_data() {
        let err = read_fasta(&b"ACGT\n"[..], Alphabet::Dna).unwrap_err();
        assert!(matches!(err, FastaError::Format { line: 1, .. }));
    }

    #[test]
    fn fasta_rejects_bad_symbols_with_line() {
        let err = read_fasta(&b">r1\nACGN\n"[..], Alphabet::Dna).unwrap_err();
        assert!(matches!(err, FastaError::Seq { line: 1, .. }));
    }

    #[test]
    fn pairs_round_trip() {
        let pairs = vec![SeqPair {
            pattern: Seq::dna(b"ACGT").unwrap(),
            text: Seq::dna(b"AGGT").unwrap(),
        }];
        let mut buf = Vec::new();
        write_pairs(&mut buf, &pairs).unwrap();
        let parsed = read_pairs(&buf[..], Alphabet::Dna).unwrap();
        assert_eq!(parsed, pairs);
    }

    #[test]
    fn pairs_skip_comments_and_blanks() {
        let input = b"# header\n\nACGT\tAGGT\n";
        let pairs = read_pairs(&input[..], Alphabet::Dna).unwrap();
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn pairs_reject_single_field() {
        let err = read_pairs(&b"ACGT\n"[..], Alphabet::Dna).unwrap_err();
        assert!(matches!(err, FastaError::Format { line: 1, .. }));
    }
}
