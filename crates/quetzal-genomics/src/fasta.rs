//! Minimal FASTA and pair-file I/O.
//!
//! The generators in [`crate::dataset`] stand in for the paper's input
//! files, but real data can be used instead: plain FASTA for sequence
//! collections and the SneakySnake-style *pair file* (one tab-separated
//! `pattern text` pair per line) for filter/alignment workloads.

use std::io::{self, BufRead, Write};

use crate::alphabet::Alphabet;
use crate::dataset::SeqPair;
use crate::sequence::{Seq, SeqError};

/// A FASTA record: a header line (without `>`) and a sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header text following the `>` marker.
    pub id: String,
    /// The sequence.
    pub seq: Seq,
}

/// Error reading FASTA or pair files.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A sequence contained symbols outside the expected alphabet.
    Seq {
        /// 1-based line number of the offending record.
        line: usize,
        /// The validation failure.
        source: SeqError,
    },
    /// Structural problem (e.g. sequence data before any header).
    Format {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for FastaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "i/o error: {e}"),
            FastaError::Seq { line, source } => write!(f, "line {line}: {source}"),
            FastaError::Format { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for FastaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FastaError::Io(e) => Some(e),
            FastaError::Seq { source, .. } => Some(source),
            FastaError::Format { .. } => None,
        }
    }
}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> Self {
        FastaError::Io(e)
    }
}

/// Streaming FASTA reader: an iterator of records that holds **one
/// record in memory at a time** — the genome-scale ingestion path
/// feeds shards from this without ever materialising the collection.
///
/// [`read_fasta`] is this iterator collected.
#[derive(Debug)]
pub struct FastaReader<R> {
    reader: R,
    alphabet: Alphabet,
    /// 1-based number of the next line to read.
    line: usize,
    /// Header and start line of the record being accumulated.
    pending: Option<(String, Vec<u8>, usize)>,
    /// A fatal error or EOF was reached; yield nothing further.
    finished: bool,
}

impl<R: BufRead> FastaReader<R> {
    /// Wraps a buffered reader.
    pub fn new(reader: R, alphabet: Alphabet) -> FastaReader<R> {
        FastaReader {
            reader,
            alphabet,
            line: 0,
            pending: None,
            finished: false,
        }
    }

    fn seal(&self, pending: (String, Vec<u8>, usize)) -> Result<FastaRecord, FastaError> {
        let (id, bytes, start) = pending;
        Ok(FastaRecord {
            id,
            seq: Seq::new(bytes, self.alphabet).map_err(|source| FastaError::Seq {
                line: start,
                source,
            })?,
        })
    }
}

impl<R: BufRead> Iterator for FastaReader<R> {
    type Item = Result<FastaRecord, FastaError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        let mut buf = String::new();
        loop {
            buf.clear();
            match self.reader.read_line(&mut buf) {
                Err(e) => {
                    self.finished = true;
                    return Some(Err(FastaError::Io(e)));
                }
                Ok(0) => {
                    self.finished = true;
                    return self.pending.take().map(|p| self.seal(p));
                }
                Ok(_) => {}
            }
            self.line += 1;
            let line = buf.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(id) = line.strip_prefix('>') {
                let sealed = self.pending.take().map(|p| self.seal(p));
                self.pending = Some((id.trim().to_string(), Vec::new(), self.line));
                if let Some(record) = sealed {
                    if record.is_err() {
                        self.finished = true;
                    }
                    return Some(record);
                }
            } else {
                match &mut self.pending {
                    Some((_, bytes, _)) => bytes.extend_from_slice(line.as_bytes()),
                    None => {
                        self.finished = true;
                        return Some(Err(FastaError::Format {
                            line: self.line,
                            message: "sequence data before first '>' header".into(),
                        }));
                    }
                }
            }
        }
    }
}

/// Reads all records from FASTA-formatted input.
///
/// Multi-line sequences are concatenated; blank lines are ignored.
/// This is [`FastaReader`] collected — use the iterator directly when
/// the input may not fit in memory.
///
/// # Errors
///
/// Returns [`FastaError`] on I/O failure, on sequence data appearing
/// before the first header, or on symbols outside `alphabet`.
pub fn read_fasta<R: BufRead>(
    reader: R,
    alphabet: Alphabet,
) -> Result<Vec<FastaRecord>, FastaError> {
    FastaReader::new(reader, alphabet).collect()
}

/// Writes records as FASTA with 70-column wrapping.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_fasta<W: Write>(mut writer: W, records: &[FastaRecord]) -> io::Result<()> {
    for r in records {
        writeln!(writer, ">{}", r.id)?;
        for chunk in r.seq.as_bytes().chunks(70) {
            writer.write_all(chunk)?;
            writeln!(writer)?;
        }
    }
    Ok(())
}

/// Streaming pair-file reader: an iterator of [`SeqPair`]s that holds
/// **one pair in memory at a time**. One `pattern<TAB>text` pair per
/// line (spaces also accepted as the separator); `#` comments and
/// blank lines are skipped.
///
/// [`read_pairs`] is this iterator collected; the crash-safe ingestion
/// pipeline consumes it directly so memory stays bounded by the shard
/// size at any input size.
#[derive(Debug)]
pub struct PairReader<R> {
    reader: R,
    alphabet: Alphabet,
    /// 1-based number of the next line to read.
    line: usize,
    /// A fatal error or EOF was reached; yield nothing further.
    finished: bool,
}

impl<R: BufRead> PairReader<R> {
    /// Wraps a buffered reader.
    pub fn new(reader: R, alphabet: Alphabet) -> PairReader<R> {
        PairReader {
            reader,
            alphabet,
            line: 0,
            finished: false,
        }
    }
}

impl<R: BufRead> Iterator for PairReader<R> {
    type Item = Result<SeqPair, FastaError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        let mut buf = String::new();
        loop {
            buf.clear();
            match self.reader.read_line(&mut buf) {
                Err(e) => {
                    self.finished = true;
                    return Some(Err(FastaError::Io(e)));
                }
                Ok(0) => {
                    self.finished = true;
                    return None;
                }
                Ok(_) => {}
            }
            self.line += 1;
            let line = buf.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split_whitespace();
            let (p, t) = match (fields.next(), fields.next()) {
                (Some(p), Some(t)) => (p, t),
                _ => {
                    self.finished = true;
                    return Some(Err(FastaError::Format {
                        line: self.line,
                        message: "expected two whitespace-separated sequences".into(),
                    }));
                }
            };
            let seq_of = |s: &str| {
                Seq::new(s.as_bytes().to_vec(), self.alphabet).map_err(|source| FastaError::Seq {
                    line: self.line,
                    source,
                })
            };
            let pair =
                seq_of(p).and_then(|pattern| seq_of(t).map(|text| SeqPair { pattern, text }));
            if pair.is_err() {
                self.finished = true;
            }
            return Some(pair);
        }
    }
}

/// Reads a SneakySnake-style pair file: one `pattern<TAB>text` pair per
/// line (spaces also accepted as the separator). This is [`PairReader`]
/// collected — use the iterator directly when the input may not fit in
/// memory.
///
/// # Errors
///
/// Returns [`FastaError`] on I/O failure, missing fields, or invalid
/// symbols.
pub fn read_pairs<R: BufRead>(reader: R, alphabet: Alphabet) -> Result<Vec<SeqPair>, FastaError> {
    PairReader::new(reader, alphabet).collect()
}

/// Writes pairs in the pair-file format read by [`read_pairs`].
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_pairs<W: Write>(mut writer: W, pairs: &[SeqPair]) -> io::Result<()> {
    for p in pairs {
        writeln!(writer, "{}\t{}", p.pattern, p.text)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fasta_round_trip() {
        let records = vec![
            FastaRecord {
                id: "read1".into(),
                seq: Seq::dna(b"ACGTACGT").unwrap(),
            },
            FastaRecord {
                id: "read2 extra".into(),
                seq: Seq::dna(&b"A".repeat(150)[..]).unwrap(),
            },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records).unwrap();
        let parsed = read_fasta(&buf[..], Alphabet::Dna).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn fasta_multiline_and_blank_lines() {
        let input = b">r1\nACGT\n\nACGT\n>r2\nTTTT\n";
        let recs = read_fasta(&input[..], Alphabet::Dna).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq.as_bytes(), b"ACGTACGT");
    }

    #[test]
    fn fasta_rejects_headerless_data() {
        let err = read_fasta(&b"ACGT\n"[..], Alphabet::Dna).unwrap_err();
        assert!(matches!(err, FastaError::Format { line: 1, .. }));
    }

    #[test]
    fn fasta_rejects_bad_symbols_with_line() {
        let err = read_fasta(&b">r1\nACGN\n"[..], Alphabet::Dna).unwrap_err();
        assert!(matches!(err, FastaError::Seq { line: 1, .. }));
    }

    #[test]
    fn pairs_round_trip() {
        let pairs = vec![SeqPair {
            pattern: Seq::dna(b"ACGT").unwrap(),
            text: Seq::dna(b"AGGT").unwrap(),
        }];
        let mut buf = Vec::new();
        write_pairs(&mut buf, &pairs).unwrap();
        let parsed = read_pairs(&buf[..], Alphabet::Dna).unwrap();
        assert_eq!(parsed, pairs);
    }

    #[test]
    fn pairs_skip_comments_and_blanks() {
        let input = b"# header\n\nACGT\tAGGT\n";
        let pairs = read_pairs(&input[..], Alphabet::Dna).unwrap();
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn pairs_reject_single_field() {
        let err = read_pairs(&b"ACGT\n"[..], Alphabet::Dna).unwrap_err();
        assert!(matches!(err, FastaError::Format { line: 1, .. }));
    }

    #[test]
    fn streaming_pair_reader_matches_collected_and_stops_after_error() {
        let input = b"# comment\nACGT\tAGGT\n\nTTTT\tTTAT\nBAD!\tBAD!\nACGT\tACGT\n";
        let collected: Vec<_> = PairReader::new(&input[..], Alphabet::Dna).collect();
        assert_eq!(collected.len(), 3, "iteration fuses after the error");
        assert!(collected[0].is_ok() && collected[1].is_ok());
        assert!(matches!(collected[2], Err(FastaError::Seq { line: 5, .. })));
        let clean = b"ACGT\tAGGT\nTTTT\tTTAT\n";
        let streamed: Vec<SeqPair> = PairReader::new(&clean[..], Alphabet::Dna)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, read_pairs(&clean[..], Alphabet::Dna).unwrap());
    }

    #[test]
    fn streaming_fasta_reader_matches_collected() {
        let input = b">r1\nACGT\nACGT\n>r2\nTTTT\n";
        let streamed: Vec<FastaRecord> = FastaReader::new(&input[..], Alphabet::Dna)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, read_fasta(&input[..], Alphabet::Dna).unwrap());
        // Errors carry the record's start line and fuse the iterator.
        let bad = b">r1\nACGN\n>r2\nTTTT\n";
        let items: Vec<_> = FastaReader::new(&bad[..], Alphabet::Dna).collect();
        assert_eq!(items.len(), 1);
        assert!(matches!(items[0], Err(FastaError::Seq { line: 1, .. })));
    }
}
