//! Deterministic read-pair dataset generators (paper Table II).
//!
//! The paper evaluates four DNA datasets — two short-read sets (100 bp,
//! 250 bp, Illumina-like, from the SneakySnake repository) and two
//! simulated long-read sets (10 Kbp, 30 Kbp, PacBio-HiFi-like) — plus the
//! BAliBASE4 protein collection. We do not have the original files, so
//! this module generates pairs with the same length and error profiles,
//! using a self-contained, seeded PRNG so every experiment is exactly
//! reproducible. Real data can be substituted through [`crate::fasta`].

use crate::alphabet::Alphabet;
use crate::sequence::Seq;

// Re-exported for compatibility: the PRNG grew into its own module when
// the workspace went zero-external-dependency.
pub use crate::rng::SplitMix64;

/// A pattern/text pair to be aligned or filtered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqPair {
    /// The read (query).
    pub pattern: Seq,
    /// The reference segment (target).
    pub text: Seq,
}

/// Relative frequency of each edit type introduced when mutating the
/// text from the pattern. The three fields are weights, not absolute
/// rates; they are normalised internally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorProfile {
    /// Weight of substitutions.
    pub mismatch: f64,
    /// Weight of insertions.
    pub insertion: f64,
    /// Weight of deletions.
    pub deletion: f64,
}

impl ErrorProfile {
    /// Substitution-dominated profile typical of Illumina short reads.
    pub const ILLUMINA: ErrorProfile = ErrorProfile {
        mismatch: 0.8,
        insertion: 0.1,
        deletion: 0.1,
    };

    /// Indel-heavier profile typical of PacBio HiFi long reads.
    pub const HIFI: ErrorProfile = ErrorProfile {
        mismatch: 0.4,
        insertion: 0.3,
        deletion: 0.3,
    };

    /// Uniform profile (used for protein pairs).
    pub const UNIFORM: ErrorProfile = ErrorProfile {
        mismatch: 1.0 / 3.0,
        insertion: 1.0 / 3.0,
        deletion: 1.0 / 3.0,
    };
}

/// Specification of a generated dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Human-readable name used in experiment output (e.g. `100bp_1`).
    pub name: &'static str,
    /// Read (pattern) length in symbols.
    pub read_len: usize,
    /// Number of pairs.
    pub pairs: usize,
    /// Expected fraction of edited positions (e.g. `0.05` = 5 % edits).
    pub edit_rate: f64,
    /// Distribution of edit types.
    pub profile: ErrorProfile,
    /// Sequence alphabet.
    pub alphabet: Alphabet,
}

impl DatasetSpec {
    /// Illumina iSeq100-like short reads (paper dataset `100bp_1`).
    pub fn d100() -> DatasetSpec {
        DatasetSpec {
            name: "100bp_1",
            read_len: 100,
            pairs: 1000,
            edit_rate: 0.04,
            profile: ErrorProfile::ILLUMINA,
            alphabet: Alphabet::Dna,
        }
    }

    /// Illumina NGS-like short reads (paper dataset `250bp_1`).
    pub fn d250() -> DatasetSpec {
        DatasetSpec {
            name: "250bp_1",
            read_len: 250,
            pairs: 1000,
            edit_rate: 0.04,
            profile: ErrorProfile::ILLUMINA,
            alphabet: Alphabet::Dna,
        }
    }

    /// Simulated long reads (paper dataset `10Kbp`), HiFi-like ~2 %
    /// error (the paper generates long datasets following the
    /// SneakySnake methodology at HiFi-representative accuracy).
    pub fn d10k() -> DatasetSpec {
        DatasetSpec {
            name: "10Kbp",
            read_len: 10_000,
            pairs: 100,
            edit_rate: 0.02,
            profile: ErrorProfile::HIFI,
            alphabet: Alphabet::Dna,
        }
    }

    /// Simulated long reads (paper dataset `30Kbp`), same methodology
    /// as [`DatasetSpec::d10k`].
    pub fn d30k() -> DatasetSpec {
        DatasetSpec {
            name: "30Kbp",
            read_len: 30_000,
            pairs: 30,
            edit_rate: 0.02,
            profile: ErrorProfile::HIFI,
            alphabet: Alphabet::Dna,
        }
    }

    /// PacBio-HiFi-like long reads (~1 % error): not one of the paper's
    /// four Table II sets, but representative of the HiFi technology the
    /// paper cites; used by supplementary experiments.
    pub fn d10k_hifi() -> DatasetSpec {
        DatasetSpec {
            name: "10Kbp_hifi",
            read_len: 10_000,
            pairs: 100,
            edit_rate: 0.01,
            profile: ErrorProfile::HIFI,
            alphabet: Alphabet::Dna,
        }
    }

    /// BAliBASE4-like protein pairs: the larger alphabet and higher
    /// divergence than DNA sets reproduce the paper's observation
    /// (§VII-A.4) that protein alignment needs more edits and therefore
    /// more accelerated iterations.
    pub fn protein() -> DatasetSpec {
        DatasetSpec {
            name: "protein",
            read_len: 400,
            pairs: 200,
            edit_rate: 0.10,
            profile: ErrorProfile::UNIFORM,
            alphabet: Alphabet::Protein,
        }
    }

    /// The four DNA datasets of Table II, short to long.
    pub fn table2() -> Vec<DatasetSpec> {
        vec![
            DatasetSpec::d100(),
            DatasetSpec::d250(),
            DatasetSpec::d10k(),
            DatasetSpec::d30k(),
        ]
    }

    /// Whether the read length classifies as a long read (≥ 1 Kbp) in the
    /// paper's short/long split.
    pub fn is_long(&self) -> bool {
        self.read_len >= 1000
    }

    /// Generates the dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Vec<SeqPair> {
        self.generate_n(seed, self.pairs)
    }

    /// Generates `n` pairs (overriding `self.pairs`), deterministically
    /// from `seed`. Experiments use this to scale workload size.
    pub fn generate_n(&self, seed: u64, n: usize) -> Vec<SeqPair> {
        self.pair_stream(seed).take(n).collect()
    }

    /// An unbounded streaming generator of this dataset's pairs: the
    /// same PRNG sequence as [`DatasetSpec::generate_n`] (the first `n`
    /// pairs are identical), but holding one pair in memory at a time —
    /// `qzingest stage` writes genome-scale pair files from this
    /// without materialising them.
    pub fn pair_stream(&self, seed: u64) -> impl Iterator<Item = SeqPair> + '_ {
        let mut rng = SplitMix64::new(seed ^ fnv1a(self.name.as_bytes()));
        std::iter::from_fn(move || {
            let pattern = random_seq(&mut rng, self.read_len, self.alphabet);
            let text = mutate(&mut rng, &pattern, self.edit_rate, self.profile);
            Some(SeqPair { pattern, text })
        })
    }
}

/// Generates a uniformly random sequence of `len` symbols.
pub fn random_seq(rng: &mut SplitMix64, len: usize, alphabet: Alphabet) -> Seq {
    let symbols = alphabet.symbols();
    let bytes: Vec<u8> = (0..len)
        .map(|_| symbols[rng.below(symbols.len() as u64) as usize])
        .collect();
    Seq::new(bytes, alphabet).expect("generated symbols are always valid")
}

/// Applies random edits to `pattern` at an expected per-position rate of
/// `edit_rate`, with edit types drawn from `profile`.
pub fn mutate(rng: &mut SplitMix64, pattern: &Seq, edit_rate: f64, profile: ErrorProfile) -> Seq {
    let symbols = pattern.alphabet().symbols();
    let total = profile.mismatch + profile.insertion + profile.deletion;
    let (p_mm, p_ins) = (profile.mismatch / total, profile.insertion / total);
    let mut out = Vec::with_capacity(pattern.len() + 8);
    for &b in pattern.as_bytes() {
        if rng.f64() < edit_rate {
            let r = rng.f64();
            if r < p_mm {
                // Substitute with a different symbol.
                let mut nb = b;
                while nb == b {
                    nb = symbols[rng.below(symbols.len() as u64) as usize];
                }
                out.push(nb);
            } else if r < p_mm + p_ins {
                // Insert a random symbol before the current one.
                out.push(symbols[rng.below(symbols.len() as u64) as usize]);
                out.push(b);
            }
            // else: deletion — drop the symbol.
        } else {
            out.push(b);
        }
    }
    Seq::new(out, pattern.alphabet()).expect("mutated symbols are always valid")
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::levenshtein;

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::d100();
        let a = spec.generate(42);
        let b = spec.generate(42);
        assert_eq!(a, b);
        let c = spec.generate(43);
        assert_ne!(a, c);
    }

    #[test]
    fn pair_counts_and_lengths() {
        let spec = DatasetSpec::d100();
        let pairs = spec.generate_n(1, 10);
        assert_eq!(pairs.len(), 10);
        for p in &pairs {
            assert_eq!(p.pattern.len(), 100);
            // Indels shift the text length slightly.
            assert!(p.text.len().abs_diff(100) <= 15);
        }
    }

    #[test]
    fn edit_rate_is_roughly_respected() {
        let spec = DatasetSpec::d10k();
        let pairs = spec.generate_n(7, 3);
        for p in &pairs {
            let d = levenshtein(p.pattern.as_bytes(), p.text.as_bytes());
            let rate = d as f64 / p.pattern.len() as f64;
            assert!(
                rate > 0.005 && rate < 0.04,
                "edit rate {rate} far from nominal 0.02"
            );
        }
        let hifi = DatasetSpec::d10k_hifi().generate_n(7, 1);
        let d = levenshtein(hifi[0].pattern.as_bytes(), hifi[0].text.as_bytes());
        let rate = d as f64 / 10_000.0;
        assert!(rate < 0.02, "HiFi rate {rate} should be ~1 %");
    }

    #[test]
    fn protein_pairs_use_protein_alphabet() {
        let pairs = DatasetSpec::protein().generate_n(3, 2);
        for p in &pairs {
            assert_eq!(p.pattern.alphabet(), Alphabet::Protein);
            assert_eq!(p.text.alphabet(), Alphabet::Protein);
        }
    }

    #[test]
    fn table2_order_is_short_to_long() {
        let specs = DatasetSpec::table2();
        let lens: Vec<usize> = specs.iter().map(|s| s.read_len).collect();
        assert_eq!(lens, vec![100, 250, 10_000, 30_000]);
        assert!(!specs[0].is_long());
        assert!(specs[2].is_long());
    }

    #[test]
    fn mutate_zero_rate_is_identity() {
        let mut rng = SplitMix64::new(5);
        let s = random_seq(&mut rng, 200, Alphabet::Dna);
        let t = mutate(&mut rng, &s, 0.0, ErrorProfile::ILLUMINA);
        assert_eq!(s, t);
    }
}
