//! Exact sequence-distance oracles.
//!
//! These implementations favour obviousness over speed (except Myers'
//! bit-parallel algorithm, which is fast *and* independently derived) and
//! serve as the ground truth that every accelerated aligner in the
//! workspace is validated against — the same methodology the paper uses
//! when bit-comparing QUETZAL outputs to baseline outputs (§V-B).

use crate::cigar::Penalties;

/// Unit-cost Levenshtein distance by the classic two-row dynamic program.
///
/// Runs in `O(|a|·|b|)` time and `O(min)` space.
///
/// ```
/// use quetzal_genomics::distance::levenshtein;
/// assert_eq!(levenshtein(b"ACAG", b"AAGT"), 2);
/// assert_eq!(levenshtein(b"", b"AC"), 2);
/// ```
pub fn levenshtein(a: &[u8], b: &[u8]) -> u32 {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut prev: Vec<u32> = (0..=short.len() as u32).collect();
    let mut curr = vec![0u32; short.len() + 1];
    for (i, &lb) in long.iter().enumerate() {
        curr[0] = i as u32 + 1;
        for (j, &sb) in short.iter().enumerate() {
            let sub = prev[j] + u32::from(lb != sb);
            let del = prev[j + 1] + 1;
            let ins = curr[j] + 1;
            curr[j + 1] = sub.min(del).min(ins);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Banded (Ukkonen) edit distance with early exit.
///
/// Returns `Some(d)` if the edit distance is `d <= threshold`, `None`
/// otherwise. This is the *exact* predicate that pre-alignment filters
/// such as SneakySnake approximate from below, so it doubles as their
/// correctness oracle: a filter may only reject a pair when this function
/// returns `None`.
pub fn banded_levenshtein(a: &[u8], b: &[u8], threshold: u32) -> Option<u32> {
    let t = threshold as usize;
    if a.len().abs_diff(b.len()) > t {
        return None;
    }
    // DP over a band of half-width `t` around the main diagonal.
    let width = 2 * t + 1;
    const INF: u32 = u32::MAX / 2;
    // row[k] corresponds to column j = i + (k as isize - t as isize).
    let mut prev = vec![INF; width];
    let mut curr = vec![INF; width];
    // Row i = 0: D[0][j] = j for j in [0, t].
    for (k, cell) in prev.iter_mut().enumerate() {
        let j = k as isize - t as isize;
        if (0..=b.len() as isize).contains(&j) {
            *cell = j as u32;
        }
    }
    for i in 1..=a.len() {
        for k in 0..width {
            let j = i as isize + k as isize - t as isize;
            curr[k] = INF;
            if j < 0 || j > b.len() as isize {
                continue;
            }
            let j = j as usize;
            if j == 0 {
                curr[k] = i as u32;
                continue;
            }
            // Deletion from `a` (move down): same column, previous row -> k+1.
            let del = if k + 1 < width { prev[k + 1] + 1 } else { INF };
            // Insertion (move right): previous column, same row -> k-1.
            let ins = if k > 0 { curr[k - 1] + 1 } else { INF };
            // Substitution/match: previous row and column -> same k.
            let sub = prev[k] + u32::from(a[i - 1] != b[j - 1]);
            curr[k] = del.min(ins).min(sub);
        }
        std::mem::swap(&mut prev, &mut curr);
        if prev.iter().all(|&v| v > threshold) {
            return None;
        }
    }
    // Final cell: row a.len(), column b.len().
    let k = b.len() as isize - a.len() as isize + t as isize;
    let d = prev[k as usize];
    (d <= threshold).then_some(d)
}

/// Myers' bit-parallel edit distance (1999), blocked for arbitrary
/// pattern lengths.
///
/// Computes the same value as [`levenshtein`] in `O(⌈|a|/64⌉·|b|)` time.
/// Having a second, structurally different exact algorithm lets the test
/// suite cross-check the oracles against each other.
pub fn myers_distance(pattern: &[u8], text: &[u8]) -> u32 {
    if pattern.is_empty() {
        return text.len() as u32;
    }
    let blocks = pattern.len().div_ceil(64);
    // Per-block bitmasks of where each byte value occurs in the pattern.
    let mut peq = vec![[0u64; 256]; blocks];
    for (i, &p) in pattern.iter().enumerate() {
        peq[i / 64][p as usize] |= 1 << (i % 64);
    }
    let mut pv = vec![u64::MAX; blocks];
    let mut mv = vec![0u64; blocks];
    let mut score = pattern.len() as u32;
    let last = blocks - 1;
    let last_bit = 1u64 << ((pattern.len() - 1) % 64);

    for &t in text {
        // Global alignment: the top boundary row costs, so a +1 horizontal
        // delta enters the first block of every column.
        let mut ph_in = 1u64;
        let mut mh_in = 0u64;
        for b in 0..blocks {
            let eq = peq[b][t as usize];
            let pvb = pv[b];
            let mvb = mv[b];
            let xv = eq | mvb;
            // Fold the incoming negative horizontal delta into Eq
            // (Hyyrö's blocked formulation).
            let eq2 = eq | mh_in;
            let xh = (((eq2 & pvb).wrapping_add(pvb)) ^ pvb) | eq2;
            let mut ph = mvb | !(xh | pvb);
            let mut mh = pvb & xh;
            if b == last {
                // Score delta at the true last pattern row, read before the
                // shift (bits above `last_bit` are padding and never feed
                // back down because addition carries only move upward).
                if ph & last_bit != 0 {
                    score += 1;
                }
                if mh & last_bit != 0 {
                    score -= 1;
                }
            }
            // Propagate the horizontal deltas to the next block.
            let ph_out = ph >> 63;
            let mh_out = mh >> 63;
            ph = (ph << 1) | ph_in;
            mh = (mh << 1) | mh_in;
            pv[b] = mh | !(xv | ph);
            mv[b] = ph & xv;
            ph_in = ph_out;
            mh_in = mh_out;
        }
    }
    score
}

/// Full-matrix Gotoh (gap-affine) alignment score, score only.
///
/// This is the optimal-score oracle for the gap-affine aligners (WFA,
/// BiWFA, banded SWG): any exact aligner must report exactly this score.
/// Matches score 0; all penalties are costs (lower is better).
pub fn gotoh_score(a: &[u8], b: &[u8], p: Penalties) -> u32 {
    const INF: u32 = u32::MAX / 4;
    let n = b.len();
    // M: best score ending in match/mismatch; I: gap in text (consuming a);
    // D: gap in pattern (consuming b). Rolling rows over `a`.
    let mut m_prev = vec![INF; n + 1];
    let mut i_prev = vec![INF; n + 1];
    let mut d_prev = vec![INF; n + 1];
    m_prev[0] = 0;
    for (j, cell) in d_prev.iter_mut().enumerate().skip(1) {
        *cell = p.gap_open + j as u32 * p.gap_extend;
    }
    let mut m_curr = vec![INF; n + 1];
    let mut i_curr = vec![INF; n + 1];
    let mut d_curr = vec![INF; n + 1];
    for i in 1..=a.len() {
        m_curr[0] = INF;
        d_curr[0] = INF;
        i_curr[0] = p.gap_open + i as u32 * p.gap_extend;
        for j in 1..=n {
            let best_prev_diag = m_prev[j - 1].min(i_prev[j - 1]).min(d_prev[j - 1]);
            let sub_cost = if a[i - 1] == b[j - 1] { 0 } else { p.mismatch };
            m_curr[j] = best_prev_diag.saturating_add(sub_cost);
            i_curr[j] = (m_prev[j].saturating_add(p.gap_open + p.gap_extend))
                .min(i_prev[j].saturating_add(p.gap_extend))
                .min(d_prev[j].saturating_add(p.gap_open + p.gap_extend));
            d_curr[j] = (m_curr[j - 1].saturating_add(p.gap_open + p.gap_extend))
                .min(d_curr[j - 1].saturating_add(p.gap_extend))
                .min(i_curr[j - 1].saturating_add(p.gap_open + p.gap_extend));
        }
        std::mem::swap(&mut m_prev, &mut m_curr);
        std::mem::swap(&mut i_prev, &mut i_curr);
        std::mem::swap(&mut d_prev, &mut d_curr);
    }
    m_prev[n].min(i_prev[n]).min(d_prev[n])
}

/// Longest common prefix of two byte slices — the scalar reference for
/// QUETZAL's `qzcount` primitive and for WFA's `extend` step.
#[inline]
pub fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein(b"", b""), 0);
        assert_eq!(levenshtein(b"ABC", b"ABC"), 0);
        assert_eq!(levenshtein(b"ABC", b""), 3);
        assert_eq!(levenshtein(b"kitten", b"sitting"), 3);
        assert_eq!(levenshtein(b"ACAG", b"AAGT"), 2);
    }

    #[test]
    fn levenshtein_is_symmetric() {
        assert_eq!(
            levenshtein(b"GATTACA", b"GCAT"),
            levenshtein(b"GCAT", b"GATTACA")
        );
    }

    #[test]
    fn banded_matches_full_when_within_threshold() {
        let a = b"ACGTACGTAC";
        let b = b"ACGAACGTTC";
        let d = levenshtein(a, b);
        assert_eq!(banded_levenshtein(a, b, d), Some(d));
        assert_eq!(banded_levenshtein(a, b, d + 3), Some(d));
    }

    #[test]
    fn banded_rejects_beyond_threshold() {
        assert_eq!(banded_levenshtein(b"AAAA", b"TTTT", 3), None);
        assert_eq!(banded_levenshtein(b"AAAA", b"TTTT", 4), Some(4));
    }

    #[test]
    fn banded_length_difference_shortcut() {
        assert_eq!(banded_levenshtein(b"A", b"AAAAA", 2), None);
        assert_eq!(banded_levenshtein(b"A", b"AAAAA", 4), Some(4));
    }

    #[test]
    fn banded_empty_inputs() {
        assert_eq!(banded_levenshtein(b"", b"", 0), Some(0));
        assert_eq!(banded_levenshtein(b"", b"AB", 2), Some(2));
        assert_eq!(banded_levenshtein(b"", b"AB", 1), None);
    }

    #[test]
    fn myers_matches_dp_small() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"", b""),
            (b"A", b""),
            (b"", b"A"),
            (b"ACAG", b"AAGT"),
            (b"kitten", b"sitting"),
            (b"GATTACA", b"GCATGCU"),
        ];
        for &(a, b) in cases {
            assert_eq!(myers_distance(a, b), levenshtein(a, b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn myers_matches_dp_across_block_boundary() {
        // Patterns of length 63, 64, 65, 130 exercise the blocked carry.
        for len in [63usize, 64, 65, 130] {
            let a: Vec<u8> = (0..len).map(|i| b"ACGT"[i % 4]).collect();
            let mut b = a.clone();
            b[len / 2] = b'A';
            b.insert(len / 3, b'G');
            b.remove(2 * len / 3);
            assert_eq!(myers_distance(&a, &b), levenshtein(&a, &b), "len {len}");
        }
    }

    #[test]
    fn gotoh_zero_for_identical() {
        assert_eq!(gotoh_score(b"ACGT", b"ACGT", Penalties::AFFINE_DEFAULT), 0);
    }

    #[test]
    fn gotoh_single_gap_vs_two_gaps() {
        let p = Penalties::AFFINE_DEFAULT;
        // One gap of length 2 costs o + 2e = 10.
        assert_eq!(gotoh_score(b"ACGT", b"ACGTTT", p), 10);
        // Single mismatch costs 4.
        assert_eq!(gotoh_score(b"ACGT", b"AGGT", p), 4);
    }

    #[test]
    fn gotoh_with_edit_penalties_equals_levenshtein() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"ACAG", b"AAGT"),
            (b"kitten", b"sitting"),
            (b"", b"ABC"),
            (b"GGGG", b"GGGG"),
        ];
        for &(a, b) in cases {
            assert_eq!(
                gotoh_score(a, b, Penalties::EDIT),
                levenshtein(a, b),
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn common_prefix() {
        assert_eq!(common_prefix_len(b"ACGT", b"ACGA"), 3);
        assert_eq!(common_prefix_len(b"ACGT", b"ACGT"), 4);
        assert_eq!(common_prefix_len(b"", b"ACGT"), 0);
        assert_eq!(common_prefix_len(b"T", b"A"), 0);
    }
}
