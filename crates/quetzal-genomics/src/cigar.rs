//! Alignment descriptions (CIGAR strings), scoring and validation.
//!
//! All aligners in this reproduction report their result as a [`Cigar`],
//! which can be validated against the input pair and scored under both
//! unit-cost edit distance and gap-affine penalties. This mirrors the
//! paper's methodology of bit-wise comparing accelerated outputs against
//! baseline outputs (§V-B).

/// One alignment operation, in the extended (match/mismatch
/// distinguishing) CIGAR alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CigarOp {
    /// Pattern symbol equals text symbol (`=` / `M`).
    Match,
    /// Pattern symbol differs from text symbol (`X`).
    Mismatch,
    /// Symbol present in the pattern but not the text (`I`).
    Insertion,
    /// Symbol present in the text but not the pattern (`D`).
    Deletion,
}

impl CigarOp {
    /// The single-character code used in extended CIGAR strings.
    pub fn code(self) -> char {
        match self {
            CigarOp::Match => '=',
            CigarOp::Mismatch => 'X',
            CigarOp::Insertion => 'I',
            CigarOp::Deletion => 'D',
        }
    }

    /// Parses a CIGAR operation character (`=`, `M`, `X`, `I`, `D`).
    pub fn from_code(c: char) -> Option<CigarOp> {
        match c {
            '=' | 'M' => Some(CigarOp::Match),
            'X' => Some(CigarOp::Mismatch),
            'I' => Some(CigarOp::Insertion),
            'D' => Some(CigarOp::Deletion),
            _ => None,
        }
    }

    /// How many pattern symbols this operation consumes (0 or 1).
    pub fn pattern_advance(self) -> usize {
        match self {
            CigarOp::Match | CigarOp::Mismatch | CigarOp::Insertion => 1,
            CigarOp::Deletion => 0,
        }
    }

    /// How many text symbols this operation consumes (0 or 1).
    pub fn text_advance(self) -> usize {
        match self {
            CigarOp::Match | CigarOp::Mismatch | CigarOp::Deletion => 1,
            CigarOp::Insertion => 0,
        }
    }
}

/// Gap-affine scoring penalties (all non-negative; lower score is better).
///
/// A gap of length `l` costs `gap_open + l * gap_extend`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Penalties {
    /// Cost of a mismatch.
    pub mismatch: u32,
    /// Cost of opening a gap.
    pub gap_open: u32,
    /// Cost of extending a gap by one symbol.
    pub gap_extend: u32,
}

impl Penalties {
    /// Unit-cost edit distance: mismatch 1, open 0, extend 1.
    pub const EDIT: Penalties = Penalties {
        mismatch: 1,
        gap_open: 0,
        gap_extend: 1,
    };

    /// The default gap-affine setting used by the WFA paper (x=4, o=6, e=2).
    pub const AFFINE_DEFAULT: Penalties = Penalties {
        mismatch: 4,
        gap_open: 6,
        gap_extend: 2,
    };
}

impl Default for Penalties {
    fn default() -> Self {
        Penalties::EDIT
    }
}

/// A run-length encoded alignment.
///
/// ```
/// use quetzal_genomics::{Cigar, CigarOp};
///
/// let c: Cigar = [CigarOp::Match, CigarOp::Match, CigarOp::Mismatch, CigarOp::Insertion]
///     .into_iter()
///     .collect();
/// assert_eq!(c.to_string(), "2=1X1I");
/// assert_eq!(c.edit_distance(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Cigar {
    runs: Vec<(u32, CigarOp)>,
}

impl Cigar {
    /// An empty alignment.
    pub fn new() -> Cigar {
        Cigar::default()
    }

    /// Appends one operation, merging with the trailing run if equal.
    pub fn push(&mut self, op: CigarOp) {
        self.push_run(1, op);
    }

    /// Appends `count` copies of `op` (no-op when `count == 0`).
    pub fn push_run(&mut self, count: u32, op: CigarOp) {
        if count == 0 {
            return;
        }
        match self.runs.last_mut() {
            Some((n, last)) if *last == op => *n += count,
            _ => self.runs.push((count, op)),
        }
    }

    /// The run-length encoded operations.
    pub fn runs(&self) -> &[(u32, CigarOp)] {
        &self.runs
    }

    /// Iterator over individual operations (runs expanded).
    pub fn iter(&self) -> impl Iterator<Item = CigarOp> + '_ {
        self.runs
            .iter()
            .flat_map(|&(n, op)| std::iter::repeat_n(op, n as usize))
    }

    /// Total number of operations (runs expanded).
    pub fn len(&self) -> usize {
        self.runs.iter().map(|&(n, _)| n as usize).sum()
    }

    /// Whether the alignment contains no operations.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Reverses the alignment in place (used by traceback routines that
    /// collect operations back-to-front).
    pub fn reverse(&mut self) {
        self.runs.reverse();
        // Merge runs that became adjacent after the reversal.
        let mut merged: Vec<(u32, CigarOp)> = Vec::with_capacity(self.runs.len());
        for &(n, op) in &self.runs {
            match merged.last_mut() {
                Some((m, last)) if *last == op => *m += n,
                _ => merged.push((n, op)),
            }
        }
        self.runs = merged;
    }

    /// Concatenates another alignment after this one.
    pub fn extend_from(&mut self, other: &Cigar) {
        for &(n, op) in &other.runs {
            self.push_run(n, op);
        }
    }

    /// Number of pattern symbols consumed.
    pub fn pattern_len(&self) -> usize {
        self.runs
            .iter()
            .map(|&(n, op)| n as usize * op.pattern_advance())
            .sum()
    }

    /// Number of text symbols consumed.
    pub fn text_len(&self) -> usize {
        self.runs
            .iter()
            .map(|&(n, op)| n as usize * op.text_advance())
            .sum()
    }

    /// Unit-cost edit distance implied by the alignment (mismatches +
    /// insertions + deletions).
    pub fn edit_distance(&self) -> u32 {
        self.runs
            .iter()
            .map(|&(n, op)| if op == CigarOp::Match { 0 } else { n })
            .sum()
    }

    /// Gap-affine score of the alignment under `p`.
    pub fn score(&self, p: Penalties) -> u32 {
        let mut score = 0;
        for &(n, op) in &self.runs {
            score += match op {
                CigarOp::Match => 0,
                CigarOp::Mismatch => n * p.mismatch,
                CigarOp::Insertion | CigarOp::Deletion => p.gap_open + n * p.gap_extend,
            };
        }
        score
    }

    /// Checks that the alignment is a valid transcript of `pattern` into
    /// `text`: consumes both exactly, and match/mismatch operations agree
    /// with the actual symbols.
    pub fn validate(&self, pattern: &[u8], text: &[u8]) -> Result<(), CigarValidationError> {
        let mut pi = 0;
        let mut ti = 0;
        for op in self.iter() {
            match op {
                CigarOp::Match | CigarOp::Mismatch => {
                    let (pb, tb) = match (pattern.get(pi), text.get(ti)) {
                        (Some(&p), Some(&t)) => (p, t),
                        _ => return Err(CigarValidationError::Overrun { pi, ti }),
                    };
                    let is_match = pb == tb;
                    if is_match != (op == CigarOp::Match) {
                        return Err(CigarValidationError::WrongOp { pi, ti, op });
                    }
                    pi += 1;
                    ti += 1;
                }
                CigarOp::Insertion => {
                    if pi >= pattern.len() {
                        return Err(CigarValidationError::Overrun { pi, ti });
                    }
                    pi += 1;
                }
                CigarOp::Deletion => {
                    if ti >= text.len() {
                        return Err(CigarValidationError::Overrun { pi, ti });
                    }
                    ti += 1;
                }
            }
        }
        if pi != pattern.len() || ti != text.len() {
            return Err(CigarValidationError::Underrun {
                pattern_left: pattern.len() - pi,
                text_left: text.len() - ti,
            });
        }
        Ok(())
    }
}

impl FromIterator<CigarOp> for Cigar {
    fn from_iter<T: IntoIterator<Item = CigarOp>>(iter: T) -> Self {
        let mut c = Cigar::new();
        for op in iter {
            c.push(op);
        }
        c
    }
}

impl Extend<CigarOp> for Cigar {
    fn extend<T: IntoIterator<Item = CigarOp>>(&mut self, iter: T) {
        for op in iter {
            self.push(op);
        }
    }
}

impl std::fmt::Display for Cigar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for &(n, op) in &self.runs {
            write!(f, "{}{}", n, op.code())?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Cigar {
    type Err = ParseCigarError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut cigar = Cigar::new();
        let mut count: Option<u32> = None;
        for (i, c) in s.chars().enumerate() {
            if let Some(d) = c.to_digit(10) {
                count = Some(count.unwrap_or(0).saturating_mul(10).saturating_add(d));
            } else if let Some(op) = CigarOp::from_code(c) {
                let n = count.take().ok_or(ParseCigarError { position: i })?;
                cigar.push_run(n, op);
            } else {
                return Err(ParseCigarError { position: i });
            }
        }
        if count.is_some() {
            return Err(ParseCigarError { position: s.len() });
        }
        Ok(cigar)
    }
}

/// Error parsing a CIGAR string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseCigarError {
    /// Character offset of the syntax error.
    pub position: usize,
}

impl std::fmt::Display for ParseCigarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid CIGAR syntax at offset {}", self.position)
    }
}

impl std::error::Error for ParseCigarError {}

/// Error describing why a CIGAR is not a valid transcript of a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CigarValidationError {
    /// The alignment consumed more symbols than available.
    Overrun {
        /// Pattern position when the overrun occurred.
        pi: usize,
        /// Text position when the overrun occurred.
        ti: usize,
    },
    /// The alignment ended before consuming both sequences.
    Underrun {
        /// Unconsumed pattern symbols.
        pattern_left: usize,
        /// Unconsumed text symbols.
        text_left: usize,
    },
    /// A match/mismatch op contradicts the actual symbols.
    WrongOp {
        /// Pattern position of the contradiction.
        pi: usize,
        /// Text position of the contradiction.
        ti: usize,
        /// The operation that was recorded.
        op: CigarOp,
    },
}

impl std::fmt::Display for CigarValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CigarValidationError::Overrun { pi, ti } => {
                write!(f, "alignment overruns inputs at pattern {pi}, text {ti}")
            }
            CigarValidationError::Underrun {
                pattern_left,
                text_left,
            } => write!(
                f,
                "alignment leaves {pattern_left} pattern and {text_left} text symbols unconsumed"
            ),
            CigarValidationError::WrongOp { pi, ti, op } => write!(
                f,
                "operation {:?} contradicts symbols at pattern {pi}, text {ti}",
                op
            ),
        }
    }
}

impl std::error::Error for CigarValidationError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn cigar(s: &str) -> Cigar {
        s.parse().unwrap()
    }

    #[test]
    fn push_merges_runs() {
        let mut c = Cigar::new();
        c.push(CigarOp::Match);
        c.push(CigarOp::Match);
        c.push(CigarOp::Mismatch);
        assert_eq!(c.runs(), &[(2, CigarOp::Match), (1, CigarOp::Mismatch)]);
    }

    #[test]
    fn push_run_zero_is_noop() {
        let mut c = Cigar::new();
        c.push_run(0, CigarOp::Match);
        assert!(c.is_empty());
    }

    #[test]
    fn display_and_parse_round_trip() {
        let c = cigar("3=1X2I4D");
        assert_eq!(c.to_string(), "3=1X2I4D");
        assert_eq!(c.len(), 10);
    }

    #[test]
    fn parse_accepts_m_for_match() {
        assert_eq!(cigar("2M"), cigar("2="));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("3Q".parse::<Cigar>().is_err());
        assert!("=".parse::<Cigar>().is_err());
        assert!("12".parse::<Cigar>().is_err());
    }

    #[test]
    fn edit_distance_counts_non_matches() {
        assert_eq!(cigar("5=").edit_distance(), 0);
        assert_eq!(cigar("2=1X1I1D").edit_distance(), 3);
    }

    #[test]
    fn affine_score_charges_open_once_per_gap() {
        let p = Penalties::AFFINE_DEFAULT;
        assert_eq!(cigar("3I").score(p), 6 + 3 * 2);
        assert_eq!(cigar("1I2=1I").score(p), 2 * (6 + 2));
        assert_eq!(cigar("2X").score(p), 8);
    }

    #[test]
    fn validate_accepts_correct_transcript() {
        // ACAG -> AAGT: one deletion-free transcript is 1=1X1=1X? Check a
        // known-valid one instead: A C A G / A A G T via 1=1X1X1X.
        let c = cigar("1=1X1X1X");
        assert!(c.validate(b"ACAG", b"AAGT").is_ok());
    }

    #[test]
    fn validate_rejects_wrong_match() {
        let c = cigar("4=");
        assert!(matches!(
            c.validate(b"ACAG", b"AAGT"),
            Err(CigarValidationError::WrongOp { .. })
        ));
    }

    #[test]
    fn validate_rejects_underrun_and_overrun() {
        assert!(matches!(
            cigar("1=").validate(b"AC", b"AC"),
            Err(CigarValidationError::Underrun { .. })
        ));
        assert!(matches!(
            cigar("3=").validate(b"AC", b"AC"),
            Err(CigarValidationError::Overrun { .. })
        ));
    }

    #[test]
    fn validate_indels() {
        // pattern AC, text AGC: A matches, G deleted (text-only), C matches.
        let c = cigar("1=1D1=");
        assert!(c.validate(b"AC", b"AGC").is_ok());
        assert_eq!(c.pattern_len(), 2);
        assert_eq!(c.text_len(), 3);
    }

    #[test]
    fn reverse_merges_adjacent_runs() {
        let mut c = cigar("2=1X2=");
        c.reverse();
        assert_eq!(c.to_string(), "2=1X2=");
        let mut c = cigar("1I2=");
        c.reverse();
        assert_eq!(c.to_string(), "2=1I");
    }

    #[test]
    fn collect_from_iterator() {
        let c: Cigar = [CigarOp::Match; 3].into_iter().collect();
        assert_eq!(c.to_string(), "3=");
    }
}
