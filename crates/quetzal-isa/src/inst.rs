//! Instruction definitions, operand extraction and disassembly.

use crate::reg::{PReg, Reg, VReg, XReg};
use crate::types::{ElemSize, MemSize, QBufSel};

/// Scalar ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SAluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (longer latency).
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Set to 1 if `a < b` (signed), else 0.
    SetLt,
    /// Set to 1 if `a == b`, else 0.
    SetEq,
}

impl SAluOp {
    /// The architectural semantics of the operation on two 64-bit
    /// register values (wrapping arithmetic, 6-bit shift amounts,
    /// signed comparisons).
    ///
    /// This is the single definition shared by the simulator's
    /// interpreter and the static verifier's constant propagation —
    /// keeping them one routine is what makes a verifier-proven
    /// constant trustworthy at runtime.
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            SAluOp::Add => a.wrapping_add(b),
            SAluOp::Sub => a.wrapping_sub(b),
            SAluOp::Mul => a.wrapping_mul(b),
            SAluOp::And => a & b,
            SAluOp::Or => a | b,
            SAluOp::Xor => a ^ b,
            SAluOp::Shl => a.wrapping_shl(b as u32 & 63),
            SAluOp::Shr => a.wrapping_shr(b as u32 & 63),
            SAluOp::Sar => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
            SAluOp::Min => (a as i64).min(b as i64) as u64,
            SAluOp::Max => (a as i64).max(b as i64) as u64,
            SAluOp::SetLt => u64::from((a as i64) < (b as i64)),
            SAluOp::SetEq => u64::from(a == b),
        }
    }
}

/// Vector ALU operation (elementwise, predicated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VAluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Signed minimum.
    Smin,
    /// Signed maximum.
    Smax,
    /// Logical shift left by per-element amount.
    Shl,
    /// Logical shift right by per-element amount.
    Shr,
}

/// Comparison condition (scalar branches and vector compares).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl BranchCond {
    /// Evaluates the condition on two signed values.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => a < b,
            BranchCond::Le => a <= b,
            BranchCond::Gt => a > b,
            BranchCond::Ge => a >= b,
        }
    }

    /// Mnemonic suffix (`eq`, `ne`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "eq",
            BranchCond::Ne => "ne",
            BranchCond::Lt => "lt",
            BranchCond::Le => "le",
            BranchCond::Gt => "gt",
            BranchCond::Ge => "ge",
        }
    }
}

/// Horizontal (cross-lane) reduction operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RedOp {
    /// Sum of active elements.
    Add,
    /// Signed minimum of active elements.
    Min,
    /// Signed maximum of active elements.
    Max,
}

/// Operation applied by `qzmhm<OPN>` / `qzmm<OPN>` to the values read
/// from the QBUFFERs (paper §III-A: "e.g., addition, comparison, etc.").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QzOp {
    /// Count consecutive matching elements (routes through the count ALU;
    /// the paper's `qzmhm<qzcount>` composition).
    Count,
    /// Elementwise addition.
    Add,
    /// Elementwise subtraction.
    Sub,
    /// Elementwise equality (1 where equal, 0 where not).
    CmpEq,
    /// Elementwise signed minimum.
    Min,
    /// Elementwise signed maximum.
    Max,
    /// Elementwise multiplication (used by the SpMV kernel, §VII-F).
    Mul,
}

impl QzOp {
    /// Mnemonic used in disassembly.
    pub fn mnemonic(self) -> &'static str {
        match self {
            QzOp::Count => "qzcount",
            QzOp::Add => "add",
            QzOp::Sub => "sub",
            QzOp::CmpEq => "cmpeq",
            QzOp::Min => "min",
            QzOp::Max => "max",
            QzOp::Mul => "mul",
        }
    }
}

/// One instruction of the simulated ISA.
///
/// Branch targets are resolved instruction indices (see
/// [`ProgramBuilder`](crate::ProgramBuilder) for label-based
/// construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    // ---- scalar ----
    /// `rd = imm`.
    MovImm {
        /// Destination.
        rd: XReg,
        /// Immediate value.
        imm: i64,
    },
    /// `rd = rn <op> rm`.
    AluRR {
        /// Operation.
        op: SAluOp,
        /// Destination.
        rd: XReg,
        /// First source.
        rn: XReg,
        /// Second source.
        rm: XReg,
    },
    /// `rd = rn <op> imm`.
    AluRI {
        /// Operation.
        op: SAluOp,
        /// Destination.
        rd: XReg,
        /// Source.
        rn: XReg,
        /// Immediate operand.
        imm: i64,
    },
    /// Scalar load: `rd = mem[rn + offset]` (zero-extended).
    Load {
        /// Destination.
        rd: XReg,
        /// Base address register.
        rn: XReg,
        /// Byte offset.
        offset: i64,
        /// Access width.
        size: MemSize,
    },
    /// Scalar store: `mem[rn + offset] = rs`.
    Store {
        /// Value to store.
        rs: XReg,
        /// Base address register.
        rn: XReg,
        /// Byte offset.
        offset: i64,
        /// Access width.
        size: MemSize,
    },
    /// Conditional branch: `if rn <cond> rm goto target`.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// Left operand.
        rn: XReg,
        /// Right operand.
        rm: XReg,
        /// Resolved target instruction index.
        target: usize,
    },
    /// Unconditional jump.
    Jump {
        /// Resolved target instruction index.
        target: usize,
    },
    /// Stops execution.
    Halt,

    // ---- vector ----
    /// Broadcast scalar register: `vd[i] = rn`.
    Dup {
        /// Destination.
        vd: VReg,
        /// Source scalar.
        rn: XReg,
        /// Element size.
        esize: ElemSize,
    },
    /// Broadcast immediate: `vd[i] = imm`.
    DupImm {
        /// Destination.
        vd: VReg,
        /// Immediate value.
        imm: i64,
        /// Element size.
        esize: ElemSize,
    },
    /// Lane indices: `vd[i] = rn + i * step` (SVE `INDEX`).
    Index {
        /// Destination.
        vd: VReg,
        /// Start value register.
        rn: XReg,
        /// Per-lane increment.
        step: i64,
        /// Element size.
        esize: ElemSize,
    },
    /// Elementwise `vd = vn <op> vm` under predicate `pg` (inactive lanes
    /// keep their previous `vd` value, i.e. merging predication).
    VAluVV {
        /// Operation.
        op: VAluOp,
        /// Destination.
        vd: VReg,
        /// First source.
        vn: VReg,
        /// Second source.
        vm: VReg,
        /// Governing predicate.
        pg: PReg,
        /// Element size.
        esize: ElemSize,
    },
    /// Elementwise `vd = vn <op> imm` under predicate `pg`.
    VAluVI {
        /// Operation.
        op: VAluOp,
        /// Destination.
        vd: VReg,
        /// Source.
        vn: VReg,
        /// Immediate operand.
        imm: i64,
        /// Governing predicate.
        pg: PReg,
        /// Element size.
        esize: ElemSize,
    },
    /// Vector compare producing a predicate: `pd[i] = active(pg,i) && (vn[i] <cond> vm[i])`.
    VCmpVV {
        /// Condition.
        cond: BranchCond,
        /// Destination predicate.
        pd: PReg,
        /// First source.
        vn: VReg,
        /// Second source.
        vm: VReg,
        /// Governing predicate.
        pg: PReg,
        /// Element size.
        esize: ElemSize,
    },
    /// Vector-immediate compare producing a predicate.
    VCmpVI {
        /// Condition.
        cond: BranchCond,
        /// Destination predicate.
        pd: PReg,
        /// Source vector.
        vn: VReg,
        /// Immediate operand.
        imm: i64,
        /// Governing predicate.
        pg: PReg,
        /// Element size.
        esize: ElemSize,
    },
    /// Select: `vd[i] = pg[i] ? vn[i] : vm[i]`.
    VSel {
        /// Destination.
        vd: VReg,
        /// Selector predicate.
        pg: PReg,
        /// Taken where predicate is set.
        vn: VReg,
        /// Taken where predicate is clear.
        vm: VReg,
        /// Element size.
        esize: ElemSize,
    },
    /// Unit-stride vector load from `mem[rn ..]` of all lanes under `pg`.
    VLoad {
        /// Destination.
        vd: VReg,
        /// Base address register.
        rn: XReg,
        /// Governing predicate.
        pg: PReg,
        /// Element size.
        esize: ElemSize,
    },
    /// Unit-stride narrow load: reads `lanes(esize)` consecutive
    /// `msize`-byte memory elements starting at `rn`, zero-extending
    /// each into a lane (SVE `ld1b`/`ld1h`/… into wider elements).
    VLoadN {
        /// Destination.
        vd: VReg,
        /// Base address register.
        rn: XReg,
        /// Governing predicate.
        pg: PReg,
        /// Lane size.
        esize: ElemSize,
        /// Memory element size.
        msize: MemSize,
    },
    /// Unit-stride vector store.
    VStore {
        /// Source data.
        vs: VReg,
        /// Base address register.
        rn: XReg,
        /// Governing predicate.
        pg: PReg,
        /// Element size.
        esize: ElemSize,
    },
    /// Gather: `vd[i] = mem[rn + idx[i] * scale]` for active lanes.
    ///
    /// Cracked by the timing model into one cache access per active lane
    /// (the memory-indexed bottleneck of paper §II-G).
    VGather {
        /// Destination.
        vd: VReg,
        /// Base address register.
        rn: XReg,
        /// Per-lane indices.
        idx: VReg,
        /// Governing predicate.
        pg: PReg,
        /// Lane size (of both indices and destination lanes).
        esize: ElemSize,
        /// Bytes read from memory per lane, zero-extended into the lane
        /// (SVE `ld1b`/`ld1h`/… with wider offsets).
        msize: MemSize,
        /// Index scale in bytes.
        scale: u8,
    },
    /// Scatter: `mem[rn + idx[i] * scale] = vs[i]` for active lanes.
    VScatter {
        /// Source data.
        vs: VReg,
        /// Base address register.
        rn: XReg,
        /// Per-lane indices.
        idx: VReg,
        /// Governing predicate.
        pg: PReg,
        /// Lane size (of both indices and source lanes).
        esize: ElemSize,
        /// Bytes written to memory per lane (lane value truncated).
        msize: MemSize,
        /// Index scale in bytes.
        scale: u8,
    },
    /// Horizontal reduction of active lanes into a scalar.
    VReduce {
        /// Operation.
        op: RedOp,
        /// Destination scalar.
        rd: XReg,
        /// Source vector.
        vn: VReg,
        /// Governing predicate.
        pg: PReg,
        /// Element size.
        esize: ElemSize,
    },
    /// Extract lane: `rd = vn[lane]`.
    VExtract {
        /// Destination scalar.
        rd: XReg,
        /// Source vector.
        vn: VReg,
        /// Lane index.
        lane: u8,
        /// Element size.
        esize: ElemSize,
    },
    /// Insert lane: `vd[lane] = rn` (other lanes unchanged).
    VInsert {
        /// Destination vector.
        vd: VReg,
        /// Source scalar.
        rn: XReg,
        /// Lane index.
        lane: u8,
        /// Element size.
        esize: ElemSize,
    },
    /// Slide lanes toward lane 0 by `amount`, zero-filling the top:
    /// `vd[i] = vn[i + amount]`.
    VSlideDown {
        /// Destination.
        vd: VReg,
        /// Source.
        vn: VReg,
        /// Lane shift amount.
        amount: u8,
        /// Element size.
        esize: ElemSize,
    },
    /// Slide lanes away from lane 0 by one and insert a scalar:
    /// `vd[0] = rn; vd[i] = vn[i-1]` (RVV `vslide1up`).
    VSlide1Up {
        /// Destination.
        vd: VReg,
        /// Source.
        vn: VReg,
        /// Scalar inserted at lane 0.
        rn: XReg,
        /// Element size.
        esize: ElemSize,
    },

    // ---- predicates ----
    /// Set all lanes of `pd` active.
    PTrue {
        /// Destination predicate.
        pd: PReg,
        /// Element size (sets one bit per element).
        esize: ElemSize,
    },
    /// First `rn` lanes active (SVE `WHILELT` with 0 base): lane `i`
    /// active iff `i < rn`.
    PWhileLt {
        /// Destination predicate.
        pd: PReg,
        /// Active-lane count register.
        rn: XReg,
        /// Element size.
        esize: ElemSize,
    },
    /// Clear all lanes of `pd`.
    PFalse {
        /// Destination predicate.
        pd: PReg,
    },
    /// `pd = pn & pm`.
    PAnd {
        /// Destination predicate.
        pd: PReg,
        /// First source.
        pn: PReg,
        /// Second source.
        pm: PReg,
    },
    /// `pd = pn | pm`.
    POr {
        /// Destination predicate.
        pd: PReg,
        /// First source.
        pn: PReg,
        /// Second source.
        pm: PReg,
    },
    /// `pd = pn & !pm` (bic — deactivate lanes).
    PBic {
        /// Destination predicate.
        pd: PReg,
        /// First source.
        pn: PReg,
        /// Lanes to clear.
        pm: PReg,
    },
    /// Count active lanes: `rd = popcount(pn)` at element granularity.
    PCount {
        /// Destination scalar.
        rd: XReg,
        /// Source predicate.
        pn: PReg,
        /// Element size.
        esize: ElemSize,
    },

    // ---- QUETZAL extension (paper §III-A) ----
    /// `qzconf(Eb0, Eb1, Esiz)`: configure element counts and element
    /// size of the QBUFFERs from three scalar registers.
    QzConf {
        /// Register holding the element count of QBUFFER 0.
        eb0: XReg,
        /// Register holding the element count of QBUFFER 1.
        eb1: XReg,
        /// Register holding the element-size field (0: 2-bit, 1: 8-bit,
        /// 2: 64-bit).
        esiz: XReg,
    },
    /// `qzencode(SEL, VAL, Idx)`: bit-encode the 8-bit characters of
    /// `val` (2 bits per DNA/RNA base) and store them into QBUFFER `sel`
    /// at element position `idx` (scalar register). Executes at commit.
    QzEncode {
        /// Destination buffer.
        sel: QBufSel,
        /// Vector of input characters.
        val: VReg,
        /// Scalar register holding the destination element index.
        idx: XReg,
    },
    /// `qzstore(VAL, IDX, SEL)`: store each element of `val` at the
    /// per-lane element index `idx` into QBUFFER `sel`. Executes at
    /// commit; bank conflicts serialize (paper §IV-B.2).
    QzStore {
        /// Vector of values.
        val: VReg,
        /// Vector of element indices.
        idx: VReg,
        /// Destination buffer.
        sel: QBufSel,
        /// Governing predicate (the paper leaves predication implicit;
        /// we make it explicit, as SVE hardware would).
        pg: PReg,
    },
    /// `qzload(IDX, SEL)`: read QBUFFER `sel` at the per-lane element
    /// indices in `idx`, returning one 64-bit segment per lane (for 2-
    /// and 8-bit configurations the segment holds the packed elements
    /// starting at that index; for 64-bit it is the element itself).
    QzLoad {
        /// Destination vector.
        vd: VReg,
        /// Vector of element indices.
        idx: VReg,
        /// Source buffer.
        sel: QBufSel,
        /// Governing predicate (inactive lanes read zero).
        pg: PReg,
    },
    /// `qzmhm<OPN>(IDX0, IDX1)`: read both QBUFFERs at per-lane indices
    /// and combine the two reads with `op`.
    QzMhm {
        /// Combining operation.
        op: QzOp,
        /// Destination vector.
        vd: VReg,
        /// Indices into QBUFFER 0.
        idx0: VReg,
        /// Indices into QBUFFER 1.
        idx1: VReg,
        /// Governing predicate (inactive lanes produce zero).
        pg: PReg,
    },
    /// `qzmm<OPN>(VAL, IDX, SEL)`: combine a VRF vector with values read
    /// from one QBUFFER.
    QzMm {
        /// Combining operation.
        op: QzOp,
        /// Destination vector.
        vd: VReg,
        /// VRF operand.
        val: VReg,
        /// Indices into the buffer.
        idx: VReg,
        /// Source buffer.
        sel: QBufSel,
        /// Governing predicate (inactive lanes produce zero).
        pg: PReg,
    },
    /// `qzcount(VAL0, VAL1)`: per-64-bit-segment count of consecutive
    /// matching elements (element size from `qzconf`).
    QzCount {
        /// Destination vector (per-segment counts).
        vd: VReg,
        /// First operand.
        vn: VReg,
        /// Second operand.
        vm: VReg,
    },
    /// Read-modify-write `qzstore` variant: `qbuf[idx[i]] <op>= val[i]`,
    /// processed in lane order so duplicate indices accumulate. Used by
    /// the histogram kernel (paper Fig. 8); documented extension — see
    /// DESIGN.md.
    QzUpdate {
        /// Accumulation operation.
        op: QzOp,
        /// Vector of values.
        val: VReg,
        /// Vector of element indices.
        idx: VReg,
        /// Target buffer.
        sel: QBufSel,
        /// Governing predicate (inactive lanes are skipped).
        pg: PReg,
    },
}

/// Coarse instruction class used by the timing model to pick issue
/// ports, latencies and stall attribution buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Scalar integer ALU (1 cycle).
    ScalarAlu,
    /// Scalar multiply (3 cycles).
    ScalarMul,
    /// Scalar load.
    ScalarLoad,
    /// Scalar store.
    ScalarStore,
    /// Control transfer.
    Branch,
    /// Vector ALU.
    VectorAlu,
    /// Vector multiply.
    VectorMul,
    /// Unit-stride vector memory read.
    VectorLoad,
    /// Unit-stride vector memory write.
    VectorStore,
    /// Indexed vector read — cracked into per-lane cache accesses.
    Gather,
    /// Indexed vector write — cracked into per-lane cache accesses.
    Scatter,
    /// Cross-lane reduction / permute.
    VectorHorizontal,
    /// Predicate manipulation.
    Predicate,
    /// QUETZAL configuration.
    QzConfig,
    /// QUETZAL buffer write (commit-time).
    QzWrite,
    /// QUETZAL buffer read.
    QzRead,
    /// QUETZAL count ALU.
    QzCountOp,
    /// Program end.
    Halt,
}

impl Instruction {
    /// The timing class of this instruction.
    pub fn class(&self) -> InstClass {
        use Instruction::*;
        match self {
            MovImm { .. } => InstClass::ScalarAlu,
            AluRR { op, .. } | AluRI { op, .. } => {
                if *op == SAluOp::Mul {
                    InstClass::ScalarMul
                } else {
                    InstClass::ScalarAlu
                }
            }
            Load { .. } => InstClass::ScalarLoad,
            Store { .. } => InstClass::ScalarStore,
            Branch { .. } | Jump { .. } => InstClass::Branch,
            Halt => InstClass::Halt,
            Dup { .. } | DupImm { .. } | Index { .. } | VSel { .. } => InstClass::VectorAlu,
            VAluVV { op, .. } | VAluVI { op, .. } => {
                if *op == VAluOp::Mul {
                    InstClass::VectorMul
                } else {
                    InstClass::VectorAlu
                }
            }
            VCmpVV { .. } | VCmpVI { .. } => InstClass::VectorAlu,
            VLoad { .. } | VLoadN { .. } => InstClass::VectorLoad,
            VStore { .. } => InstClass::VectorStore,
            VGather { .. } => InstClass::Gather,
            VScatter { .. } => InstClass::Scatter,
            VReduce { .. }
            | VExtract { .. }
            | VInsert { .. }
            | VSlideDown { .. }
            | VSlide1Up { .. } => InstClass::VectorHorizontal,
            PTrue { .. }
            | PWhileLt { .. }
            | PFalse { .. }
            | PAnd { .. }
            | POr { .. }
            | PBic { .. }
            | PCount { .. } => InstClass::Predicate,
            QzConf { .. } => InstClass::QzConfig,
            QzEncode { .. } | QzStore { .. } | QzUpdate { .. } => InstClass::QzWrite,
            QzLoad { .. } | QzMhm { .. } | QzMm { .. } => InstClass::QzRead,
            QzCount { .. } => InstClass::QzCountOp,
        }
    }

    /// Calls `f` for every register this instruction reads.
    pub fn for_each_use(&self, mut f: impl FnMut(Reg)) {
        use Instruction::*;
        match *self {
            MovImm { .. } | Halt | Jump { .. } | PTrue { .. } | PFalse { .. } | DupImm { .. } => {}
            AluRR { rn, rm, .. } => {
                f(rn.into());
                f(rm.into());
            }
            AluRI { rn, .. } => f(rn.into()),
            Load { rn, .. } => f(rn.into()),
            Store { rs, rn, .. } => {
                f(rs.into());
                f(rn.into());
            }
            Branch { rn, rm, .. } => {
                f(rn.into());
                f(rm.into());
            }
            Dup { rn, .. } => f(rn.into()),
            Index { rn, .. } => f(rn.into()),
            VAluVV { vd, vn, vm, pg, .. } => {
                // Merging predication also reads the old destination.
                f(vd.into());
                f(vn.into());
                f(vm.into());
                f(pg.into());
            }
            VAluVI { vd, vn, pg, .. } => {
                f(vd.into());
                f(vn.into());
                f(pg.into());
            }
            VCmpVV { vn, vm, pg, .. } => {
                f(vn.into());
                f(vm.into());
                f(pg.into());
            }
            VCmpVI { vn, pg, .. } => {
                f(vn.into());
                f(pg.into());
            }
            VSel { pg, vn, vm, .. } => {
                f(pg.into());
                f(vn.into());
                f(vm.into());
            }
            VLoad { rn, pg, .. } | VLoadN { rn, pg, .. } => {
                f(rn.into());
                f(pg.into());
            }
            VStore { vs, rn, pg, .. } => {
                f(vs.into());
                f(rn.into());
                f(pg.into());
            }
            VGather { rn, idx, pg, .. } => {
                f(rn.into());
                f(idx.into());
                f(pg.into());
            }
            VScatter {
                vs, rn, idx, pg, ..
            } => {
                f(vs.into());
                f(rn.into());
                f(idx.into());
                f(pg.into());
            }
            VReduce { vn, pg, .. } => {
                f(vn.into());
                f(pg.into());
            }
            VExtract { vn, .. } => f(vn.into()),
            VInsert { vd, rn, .. } => {
                f(vd.into());
                f(rn.into());
            }
            VSlideDown { vn, .. } => f(vn.into()),
            VSlide1Up { vn, rn, .. } => {
                f(vn.into());
                f(rn.into());
            }
            PWhileLt { rn, .. } => f(rn.into()),
            PAnd { pn, pm, .. } | POr { pn, pm, .. } | PBic { pn, pm, .. } => {
                f(pn.into());
                f(pm.into());
            }
            PCount { pn, .. } => f(pn.into()),
            QzConf { eb0, eb1, esiz } => {
                f(eb0.into());
                f(eb1.into());
                f(esiz.into());
            }
            QzEncode { val, idx, .. } => {
                f(val.into());
                f(idx.into());
            }
            QzStore { val, idx, pg, .. } | QzUpdate { val, idx, pg, .. } => {
                f(val.into());
                f(idx.into());
                f(pg.into());
            }
            QzLoad { idx, pg, .. } => {
                f(idx.into());
                f(pg.into());
            }
            QzMhm { idx0, idx1, pg, .. } => {
                f(idx0.into());
                f(idx1.into());
                f(pg.into());
            }
            QzMm { val, idx, pg, .. } => {
                f(val.into());
                f(idx.into());
                f(pg.into());
            }
            QzCount { vn, vm, .. } => {
                f(vn.into());
                f(vm.into());
            }
        }
    }

    /// Calls `f` for every register this instruction writes.
    pub fn for_each_def(&self, mut f: impl FnMut(Reg)) {
        use Instruction::*;
        match *self {
            MovImm { rd, .. } | AluRR { rd, .. } | AluRI { rd, .. } | Load { rd, .. } => {
                f(rd.into())
            }
            Store { .. } | Branch { .. } | Jump { .. } | Halt => {}
            Dup { vd, .. }
            | DupImm { vd, .. }
            | Index { vd, .. }
            | VAluVV { vd, .. }
            | VAluVI { vd, .. }
            | VSel { vd, .. }
            | VLoad { vd, .. }
            | VLoadN { vd, .. }
            | VGather { vd, .. }
            | VInsert { vd, .. }
            | VSlideDown { vd, .. }
            | VSlide1Up { vd, .. } => f(vd.into()),
            VStore { .. } | VScatter { .. } => {}
            VCmpVV { pd, .. } | VCmpVI { pd, .. } => f(pd.into()),
            VReduce { rd, .. } | VExtract { rd, .. } | PCount { rd, .. } => f(rd.into()),
            PTrue { pd, .. }
            | PWhileLt { pd, .. }
            | PFalse { pd }
            | PAnd { pd, .. }
            | POr { pd, .. }
            | PBic { pd, .. } => f(pd.into()),
            QzConf { .. } | QzEncode { .. } | QzStore { .. } | QzUpdate { .. } => {}
            QzLoad { vd, .. } | QzMhm { vd, .. } | QzMm { vd, .. } | QzCount { vd, .. } => {
                f(vd.into())
            }
        }
    }

    /// The resolved control-transfer target, if this instruction has
    /// one (`Branch`/`Jump`).
    pub fn branch_target(&self) -> Option<usize> {
        match *self {
            Instruction::Branch { target, .. } | Instruction::Jump { target } => Some(target),
            _ => None,
        }
    }

    /// Whether this is a control-transfer instruction.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instruction::Branch { .. } | Instruction::Jump { .. } | Instruction::Halt
        )
    }

    /// Whether the instruction must execute non-speculatively at commit
    /// (QBUFFER-writing instructions, paper §IV-E).
    pub fn executes_at_commit(&self) -> bool {
        matches!(
            self,
            Instruction::QzEncode { .. }
                | Instruction::QzStore { .. }
                | Instruction::QzUpdate { .. }
                | Instruction::QzConf { .. }
        )
    }
}

impl std::fmt::Display for Instruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use Instruction::*;
        match self {
            MovImm { rd, imm } => write!(f, "mov {rd}, #{imm}"),
            AluRR { op, rd, rn, rm } => write!(f, "{op:?} {rd}, {rn}, {rm}"),
            AluRI { op, rd, rn, imm } => write!(f, "{op:?} {rd}, {rn}, #{imm}"),
            Load {
                rd,
                rn,
                offset,
                size,
            } => {
                write!(f, "ldr{} {rd}, [{rn}, #{offset}]", size.bytes())
            }
            Store {
                rs,
                rn,
                offset,
                size,
            } => {
                write!(f, "str{} {rs}, [{rn}, #{offset}]", size.bytes())
            }
            Branch {
                cond,
                rn,
                rm,
                target,
            } => {
                write!(f, "b.{} {rn}, {rm}, @{target}", cond.mnemonic())
            }
            Jump { target } => write!(f, "b @{target}"),
            Halt => write!(f, "halt"),
            Dup { vd, rn, esize } => write!(f, "dup {vd}.{esize}, {rn}"),
            DupImm { vd, imm, esize } => write!(f, "dup {vd}.{esize}, #{imm}"),
            Index {
                vd,
                rn,
                step,
                esize,
            } => write!(f, "index {vd}.{esize}, {rn}, #{step}"),
            VAluVV {
                op,
                vd,
                vn,
                vm,
                pg,
                esize,
            } => {
                write!(f, "{op:?} {vd}.{esize}, {pg}/m, {vn}, {vm}")
            }
            VAluVI {
                op,
                vd,
                vn,
                imm,
                pg,
                esize,
            } => {
                write!(f, "{op:?} {vd}.{esize}, {pg}/m, {vn}, #{imm}")
            }
            VCmpVV {
                cond,
                pd,
                vn,
                vm,
                pg,
                esize,
            } => {
                write!(
                    f,
                    "cmp.{} {pd}.{esize}, {pg}/z, {vn}, {vm}",
                    cond.mnemonic()
                )
            }
            VCmpVI {
                cond,
                pd,
                vn,
                imm,
                pg,
                esize,
            } => {
                write!(
                    f,
                    "cmp.{} {pd}.{esize}, {pg}/z, {vn}, #{imm}",
                    cond.mnemonic()
                )
            }
            VSel {
                vd,
                pg,
                vn,
                vm,
                esize,
            } => write!(f, "sel {vd}.{esize}, {pg}, {vn}, {vm}"),
            VLoad { vd, rn, pg, esize } => write!(f, "ld1 {vd}.{esize}, {pg}/z, [{rn}]"),
            VLoadN {
                vd,
                rn,
                pg,
                esize,
                msize,
            } => {
                write!(f, "ld1n{} {vd}.{esize}, {pg}/z, [{rn}]", msize.bytes())
            }
            VStore { vs, rn, pg, esize } => write!(f, "st1 {vs}.{esize}, {pg}, [{rn}]"),
            VGather {
                vd,
                rn,
                idx,
                pg,
                esize,
                msize,
                scale,
            } => {
                write!(
                    f,
                    "ld1b{} {vd}.{esize}, {pg}/z, [{rn}, {idx}, lsl #{scale}]",
                    msize.bytes()
                )
            }
            VScatter {
                vs,
                rn,
                idx,
                pg,
                esize,
                msize,
                scale,
            } => {
                write!(
                    f,
                    "st1b{} {vs}.{esize}, {pg}, [{rn}, {idx}, lsl #{scale}]",
                    msize.bytes()
                )
            }
            VReduce {
                op,
                rd,
                vn,
                pg,
                esize,
            } => {
                write!(f, "{op:?}v {rd}, {pg}, {vn}.{esize}")
            }
            VExtract {
                rd,
                vn,
                lane,
                esize,
            } => write!(f, "umov {rd}, {vn}.{esize}[{lane}]"),
            VInsert {
                vd,
                rn,
                lane,
                esize,
            } => write!(f, "ins {vd}.{esize}[{lane}], {rn}"),
            VSlideDown {
                vd,
                vn,
                amount,
                esize,
            } => {
                write!(f, "slidedown {vd}.{esize}, {vn}, #{amount}")
            }
            VSlide1Up { vd, vn, rn, esize } => write!(f, "slide1up {vd}.{esize}, {vn}, {rn}"),
            PTrue { pd, esize } => write!(f, "ptrue {pd}.{esize}"),
            PWhileLt { pd, rn, esize } => write!(f, "whilelt {pd}.{esize}, xzr, {rn}"),
            PFalse { pd } => write!(f, "pfalse {pd}"),
            PAnd { pd, pn, pm } => write!(f, "and {pd}, {pn}, {pm}"),
            POr { pd, pn, pm } => write!(f, "orr {pd}, {pn}, {pm}"),
            PBic { pd, pn, pm } => write!(f, "bic {pd}, {pn}, {pm}"),
            PCount { rd, pn, esize } => write!(f, "cntp {rd}, {pn}.{esize}"),
            QzConf { eb0, eb1, esiz } => write!(f, "qzconf {eb0}, {eb1}, {esiz}"),
            QzEncode { sel, val, idx } => write!(f, "qzencode {sel}, {val}, {idx}"),
            QzStore { val, idx, sel, pg } => write!(f, "qzstore {val}, {idx}, {sel}, {pg}"),
            QzLoad { vd, idx, sel, pg } => write!(f, "qzload {vd}, {idx}, {sel}, {pg}"),
            QzMhm {
                op,
                vd,
                idx0,
                idx1,
                pg,
            } => {
                write!(f, "qzmhm<{}> {vd}, {idx0}, {idx1}, {pg}", op.mnemonic())
            }
            QzMm {
                op,
                vd,
                val,
                idx,
                sel,
                pg,
            } => {
                write!(f, "qzmm<{}> {vd}, {val}, {idx}, {sel}, {pg}", op.mnemonic())
            }
            QzCount { vd, vn, vm } => write!(f, "qzcount {vd}, {vn}, {vm}"),
            QzUpdate {
                op,
                val,
                idx,
                sel,
                pg,
            } => {
                write!(f, "qzupdate<{}> {val}, {idx}, {sel}, {pg}", op.mnemonic())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::aliases::*;

    #[test]
    fn branch_cond_eval() {
        assert!(BranchCond::Lt.eval(-1, 0));
        assert!(!BranchCond::Lt.eval(0, 0));
        assert!(BranchCond::Le.eval(0, 0));
        assert!(BranchCond::Ne.eval(1, 2));
        assert!(BranchCond::Ge.eval(2, 2));
        assert!(BranchCond::Gt.eval(3, 2));
        assert!(BranchCond::Eq.eval(5, 5));
    }

    #[test]
    fn classes() {
        let gather = Instruction::VGather {
            vd: V0,
            rn: X0,
            idx: V1,
            pg: P0,
            esize: ElemSize::B64,
            msize: MemSize::B8,
            scale: 1,
        };
        assert_eq!(gather.class(), InstClass::Gather);
        let qzst = Instruction::QzStore {
            val: V0,
            idx: V1,
            sel: QBufSel::Q0,
            pg: P0,
        };
        assert_eq!(qzst.class(), InstClass::QzWrite);
        assert!(qzst.executes_at_commit());
        assert!(!gather.executes_at_commit());
    }

    #[test]
    fn use_def_extraction() {
        let i = Instruction::VAluVV {
            op: VAluOp::Add,
            vd: V2,
            vn: V0,
            vm: V1,
            pg: P0,
            esize: ElemSize::B64,
        };
        let mut uses = Vec::new();
        i.for_each_use(|r| uses.push(r));
        // Merging predication: old destination is also a source.
        assert_eq!(uses.len(), 4);
        assert!(uses.contains(&Reg::V(V2)));
        assert!(uses.contains(&Reg::P(P0)));
        let mut defs = Vec::new();
        i.for_each_def(|r| defs.push(r));
        assert_eq!(defs, vec![Reg::V(V2)]);
    }

    #[test]
    fn stores_have_no_defs() {
        let i = Instruction::VScatter {
            vs: V0,
            rn: X0,
            idx: V1,
            pg: P0,
            esize: ElemSize::B32,
            msize: MemSize::B4,
            scale: 4,
        };
        let mut defs = Vec::new();
        i.for_each_def(|r| defs.push(r));
        assert!(defs.is_empty());
    }

    #[test]
    fn disassembly_is_nonempty_for_all_shapes() {
        let samples = [
            Instruction::MovImm { rd: X1, imm: -3 },
            Instruction::Branch {
                cond: BranchCond::Lt,
                rn: X0,
                rm: X1,
                target: 7,
            },
            Instruction::QzMhm {
                op: QzOp::Count,
                vd: V3,
                idx0: V1,
                idx1: V2,
                pg: P0,
            },
            Instruction::QzConf {
                eb0: X1,
                eb1: X2,
                esiz: X3,
            },
            Instruction::PWhileLt {
                pd: P1,
                rn: X4,
                esize: ElemSize::B64,
            },
        ];
        for s in &samples {
            assert!(!s.to_string().is_empty());
        }
        assert_eq!(
            Instruction::QzMhm {
                op: QzOp::Count,
                vd: V3,
                idx0: V1,
                idx1: V2,
                pg: P0
            }
            .to_string(),
            "qzmhm<qzcount> z3, z1, z2, p0"
        );
    }

    use crate::types::{ElemSize, QBufSel};
}
