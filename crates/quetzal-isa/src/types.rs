//! Fundamental ISA constants and element-size types.

/// Vector length in bits — matches the Fujitsu A64FX SVE implementation
/// the paper simulates (Table I: 512-bit vector length).
pub const VLEN_BITS: usize = 512;

/// Vector length in bytes.
pub const VLEN_BYTES: usize = VLEN_BITS / 8;

/// Number of 64-bit lanes in a vector register (the VPU lane count,
/// paper §IV-B: "one bank for each of the eight 64-bit VPU lanes").
pub const LANES_64: usize = VLEN_BYTES / 8;

/// Element size of a vector operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ElemSize {
    /// 8-bit elements (64 lanes).
    B8,
    /// 16-bit elements (32 lanes).
    B16,
    /// 32-bit elements (16 lanes).
    B32,
    /// 64-bit elements (8 lanes).
    B64,
}

impl ElemSize {
    /// Element width in bytes.
    pub fn bytes(self) -> usize {
        match self {
            ElemSize::B8 => 1,
            ElemSize::B16 => 2,
            ElemSize::B32 => 4,
            ElemSize::B64 => 8,
        }
    }

    /// Element width in bits.
    pub fn bits(self) -> usize {
        self.bytes() * 8
    }

    /// Number of elements per 512-bit vector register.
    pub fn lanes(self) -> usize {
        VLEN_BYTES / self.bytes()
    }

    /// All sizes, narrow to wide.
    pub fn all() -> [ElemSize; 4] {
        [ElemSize::B8, ElemSize::B16, ElemSize::B32, ElemSize::B64]
    }
}

impl std::fmt::Display for ElemSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.bits())
    }
}

/// QUETZAL storage element size configured by `qzconf` (paper: *Esiz
/// indicates the element size (0: 2-bit (encoded), 1: 8-bit (chars) and
/// 2: 64-bit elements)*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncSize {
    /// 2-bit encoded nucleotides.
    E2,
    /// 8-bit characters (proteins, ambiguous bases).
    E8,
    /// 64-bit raw elements (DP values, histogram bins, …).
    E64,
}

impl EncSize {
    /// Element width in bits.
    pub fn bits(self) -> usize {
        match self {
            EncSize::E2 => 2,
            EncSize::E8 => 8,
            EncSize::E64 => 64,
        }
    }

    /// Elements stored per 64-bit QBUFFER word.
    pub fn per_word(self) -> usize {
        64 / self.bits()
    }

    /// Encoding of the `Esiz` field of `qzconf`.
    pub fn to_field(self) -> u64 {
        match self {
            EncSize::E2 => 0,
            EncSize::E8 => 1,
            EncSize::E64 => 2,
        }
    }

    /// Decodes the `Esiz` field of `qzconf`.
    pub fn from_field(v: u64) -> Option<EncSize> {
        match v {
            0 => Some(EncSize::E2),
            1 => Some(EncSize::E8),
            2 => Some(EncSize::E64),
            _ => None,
        }
    }

    /// Shift amount applied by the count ALU to convert matching *bits*
    /// into matching *elements* (paper §IV-D: "for 2-, 8- and 64-bit
    /// elements, the number of trailing ones is shifted by one, three,
    /// and six").
    pub fn count_shift(self) -> u32 {
        match self {
            EncSize::E2 => 1,
            EncSize::E8 => 3,
            EncSize::E64 => 6,
        }
    }
}

impl std::fmt::Display for EncSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.bits())
    }
}

/// Which of the two QBUFFERs an instruction addresses (the `SEL` operand
/// of `qzencode`/`qzstore`/`qzload`/`qzmm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QBufSel {
    /// QBUFFER 0 — by convention the pattern buffer.
    Q0,
    /// QBUFFER 1 — by convention the text buffer.
    Q1,
}

impl QBufSel {
    /// Buffer index (0 or 1).
    pub fn index(self) -> usize {
        match self {
            QBufSel::Q0 => 0,
            QBufSel::Q1 => 1,
        }
    }
}

impl std::fmt::Display for QBufSel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.index())
    }
}

/// Access width of a scalar memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSize {
    /// One byte.
    B1,
    /// Two bytes.
    B2,
    /// Four bytes.
    B4,
    /// Eight bytes.
    B8,
}

impl MemSize {
    /// Width in bytes.
    pub fn bytes(self) -> usize {
        match self {
            MemSize::B1 => 1,
            MemSize::B2 => 2,
            MemSize::B4 => 4,
            MemSize::B8 => 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_geometry() {
        assert_eq!(VLEN_BYTES, 64);
        assert_eq!(LANES_64, 8);
        assert_eq!(ElemSize::B8.lanes(), 64);
        assert_eq!(ElemSize::B32.lanes(), 16);
        assert_eq!(ElemSize::B64.lanes(), 8);
    }

    #[test]
    fn enc_size_fields_round_trip() {
        for e in [EncSize::E2, EncSize::E8, EncSize::E64] {
            assert_eq!(EncSize::from_field(e.to_field()), Some(e));
        }
        assert_eq!(EncSize::from_field(3), None);
    }

    #[test]
    fn count_shift_matches_paper() {
        assert_eq!(EncSize::E2.count_shift(), 1);
        assert_eq!(EncSize::E8.count_shift(), 3);
        assert_eq!(EncSize::E64.count_shift(), 6);
    }

    #[test]
    fn elements_per_word() {
        assert_eq!(EncSize::E2.per_word(), 32);
        assert_eq!(EncSize::E8.per_word(), 8);
        assert_eq!(EncSize::E64.per_word(), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ElemSize::B64.to_string(), "b64");
        assert_eq!(EncSize::E2.to_string(), "e2");
        assert_eq!(QBufSel::Q1.to_string(), "q1");
    }
}
