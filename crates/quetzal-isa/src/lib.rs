//! The simulated instruction set of the QUETZAL reproduction.
//!
//! This crate defines a compact, SVE-flavoured scalar + vector ISA
//! (512-bit vectors, predicated execution, gather/scatter) together with
//! the QUETZAL extension instructions from the paper (§III-A):
//! `qzconf`, `qzencode`, `qzstore`, `qzload`, `qzmhm<OPN>`, `qzmm<OPN>`
//! and `qzcount`.
//!
//! Kernels are written against [`ProgramBuilder`] the way one would write
//! SVE intrinsics, and executed by the `quetzal-uarch` crate, which
//! provides both functional semantics and an out-of-order timing model.
//!
//! # Example
//!
//! ```
//! use quetzal_isa::*;
//!
//! // z1 = splat(7) + 5, elementwise over 64-bit lanes
//! let mut b = ProgramBuilder::new();
//! b.ptrue(P0, ElemSize::B64);
//! b.dup_imm(V0, 7, ElemSize::B64);
//! b.valu_vi(VAluOp::Add, V1, V0, 5, P0, ElemSize::B64);
//! b.halt();
//! let prog = b.build()?;
//! assert_eq!(prog.len(), 4);
//! # Ok::<(), quetzal_isa::BuildError>(())
//! ```

#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cfg;
pub mod inst;
pub mod program;
pub mod reg;
pub mod types;

pub use cfg::{Cfg, CfgBlock, Succ};
pub use inst::{BranchCond, InstClass, Instruction, QzOp, RedOp, SAluOp, VAluOp};
pub use program::{
    image_faults, set_build_observer, BuildError, ImageFault, Label, Program, ProgramBuilder,
};
pub use reg::{PReg, Reg, VReg, XReg};
pub use types::{ElemSize, EncSize, MemSize, QBufSel, LANES_64, VLEN_BITS, VLEN_BYTES};

// Ergonomic register aliases so kernels read like assembly listings.
pub use reg::aliases::*;
