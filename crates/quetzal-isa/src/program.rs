//! Programs and the label-resolving builder.

use crate::inst::{BranchCond, Instruction, QzOp, RedOp, SAluOp, VAluOp};
use crate::reg::{PReg, VReg, XReg};
use crate::types::{ElemSize, MemSize, QBufSel};

/// A forward-referenceable jump target handed out by
/// [`ProgramBuilder::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// An immutable, label-resolved instruction sequence.
#[derive(Debug, Clone)]
pub struct Program {
    insts: Vec<Instruction>,
    name: String,
    /// Process-unique identity assigned at build time; clones share it
    /// (the instruction sequence is immutable), so it keys derived
    /// per-program tables such as the simulator's decode cache.
    id: u64,
}

/// Identity is deliberately excluded: two independently built programs
/// with the same instructions compare equal.
impl PartialEq for Program {
    fn eq(&self, other: &Program) -> bool {
        self.insts == other.insts && self.name == other.name
    }
}

impl Eq for Program {}

/// Source of build-time program identities.
static NEXT_PROGRAM_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Process-wide observer invoked on every constructed [`Program`]
/// (builder-finalised or raw). Tooling seam: the `qzverify` gate
/// installs a collector here and replays the experiment harness, so
/// every kernel the experiments actually stage flows through static
/// verification.
type BuildObserver = Box<dyn Fn(&Program) + Send + Sync>;
static BUILD_OBSERVER: std::sync::OnceLock<BuildObserver> = std::sync::OnceLock::new();

/// Installs a process-wide observer called once for each program
/// constructed from now on (via [`ProgramBuilder::build`],
/// [`Program::from_raw`] or [`Program::from_raw_checked`]). Returns
/// `false` if an observer was already installed (the first one wins).
///
/// The observer runs on whichever thread constructs the program and
/// must not itself construct programs (it would recurse).
pub fn set_build_observer(observer: impl Fn(&Program) + Send + Sync + 'static) -> bool {
    BUILD_OBSERVER.set(Box::new(observer)).is_ok()
}

fn notify_observer(program: &Program) {
    if let Some(observer) = BUILD_OBSERVER.get() {
        observer(program);
    }
}

/// A structural defect of a raw instruction image — the statically
/// decodable subset of what the simulator would surface as
/// `SimError::DecodeError` at runtime.
///
/// This is the **single** decode-validation routine of the workspace
/// (see [`image_faults`]): [`ProgramBuilder::build`],
/// [`Program::from_raw_checked`] and the `quetzal-verify` structural
/// pass all share it, so "builder-valid", "image-valid" and
/// "verifier-structurally-clean" can never diverge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImageFault {
    /// The image contains no instructions: the entry fetch at pc 0
    /// already leaves the program.
    Empty,
    /// A branch or jump encodes a target outside the instruction
    /// stream; taking it raises a decode fault.
    TargetOutOfRange {
        /// Program counter of the branch/jump.
        pc: usize,
        /// The out-of-range target.
        target: usize,
    },
}

impl std::fmt::Display for ImageFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageFault::Empty => f.write_str("empty program image"),
            ImageFault::TargetOutOfRange { pc, target } => {
                write!(f, "branch at pc {pc} targets {target}, outside the program")
            }
        }
    }
}

impl std::error::Error for ImageFault {}

/// Scans an instruction image for structural decode faults: an empty
/// image, or branch/jump targets outside `0..insts.len()`.
///
/// Falling off the end of the image (a path reaching `pc == len`
/// without `halt`) is deliberately *not* an image fault — it depends on
/// control flow and is reported by the `quetzal-verify` dataflow pass
/// instead.
pub fn image_faults(insts: &[Instruction]) -> Vec<ImageFault> {
    let mut faults = Vec::new();
    if insts.is_empty() {
        faults.push(ImageFault::Empty);
    }
    for (pc, inst) in insts.iter().enumerate() {
        if let Some(target) = inst.branch_target() {
            if target >= insts.len() {
                faults.push(ImageFault::TargetOutOfRange { pc, target });
            }
        }
    }
    faults
}

impl Program {
    /// The instructions.
    pub fn instructions(&self) -> &[Instruction] {
        &self.insts
    }

    /// Instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn fetch(&self, pc: usize) -> Instruction {
        self.insts[pc]
    }

    /// Instruction at `pc`, or `None` when `pc` is outside the program
    /// — the fallible fetch used by the simulator so a truncated image
    /// or corrupted branch target becomes a typed decode fault.
    pub fn get(&self, pc: usize) -> Option<Instruction> {
        self.insts.get(pc).copied()
    }

    /// Builds a program directly from raw instructions, bypassing the
    /// builder's structural validation (trailing-`halt` check, label
    /// resolution). Exists for fault injection: truncated and mutated
    /// images are *supposed* to be malformed, and the simulator must
    /// turn them into typed `SimError`s rather than rely on builder
    /// guarantees. Gets a fresh process-unique identity like any built
    /// program.
    pub fn from_raw(insts: Vec<Instruction>, name: impl Into<String>) -> Program {
        let program = Program {
            insts,
            name: name.into(),
            id: NEXT_PROGRAM_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        };
        notify_observer(&program);
        program
    }

    /// [`from_raw`](Self::from_raw) with the shared structural
    /// validation ([`image_faults`]) applied first — for callers
    /// accepting untrusted images that should be rejected up front
    /// rather than fault at runtime.
    ///
    /// # Errors
    ///
    /// Returns the image's structural faults if there are any; the
    /// program is not constructed.
    pub fn from_raw_checked(
        insts: Vec<Instruction>,
        name: impl Into<String>,
    ) -> Result<Program, Vec<ImageFault>> {
        let faults = image_faults(&insts);
        if faults.is_empty() {
            Ok(Program::from_raw(insts, name))
        } else {
            Err(faults)
        }
    }

    /// The shared structural decode validation ([`image_faults`]) over
    /// this program's instructions.
    pub fn image_faults(&self) -> Vec<ImageFault> {
        image_faults(&self.insts)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The diagnostic name given at build time.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Process-unique build identity (shared by clones). Stable for the
    /// lifetime of the process; suitable as a cache key for tables
    /// derived from the (immutable) instruction sequence.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Full disassembly listing.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "; program {} ({} insts)", self.name, self.insts.len());
        for (i, inst) in self.insts.iter().enumerate() {
            let _ = writeln!(out, "{i:5}: {inst}");
        }
        out
    }
}

/// Errors detected when finalising a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was referenced but never bound.
    UnboundLabel {
        /// The unbound label.
        label: Label,
    },
    /// A label was bound twice.
    ReboundLabel {
        /// The rebound label.
        label: Label,
    },
    /// The program does not end in `halt` (or contains none at all).
    MissingHalt,
    /// The finalised image failed the shared structural validation
    /// ([`image_faults`]) — e.g. a label bound past the last
    /// instruction, leaving a branch targeting `len`.
    BadImage {
        /// The first structural fault found.
        fault: ImageFault,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnboundLabel { label } => {
                write!(f, "label L{} referenced but never bound", label.0)
            }
            BuildError::ReboundLabel { label } => write!(f, "label L{} bound twice", label.0),
            BuildError::MissingHalt => f.write_str("program contains no halt instruction"),
            BuildError::BadImage { fault } => write!(f, "structurally invalid image: {fault}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incremental program constructor with forward labels.
///
/// Every emit method returns `&mut Self` for chaining. Branch targets
/// are labels created with [`label`](Self::label) and bound to a
/// position with [`bind`](Self::bind); they may be bound before or after
/// the branches that use them.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Instruction>,
    // Branch-site fixups: (inst index, label).
    fixups: Vec<(usize, Label)>,
    bound: Vec<Option<usize>>,
    name: String,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder {
            name: "kernel".to_string(),
            ..ProgramBuilder::default()
        }
    }

    /// Sets the diagnostic program name.
    pub fn name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.bound.push(None);
        Label(self.bound.len() - 1)
    }

    /// Binds `label` to the position of the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound (a builder bug in the
    /// kernel under construction).
    pub fn bind(&mut self, label: Label) -> &mut Self {
        assert!(
            self.bound[label.0].is_none(),
            "label L{} bound twice",
            label.0
        );
        self.bound[label.0] = Some(self.insts.len());
        self
    }

    /// Emits a raw instruction.
    pub fn inst(&mut self, inst: Instruction) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// Current instruction count (the pc of the next emitted instruction).
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    // ---- scalar helpers ----

    /// `rd = imm`.
    pub fn mov_imm(&mut self, rd: XReg, imm: i64) -> &mut Self {
        self.inst(Instruction::MovImm { rd, imm })
    }

    /// `rd = rn <op> rm`.
    pub fn alu_rr(&mut self, op: SAluOp, rd: XReg, rn: XReg, rm: XReg) -> &mut Self {
        self.inst(Instruction::AluRR { op, rd, rn, rm })
    }

    /// `rd = rn <op> imm`.
    pub fn alu_ri(&mut self, op: SAluOp, rd: XReg, rn: XReg, imm: i64) -> &mut Self {
        self.inst(Instruction::AluRI { op, rd, rn, imm })
    }

    /// Scalar load.
    pub fn load(&mut self, rd: XReg, rn: XReg, offset: i64, size: MemSize) -> &mut Self {
        self.inst(Instruction::Load {
            rd,
            rn,
            offset,
            size,
        })
    }

    /// Scalar store.
    pub fn store(&mut self, rs: XReg, rn: XReg, offset: i64, size: MemSize) -> &mut Self {
        self.inst(Instruction::Store {
            rs,
            rn,
            offset,
            size,
        })
    }

    /// Conditional branch to `label`.
    pub fn branch(&mut self, cond: BranchCond, rn: XReg, rm: XReg, label: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), label));
        self.inst(Instruction::Branch {
            cond,
            rn,
            rm,
            target: usize::MAX,
        })
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), label));
        self.inst(Instruction::Jump { target: usize::MAX })
    }

    /// Program end.
    pub fn halt(&mut self) -> &mut Self {
        self.inst(Instruction::Halt)
    }

    // ---- vector helpers ----

    /// Broadcast scalar.
    pub fn dup(&mut self, vd: VReg, rn: XReg, esize: ElemSize) -> &mut Self {
        self.inst(Instruction::Dup { vd, rn, esize })
    }

    /// Broadcast immediate.
    pub fn dup_imm(&mut self, vd: VReg, imm: i64, esize: ElemSize) -> &mut Self {
        self.inst(Instruction::DupImm { vd, imm, esize })
    }

    /// Lane index vector.
    pub fn index(&mut self, vd: VReg, rn: XReg, step: i64, esize: ElemSize) -> &mut Self {
        self.inst(Instruction::Index {
            vd,
            rn,
            step,
            esize,
        })
    }

    /// Predicated vector-vector ALU op.
    pub fn valu_vv(
        &mut self,
        op: VAluOp,
        vd: VReg,
        vn: VReg,
        vm: VReg,
        pg: PReg,
        esize: ElemSize,
    ) -> &mut Self {
        self.inst(Instruction::VAluVV {
            op,
            vd,
            vn,
            vm,
            pg,
            esize,
        })
    }

    /// Predicated vector-immediate ALU op.
    pub fn valu_vi(
        &mut self,
        op: VAluOp,
        vd: VReg,
        vn: VReg,
        imm: i64,
        pg: PReg,
        esize: ElemSize,
    ) -> &mut Self {
        self.inst(Instruction::VAluVI {
            op,
            vd,
            vn,
            imm,
            pg,
            esize,
        })
    }

    /// Vector compare into predicate.
    pub fn vcmp_vv(
        &mut self,
        cond: BranchCond,
        pd: PReg,
        vn: VReg,
        vm: VReg,
        pg: PReg,
        esize: ElemSize,
    ) -> &mut Self {
        self.inst(Instruction::VCmpVV {
            cond,
            pd,
            vn,
            vm,
            pg,
            esize,
        })
    }

    /// Vector-immediate compare into predicate.
    pub fn vcmp_vi(
        &mut self,
        cond: BranchCond,
        pd: PReg,
        vn: VReg,
        imm: i64,
        pg: PReg,
        esize: ElemSize,
    ) -> &mut Self {
        self.inst(Instruction::VCmpVI {
            cond,
            pd,
            vn,
            imm,
            pg,
            esize,
        })
    }

    /// Lane select.
    pub fn vsel(&mut self, vd: VReg, pg: PReg, vn: VReg, vm: VReg, esize: ElemSize) -> &mut Self {
        self.inst(Instruction::VSel {
            vd,
            pg,
            vn,
            vm,
            esize,
        })
    }

    /// Unit-stride load.
    pub fn vload(&mut self, vd: VReg, rn: XReg, pg: PReg, esize: ElemSize) -> &mut Self {
        self.inst(Instruction::VLoad { vd, rn, pg, esize })
    }

    /// Unit-stride narrow load (`msize`-byte elements widened to lanes).
    pub fn vload_n(
        &mut self,
        vd: VReg,
        rn: XReg,
        pg: PReg,
        esize: ElemSize,
        msize: MemSize,
    ) -> &mut Self {
        self.inst(Instruction::VLoadN {
            vd,
            rn,
            pg,
            esize,
            msize,
        })
    }

    /// Unit-stride store.
    pub fn vstore(&mut self, vs: VReg, rn: XReg, pg: PReg, esize: ElemSize) -> &mut Self {
        self.inst(Instruction::VStore { vs, rn, pg, esize })
    }

    /// Gather load (lane size `esize`, `msize` bytes read per lane).
    #[allow(clippy::too_many_arguments)] // mirrors the instruction's operands
    pub fn vgather(
        &mut self,
        vd: VReg,
        rn: XReg,
        idx: VReg,
        pg: PReg,
        esize: ElemSize,
        msize: MemSize,
        scale: u8,
    ) -> &mut Self {
        self.inst(Instruction::VGather {
            vd,
            rn,
            idx,
            pg,
            esize,
            msize,
            scale,
        })
    }

    /// Scatter store (lane size `esize`, `msize` bytes written per lane).
    #[allow(clippy::too_many_arguments)] // mirrors the instruction's operands
    pub fn vscatter(
        &mut self,
        vs: VReg,
        rn: XReg,
        idx: VReg,
        pg: PReg,
        esize: ElemSize,
        msize: MemSize,
        scale: u8,
    ) -> &mut Self {
        self.inst(Instruction::VScatter {
            vs,
            rn,
            idx,
            pg,
            esize,
            msize,
            scale,
        })
    }

    /// Horizontal reduction.
    pub fn vreduce(
        &mut self,
        op: RedOp,
        rd: XReg,
        vn: VReg,
        pg: PReg,
        esize: ElemSize,
    ) -> &mut Self {
        self.inst(Instruction::VReduce {
            op,
            rd,
            vn,
            pg,
            esize,
        })
    }

    /// Extract lane to scalar.
    pub fn vextract(&mut self, rd: XReg, vn: VReg, lane: u8, esize: ElemSize) -> &mut Self {
        self.inst(Instruction::VExtract {
            rd,
            vn,
            lane,
            esize,
        })
    }

    /// Insert scalar into lane.
    pub fn vinsert(&mut self, vd: VReg, rn: XReg, lane: u8, esize: ElemSize) -> &mut Self {
        self.inst(Instruction::VInsert {
            vd,
            rn,
            lane,
            esize,
        })
    }

    /// Slide lanes toward lane 0.
    pub fn vslidedown(&mut self, vd: VReg, vn: VReg, amount: u8, esize: ElemSize) -> &mut Self {
        self.inst(Instruction::VSlideDown {
            vd,
            vn,
            amount,
            esize,
        })
    }

    /// Slide lanes up by one, inserting scalar at lane 0.
    pub fn vslide1up(&mut self, vd: VReg, vn: VReg, rn: XReg, esize: ElemSize) -> &mut Self {
        self.inst(Instruction::VSlide1Up { vd, vn, rn, esize })
    }

    // ---- predicate helpers ----

    /// All lanes active.
    pub fn ptrue(&mut self, pd: PReg, esize: ElemSize) -> &mut Self {
        self.inst(Instruction::PTrue { pd, esize })
    }

    /// First `rn` lanes active.
    pub fn pwhilelt(&mut self, pd: PReg, rn: XReg, esize: ElemSize) -> &mut Self {
        self.inst(Instruction::PWhileLt { pd, rn, esize })
    }

    /// No lanes active.
    pub fn pfalse(&mut self, pd: PReg) -> &mut Self {
        self.inst(Instruction::PFalse { pd })
    }

    /// Predicate and.
    pub fn pand(&mut self, pd: PReg, pn: PReg, pm: PReg) -> &mut Self {
        self.inst(Instruction::PAnd { pd, pn, pm })
    }

    /// Predicate or.
    pub fn por(&mut self, pd: PReg, pn: PReg, pm: PReg) -> &mut Self {
        self.inst(Instruction::POr { pd, pn, pm })
    }

    /// Predicate bit-clear (`pd = pn & !pm`).
    pub fn pbic(&mut self, pd: PReg, pn: PReg, pm: PReg) -> &mut Self {
        self.inst(Instruction::PBic { pd, pn, pm })
    }

    /// Count active lanes.
    pub fn pcount(&mut self, rd: XReg, pn: PReg, esize: ElemSize) -> &mut Self {
        self.inst(Instruction::PCount { rd, pn, esize })
    }

    // ---- QUETZAL helpers ----

    /// `qzconf`.
    pub fn qzconf(&mut self, eb0: XReg, eb1: XReg, esiz: XReg) -> &mut Self {
        self.inst(Instruction::QzConf { eb0, eb1, esiz })
    }

    /// `qzencode`.
    pub fn qzencode(&mut self, sel: QBufSel, val: VReg, idx: XReg) -> &mut Self {
        self.inst(Instruction::QzEncode { sel, val, idx })
    }

    /// `qzstore`.
    pub fn qzstore(&mut self, val: VReg, idx: VReg, sel: QBufSel, pg: PReg) -> &mut Self {
        self.inst(Instruction::QzStore { val, idx, sel, pg })
    }

    /// `qzload`.
    pub fn qzload(&mut self, vd: VReg, idx: VReg, sel: QBufSel, pg: PReg) -> &mut Self {
        self.inst(Instruction::QzLoad { vd, idx, sel, pg })
    }

    /// `qzmhm<op>`.
    pub fn qzmhm(&mut self, op: QzOp, vd: VReg, idx0: VReg, idx1: VReg, pg: PReg) -> &mut Self {
        self.inst(Instruction::QzMhm {
            op,
            vd,
            idx0,
            idx1,
            pg,
        })
    }

    /// `qzmm<op>`.
    pub fn qzmm(
        &mut self,
        op: QzOp,
        vd: VReg,
        val: VReg,
        idx: VReg,
        sel: QBufSel,
        pg: PReg,
    ) -> &mut Self {
        self.inst(Instruction::QzMm {
            op,
            vd,
            val,
            idx,
            sel,
            pg,
        })
    }

    /// Standalone `qzcount`.
    pub fn qzcount(&mut self, vd: VReg, vn: VReg, vm: VReg) -> &mut Self {
        self.inst(Instruction::QzCount { vd, vn, vm })
    }

    /// Read-modify-write `qzupdate<op>` (histogram extension).
    pub fn qzupdate(
        &mut self,
        op: QzOp,
        val: VReg,
        idx: VReg,
        sel: QBufSel,
        pg: PReg,
    ) -> &mut Self {
        self.inst(Instruction::QzUpdate {
            op,
            val,
            idx,
            sel,
            pg,
        })
    }

    /// Resolves labels and finalises the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] on unbound labels or a missing trailing
    /// `halt`.
    pub fn build(&mut self) -> Result<Program, BuildError> {
        let mut insts = self.insts.clone();
        for &(site, label) in &self.fixups {
            let target = self.bound[label.0].ok_or(BuildError::UnboundLabel { label })?;
            match &mut insts[site] {
                Instruction::Branch { target: t, .. } | Instruction::Jump { target: t } => {
                    *t = target
                }
                other => unreachable!("fixup on non-branch instruction {other}"),
            }
        }
        if !insts.iter().any(|i| matches!(i, Instruction::Halt)) {
            return Err(BuildError::MissingHalt);
        }
        // The shared decode validation: label resolution guarantees
        // targets <= len, but a label bound after the last instruction
        // still yields target == len — a decode fault when taken.
        if let Some(&fault) = image_faults(&insts).first() {
            return Err(BuildError::BadImage { fault });
        }
        let program = Program {
            insts,
            name: self.name.clone(),
            id: NEXT_PROGRAM_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        };
        notify_observer(&program);
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::aliases::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        let done = b.label();
        b.mov_imm(X0, 0);
        b.bind(top);
        b.alu_ri(SAluOp::Add, X0, X0, 1);
        b.mov_imm(X1, 10);
        b.branch(BranchCond::Ge, X0, X1, done); // forward
        b.jump(top); // backward
        b.bind(done);
        b.halt();
        let p = b.build().unwrap();
        match p.fetch(3) {
            Instruction::Branch { target, .. } => assert_eq!(target, 5),
            other => panic!("expected branch, got {other}"),
        }
        match p.fetch(4) {
            Instruction::Jump { target } => assert_eq!(target, 1),
            other => panic!("expected jump, got {other}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.jump(l).halt();
        assert!(matches!(b.build(), Err(BuildError::UnboundLabel { .. })));
    }

    #[test]
    fn missing_halt_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 1);
        assert_eq!(b.build(), Err(BuildError::MissingHalt));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn disassembly_lists_all_instructions() {
        let mut b = ProgramBuilder::new();
        b.name("demo");
        b.mov_imm(X0, 5).dup(V0, X0, ElemSize::B64).halt();
        let p = b.build().unwrap();
        let d = p.disassemble();
        assert!(d.contains("demo"));
        assert!(d.contains("mov x0, #5"));
        assert!(d.contains("halt"));
        assert_eq!(d.lines().count(), 4);
    }

    #[test]
    fn here_tracks_position() {
        let mut b = ProgramBuilder::new();
        assert_eq!(b.here(), 0);
        b.mov_imm(X0, 1);
        assert_eq!(b.here(), 1);
    }
}
