//! Control-flow graph recovery from resolved branch targets.
//!
//! Programs in this ISA carry resolved instruction-index targets, so
//! the CFG is recoverable without symbolic execution: block leaders are
//! the entry, every in-range branch/jump target, and every instruction
//! after a control transfer. The graph deliberately models *leaving the
//! program* as an explicit successor ([`Succ::OutOfProgram`]) rather
//! than dropping the edge — running off the end of a truncated image or
//! taking a corrupted target is exactly what the simulator surfaces as
//! `SimError::DecodeError`, and the `quetzal-verify` dataflow pass
//! turns these edges into source-located diagnostics.

use crate::inst::Instruction;
use crate::program::Program;

/// A successor edge of a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Succ {
    /// Control continues at the start of another block (index into
    /// [`Cfg::blocks`]).
    Block(usize),
    /// Control leaves the program: the next program counter is outside
    /// `0..len`, which decodes to a runtime fault.
    OutOfProgram {
        /// The out-of-range program counter.
        target: usize,
    },
}

/// A maximal straight-line instruction sequence `start..end` (end
/// exclusive) with control entering only at `start` and leaving only
/// after `end - 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfgBlock {
    /// First instruction index of the block.
    pub start: usize,
    /// One past the last instruction index of the block.
    pub end: usize,
    /// Successor edges out of the block's last instruction.
    pub succs: Vec<Succ>,
}

impl CfgBlock {
    /// The program counters the block covers.
    pub fn pcs(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// The recovered control-flow graph of a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    blocks: Vec<CfgBlock>,
    /// `block_of[pc]` = index of the block containing `pc`.
    block_of: Vec<usize>,
}

impl Cfg {
    /// Recovers the CFG of an instruction image. An empty image yields
    /// an empty graph.
    pub fn of(insts: &[Instruction]) -> Cfg {
        let len = insts.len();
        if len == 0 {
            return Cfg {
                blocks: Vec::new(),
                block_of: Vec::new(),
            };
        }

        // Leaders: entry, in-range targets, instruction after control.
        let mut leader = vec![false; len];
        leader[0] = true;
        for (pc, inst) in insts.iter().enumerate() {
            if inst.is_control() {
                if pc + 1 < len {
                    leader[pc + 1] = true;
                }
                if let Some(target) = inst.branch_target() {
                    if target < len {
                        leader[target] = true;
                    }
                }
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; len];
        let mut start = 0;
        for pc in 0..len {
            block_of[pc] = blocks.len();
            let last_of_block = pc + 1 == len || leader[pc + 1];
            if last_of_block {
                blocks.push(CfgBlock {
                    start,
                    end: pc + 1,
                    succs: Vec::new(),
                });
                start = pc + 1;
            }
        }

        // Successor edges from each block's terminating instruction.
        let edge = |target: usize| {
            if target < len {
                Succ::Block(block_of[target])
            } else {
                Succ::OutOfProgram { target }
            }
        };
        for block in &mut blocks {
            let last = block.end - 1;
            match insts[last] {
                Instruction::Halt => {}
                Instruction::Jump { target } => block.succs.push(edge(target)),
                Instruction::Branch { target, .. } => {
                    block.succs.push(edge(last + 1));
                    let taken = edge(target);
                    if block.succs[0] != taken {
                        block.succs.push(taken);
                    }
                }
                _ => block.succs.push(edge(last + 1)),
            }
        }

        Cfg { blocks, block_of }
    }

    /// Recovers the CFG of a program.
    pub fn build(program: &Program) -> Cfg {
        Cfg::of(program.instructions())
    }

    /// The basic blocks, ordered by start pc.
    pub fn blocks(&self) -> &[CfgBlock] {
        &self.blocks
    }

    /// The index of the block containing `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is outside the program.
    pub fn block_of(&self, pc: usize) -> usize {
        self.block_of[pc]
    }

    /// The longest superblock chain starting at block `start`: a list
    /// of distinct block indices `start, b1, b2, …` (at most
    /// `max_blocks` long) where every block except the last transfers
    /// control *unconditionally* to its unique in-program successor —
    /// i.e. it ends in a jump or falls through, never in a conditional
    /// branch, a halt, or an out-of-program edge. Chains stop before
    /// revisiting a block, so they are loop-free; a functional tier can
    /// dispatch a whole chain with a single lookup (tail duplication is
    /// allowed — a block may appear in many chains).
    ///
    /// `insts` must be the instruction image this CFG was built from.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a valid block index or `insts` is
    /// shorter than the program the CFG was recovered from.
    pub fn chain_from(&self, start: usize, insts: &[Instruction], max_blocks: usize) -> Vec<usize> {
        let mut chain = vec![start];
        let mut cur = start;
        while chain.len() < max_blocks {
            let block = &self.blocks[cur];
            let last = &insts[block.end - 1];
            if matches!(last, Instruction::Halt | Instruction::Branch { .. }) {
                break;
            }
            let [Succ::Block(next)] = block.succs[..] else {
                break;
            };
            if chain.contains(&next) {
                break;
            }
            chain.push(next);
            cur = next;
        }
        chain
    }

    /// Per-block reachability from the entry block (block 0). Empty for
    /// an empty program.
    pub fn reachable(&self) -> Vec<bool> {
        let mut reached = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return reached;
        }
        let mut stack = vec![0usize];
        reached[0] = true;
        while let Some(b) = stack.pop() {
            for succ in &self.blocks[b].succs {
                if let Succ::Block(s) = *succ {
                    if !reached[s] {
                        reached[s] = true;
                        stack.push(s);
                    }
                }
            }
        }
        reached
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use crate::reg::aliases::*;
    use crate::{BranchCond, SAluOp};

    fn loop_program() -> Program {
        // 0: mov x0, #0
        // 1: mov x2, #10      <- loop head (leader)
        // 2: add x0, x0, #1   (same block as 1)
        // 3: b.lt x0, x2, @1
        // 4: halt
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.mov_imm(X0, 0);
        b.bind(top);
        b.mov_imm(X2, 10);
        b.alu_ri(SAluOp::Add, X0, X0, 1);
        b.branch(BranchCond::Lt, X0, X2, top);
        b.halt();
        b.build().expect("loop kernel")
    }

    #[test]
    fn loop_blocks_and_edges() {
        let cfg = Cfg::build(&loop_program());
        let blocks = cfg.blocks();
        assert_eq!(blocks.len(), 3);
        assert_eq!((blocks[0].start, blocks[0].end), (0, 1));
        assert_eq!((blocks[1].start, blocks[1].end), (1, 4));
        assert_eq!((blocks[2].start, blocks[2].end), (4, 5));
        assert_eq!(blocks[0].succs, vec![Succ::Block(1)]);
        assert_eq!(blocks[1].succs, vec![Succ::Block(2), Succ::Block(1)]);
        assert!(blocks[2].succs.is_empty());
        assert_eq!(cfg.block_of(2), 1);
        assert_eq!(cfg.reachable(), vec![true; 3]);
    }

    #[test]
    fn truncated_image_falls_off_the_end() {
        let p = Program::from_raw(
            vec![Instruction::MovImm { rd: X0, imm: 1 }],
            "truncated-cfg",
        );
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(
            cfg.blocks()[0].succs,
            vec![Succ::OutOfProgram { target: 1 }]
        );
    }

    #[test]
    fn out_of_range_target_is_an_explicit_edge() {
        let p = Program::from_raw(
            vec![Instruction::Jump { target: 7 }, Instruction::Halt],
            "wild-jump",
        );
        let cfg = Cfg::build(&p);
        assert_eq!(
            cfg.blocks()[0].succs,
            vec![Succ::OutOfProgram { target: 7 }]
        );
        // The halt after the jump is its own, unreachable block.
        assert_eq!(cfg.reachable(), vec![true, false]);
    }

    #[test]
    fn empty_image_has_no_blocks() {
        let cfg = Cfg::of(&[]);
        assert!(cfg.blocks().is_empty());
        assert!(cfg.reachable().is_empty());
    }

    #[test]
    fn chain_follows_unconditional_edges_only() {
        let p = loop_program();
        let cfg = Cfg::build(&p);
        // Block 0 falls through into the loop head; the head ends in a
        // conditional branch, so the chain stops there.
        assert_eq!(cfg.chain_from(0, p.instructions(), 8), vec![0, 1]);
        assert_eq!(cfg.chain_from(1, p.instructions(), 8), vec![1]);
        assert_eq!(cfg.chain_from(2, p.instructions(), 8), vec![2]);
        // The cap truncates the chain.
        assert_eq!(cfg.chain_from(0, p.instructions(), 1), vec![0]);
    }

    #[test]
    fn chain_stops_at_revisit_and_out_of_program() {
        // 0: jump 1 / 1: jump 0 — an unconditional two-block loop.
        let p = Program::from_raw(
            vec![
                Instruction::Jump { target: 1 },
                Instruction::Jump { target: 0 },
            ],
            "jump-loop",
        );
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.chain_from(0, p.instructions(), 8), vec![0, 1]);

        // Falling off the end is an out-of-program edge: no chaining.
        let t = Program::from_raw(vec![Instruction::MovImm { rd: X0, imm: 1 }], "trunc");
        let tcfg = Cfg::build(&t);
        assert_eq!(tcfg.chain_from(0, t.instructions(), 8), vec![0]);
    }

    #[test]
    fn branch_with_equal_targets_dedupes_edges() {
        // A branch whose taken target is the fallthrough.
        let p = Program::from_raw(
            vec![
                Instruction::Branch {
                    cond: BranchCond::Eq,
                    rn: X0,
                    rm: X0,
                    target: 1,
                },
                Instruction::Halt,
            ],
            "self-fallthrough",
        );
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks()[0].succs, vec![Succ::Block(1)]);
    }
}
