//! Architectural register names.

/// Number of scalar (general-purpose) registers.
pub const NUM_XREGS: u8 = 32;
/// Number of vector registers.
pub const NUM_VREGS: u8 = 32;
/// Number of predicate registers.
pub const NUM_PREGS: u8 = 16;

/// A scalar (general-purpose, 64-bit) register `x0`–`x31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct XReg(u8);

/// A 512-bit vector register `z0`–`z31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(u8);

/// A predicate register `p0`–`p15` (one bit per byte lane, as in SVE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PReg(u8);

macro_rules! reg_impl {
    ($ty:ident, $max:expr, $prefix:literal) => {
        impl $ty {
            /// Creates the register with the given index.
            ///
            /// # Panics
            ///
            /// Panics if `index` is out of range.
            pub const fn new(index: u8) -> $ty {
                assert!(index < $max, "register index out of range");
                $ty(index)
            }

            /// Creates the register if `index` is in range — the
            /// fallible constructor for code handling untrusted indices
            /// (e.g. fault-injection generators).
            pub const fn try_new(index: u8) -> Option<$ty> {
                if index < $max {
                    Some($ty(index))
                } else {
                    None
                }
            }

            /// The register index.
            pub const fn index(self) -> u8 {
                self.0
            }
        }

        impl std::fmt::Display for $ty {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

reg_impl!(XReg, NUM_XREGS, "x");
reg_impl!(VReg, NUM_VREGS, "z");
reg_impl!(PReg, NUM_PREGS, "p");

/// Any architectural register — used for dependence analysis in the
/// out-of-order timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reg {
    /// Scalar register.
    X(XReg),
    /// Vector register.
    V(VReg),
    /// Predicate register.
    P(PReg),
}

impl From<XReg> for Reg {
    fn from(r: XReg) -> Reg {
        Reg::X(r)
    }
}
impl From<VReg> for Reg {
    fn from(r: VReg) -> Reg {
        Reg::V(r)
    }
}
impl From<PReg> for Reg {
    fn from(r: PReg) -> Reg {
        Reg::P(r)
    }
}

impl Reg {
    /// A dense index over the whole register space (x, then z, then p),
    /// handy for scoreboards.
    pub fn flat_index(self) -> usize {
        match self {
            Reg::X(r) => r.index() as usize,
            Reg::V(r) => NUM_XREGS as usize + r.index() as usize,
            Reg::P(r) => (NUM_XREGS + NUM_VREGS) as usize + r.index() as usize,
        }
    }

    /// Total number of architectural registers (size of the flat space).
    pub const FLAT_COUNT: usize = (NUM_XREGS + NUM_VREGS + NUM_PREGS) as usize;
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reg::X(r) => r.fmt(f),
            Reg::V(r) => r.fmt(f),
            Reg::P(r) => r.fmt(f),
        }
    }
}

/// Named constants for every register, so kernels read like assembly.
pub mod aliases {
    use super::{PReg, VReg, XReg};

    macro_rules! alias {
        ($ty:ident, $($name:ident = $i:expr),+ $(,)?) => {
            $(
                #[allow(missing_docs)]
                pub const $name: $ty = $ty::new($i);
            )+
        };
    }

    alias!(
        XReg,
        X0 = 0,
        X1 = 1,
        X2 = 2,
        X3 = 3,
        X4 = 4,
        X5 = 5,
        X6 = 6,
        X7 = 7,
        X8 = 8,
        X9 = 9,
        X10 = 10,
        X11 = 11,
        X12 = 12,
        X13 = 13,
        X14 = 14,
        X15 = 15,
        X16 = 16,
        X17 = 17,
        X18 = 18,
        X19 = 19,
        X20 = 20,
        X21 = 21,
        X22 = 22,
        X23 = 23,
        X24 = 24,
        X25 = 25,
        X26 = 26,
        X27 = 27,
        X28 = 28,
        X29 = 29,
        X30 = 30,
        X31 = 31,
    );
    alias!(
        VReg,
        V0 = 0,
        V1 = 1,
        V2 = 2,
        V3 = 3,
        V4 = 4,
        V5 = 5,
        V6 = 6,
        V7 = 7,
        V8 = 8,
        V9 = 9,
        V10 = 10,
        V11 = 11,
        V12 = 12,
        V13 = 13,
        V14 = 14,
        V15 = 15,
        V16 = 16,
        V17 = 17,
        V18 = 18,
        V19 = 19,
        V20 = 20,
        V21 = 21,
        V22 = 22,
        V23 = 23,
        V24 = 24,
        V25 = 25,
        V26 = 26,
        V27 = 27,
        V28 = 28,
        V29 = 29,
        V30 = 30,
        V31 = 31,
    );
    alias!(
        PReg,
        P0 = 0,
        P1 = 1,
        P2 = 2,
        P3 = 3,
        P4 = 4,
        P5 = 5,
        P6 = 6,
        P7 = 7,
        P8 = 8,
        P9 = 9,
        P10 = 10,
        P11 = 11,
        P12 = 12,
        P13 = 13,
        P14 = 14,
        P15 = 15,
    );
}

#[cfg(test)]
mod tests {
    use super::aliases::*;
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(X3.to_string(), "x3");
        assert_eq!(V31.to_string(), "z31");
        assert_eq!(P7.to_string(), "p7");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = XReg::new(32);
    }

    #[test]
    fn flat_indices_are_unique_and_dense() {
        let mut seen = [false; Reg::FLAT_COUNT];
        for i in 0..NUM_XREGS {
            seen[Reg::X(XReg::new(i)).flat_index()] = true;
        }
        for i in 0..NUM_VREGS {
            seen[Reg::V(VReg::new(i)).flat_index()] = true;
        }
        for i in 0..NUM_PREGS {
            seen[Reg::P(PReg::new(i)).flat_index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn reg_from_impls() {
        assert_eq!(Reg::from(X1), Reg::X(X1));
        assert_eq!(Reg::from(V2).to_string(), "z2");
    }
}
