//! Exhaustive coverage of the instruction set surface: every variant
//! disassembles, classifies, and reports operands consistently.

use quetzal_isa::*;

/// One instance of every instruction variant.
fn all_instructions() -> Vec<Instruction> {
    use Instruction::*;
    vec![
        MovImm { rd: X1, imm: -7 },
        AluRR {
            op: SAluOp::Add,
            rd: X1,
            rn: X2,
            rm: X3,
        },
        AluRI {
            op: SAluOp::Mul,
            rd: X1,
            rn: X2,
            imm: 3,
        },
        Load {
            rd: X1,
            rn: X2,
            offset: -8,
            size: MemSize::B8,
        },
        Store {
            rs: X1,
            rn: X2,
            offset: 16,
            size: MemSize::B1,
        },
        Branch {
            cond: BranchCond::Le,
            rn: X1,
            rm: X2,
            target: 5,
        },
        Jump { target: 9 },
        Halt,
        Dup {
            vd: V1,
            rn: X2,
            esize: ElemSize::B32,
        },
        DupImm {
            vd: V1,
            imm: 4,
            esize: ElemSize::B8,
        },
        Index {
            vd: V1,
            rn: X2,
            step: 2,
            esize: ElemSize::B64,
        },
        VAluVV {
            op: VAluOp::Smin,
            vd: V1,
            vn: V2,
            vm: V3,
            pg: P1,
            esize: ElemSize::B64,
        },
        VAluVI {
            op: VAluOp::Shl,
            vd: V1,
            vn: V2,
            imm: 3,
            pg: P1,
            esize: ElemSize::B16,
        },
        VCmpVV {
            cond: BranchCond::Gt,
            pd: P1,
            vn: V2,
            vm: V3,
            pg: P0,
            esize: ElemSize::B64,
        },
        VCmpVI {
            cond: BranchCond::Eq,
            pd: P1,
            vn: V2,
            imm: 0,
            pg: P0,
            esize: ElemSize::B64,
        },
        VSel {
            vd: V1,
            pg: P1,
            vn: V2,
            vm: V3,
            esize: ElemSize::B64,
        },
        VLoad {
            vd: V1,
            rn: X2,
            pg: P1,
            esize: ElemSize::B64,
        },
        VLoadN {
            vd: V1,
            rn: X2,
            pg: P1,
            esize: ElemSize::B64,
            msize: MemSize::B1,
        },
        VStore {
            vs: V1,
            rn: X2,
            pg: P1,
            esize: ElemSize::B64,
        },
        VGather {
            vd: V1,
            rn: X2,
            idx: V3,
            pg: P1,
            esize: ElemSize::B64,
            msize: MemSize::B1,
            scale: 1,
        },
        VScatter {
            vs: V1,
            rn: X2,
            idx: V3,
            pg: P1,
            esize: ElemSize::B64,
            msize: MemSize::B8,
            scale: 8,
        },
        VReduce {
            op: RedOp::Max,
            rd: X1,
            vn: V2,
            pg: P1,
            esize: ElemSize::B64,
        },
        VExtract {
            rd: X1,
            vn: V2,
            lane: 3,
            esize: ElemSize::B64,
        },
        VInsert {
            vd: V1,
            rn: X2,
            lane: 0,
            esize: ElemSize::B64,
        },
        VSlideDown {
            vd: V1,
            vn: V2,
            amount: 2,
            esize: ElemSize::B64,
        },
        VSlide1Up {
            vd: V1,
            vn: V2,
            rn: X3,
            esize: ElemSize::B64,
        },
        PTrue {
            pd: P1,
            esize: ElemSize::B64,
        },
        PWhileLt {
            pd: P1,
            rn: X2,
            esize: ElemSize::B64,
        },
        PFalse { pd: P1 },
        PAnd {
            pd: P1,
            pn: P2,
            pm: P3,
        },
        POr {
            pd: P1,
            pn: P2,
            pm: P3,
        },
        PBic {
            pd: P1,
            pn: P2,
            pm: P3,
        },
        PCount {
            rd: X1,
            pn: P2,
            esize: ElemSize::B64,
        },
        QzConf {
            eb0: X1,
            eb1: X2,
            esiz: X3,
        },
        QzEncode {
            sel: QBufSel::Q0,
            val: V1,
            idx: X2,
        },
        QzStore {
            val: V1,
            idx: V2,
            sel: QBufSel::Q1,
            pg: P1,
        },
        QzLoad {
            vd: V1,
            idx: V2,
            sel: QBufSel::Q0,
            pg: P1,
        },
        QzMhm {
            op: QzOp::Count,
            vd: V1,
            idx0: V2,
            idx1: V3,
            pg: P1,
        },
        QzMm {
            op: QzOp::Mul,
            vd: V1,
            val: V2,
            idx: V3,
            sel: QBufSel::Q0,
            pg: P1,
        },
        QzCount {
            vd: V1,
            vn: V2,
            vm: V3,
        },
        QzUpdate {
            op: QzOp::Add,
            val: V1,
            idx: V2,
            sel: QBufSel::Q0,
            pg: P1,
        },
    ]
}

#[test]
fn every_variant_disassembles_nonempty() {
    for inst in all_instructions() {
        let text = inst.to_string();
        assert!(!text.trim().is_empty(), "{inst:?}");
    }
}

#[test]
fn defs_and_uses_are_disjoint_from_nonsense() {
    for inst in all_instructions() {
        let mut defs = Vec::new();
        inst.for_each_def(|r| defs.push(r));
        let mut uses = Vec::new();
        inst.for_each_use(|r| uses.push(r));
        // Stores, branches and qz writes define nothing.
        match inst.class() {
            InstClass::ScalarStore
            | InstClass::VectorStore
            | InstClass::Scatter
            | InstClass::Branch
            | InstClass::QzWrite
            | InstClass::QzConfig
            | InstClass::Halt => {
                assert!(defs.is_empty(), "{inst}: unexpected defs {defs:?}")
            }
            _ => assert!(!defs.is_empty(), "{inst}: expected a destination"),
        }
        // No instruction has more than 4 sources or 1 destination in
        // this ISA — a guard against accidental operand duplication.
        assert!(defs.len() <= 1, "{inst}");
        assert!(uses.len() <= 4, "{inst}");
    }
}

#[test]
fn commit_time_execution_is_exactly_the_qz_writes() {
    for inst in all_instructions() {
        let expect = matches!(inst.class(), InstClass::QzWrite | InstClass::QzConfig);
        assert_eq!(inst.executes_at_commit(), expect, "{inst}");
    }
}

#[test]
fn control_flow_classification() {
    for inst in all_instructions() {
        let is_ctl = matches!(
            inst,
            Instruction::Branch { .. } | Instruction::Jump { .. } | Instruction::Halt
        );
        assert_eq!(inst.is_control(), is_ctl, "{inst}");
    }
}

#[test]
fn program_round_trips_through_builder() {
    // Emit every instruction (branches need bound labels) and ensure the
    // built program preserves count and order.
    let mut b = ProgramBuilder::new();
    let l = b.label();
    b.bind(l);
    let mut expected = 0;
    for inst in all_instructions() {
        match inst {
            Instruction::Branch { cond, rn, rm, .. } => {
                b.branch(cond, rn, rm, l);
            }
            Instruction::Jump { .. } => {
                b.jump(l);
            }
            other => {
                b.inst(other);
            }
        }
        expected += 1;
    }
    let p = b.build().unwrap();
    assert_eq!(p.len(), expected);
    assert!(p.disassemble().lines().count() >= expected);
}
