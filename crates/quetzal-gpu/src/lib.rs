//! Analytical GPU throughput model (paper §VII-D, Fig. 15a).
//!
//! The paper compares 16-core QUETZAL against an NVIDIA A40 running
//! WFA-GPU and GASAL2. We cannot run CUDA here, so this crate models
//! the *mechanism* the paper identifies for the CPU/GPU crossover:
//! GPU throughput is the product of massive parallelism and per-thread
//! cell rate, but the number of alignments resident per SM is capped by
//! on-chip memory. Short reads keep thousands of alignments in flight;
//! long reads blow the working set ("low occupancy", §VII-D
//! observation 2) and throughput collapses.
//!
//! ```text
//! throughput = SMs × clock × cell_rate × occupancy / cells_per_pair
//! occupancy  = clamp(resident_alignments / needed_for_latency_hiding)
//! ```
//!
//! Constants are calibrated to the paper's reported relations (WFA-GPU
//! drops ~40 % and GASAL2 ~83 % going short → long; see the Fig. 15a
//! experiment binary). The model is deliberately simple and fully
//! documented so its assumptions can be audited.

/// Physical GPU parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Marketing name for reports.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sms: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Shared memory + L1 available per SM in KiB.
    pub onchip_kib_per_sm: f64,
    /// Concurrent alignments per SM needed to hide latency (warp
    /// parallelism target).
    pub latency_hiding_alignments: u32,
    /// Die area in mm² (the paper notes the A40 is >10× QUETZAL's area).
    pub area_mm2: f64,
}

impl GpuModel {
    /// The NVIDIA A40 used in the paper's §VII-D experiments.
    pub fn a40() -> GpuModel {
        GpuModel {
            name: "NVIDIA A40",
            sms: 84,
            clock_ghz: 1.74,
            onchip_kib_per_sm: 128.0,
            latency_hiding_alignments: 24,
            area_mm2: 628.0,
        }
    }
}

/// Which GPU aligner is modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuAligner {
    /// WFA-GPU (wavefront alignment; working set grows with the
    /// wavefront count).
    WfaGpu,
    /// GASAL2 (banded DP alignment; working set grows with the band
    /// rows, O(n)).
    Gasal2,
}

impl GpuAligner {
    /// DP cells (or wavefront cells) a thread block processes per pair.
    pub fn cells_per_pair(self, read_len: f64, distance: f64) -> f64 {
        match self {
            // WFA work: extension O(n) plus d wavefronts of O(d).
            GpuAligner::WfaGpu => read_len + distance * distance,
            // Banded DP: n rows × band width (ksw2-like band of n/10).
            GpuAligner::Gasal2 => read_len * (read_len / 10.0).max(16.0),
        }
    }

    /// Peak cells per SM per cycle at full occupancy (fitted to the
    /// tools' published GCUPS ranges).
    pub fn peak_cells_per_sm_cycle(self) -> f64 {
        match self {
            // Wavefront cells are branchy and divergence-heavy.
            GpuAligner::WfaGpu => 0.02,
            // ~37 peak GCUPS device-wide — mid of GASAL2's published
            // per-kernel range once traceback is included.
            GpuAligner::Gasal2 => 0.25,
        }
    }

    /// Per-alignment on-chip working set in bytes.
    pub fn working_set_bytes(self, read_len: f64, distance: f64) -> f64 {
        match self {
            // Wavefront pair for the current score plus backtrace blocks.
            GpuAligner::WfaGpu => 64.0 + 24.0 * distance,
            // Two DP rows of 4-byte cells plus sequence tiles.
            GpuAligner::Gasal2 => 64.0 + 10.0 * read_len,
        }
    }
}

impl std::fmt::Display for GpuAligner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GpuAligner::WfaGpu => "WFA-GPU",
            GpuAligner::Gasal2 => "GASAL2",
        })
    }
}

/// Occupancy (0, 1]: the fraction of the latency-hiding parallelism the
/// on-chip memory can keep resident.
pub fn occupancy(model: &GpuModel, aligner: GpuAligner, read_len: f64, distance: f64) -> f64 {
    let ws = aligner.working_set_bytes(read_len, distance);
    let resident = (model.onchip_kib_per_sm * 1024.0 / ws).max(1.0);
    (resident / model.latency_hiding_alignments as f64).clamp(0.02, 1.0)
}

/// Modelled end-to-end throughput in pairs per second.
pub fn throughput_pairs_per_sec(
    model: &GpuModel,
    aligner: GpuAligner,
    read_len: f64,
    distance: f64,
) -> f64 {
    let occ = occupancy(model, aligner, read_len, distance);
    let cells = aligner.cells_per_pair(read_len, distance);
    model.sms as f64 * model.clock_ghz * 1e9 * aligner.peak_cells_per_sm_cycle() * occ / cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_reads_run_at_full_occupancy() {
        let m = GpuModel::a40();
        assert!((occupancy(&m, GpuAligner::WfaGpu, 100.0, 4.0) - 1.0).abs() < 1e-9);
        assert!(occupancy(&m, GpuAligner::Gasal2, 100.0, 4.0) > 0.2);
    }

    #[test]
    fn long_reads_collapse_occupancy() {
        let m = GpuModel::a40();
        let short = occupancy(&m, GpuAligner::Gasal2, 100.0, 4.0);
        let long = occupancy(&m, GpuAligner::Gasal2, 10_000.0, 200.0);
        assert!(
            long < short / 4.0,
            "long-read occupancy must collapse: {short} -> {long}"
        );
    }

    #[test]
    fn throughput_decreases_with_length() {
        let m = GpuModel::a40();
        for aligner in [GpuAligner::WfaGpu, GpuAligner::Gasal2] {
            let t100 = throughput_pairs_per_sec(&m, aligner, 100.0, 4.0);
            let t10k = throughput_pairs_per_sec(&m, aligner, 10_000.0, 200.0);
            assert!(t10k < t100 / 50.0, "{aligner}: {t100} -> {t10k}");
        }
    }

    #[test]
    fn throughputs_are_in_plausible_ranges() {
        // WFA-GPU reports millions of short alignments/sec.
        let m = GpuModel::a40();
        let t = throughput_pairs_per_sec(&m, GpuAligner::WfaGpu, 100.0, 4.0);
        assert!(t > 1e5 && t < 1e9, "short WFA-GPU throughput {t}");
        let t = throughput_pairs_per_sec(&m, GpuAligner::Gasal2, 100.0, 4.0);
        assert!(t > 1e5 && t < 1e9, "short GASAL2 throughput {t}");
    }

    #[test]
    fn a40_dwarfs_quetzal_in_area() {
        // §VII-D observation 1: the A40 consumes >10x more area than
        // a QUETZAL-augmented CPU core.
        assert!(GpuModel::a40().area_mm2 > 10.0 * 2.89);
    }
}
