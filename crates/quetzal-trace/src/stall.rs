//! The fine-grained stall taxonomy and its classification rule.
//!
//! The timing engine charges every lost cycle to one of six coarse
//! [`StallCat`] buckets. This module refines the charge using the
//! lifecycle facts of the [`RetireEvent`] — which cache level served
//! the instruction, whether it waited on an operand (and what that
//! operand was waiting on), whether a functional unit was busy, whether
//! a store-to-load forward failed, whether the QBUFFER read port was
//! contended. The refinement never re-times anything: it partitions
//! exactly the cycles the engine already attributed, so a CPI stack
//! built from [`StallKind`] buckets sums to the engine's cycle count.

use quetzal_isa::InstClass;
use quetzal_uarch::{RetireEvent, StallCat};

/// Fine-grained cause of a commit-stall gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StallKind {
    /// Front-end limits: fetch/dispatch width, mispredict redirect.
    Frontend,
    /// Waiting on an operand produced by scalar compute.
    DepScalar,
    /// Waiting on an operand produced by vector compute.
    DepVector,
    /// Waiting on an operand produced by a memory access.
    DepMemory,
    /// Waiting on an operand produced by a QUETZAL operation.
    DepQuetzal,
    /// Scalar execution latency.
    ScalarExec,
    /// Vector execution latency (including the count ALU).
    VectorExec,
    /// Operands were ready but every unit/port of the class was busy.
    FuBusy,
    /// Store-to-load forwarding: failed-forward replay or drain wait.
    StoreRing,
    /// Memory access served at L1 speed (port/occupancy cost).
    L1,
    /// Memory access that missed L1 and was served by the L2.
    L2,
    /// Memory access that missed L2 and went to main memory.
    Dram,
    /// QBUFFER read waiting for the single read port.
    QzPort,
    /// QBUFFER access latency (reads, commit-time writes, config).
    QzAccess,
}

impl StallKind {
    /// Every kind, in display order.
    pub const ALL: [StallKind; 14] = [
        StallKind::Frontend,
        StallKind::DepScalar,
        StallKind::DepVector,
        StallKind::DepMemory,
        StallKind::DepQuetzal,
        StallKind::ScalarExec,
        StallKind::VectorExec,
        StallKind::FuBusy,
        StallKind::StoreRing,
        StallKind::L1,
        StallKind::L2,
        StallKind::Dram,
        StallKind::QzPort,
        StallKind::QzAccess,
    ];

    /// Dense index (position in [`StallKind::ALL`]).
    pub fn index(self) -> usize {
        StallKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("every kind is listed")
    }

    /// Short stable label.
    pub fn label(self) -> &'static str {
        match self {
            StallKind::Frontend => "frontend",
            StallKind::DepScalar => "dep-scalar",
            StallKind::DepVector => "dep-vector",
            StallKind::DepMemory => "dep-memory",
            StallKind::DepQuetzal => "dep-quetzal",
            StallKind::ScalarExec => "scalar-exec",
            StallKind::VectorExec => "vector-exec",
            StallKind::FuBusy => "fu-busy",
            StallKind::StoreRing => "store-ring",
            StallKind::L1 => "l1",
            StallKind::L2 => "l2",
            StallKind::Dram => "dram",
            StallKind::QzPort => "qz-port",
            StallKind::QzAccess => "qz-access",
        }
    }

    /// The coarse engine bucket this kind refines. The refinement is a
    /// partition: summing kinds by coarse category reproduces the
    /// engine's `stall_cycles` entries exactly (the probe-neutrality
    /// test asserts this).
    pub fn coarse(self) -> StallCat {
        match self {
            StallKind::Frontend => StallCat::Frontend,
            StallKind::DepScalar | StallKind::ScalarExec => StallCat::ScalarCompute,
            StallKind::DepVector | StallKind::VectorExec => StallCat::VectorCompute,
            StallKind::DepMemory
            | StallKind::StoreRing
            | StallKind::L1
            | StallKind::L2
            | StallKind::Dram => StallCat::Memory,
            StallKind::DepQuetzal | StallKind::QzPort | StallKind::QzAccess => StallCat::Quetzal,
            // FuBusy refines whichever compute class stalled; resolved
            // per event in `classify` — standalone it maps to scalar.
            StallKind::FuBusy => StallCat::ScalarCompute,
        }
    }
}

impl std::fmt::Display for StallKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

fn dep_kind(cat: StallCat) -> StallKind {
    match cat {
        StallCat::Memory => StallKind::DepMemory,
        StallCat::Quetzal => StallKind::DepQuetzal,
        StallCat::VectorCompute => StallKind::DepVector,
        StallCat::ScalarCompute | StallCat::Base => StallKind::DepScalar,
        StallCat::Frontend => StallKind::Frontend,
    }
}

/// Classifies the commit-stall gap of one retired instruction.
///
/// Mirrors the engine's attribution rule exactly — memory-class and
/// QUETZAL-class instructions always charge their own category, compute
/// and branch instructions charge their operand's taint when the
/// operand arrived after dispatch — then refines within the category
/// using the event's hazard facts. Memory levels resolve by deepest
/// level touched (DRAM > L2 > store-ring replay > L1), because the
/// deepest access dominates the completion time the engine charged.
pub fn classify(ev: &RetireEvent) -> StallKind {
    use InstClass::*;
    match ev.class {
        ScalarLoad | VectorLoad | ScalarStore | VectorStore | Gather | Scatter => {
            if ev.mem.l2_misses > 0 {
                StallKind::Dram
            } else if ev.mem.l1_misses > 0 {
                StallKind::L2
            } else if ev.store_replay || ev.store_ring_floor > 0 {
                StallKind::StoreRing
            } else {
                StallKind::L1
            }
        }
        QzRead => {
            if ev.qz_port_wait > 0 {
                StallKind::QzPort
            } else {
                StallKind::QzAccess
            }
        }
        QzWrite | QzConfig => StallKind::QzAccess,
        QzCountOp => {
            if ev.resource_wait() > 0 {
                StallKind::FuBusy
            } else {
                StallKind::VectorExec
            }
        }
        ScalarAlu | ScalarMul | Predicate => {
            if ev.ops_ready > ev.dispatch {
                dep_kind(ev.dep_cat)
            } else if ev.resource_wait() > 0 {
                StallKind::FuBusy
            } else {
                StallKind::ScalarExec
            }
        }
        VectorAlu | VectorMul | VectorHorizontal => {
            if ev.ops_ready > ev.dispatch {
                dep_kind(ev.dep_cat)
            } else if ev.resource_wait() > 0 {
                StallKind::FuBusy
            } else {
                StallKind::VectorExec
            }
        }
        Branch | Halt => {
            if ev.ops_ready > ev.dispatch {
                dep_kind(ev.dep_cat)
            } else {
                StallKind::Frontend
            }
        }
    }
}

/// Every [`InstClass`], in display order, with dense-index helpers
/// (the ISA enum does not carry one; the trace layer needs a fixed
/// matrix dimension).
pub const CLASSES: [InstClass; 18] = [
    InstClass::ScalarAlu,
    InstClass::ScalarMul,
    InstClass::ScalarLoad,
    InstClass::ScalarStore,
    InstClass::Branch,
    InstClass::VectorAlu,
    InstClass::VectorMul,
    InstClass::VectorLoad,
    InstClass::VectorStore,
    InstClass::Gather,
    InstClass::Scatter,
    InstClass::VectorHorizontal,
    InstClass::Predicate,
    InstClass::QzConfig,
    InstClass::QzWrite,
    InstClass::QzRead,
    InstClass::QzCountOp,
    InstClass::Halt,
];

/// Dense index of an [`InstClass`] (position in [`CLASSES`]).
pub fn class_index(class: InstClass) -> usize {
    CLASSES
        .iter()
        .position(|&c| c == class)
        .expect("every class is listed")
}

/// Short stable label for an [`InstClass`].
pub fn class_label(class: InstClass) -> &'static str {
    match class {
        InstClass::ScalarAlu => "salu",
        InstClass::ScalarMul => "smul",
        InstClass::ScalarLoad => "sload",
        InstClass::ScalarStore => "sstore",
        InstClass::Branch => "branch",
        InstClass::VectorAlu => "valu",
        InstClass::VectorMul => "vmul",
        InstClass::VectorLoad => "vload",
        InstClass::VectorStore => "vstore",
        InstClass::Gather => "gather",
        InstClass::Scatter => "scatter",
        InstClass::VectorHorizontal => "vhoriz",
        InstClass::Predicate => "pred",
        InstClass::QzConfig => "qzconf",
        InstClass::QzWrite => "qzwrite",
        InstClass::QzRead => "qzread",
        InstClass::QzCountOp => "qzcount",
        InstClass::Halt => "halt",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_dense_and_labelled() {
        for (i, k) in StallKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(!k.label().is_empty());
        }
    }

    #[test]
    fn classes_are_dense_and_complete() {
        for (i, c) in CLASSES.iter().enumerate() {
            assert_eq!(class_index(*c), i);
            assert!(!class_label(*c).is_empty());
        }
    }
}
