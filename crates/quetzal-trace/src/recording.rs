//! The recording probe: bounded event ring plus streaming aggregation.
//!
//! [`RecordingProbe`] implements [`Probe`] with `ENABLED = true`. It
//! keeps the most recent dynamic instructions in a fixed-capacity ring
//! (for Chrome-trace export) and aggregates *every* instruction — the
//! ring may drop, the aggregates never do — into:
//!
//! * a CPI matrix of stall cycles by `InstClass` × [`StallKind`];
//! * a hottest-static-instruction table keyed by `(Program::id, pc)`;
//! * per-run coarse stall totals, audited against the engine's own
//!   [`RunStats`] at every `on_run_end` (any mismatch is recorded — an
//!   always-on self-check that the refined taxonomy partitions exactly
//!   the cycles the engine attributed).

use std::collections::HashMap;
use std::collections::VecDeque;

use quetzal_isa::InstClass;
use quetzal_uarch::{Probe, RetireEvent, RunStats, StallCat};

use crate::stall::{class_index, classify, StallKind, CLASSES};

/// One ring-buffer entry: a retire event plus the program it came from.
#[derive(Debug, Clone, Copy)]
pub struct TraceRecord {
    /// [`quetzal_isa::Program::id`] of the submitting program.
    pub program: u64,
    /// The retire event.
    pub ev: RetireEvent,
}

/// Aggregate for one static instruction (one `(program, pc)` site).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotEntry {
    /// Dynamic executions.
    pub count: u64,
    /// Stall cycles charged at this site (commit gap + commit busy).
    pub stall_cycles: u64,
    /// Timing class (of the last execution; static per site).
    pub class: Option<InstClass>,
}

/// Number of fine stall kinds.
pub const N_KINDS: usize = StallKind::ALL.len();
/// Number of instruction classes.
pub const N_CLASSES: usize = CLASSES.len();

/// A recording [`Probe`] (see module docs).
#[derive(Debug)]
pub struct RecordingProbe {
    capacity: usize,
    ring: VecDeque<TraceRecord>,
    dropped: u64,
    programs: HashMap<u64, String>,
    current_program: u64,
    /// Stall cycles by class × fine kind (aggregated over all runs).
    cpi: [[u64; N_KINDS]; N_CLASSES],
    insts_by_class: [u64; N_CLASSES],
    /// Cycles the engine left unattributed (issue-limited "base").
    base_cycles: u64,
    total_cycles: u64,
    total_instructions: u64,
    runs: u64,
    hot: HashMap<(u64, usize), HotEntry>,
    /// Coarse stall cycles accumulated since `on_run_start`.
    run_coarse: [u64; 6],
    audit_failures: Vec<String>,
}

impl RecordingProbe {
    /// Default event-ring capacity.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Bound on retained audit-failure descriptions.
    const MAX_AUDIT_FAILURES: usize = 8;

    /// Creates a probe whose ring holds the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> RecordingProbe {
        assert!(capacity > 0, "ring capacity must be positive");
        RecordingProbe {
            capacity,
            ring: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
            programs: HashMap::new(),
            current_program: 0,
            cpi: [[0; N_KINDS]; N_CLASSES],
            insts_by_class: [0; N_CLASSES],
            base_cycles: 0,
            total_cycles: 0,
            total_instructions: 0,
            runs: 0,
            hot: HashMap::new(),
            run_coarse: [0; 6],
            audit_failures: Vec::new(),
        }
    }

    /// The recorded events still in the ring, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// Events evicted from the ring because it was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Kernel runs observed.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Total cycles across observed runs.
    pub fn cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Total retired instructions across observed runs.
    pub fn instructions(&self) -> u64 {
        self.total_instructions
    }

    /// Cycles the engine attributed to no stall (issue-limited base).
    pub fn base_cycles(&self) -> u64 {
        self.base_cycles
    }

    /// Retired-instruction count of one class.
    pub fn class_instructions(&self, class: InstClass) -> u64 {
        self.insts_by_class[class_index(class)]
    }

    /// Stall cycles in one class × kind cell.
    pub fn stall_cell(&self, class: InstClass, kind: StallKind) -> u64 {
        self.cpi[class_index(class)][kind.index()]
    }

    /// Total stall cycles of one fine kind across all classes.
    pub fn stall_of(&self, kind: StallKind) -> u64 {
        self.cpi.iter().map(|row| row[kind.index()]).sum()
    }

    /// The diagnostic name of an observed program, if seen.
    pub fn program_name(&self, id: u64) -> Option<&str> {
        self.programs.get(&id).map(String::as_str)
    }

    /// All observed programs `(id, name)`, sorted by id.
    pub fn programs(&self) -> Vec<(u64, &str)> {
        let mut v: Vec<(u64, &str)> = self
            .programs
            .iter()
            .map(|(&id, name)| (id, name.as_str()))
            .collect();
        v.sort_by_key(|&(id, _)| id);
        v
    }

    /// Descriptions of failed per-run audits (empty when the fine
    /// taxonomy partitioned the engine's accounting exactly).
    pub fn audit_failures(&self) -> &[String] {
        &self.audit_failures
    }

    /// The `n` hottest static instructions by stall cycles, then by
    /// execution count, program id and pc (fully deterministic order).
    pub fn hottest(&self, n: usize) -> Vec<((u64, usize), HotEntry)> {
        let mut v: Vec<((u64, usize), HotEntry)> = self.hot.iter().map(|(&k, &e)| (k, e)).collect();
        v.sort_by(|a, b| {
            (b.1.stall_cycles, b.1.count)
                .cmp(&(a.1.stall_cycles, a.1.count))
                .then(a.0.cmp(&b.0))
        });
        v.truncate(n);
        v
    }

    /// Forgets all recorded data (aggregates, ring, programs).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.dropped = 0;
        self.programs.clear();
        self.current_program = 0;
        self.cpi = [[0; N_KINDS]; N_CLASSES];
        self.insts_by_class = [0; N_CLASSES];
        self.base_cycles = 0;
        self.total_cycles = 0;
        self.total_instructions = 0;
        self.runs = 0;
        self.hot.clear();
        self.run_coarse = [0; 6];
        self.audit_failures.clear();
    }
}

impl Default for RecordingProbe {
    fn default() -> Self {
        RecordingProbe::new(Self::DEFAULT_CAPACITY)
    }
}

impl Probe for RecordingProbe {
    const ENABLED: bool = true;

    fn on_program(&mut self, id: u64, name: &str) {
        self.current_program = id;
        self.programs.entry(id).or_insert_with(|| name.to_string());
    }

    fn on_run_start(&mut self, _cycle: u64) {
        self.run_coarse = [0; 6];
    }

    fn on_retire(&mut self, ev: &RetireEvent) {
        let ci = class_index(ev.class);
        self.insts_by_class[ci] += 1;
        self.total_instructions += 1;
        let charged = ev.commit_gap + ev.extra_commit;
        if ev.commit_gap > 0 {
            self.cpi[ci][classify(ev).index()] += ev.commit_gap;
            self.run_coarse[ev.cat.index()] += ev.commit_gap;
        }
        if ev.extra_commit > 0 {
            // Commit-stage QBUFFER busy time: the engine charges it to
            // the Quetzal bucket unconditionally.
            self.cpi[ci][StallKind::QzAccess.index()] += ev.extra_commit;
            self.run_coarse[StallCat::Quetzal.index()] += ev.extra_commit;
        }
        let hot = self.hot.entry((self.current_program, ev.pc)).or_default();
        hot.count += 1;
        hot.stall_cycles += charged;
        hot.class = Some(ev.class);

        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceRecord {
            program: self.current_program,
            ev: *ev,
        });
    }

    fn on_run_end(&mut self, stats: &RunStats) {
        self.runs += 1;
        self.total_cycles += stats.cycles;
        self.base_cycles += stats.stall_cycles[StallCat::Base.index()];
        for cat in StallCat::all().into_iter().skip(1) {
            let got = self.run_coarse[cat.index()];
            let want = stats.stall_cycles[cat.index()];
            if got != want && self.audit_failures.len() < Self::MAX_AUDIT_FAILURES {
                self.audit_failures.push(format!(
                    "run {}: probe charged {got} cycles to {cat}, engine charged {want}",
                    self.runs
                ));
            }
        }
        self.run_coarse = [0; 6];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal_uarch::predecode::FuClass;
    use quetzal_uarch::{MemLevelMix, StallCat};

    fn ev(pc: usize, gap: u64, cat: StallCat) -> RetireEvent {
        RetireEvent {
            pc,
            class: InstClass::ScalarAlu,
            fu: FuClass::Scalar,
            dispatch: 0,
            ops_ready: 0,
            issue: 0,
            complete: 1,
            commit: 1 + gap,
            commit_gap: gap,
            extra_commit: 0,
            cat,
            dep_cat: StallCat::Frontend,
            mem: MemLevelMix::default(),
            store_ring_floor: 0,
            store_replay: false,
            qz_port_wait: 0,
            qz_latency: 0,
            mispredicted: false,
        }
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut p = RecordingProbe::new(4);
        p.on_program(7, "t");
        for pc in 0..10 {
            p.on_retire(&ev(pc, 0, StallCat::ScalarCompute));
        }
        assert_eq!(p.events().count(), 4);
        assert_eq!(p.dropped(), 6);
        assert_eq!(p.instructions(), 10);
        // Oldest were evicted: the ring holds pcs 6..10.
        assert_eq!(p.events().next().unwrap().ev.pc, 6);
    }

    #[test]
    fn audit_detects_mismatch_and_passes_when_consistent() {
        let mut p = RecordingProbe::new(16);
        p.on_run_start(0);
        p.on_retire(&ev(0, 3, StallCat::ScalarCompute));
        let mut stats = RunStats {
            cycles: 5,
            ..Default::default()
        };
        stats.stall_cycles[StallCat::ScalarCompute.index()] = 3;
        stats.stall_cycles[StallCat::Base.index()] = 2;
        p.on_run_end(&stats);
        assert!(p.audit_failures().is_empty());
        assert_eq!(p.base_cycles(), 2);

        p.on_run_start(0);
        p.on_retire(&ev(0, 2, StallCat::ScalarCompute));
        p.on_run_end(&stats); // engine says 3, probe saw 2
        assert_eq!(p.audit_failures().len(), 1);
    }

    #[test]
    fn hottest_is_deterministic_and_ranked() {
        let mut p = RecordingProbe::new(16);
        p.on_program(1, "k");
        p.on_retire(&ev(0, 1, StallCat::ScalarCompute));
        p.on_retire(&ev(1, 5, StallCat::ScalarCompute));
        p.on_retire(&ev(1, 5, StallCat::ScalarCompute));
        let top = p.hottest(2);
        assert_eq!(top[0].0, (1, 1));
        assert_eq!(top[0].1.stall_cycles, 10);
        assert_eq!(top[0].1.count, 2);
        assert_eq!(top[1].0, (1, 0));
    }
}
