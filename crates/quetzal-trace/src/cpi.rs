//! CPI-stack rendering.
//!
//! A CPI stack decomposes a kernel's cycles-per-instruction into
//! additive components: the issue-limited base plus one term per stall
//! cause. Because the fine [`StallKind`] taxonomy partitions exactly
//! the cycles the engine attributed (see [`crate::stall`]), the stack's
//! terms sum to the measured CPI — the property that makes the paper's
//! "where do the gather cycles go" argument quantitative.

use crate::recording::RecordingProbe;
use crate::stall::{class_label, StallKind, CLASSES};

/// An immutable CPI-stack snapshot extracted from a probe.
#[derive(Debug, Clone, PartialEq)]
pub struct CpiStack {
    /// Kernel label (for rendering).
    pub name: String,
    /// Total cycles across observed runs.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Issue-limited (unattributed) cycles.
    pub base_cycles: u64,
    /// Stall cycles per fine kind, summed over classes.
    pub by_kind: [u64; StallKind::ALL.len()],
    /// `(class label, instructions, stall cycles per kind)` per
    /// instruction class with at least one retired instruction.
    pub by_class: Vec<(&'static str, u64, [u64; StallKind::ALL.len()])>,
}

impl CpiStack {
    /// Snapshots a probe's aggregates into a stack labelled `name`.
    pub fn from_probe(name: &str, probe: &RecordingProbe) -> CpiStack {
        let mut by_kind = [0u64; StallKind::ALL.len()];
        let mut by_class = Vec::new();
        for &class in &CLASSES {
            let insts = probe.class_instructions(class);
            let mut row = [0u64; StallKind::ALL.len()];
            for kind in StallKind::ALL {
                let v = probe.stall_cell(class, kind);
                row[kind.index()] = v;
                by_kind[kind.index()] += v;
            }
            if insts > 0 {
                by_class.push((class_label(class), insts, row));
            }
        }
        CpiStack {
            name: name.to_string(),
            cycles: probe.cycles(),
            instructions: probe.instructions(),
            base_cycles: probe.base_cycles(),
            by_kind,
            by_class,
        }
    }

    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Total stall cycles of one kind.
    pub fn kind_cycles(&self, kind: StallKind) -> u64 {
        self.by_kind[kind.index()]
    }

    /// Memory-hierarchy stall cycles (store-ring + L1 + L2 + DRAM +
    /// memory-dependence waits) — the bucket the paper's QBUFFER claim
    /// is about.
    pub fn memory_stall_cycles(&self) -> u64 {
        self.kind_cycles(StallKind::StoreRing)
            + self.kind_cycles(StallKind::L1)
            + self.kind_cycles(StallKind::L2)
            + self.kind_cycles(StallKind::Dram)
            + self.kind_cycles(StallKind::DepMemory)
    }

    /// QUETZAL stall cycles (port conflicts, access latency,
    /// dependence waits on QBUFFER results).
    pub fn quetzal_stall_cycles(&self) -> u64 {
        self.kind_cycles(StallKind::QzPort)
            + self.kind_cycles(StallKind::QzAccess)
            + self.kind_cycles(StallKind::DepQuetzal)
    }

    /// Renders the stack as an aligned text table: one row per
    /// component, cycles, share of total, and CPI contribution.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let cyc = self.cycles.max(1) as f64;
        let ins = self.instructions.max(1) as f64;
        out.push_str(&format!(
            "CPI stack: {} ({} cycles, {} instructions, CPI {:.3})\n",
            self.name,
            self.cycles,
            self.instructions,
            self.cpi()
        ));
        out.push_str(&format!(
            "  {:<12} {:>12} {:>7} {:>8}\n",
            "component", "cycles", "share", "cpi"
        ));
        let mut row = |label: &str, v: u64| {
            if v > 0 {
                out.push_str(&format!(
                    "  {:<12} {:>12} {:>6.1}% {:>8.3}\n",
                    label,
                    v,
                    100.0 * v as f64 / cyc,
                    v as f64 / ins
                ));
            }
        };
        row("base", self.base_cycles);
        for kind in StallKind::ALL {
            row(kind.label(), self.by_kind[kind.index()]);
        }
        out
    }

    /// Renders the class × kind matrix (rows: classes that retired at
    /// least one instruction; columns: kinds with any stall cycles).
    pub fn render_by_class(&self) -> String {
        let live: Vec<StallKind> = StallKind::ALL
            .into_iter()
            .filter(|k| self.by_kind[k.index()] > 0)
            .collect();
        let mut out = String::new();
        out.push_str(&format!("{:<8} {:>10}", "class", "insts"));
        for k in &live {
            out.push_str(&format!(" {:>11}", k.label()));
        }
        out.push('\n');
        for (label, insts, row) in &self.by_class {
            out.push_str(&format!("{label:<8} {insts:>10}"));
            for k in &live {
                out.push_str(&format!(" {:>11}", row[k.index()]));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal_uarch::predecode::FuClass;
    use quetzal_uarch::{MemLevelMix, Probe, RetireEvent, RunStats, StallCat};

    fn load_ev(gap: u64, l1_miss: bool) -> RetireEvent {
        RetireEvent {
            pc: 0,
            class: quetzal_isa::InstClass::ScalarLoad,
            fu: FuClass::Load,
            dispatch: 0,
            ops_ready: 0,
            issue: 0,
            complete: gap,
            commit: gap,
            commit_gap: gap,
            extra_commit: 0,
            cat: StallCat::Memory,
            dep_cat: StallCat::Frontend,
            mem: MemLevelMix {
                l1_hits: u64::from(!l1_miss),
                l1_misses: u64::from(l1_miss),
                l2_misses: 0,
            },
            store_ring_floor: 0,
            store_replay: false,
            qz_port_wait: 0,
            qz_latency: 0,
            mispredicted: false,
        }
    }

    #[test]
    fn stack_sums_to_engine_accounting() {
        let mut p = RecordingProbe::new(16);
        p.on_program(1, "k");
        p.on_run_start(0);
        p.on_retire(&load_ev(4, false));
        p.on_retire(&load_ev(30, true));
        let mut stats = RunStats {
            cycles: 40,
            ..Default::default()
        };
        stats.stall_cycles[StallCat::Memory.index()] = 34;
        stats.stall_cycles[StallCat::Base.index()] = 6;
        p.on_run_end(&stats);
        assert!(p.audit_failures().is_empty());

        let stack = CpiStack::from_probe("k", &p);
        assert_eq!(stack.kind_cycles(StallKind::L1), 4);
        assert_eq!(stack.kind_cycles(StallKind::L2), 30);
        let total: u64 = stack.base_cycles + stack.by_kind.iter().sum::<u64>();
        assert_eq!(total, stack.cycles);
        let rendered = stack.render();
        assert!(rendered.contains("l2"));
        assert!(stack.render_by_class().contains("sload"));
    }
}
