//! # quetzal-trace — pipeline observability for the QUETZAL uarch model
//!
//! Zero-cost tracing layer over `quetzal-uarch`'s out-of-order timing
//! engine. The engine is monomorphized over a
//! [`Probe`](quetzal_uarch::Probe); this crate provides the recording
//! implementation and everything built on top of it:
//!
//! * [`RecordingProbe`] — bounded event ring plus streaming aggregation
//!   of every retired dynamic instruction;
//! * [`StallKind`] — the fine stall taxonomy (frontend, dependency by
//!   producer class, FU busy, store ring, L1/L2/DRAM, QBUFFER port and
//!   access) that partitions exactly the cycles the engine attributed;
//! * [`CpiStack`] — per-kernel CPI stacks aggregated by `InstClass`,
//!   rendered as text tables;
//! * [`chrome`] — Chrome `trace_event` JSON export loadable in
//!   Perfetto / `chrome://tracing`;
//! * [`json`] — a strict in-tree JSON parser used to validate emitted
//!   documents (zero-external-dependency policy, DESIGN.md §5).
//!
//! The load-bearing invariant: **observation never perturbs timing**.
//! With the default `NullProbe` the instrumentation compiles out
//! entirely; with `RecordingProbe` attached, every `RunStats` field is
//! bit-identical to the unprobed run (`tests/probe_neutrality.rs` in
//! `quetzal` replays the golden grid both ways), and the fine taxonomy
//! audits itself against the engine's coarse accounting at every run
//! end.

#![warn(missing_docs)]

pub mod chrome;
pub mod cpi;
pub mod json;
pub mod recording;
pub mod stall;

pub use cpi::CpiStack;
pub use recording::{HotEntry, RecordingProbe, TraceRecord};
pub use stall::{class_index, class_label, classify, StallKind, CLASSES};
