//! Chrome `trace_event` export.
//!
//! Serialises the probe's event ring into the Chrome trace-event JSON
//! format (the `{"traceEvents": [...]}` object form), loadable in
//! Perfetto / `chrome://tracing`. One timeline row (`tid`) per
//! instruction class, one process (`pid`) per program; each dynamic
//! instruction is a complete ("X") event spanning dispatch→commit with
//! issue/writeback and the stall classification in `args`. Cycles map
//! 1:1 to the viewer's microseconds (`ts` is unitless in the format).
//!
//! Emission is hand-rolled: the repo's zero-external-dependency policy
//! (DESIGN.md §5) rules out serde, and the format needs only strings,
//! integers and flat objects. Strings are escaped per JSON; the
//! in-tree parser ([`crate::json`]) round-trips the output in tests
//! and in CI's smoke validation.

use crate::recording::RecordingProbe;
use crate::stall::{class_index, class_label, classify};

/// Escapes a string for a JSON string literal (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the probe's retained events as a Chrome trace JSON document.
pub fn render(probe: &RecordingProbe) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |ev: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        out.push_str(&ev);
        *first = false;
    };

    // Metadata: process names (programs) and thread names (classes).
    for (id, name) in probe.programs() {
        push(
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{id},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(name)
            ),
            &mut first,
        );
        for class in crate::stall::CLASSES {
            push(
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{id},\"tid\":{},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    class_index(class),
                    class_label(class)
                ),
                &mut first,
            );
        }
    }

    for rec in probe.events() {
        let ev = &rec.ev;
        let dur = ev.commit.saturating_sub(ev.dispatch).max(1);
        push(
            format!(
                "{{\"name\":\"pc {} {}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{},\"tid\":{},\"args\":{{\
                 \"issue\":{},\"writeback\":{},\"commit_gap\":{},\"stall\":\"{}\",\
                 \"l1_hits\":{},\"l1_misses\":{},\"l2_misses\":{}}}}}",
                ev.pc,
                class_label(ev.class),
                class_label(ev.class),
                ev.dispatch,
                dur,
                rec.program,
                class_index(ev.class),
                ev.issue,
                ev.complete,
                ev.commit_gap,
                classify(ev).label(),
                ev.mem.l1_hits,
                ev.mem.l1_misses,
                ev.mem.l2_misses,
            ),
            &mut first,
        );
    }

    out.push_str("],\"displayTimeUnit\":\"ns\",\"otherData\":{\"dropped_events\":");
    out.push_str(&probe.dropped().to_string());
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;
    use quetzal_uarch::predecode::FuClass;
    use quetzal_uarch::{MemLevelMix, Probe, RetireEvent, StallCat};

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn trace_round_trips_through_the_parser() {
        let mut p = RecordingProbe::new(8);
        p.on_program(3, "kernel \"x\"");
        p.on_retire(&RetireEvent {
            pc: 5,
            class: quetzal_isa::InstClass::Gather,
            fu: FuClass::GatherPipe,
            dispatch: 10,
            ops_ready: 10,
            issue: 12,
            complete: 31,
            commit: 31,
            commit_gap: 19,
            extra_commit: 0,
            cat: StallCat::Memory,
            dep_cat: StallCat::Frontend,
            mem: MemLevelMix {
                l1_hits: 8,
                l1_misses: 0,
                l2_misses: 0,
            },
            store_ring_floor: 0,
            store_replay: false,
            qz_port_wait: 0,
            qz_latency: 0,
            mispredicted: false,
        });
        let doc = render(&p);
        let v = Value::parse(&doc).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        let x = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .expect("one X event");
        assert_eq!(x.get("ts").and_then(Value::as_u64), Some(10));
        assert_eq!(x.get("dur").and_then(Value::as_u64), Some(21));
        assert_eq!(
            x.get("args")
                .and_then(|a| a.get("stall"))
                .and_then(Value::as_str),
            Some("l1")
        );
    }
}
