//! Minimal in-tree JSON parser and emitter.
//!
//! Exists to *validate* the JSON this workspace emits (Chrome traces,
//! `BENCH_uarch.json`) and to carry the `qzserved` wire protocol
//! without an external dependency (DESIGN.md §5's
//! zero-external-dependency policy). It is a strict recursive-descent
//! parser for the JSON grammar — objects, arrays, strings with escape
//! sequences, numbers, booleans, null — with a depth bound, plus a
//! deterministic serialiser ([`Value::dump`]). It is not a
//! performance-oriented deserialiser and does not preserve number
//! fidelity beyond `f64`/`u64`.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (also kept as `u64` when integral and in range).
    Num(f64),
    /// String (escapes resolved).
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object (sorted keys; duplicate keys keep the last value).
    Object(BTreeMap<String, Value>),
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Value {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on any deviation from the JSON grammar.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage after document"));
        }
        Ok(v)
    }

    /// Member of an object (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialises the value as a compact JSON document.
    ///
    /// The output is **deterministic**: object keys come out in sorted
    /// order (they are stored in a `BTreeMap`), integral numbers in the
    /// `f64`-exact range print without a fractional part, and no
    /// whitespace is emitted. `Value::parse(v.dump())` round-trips for
    /// every finite value; non-finite numbers (which JSON cannot
    /// represent) serialise as `null`.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.dump_into(&mut out);
        out
    }

    fn dump_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => dump_number(*n, out),
            Value::Str(s) => dump_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.dump_into(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (key, val)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    dump_string(key, out);
                    out.push(':');
                    val.dump_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Integers that `f64` represents exactly (|n| ≤ 2^53) print without a
/// fractional part; everything else uses Rust's shortest-round-trip
/// float formatting. Non-finite values serialise as `null`.
fn dump_number(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= EXACT {
        write!(out, "{}", n as i64).expect("write to String");
    } else {
        write!(out, "{n}").expect("write to String");
    }
}

fn dump_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Array(items)
    }
}

impl From<BTreeMap<String, Value>> for Value {
    fn from(map: BTreeMap<String, Value>) -> Value {
        Value::Object(map)
    }
}

impl FromIterator<(String, Value)> for Value {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Value {
        Value::Object(iter.into_iter().collect())
    }
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("bad code point"))?
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-borrow the source so multi-byte UTF-8 sequences
                    // pass through intact.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] >= 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.err("bad hex digit")),
            };
            v = v * 16 + d as u32;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0 alone or nonzero-led digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected fraction digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let n: f64 = text
            .parse()
            .map_err(|_| self.err("unrepresentable number"))?;
        Ok(Value::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            Value::parse(r#"{"a": [1, 2.5, -3e2, true, false, null], "b": {"c": "x\ny \u00e9"}}"#)
                .unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 6);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\ny é")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "01",
            "1.",
            "\"\\q\"",
            "nul",
            "[1]]",
            "\"\u{1}\"",
            "\"\\ud800\"",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn surrogate_pair_decodes() {
        let v = Value::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Value::parse("{} x").is_err());
        assert!(Value::parse("{}  ").is_ok());
    }

    #[test]
    fn dump_round_trips() {
        for doc in [
            r#"{"a":[1,2.5,-300,true,false,null],"b":{"c":"x\ny é 😀"}}"#,
            "[]",
            "{}",
            r#""quote \" backslash \\ tab \t""#,
            "-9007199254740992",
            "0.125",
            "[[[1]]]",
        ] {
            let v = Value::parse(doc).unwrap();
            let dumped = v.dump();
            assert_eq!(Value::parse(&dumped).unwrap(), v, "doc: {doc}");
        }
    }

    #[test]
    fn dump_is_deterministic_and_sorted() {
        let v = Value::parse(r#"{"zeta": 1, "alpha": {"y": [2, 3], "x": "s"}}"#).unwrap();
        assert_eq!(v.dump(), r#"{"alpha":{"x":"s","y":[2,3]},"zeta":1}"#);
    }

    #[test]
    fn dump_prints_exact_integers_without_fraction() {
        assert_eq!(Value::from(42u64).dump(), "42");
        assert_eq!(Value::from(-7i64).dump(), "-7");
        assert_eq!(Value::from(0.5f64).dump(), "0.5");
        assert_eq!(Value::Num(f64::NAN).dump(), "null");
        assert_eq!(Value::Num(f64::INFINITY).dump(), "null");
    }

    #[test]
    fn dump_escapes_control_characters() {
        let v = Value::Str("a\u{1}b\u{8}c".to_string());
        let dumped = v.dump();
        assert_eq!(dumped, "\"a\\u0001b\\bc\"");
        assert_eq!(Value::parse(&dumped).unwrap(), v);
    }

    #[test]
    fn object_builds_from_iterator() {
        let v: Value = [
            ("b".to_string(), Value::from(2u64)),
            ("a".to_string(), Value::from("x")),
        ]
        .into_iter()
        .collect();
        assert_eq!(v.dump(), r#"{"a":"x","b":2}"#);
    }
}
