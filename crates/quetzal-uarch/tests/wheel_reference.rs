//! Differential pin of the event-driven timing engine against a
//! verbatim reference model built from the seed's linear-scan
//! structures.
//!
//! `OooTiming` now tracks FU pools as calendar-queue timing wheels, the
//! store-forwarding window behind a granule index, and the ROB as a
//! fixed ring (`quetzal_uarch::wheel`). The golden tests pin it on the
//! in-tree kernels; this suite pins it on *adversarial randomized
//! schedules* — seeded micro-op streams with deliberately colliding
//! addresses (clean and misaligned store-to-load forwarding, replay),
//! predictor-aliasing pcs, huge operand-arrival jumps (wheel rotation
//! and overflow), tiny ROB/store-window configs, and cycle-budget
//! exhaustion edges — by re-implementing the seed engine's exact retire
//! logic over `Vec` min-scans, a scan-everything store ring and a
//! `VecDeque` ROB, and asserting `RunStats` equality retire-for-retire.
//!
//! The RNG is an in-tree SplitMix64 (the repo holds a zero-dependency
//! line); every case is seeded and reproducible.

use std::collections::VecDeque;

use quetzal_isa::{InstClass, Reg};
use quetzal_uarch::cache::MemSystem;
use quetzal_uarch::ooo::{DynInst, ExecSink, OooTiming};
use quetzal_uarch::predecode::{FuClass, MicroOp, NO_DEF};
use quetzal_uarch::{CoreConfig, RunStats, StallCat};

const BPRED_ENTRIES: usize = 4096;

/// SplitMix64.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The seed engine, reconstructed verbatim over linear structures.
/// Every method mirrors the corresponding seed `OooTiming` code path
/// line for line; only the data structures differ from the shipped
/// engine.
struct RefEngine {
    cfg: CoreConfig,
    mem: MemSystem,
    reg_ready: [u64; Reg::FLAT_COUNT],
    reg_taint: [StallCat; Reg::FLAT_COUNT],
    front_cycle: u64,
    front_slots: u64,
    fetch_resume: u64,
    fu_scalar: Vec<u64>,
    fu_vector: Vec<u64>,
    load_ports: Vec<u64>,
    store_ports: Vec<u64>,
    gather_pipe: u64,
    qz_ports: Vec<u64>,
    store_slots: Vec<(u64, u32, u64)>,
    store_len: usize,
    store_head: usize,
    rob: VecDeque<u64>,
    commit_cycle: u64,
    commit_slots: u64,
    run_start_cycle: u64,
    cycle_budget: u64,
    bpred: Box<[u8; BPRED_ENTRIES]>,
    stats: RunStats,
}

impl RefEngine {
    fn new(cfg: CoreConfig) -> RefEngine {
        let mem = MemSystem::new(&cfg);
        RefEngine {
            fu_scalar: vec![0; cfg.scalar_alus.max(1)],
            fu_vector: vec![0; cfg.vector_fus.max(1)],
            load_ports: vec![0; cfg.load_ports.max(1)],
            store_ports: vec![0; cfg.store_ports.max(1)],
            gather_pipe: 0,
            qz_ports: vec![0; cfg.qz_read_ports.max(1)],
            store_slots: vec![(0, 0, 0); cfg.store_ring_slots.max(1)],
            store_len: 0,
            store_head: 0,
            mem,
            cfg,
            reg_ready: [0; Reg::FLAT_COUNT],
            reg_taint: [StallCat::Base; Reg::FLAT_COUNT],
            front_cycle: 0,
            front_slots: 0,
            fetch_resume: 0,
            rob: VecDeque::new(),
            commit_cycle: 0,
            commit_slots: 0,
            run_start_cycle: 0,
            cycle_budget: u64::MAX,
            bpred: Box::new([1u8; BPRED_ENTRIES]),
            stats: RunStats::default(),
        }
    }

    fn begin_run(&mut self) {
        self.stats = RunStats::default();
        self.run_start_cycle = self.commit_cycle;
        self.front_cycle = self.front_cycle.max(self.commit_cycle);
        self.front_slots = 0;
        self.fetch_resume = self.fetch_resume.max(self.commit_cycle);
    }

    fn end_run(&mut self) -> RunStats {
        let mut stats = std::mem::take(&mut self.stats);
        stats.cycles = self.commit_cycle - self.run_start_cycle;
        let attributed: u64 = stats.stall_cycles.iter().skip(1).sum();
        stats.stall_cycles[StallCat::Base.index()] = stats.cycles.saturating_sub(attributed);
        stats
    }

    fn budget_exceeded(&self) -> Option<u64> {
        (self.commit_cycle - self.run_start_cycle > self.cycle_budget).then_some(self.cycle_budget)
    }

    fn alloc_unit(units: &mut [u64], at: u64, busy: u64) -> u64 {
        let mut best = 0;
        for (i, &t) in units.iter().enumerate() {
            if t < units[best] {
                best = i;
            }
        }
        let start = units[best].max(at);
        units[best] = start + busy;
        start
    }

    fn dispatch(&mut self) -> u64 {
        let mut floor = self.fetch_resume;
        if self.rob.len() >= self.cfg.rob_size {
            if let Some(oldest) = self.rob.pop_front() {
                floor = floor.max(oldest);
            }
        }
        if floor > self.front_cycle {
            self.front_cycle = floor;
            self.front_slots = 0;
        }
        if self.front_slots >= self.cfg.dispatch_width {
            self.front_cycle += 1;
            self.front_slots = 0;
        }
        self.front_slots += 1;
        self.front_cycle
    }

    fn commit(&mut self, completion: u64, cat: StallCat, extra_commit_busy: u64) {
        if self.commit_slots >= self.cfg.commit_width {
            self.commit_cycle += 1;
            self.commit_slots = 0;
        }
        let ideal = self.commit_cycle;
        let commit_at = ideal.max(completion);
        if commit_at > ideal {
            self.stats.stall_cycles[cat.index()] += commit_at - ideal;
            self.commit_cycle = commit_at;
            self.commit_slots = 0;
        }
        self.commit_slots += 1;
        if extra_commit_busy > 0 {
            self.stats.stall_cycles[StallCat::Quetzal.index()] += extra_commit_busy;
            self.commit_cycle += extra_commit_busy;
            self.commit_slots = 0;
        }
        self.rob.push_back(self.commit_cycle);
        if self.rob.len() > self.cfg.rob_size {
            self.rob.pop_front();
        }
    }

    fn operands_ready(&self, uop: &MicroOp) -> (u64, StallCat) {
        let mut t = 0;
        let mut cat = StallCat::Frontend;
        for &u in uop.uses() {
            let i = u as usize;
            if self.reg_ready[i] >= t {
                t = self.reg_ready[i];
                cat = self.reg_taint[i];
            }
        }
        (t, cat)
    }

    fn set_defs(&mut self, uop: &MicroOp, ready: u64, cat: StallCat) {
        if uop.def != NO_DEF {
            let i = uop.def as usize;
            self.reg_ready[i] = ready;
            self.reg_taint[i] = cat;
        }
    }

    fn forwarding_hazard(&self, addr: u64, size: u32) -> (u64, bool) {
        let mut floor = 0;
        let mut replay = false;
        for &(sa, ss, done) in &self.store_slots[..self.store_len] {
            let overlap =
                addr < sa.saturating_add(ss as u64) && sa < addr.saturating_add(size as u64);
            if !overlap {
                continue;
            }
            if sa == addr && ss == size {
                floor = floor.max(done);
            } else {
                floor = floor.max(done + self.cfg.store_fwd_penalty);
                replay = true;
            }
        }
        (floor, replay)
    }

    fn record_store(&mut self, addr: u64, size: u32, done: u64) {
        let cap = self.store_slots.len();
        self.store_slots[self.store_head] = (addr, size, done);
        self.store_head = (self.store_head + 1) % cap;
        self.store_len = (self.store_len + 1).min(cap);
    }

    fn compute_pool(&mut self, fu: FuClass) -> &mut [u64] {
        match fu {
            FuClass::Scalar => &mut self.fu_scalar,
            FuClass::Vector => &mut self.fu_vector,
            _ => panic!("not a shared compute pool: {fu:?}"),
        }
    }

    fn predict(&mut self, pc: usize, taken: bool) -> bool {
        let idx = pc % BPRED_ENTRIES;
        let predicted = self.bpred[idx] >= 2;
        if taken {
            self.bpred[idx] = (self.bpred[idx] + 1).min(3);
        } else {
            self.bpred[idx] = self.bpred[idx].saturating_sub(1);
        }
        predicted == taken
    }

    fn retire(&mut self, uop: &MicroOp, d: &DynInst) {
        let class = uop.class;
        let dispatched = self.dispatch();
        let (ops_ready, ops_cat) = self.operands_ready(uop);
        let ready_at = dispatched.max(ops_ready);
        self.stats.instructions += 1;
        self.stats.uops += 1;

        let (completion, cat, extra_commit) = match class {
            InstClass::ScalarAlu | InstClass::ScalarMul => {
                let lat = if class == InstClass::ScalarMul {
                    self.cfg.scalar_mul_lat
                } else {
                    self.cfg.scalar_alu_lat
                };
                let start = Self::alloc_unit(self.compute_pool(uop.fu), ready_at, 1);
                let cat = if ops_ready > dispatched {
                    ops_cat
                } else {
                    StallCat::ScalarCompute
                };
                (start + lat, cat, 0)
            }
            InstClass::Branch => {
                self.stats.branches += 1;
                let start = Self::alloc_unit(self.compute_pool(uop.fu), ready_at, 1);
                let completion = start + self.cfg.scalar_alu_lat;
                if uop.is_cond_branch && !self.predict(d.pc, d.taken) {
                    self.stats.mispredicts += 1;
                    self.fetch_resume = completion + self.cfg.mispredict_penalty;
                }
                let cat = if ops_ready > dispatched {
                    ops_cat
                } else {
                    StallCat::Frontend
                };
                (completion, cat, 0)
            }
            InstClass::ScalarLoad | InstClass::VectorLoad => {
                let start = Self::alloc_unit(&mut self.load_ports, ready_at, 1);
                let mut done = start;
                for &(addr, size) in &d.mem {
                    self.stats.mem_requests += 1;
                    done = done.max(self.mem.access(
                        d.pc as u64,
                        addr,
                        size as usize,
                        false,
                        start,
                        &mut self.stats,
                    ));
                    let (floor, replay) = self.forwarding_hazard(addr, size);
                    if replay {
                        let r = Self::alloc_unit(&mut self.load_ports, start, 1);
                        done = done.max(r + self.mem.l1_latency());
                    }
                    done = done.max(floor);
                }
                (done.max(start + 1), StallCat::Memory, 0)
            }
            InstClass::ScalarStore | InstClass::VectorStore => {
                let start = Self::alloc_unit(&mut self.store_ports, ready_at, 1);
                let mut done = start;
                for &(addr, size) in &d.mem {
                    self.stats.mem_requests += 1;
                    done = done.max(self.mem.access(
                        d.pc as u64,
                        addr,
                        size as usize,
                        true,
                        start,
                        &mut self.stats,
                    ));
                }
                for &(addr, size) in &d.mem {
                    self.record_store(addr, size, done);
                }
                (done.max(start + 1), StallCat::Memory, 0)
            }
            InstClass::Gather | InstClass::Scatter => {
                self.stats.indexed_ops += 1;
                let is_store = class == InstClass::Scatter;
                let start = ready_at + self.cfg.gather_crack_overhead;
                let mut done = start;
                for &(addr, size) in &d.mem {
                    let at = self.gather_pipe.max(start);
                    self.gather_pipe = at + 1;
                    self.stats.mem_requests += 1;
                    self.stats.uops += 1;
                    done = done.max(self.mem.access(
                        d.pc as u64,
                        addr,
                        size as usize,
                        is_store,
                        at,
                        &mut self.stats,
                    ));
                }
                (done.max(start + 1), StallCat::Memory, 0)
            }
            InstClass::VectorAlu | InstClass::VectorMul | InstClass::VectorHorizontal => {
                let lat = match class {
                    InstClass::VectorMul => self.cfg.vector_mul_lat,
                    InstClass::VectorHorizontal => self.cfg.vector_horiz_lat,
                    _ => self.cfg.vector_alu_lat,
                };
                let start = Self::alloc_unit(self.compute_pool(uop.fu), ready_at, 1);
                let cat = if ops_ready > dispatched {
                    ops_cat
                } else {
                    StallCat::VectorCompute
                };
                (start + lat, cat, 0)
            }
            InstClass::Predicate => {
                let start = Self::alloc_unit(self.compute_pool(uop.fu), ready_at, 1);
                let cat = if ops_ready > dispatched {
                    ops_cat
                } else {
                    StallCat::ScalarCompute
                };
                (start + self.cfg.pred_lat, cat, 0)
            }
            InstClass::QzRead => {
                self.stats.qz_accesses += 1;
                let start = Self::alloc_unit(&mut self.qz_ports, ready_at, 1);
                (start + d.qz_latency, StallCat::Quetzal, 0)
            }
            InstClass::QzCountOp => {
                let start = Self::alloc_unit(self.compute_pool(uop.fu), ready_at, 1);
                (start + d.qz_latency.max(1), StallCat::VectorCompute, 0)
            }
            InstClass::QzWrite | InstClass::QzConfig => {
                self.stats.qz_accesses += 1;
                (ready_at, StallCat::Quetzal, d.qz_latency.saturating_sub(1))
            }
            InstClass::Halt => (ready_at, StallCat::Frontend, 0),
        };

        self.set_defs(uop, completion, cat);
        self.commit(completion, cat, extra_commit);
    }
}

/// Builds a synthetic micro-op + dynamic record for a weighted-random
/// instruction class. Addresses are drawn from a small arena so loads
/// collide with in-flight stores both cleanly (same address and size)
/// and misaligned (replay path); pcs alias the predictor table.
fn random_inst(rng: &mut Rng) -> (MicroOp, DynInst) {
    let class = match rng.below(20) {
        0..=4 => InstClass::ScalarAlu,
        5 => InstClass::ScalarMul,
        6..=7 => InstClass::Branch,
        8..=10 => InstClass::ScalarLoad,
        11 => InstClass::VectorLoad,
        12..=13 => InstClass::ScalarStore,
        14 => InstClass::VectorStore,
        15 => InstClass::Gather,
        16 => InstClass::VectorAlu,
        17 => InstClass::QzRead,
        18 => InstClass::QzWrite,
        _ => InstClass::Predicate,
    };
    let fu = match class {
        InstClass::ScalarAlu | InstClass::ScalarMul | InstClass::Branch | InstClass::Predicate => {
            FuClass::Scalar
        }
        InstClass::VectorAlu => FuClass::Vector,
        InstClass::ScalarLoad | InstClass::VectorLoad => FuClass::Load,
        InstClass::ScalarStore | InstClass::VectorStore => FuClass::Store,
        InstClass::Gather => FuClass::GatherPipe,
        InstClass::QzRead => FuClass::QzPort,
        _ => FuClass::None,
    };
    let n_uses = rng.below(3) as u8;
    let mut uses = [0u8; 4];
    for u in uses.iter_mut().take(n_uses as usize) {
        *u = rng.below(Reg::FLAT_COUNT as u64 / 2) as u8;
    }
    let def = if rng.below(3) == 0 {
        NO_DEF
    } else {
        rng.below(Reg::FLAT_COUNT as u64 / 2) as u8
    };
    let uop = MicroOp {
        class,
        fu,
        n_uses,
        uses,
        def,
        is_cond_branch: class == InstClass::Branch,
        touches_mem: matches!(
            class,
            InstClass::ScalarLoad
                | InstClass::ScalarStore
                | InstClass::VectorLoad
                | InstClass::VectorStore
                | InstClass::Gather
        ),
    };

    let mut d = DynInst {
        pc: rng.below(2 * BPRED_ENTRIES as u64) as usize,
        ..DynInst::default()
    };
    d.taken = rng.below(2) == 0;
    // Address arena: 64 base slots 8 bytes apart, with occasional ±4
    // jitter and mixed sizes so loads hit clean forwards, misaligned
    // overlaps (replay) and misses against the store window. A rare
    // far-away address lands in cold cache lines (big latency jumps —
    // wheel rotation and overflow stress).
    let gen_access = |rng: &mut Rng| -> (u64, u32) {
        let base = 0x4000 + rng.below(64) * 8;
        let addr = match rng.below(8) {
            0 => base + 4,
            1 => base.saturating_sub(3),
            2 => 0x40_0000 + rng.below(1 << 14) * 64,
            _ => base,
        };
        let size = match rng.below(8) {
            0 => 64,
            1 => 13,
            2 => 4,
            _ => 8,
        };
        (addr, size)
    };
    match class {
        InstClass::ScalarLoad | InstClass::ScalarStore => {
            d.mem.push(gen_access(rng));
        }
        InstClass::VectorLoad | InstClass::VectorStore => {
            for _ in 0..=rng.below(2) {
                d.mem.push(gen_access(rng));
            }
        }
        InstClass::Gather => {
            for _ in 0..8 {
                d.mem.push(gen_access(rng));
            }
        }
        InstClass::QzRead | InstClass::QzWrite => {
            d.qz_latency = rng.below(12);
        }
        _ => {}
    }
    (uop, d)
}

/// Drives the shipped engine and the reference through an identical
/// seeded schedule (two back-to-back runs, warm state in between) and
/// asserts retire-for-retire budget agreement plus `RunStats` equality.
fn assert_engines_agree(cfg: CoreConfig, seed: u64, n: usize, budget: Option<u64>) {
    let mut t = OooTiming::new(cfg.clone());
    let mut r = RefEngine::new(cfg);
    if let Some(b) = budget {
        t.set_cycle_budget(b);
        r.cycle_budget = b;
    }
    for run in 0..2 {
        let mut rng = Rng(seed ^ (run as u64) << 48);
        t.begin_run();
        r.begin_run();
        for i in 0..n {
            let (uop, d) = random_inst(&mut rng);
            ExecSink::retire(&mut t, &uop, &d);
            r.retire(&uop, &d);
            assert_eq!(
                t.cycle_budget_exceeded(),
                r.budget_exceeded(),
                "budget check diverged (seed {seed} run {run} inst {i})"
            );
        }
        let st = t.end_run();
        let sr = r.end_run();
        assert_eq!(st, sr, "RunStats diverged (seed {seed} run {run})");
        assert_eq!(t.now(), r.commit_cycle, "clock diverged (seed {seed})");
    }
}

#[test]
fn default_config_matches_reference() {
    for seed in 0..8 {
        assert_engines_agree(CoreConfig::a64fx_like(), seed, 3000, None);
    }
}

#[test]
fn wide_config_matches_reference() {
    for seed in 0..4 {
        assert_engines_agree(CoreConfig::wide8(), 0x81DE ^ seed, 3000, None);
    }
}

#[test]
fn stress_config_matches_reference() {
    // Tiny structures force constant eviction, ROB backpressure and
    // store-window wraparound; extra QZ ports exercise the multi-unit
    // wheel on the QzRead path.
    let mut cfg = CoreConfig::a64fx_like()
        .with_issue_width(1)
        .with_rob(2)
        .with_store_ring(2);
    cfg.qz_read_ports = 2;
    cfg.store_fwd_penalty = 3;
    for seed in 0..4 {
        assert_engines_agree(cfg.clone(), 0x57E55 ^ seed, 2000, None);
    }
}

#[test]
fn budget_exhaustion_edges_match_reference() {
    // Small budgets so the watchdog fires mid-schedule; both engines
    // must report the identical exceeded state after every retire and
    // identical stats for the completed part.
    for budget in [0, 1, 17, 500] {
        assert_engines_agree(CoreConfig::a64fx_like(), 0xB0D6E7, 600, Some(budget));
    }
}

#[test]
fn reset_replays_bit_identically() {
    // reset() must restore cold boot exactly: the same schedule replayed
    // after reset produces the stats a fresh engine produces.
    let cfg = CoreConfig::a64fx_like();
    let schedule: Vec<(MicroOp, DynInst)> = {
        let mut rng = Rng(0x5EED);
        (0..1500).map(|_| random_inst(&mut rng)).collect()
    };
    let run = |t: &mut OooTiming| {
        t.begin_run();
        for (uop, d) in &schedule {
            ExecSink::retire(t, uop, d);
        }
        t.end_run()
    };
    let mut warm = OooTiming::new(cfg.clone());
    let first = run(&mut warm);
    warm.reset();
    let replay = run(&mut warm);
    assert_eq!(first, replay, "reset engine must replay identically");
    let mut fresh = OooTiming::new(cfg);
    assert_eq!(run(&mut fresh), replay, "reset must equal a fresh engine");
}
