//! Static predecode: per-instruction [`MicroOp`] records.
//!
//! The timing model needs the same handful of facts about every dynamic
//! instruction — its [`InstClass`], which registers it reads and writes,
//! which functional-unit pool it occupies, whether it is a *conditional*
//! branch, and whether it touches memory. All of them are static: they
//! depend only on the instruction word, never on architectural state.
//! The seed simulator re-derived them per retired instruction by
//! matching the [`Instruction`] enum four times (`class`,
//! `for_each_use`, `for_each_def`, plus a branch `matches!`); this
//! module derives them **once per static instruction** into a flat
//! [`Predecode`] table the hot loop indexes by `pc`.
//!
//! # Hot-path invariants (timing neutrality)
//!
//! The records must reproduce the seed behaviour *bit-identically*:
//!
//! * `uses` is an **ordered** list, in exactly
//!   [`Instruction::for_each_use`] operand order, duplicates included.
//!   [`crate::ooo::OooTiming`] attributes a stall to the **last**
//!   visited source register whose ready time ties the maximum (it
//!   compares with `>=`), so reordering or deduplicating the uses would
//!   silently change stall attribution.
//! * At most [`MAX_USES`] sources and one destination exist across the
//!   whole ISA; `decode` asserts this, so an ISA extension that grows a
//!   wider instruction fails loudly instead of truncating.
//! * `is_cond_branch` is true only for [`Instruction::Branch`] —
//!   `Jump` shares [`InstClass::Branch`] but never consults the branch
//!   predictor.

use quetzal_isa::{InstClass, Instruction, Program, Reg};

/// Maximum sources any instruction reads (`VAluVV`/`VScatter`: 4).
pub const MAX_USES: usize = 4;

/// Sentinel for "no destination register".
pub const NO_DEF: u8 = u8::MAX;

/// Functional-unit pool an instruction's execution occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuClass {
    /// Scalar ALU pool (also branches and predicate ops).
    Scalar,
    /// Vector FU pool (also the count ALU of `qzcount`).
    Vector,
    /// Load ports.
    Load,
    /// Store ports.
    Store,
    /// The serial indexed-access (gather/scatter) pipe.
    GatherPipe,
    /// The QBUFFER read port.
    QzPort,
    /// No execution resource (commit-time or free).
    None,
}

/// Everything the timing model needs to know about one static
/// instruction, precomputed. 8 bytes, `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// Timing class.
    pub class: InstClass,
    /// Functional-unit pool (derived from `class`; kept explicit so the
    /// timing code reads one record, not a second match).
    pub fu: FuClass,
    /// Number of live entries in `uses`.
    pub n_uses: u8,
    /// Flat source-register indices, in `for_each_use` order.
    pub uses: [u8; MAX_USES],
    /// Flat destination-register index, or [`NO_DEF`].
    pub def: u8,
    /// Conditional branch (consults the predictor); `Jump` does not.
    pub is_cond_branch: bool,
    /// Whether the instruction produces demand memory accesses.
    pub touches_mem: bool,
}

impl MicroOp {
    /// Decodes one instruction. Pure: same input, same record.
    pub fn decode(inst: &Instruction) -> MicroOp {
        let class = inst.class();
        let mut uses = [0u8; MAX_USES];
        let mut n_uses = 0usize;
        inst.for_each_use(|r: Reg| {
            assert!(
                n_uses < MAX_USES,
                "instruction reads more than {MAX_USES} registers"
            );
            uses[n_uses] = r.flat_index() as u8;
            n_uses += 1;
        });
        let mut def = NO_DEF;
        inst.for_each_def(|r: Reg| {
            assert_eq!(def, NO_DEF, "instruction writes more than one register");
            def = r.flat_index() as u8;
        });
        MicroOp {
            class,
            fu: fu_of(class),
            n_uses: n_uses as u8,
            uses,
            def,
            is_cond_branch: matches!(inst, Instruction::Branch { .. }),
            touches_mem: matches!(
                class,
                InstClass::ScalarLoad
                    | InstClass::ScalarStore
                    | InstClass::VectorLoad
                    | InstClass::VectorStore
                    | InstClass::Gather
                    | InstClass::Scatter
            ),
        }
    }

    /// The live prefix of `uses`.
    #[inline]
    pub fn uses(&self) -> &[u8] {
        &self.uses[..self.n_uses as usize]
    }
}

/// Unit pool by class (the pairing the seed timing model hard-coded in
/// its retire match).
fn fu_of(class: InstClass) -> FuClass {
    match class {
        InstClass::ScalarAlu | InstClass::ScalarMul | InstClass::Branch | InstClass::Predicate => {
            FuClass::Scalar
        }
        InstClass::VectorAlu
        | InstClass::VectorMul
        | InstClass::VectorHorizontal
        | InstClass::QzCountOp => FuClass::Vector,
        InstClass::ScalarLoad | InstClass::VectorLoad => FuClass::Load,
        InstClass::ScalarStore | InstClass::VectorStore => FuClass::Store,
        InstClass::Gather | InstClass::Scatter => FuClass::GatherPipe,
        InstClass::QzRead => FuClass::QzPort,
        InstClass::QzWrite | InstClass::QzConfig | InstClass::Halt => FuClass::None,
    }
}

/// The per-program micro-op table, indexed by `pc`.
#[derive(Debug, Clone)]
pub struct Predecode {
    ops: Vec<MicroOp>,
}

impl Predecode {
    /// Decodes every instruction of `program` once.
    pub fn of(program: &Program) -> Predecode {
        Predecode {
            ops: program.instructions().iter().map(MicroOp::decode).collect(),
        }
    }

    /// Record for the instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[inline]
    pub fn op(&self, pc: usize) -> &MicroOp {
        &self.ops[pc]
    }

    /// Number of records (== program length).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A process-wide, thread-safe registry of [`Predecode`] tables shared
/// by many cores.
///
/// [`Predecode::of`] is pure — the table depends only on the program
/// text — so decoding the same program on every batch shard is wasted
/// work. A registry hands out `Arc<Predecode>` clones keyed by
/// [`Program::id`]; the batch runner attaches one registry per run so
/// all shards share a single decode of each kernel. Sharing is
/// invisible to timing: a cache hit and a fresh decode yield identical
/// tables, so results stay bit-identical for any thread count.
///
/// Bounded like [`DecodeCache`]: past [`DecodeCache::CAPACITY`]
/// distinct programs the registry flushes wholesale (cores keep their
/// local `Arc`s alive, so in-flight tables are unaffected).
#[derive(Debug, Clone, Default)]
pub struct PredecodeRegistry {
    map:
        std::sync::Arc<std::sync::Mutex<std::collections::HashMap<u64, std::sync::Arc<Predecode>>>>,
}

impl PredecodeRegistry {
    /// Creates an empty registry.
    pub fn new() -> PredecodeRegistry {
        PredecodeRegistry::default()
    }

    /// Returns the shared table for `program`, decoding it on first
    /// sight (under the lock; decode is cheap relative to simulation).
    pub fn get_or_decode(&self, program: &Program) -> std::sync::Arc<Predecode> {
        // Poison recovery: predecode tables are pure functions of an
        // immutable program, so a panic elsewhere cannot have left the
        // map inconsistent — a healthy shard keeps going.
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if map.len() >= DecodeCache::CAPACITY && !map.contains_key(&program.id()) {
            map.clear();
        }
        map.entry(program.id())
            .or_insert_with(|| std::sync::Arc::new(Predecode::of(program)))
            .clone()
    }

    /// Number of distinct programs currently registered.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the registry holds no programs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A small program-keyed cache of [`Predecode`] tables.
///
/// Keys are [`Program::id`] (process-unique, shared by clones of the
/// same build). The cache is flushed wholesale when it exceeds
/// [`DecodeCache::CAPACITY`] distinct programs — a core that cycles
/// through unboundedly many programs (test harnesses) stays flat in
/// memory, while the common shapes (one staging program plus one kernel
/// program resubmitted per pair) always hit.
///
/// With [`DecodeCache::set_registry`] the cache resolves misses through
/// a shared [`PredecodeRegistry`] instead of decoding locally, so
/// sibling cores reuse one table per program.
#[derive(Debug, Clone, Default)]
pub struct DecodeCache {
    map: std::collections::HashMap<u64, std::sync::Arc<Predecode>>,
    shared: Option<PredecodeRegistry>,
}

impl DecodeCache {
    /// Distinct programs kept before the cache is flushed.
    pub const CAPACITY: usize = 64;

    /// Routes future misses through `registry` (hits keep their table).
    pub fn set_registry(&mut self, registry: PredecodeRegistry) {
        self.shared = Some(registry);
    }

    /// Returns the table for `program`, decoding it on first sight.
    pub fn get(&mut self, program: &Program) -> &Predecode {
        if self.map.len() >= Self::CAPACITY && !self.map.contains_key(&program.id()) {
            self.map.clear();
        }
        let shared = &self.shared;
        let table = self
            .map
            .entry(program.id())
            .or_insert_with(|| match shared {
                Some(registry) => registry.get_or_decode(program),
                None => std::sync::Arc::new(Predecode::of(program)),
            });
        table
    }

    /// Number of cached programs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal_isa::*;

    #[test]
    fn decode_matches_for_each_use_order_and_def() {
        let inst = Instruction::VAluVV {
            op: VAluOp::Add,
            vd: V1,
            vn: V2,
            vm: V3,
            pg: P0,
            esize: ElemSize::B64,
        };
        let u = MicroOp::decode(&inst);
        let mut expect = Vec::new();
        inst.for_each_use(|r| expect.push(r.flat_index() as u8));
        assert_eq!(u.uses(), expect.as_slice());
        let mut def = None;
        inst.for_each_def(|r| def = Some(r.flat_index() as u8));
        assert_eq!(u.def, def.unwrap());
        assert_eq!(u.class, InstClass::VectorAlu);
        assert_eq!(u.fu, FuClass::Vector);
        assert!(!u.is_cond_branch);
        assert!(!u.touches_mem);
    }

    #[test]
    fn every_instruction_class_gets_consistent_records() {
        // A program touching every class; decode must agree with the
        // dynamic for_each_* walk on each one.
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 4);
        b.alu_rr(SAluOp::Mul, X1, X0, X0);
        b.load(X2, X0, 0, MemSize::B8);
        b.store(X2, X0, 8, MemSize::B8);
        b.ptrue(P0, ElemSize::B64);
        b.index(V0, X0, 1, ElemSize::B64);
        b.vgather(V1, X0, V0, P0, ElemSize::B64, MemSize::B8, 8);
        b.vscatter(V1, X0, V0, P0, ElemSize::B64, MemSize::B8, 8);
        b.vreduce(RedOp::Add, X3, V1, P0, ElemSize::B64);
        b.qzload(V2, V0, QBufSel::Q0, P0);
        b.qzcount(V3, V2, V2);
        b.halt();
        let p = b.build().unwrap();
        let pre = Predecode::of(&p);
        assert_eq!(pre.len(), p.len());
        for (pc, inst) in p.instructions().iter().enumerate() {
            let u = pre.op(pc);
            assert_eq!(u.class, inst.class(), "class at pc {pc}");
            let mut uses = Vec::new();
            inst.for_each_use(|r| uses.push(r.flat_index() as u8));
            assert_eq!(u.uses(), uses.as_slice(), "uses at pc {pc}");
            assert_eq!(
                u.is_cond_branch,
                matches!(inst, Instruction::Branch { .. }),
                "branch-ness at pc {pc}"
            );
        }
    }

    #[test]
    fn cond_branch_flag_distinguishes_branch_from_jump() {
        let br = Instruction::Branch {
            cond: BranchCond::Lt,
            rn: X0,
            rm: X1,
            target: 0,
        };
        let jmp = Instruction::Jump { target: 0 };
        assert!(MicroOp::decode(&br).is_cond_branch);
        assert!(!MicroOp::decode(&jmp).is_cond_branch);
        assert_eq!(MicroOp::decode(&jmp).class, InstClass::Branch);
    }

    #[test]
    fn cache_hits_by_program_identity_and_stays_bounded() {
        let build = || {
            let mut b = ProgramBuilder::new();
            b.mov_imm(X0, 1);
            b.halt();
            b.build().unwrap()
        };
        let mut cache = DecodeCache::default();
        let p = build();
        cache.get(&p);
        cache.get(&p.clone()); // clone shares the id -> no new entry
        assert_eq!(cache.len(), 1);
        for _ in 0..(DecodeCache::CAPACITY * 2) {
            cache.get(&build());
        }
        assert!(
            cache.len() <= DecodeCache::CAPACITY,
            "cache must stay bounded"
        );
    }

    #[test]
    fn registry_shares_one_table_across_caches() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 1);
        b.halt();
        let p = b.build().unwrap();

        let registry = PredecodeRegistry::new();
        let mut a = DecodeCache::default();
        let mut c = DecodeCache::default();
        a.set_registry(registry.clone());
        c.set_registry(registry.clone());
        let ta = a.get(&p) as *const Predecode;
        let tc = c.get(&p) as *const Predecode;
        assert_eq!(ta, tc, "both caches must hold the same shared table");
        assert_eq!(registry.len(), 1);

        // Sharing must not change the table itself.
        let local = Predecode::of(&p);
        assert_eq!(local.len(), a.get(&p).len());
        assert_eq!(local.op(0), a.get(&p).op(0));
    }

    #[test]
    fn registry_stays_bounded() {
        let build = || {
            let mut b = ProgramBuilder::new();
            b.mov_imm(X0, 1);
            b.halt();
            b.build().unwrap()
        };
        let registry = PredecodeRegistry::new();
        for _ in 0..(DecodeCache::CAPACITY * 2) {
            registry.get_or_decode(&build());
        }
        assert!(registry.len() <= DecodeCache::CAPACITY);
        assert!(!registry.is_empty());
    }
}
