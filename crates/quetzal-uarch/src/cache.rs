//! Two-level cache hierarchy with stride prefetching and a
//! bandwidth-limited HBM2 main memory (paper Table I).
//!
//! The model is a timing model over real tag state: set-associative LRU
//! arrays decide hit/miss; misses propagate downward and pay the
//! configured load-to-use latencies; L2 misses additionally queue on a
//! DRAM channel with finite bytes-per-cycle bandwidth (the resource that
//! caps multicore scaling in Fig. 13b).

use crate::config::{CacheConfig, CoreConfig};
use crate::stats::RunStats;
use std::collections::HashMap;

/// A set-associative LRU tag array.
///
/// Validity is generation-stamped: a way holds a line only when its
/// `gens` entry matches the array's current `generation`. This makes
/// [`reset`](CacheArray::reset) O(1) — bump the generation and every
/// way is invalid again — instead of refilling the tag and LRU vectors
/// (~3 MB for an 8 MB L2), which dominated per-pair cost in pooled
/// batch runs.
#[derive(Debug, Clone)]
pub struct CacheArray {
    sets: usize,
    ways: usize,
    line_bits: u32,
    /// `tags[set * ways + way]`; meaningful only when the matching
    /// `gens` entry equals `generation`.
    tags: Vec<u64>,
    /// Generation stamp parallel to `tags`: the way is valid iff
    /// `gens[i] == generation`.
    gens: Vec<u32>,
    /// LRU timestamps parallel to `tags`; consulted only for valid ways.
    stamps: Vec<u64>,
    tick: u64,
    /// Current validity generation. Starts at 1 so the zero-initialised
    /// `gens` mark every way empty.
    generation: u32,
}

impl CacheArray {
    /// Builds the tag array for a configuration.
    pub fn new(cfg: &CacheConfig) -> CacheArray {
        let sets = cfg.sets().max(1);
        CacheArray {
            sets,
            ways: cfg.ways,
            line_bits: cfg.line.trailing_zeros(),
            tags: vec![0; sets * cfg.ways],
            gens: vec![0; sets * cfg.ways],
            stamps: vec![0; sets * cfg.ways],
            tick: 0,
            generation: 1,
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line % self.sets as u64) as usize
    }

    /// Line address (cache-line granularity) of a byte address.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_bits
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        1 << self.line_bits
    }

    /// Looks a line up, refreshing LRU state on hit.
    pub fn probe(&mut self, line: u64) -> bool {
        self.tick += 1;
        let set = self.set_of(line);
        for w in 0..self.ways {
            let i = set * self.ways + w;
            if self.gens[i] == self.generation && self.tags[i] == line {
                self.stamps[i] = self.tick;
                return true;
            }
        }
        false
    }

    /// Installs a line, evicting the LRU way. Returns the evicted line.
    pub fn install(&mut self, line: u64) -> Option<u64> {
        self.tick += 1;
        let set = self.set_of(line);
        // Victim choice mirrors the pre-generation behaviour exactly:
        // the first *empty* way wins, otherwise the least-recent valid
        // way (stale stamps belong to invalid ways and are never read).
        let mut victim = set * self.ways;
        for w in 0..self.ways {
            let i = set * self.ways + w;
            if self.gens[i] != self.generation {
                victim = i;
                break;
            }
            if self.stamps[i] < self.stamps[victim] {
                victim = i;
            }
        }
        let evicted = (self.gens[victim] == self.generation).then_some(self.tags[victim]);
        self.tags[victim] = line;
        self.gens[victim] = self.generation;
        self.stamps[victim] = self.tick;
        evicted
    }

    /// Whether a line is resident (no LRU update; for tests).
    pub fn contains(&self, line: u64) -> bool {
        let set = self.set_of(line);
        (0..self.ways).any(|w| {
            let i = set * self.ways + w;
            self.gens[i] == self.generation && self.tags[i] == line
        })
    }

    /// Invalidates every line in place. Equivalent to rebuilding the
    /// array with `CacheArray::new`, but O(1): bumping the generation
    /// invalidates every way without touching the tag and LRU vectors
    /// (~3 MB for an 8 MB L2, previously refilled on every pooled-batch
    /// pair). Resetting the tick keeps post-reset LRU decisions
    /// bit-identical to a freshly built array.
    pub fn reset(&mut self) {
        self.tick = 0;
        self.generation += 1;
        // A u32 generation cannot realistically wrap (4 billion resets),
        // but if it does, fall back to the full wipe so stale ways from
        // generation N never masquerade as valid in generation N + 2^32.
        if self.generation == 0 {
            self.gens.fill(0);
            self.generation = 1;
        }
    }
}

/// Per-PC stride detector (degree-N line prefetcher on L1/L2, Table I).
#[derive(Debug, Clone, Default)]
struct StridePrefetcher {
    /// pc -> (last line, last stride, confidence).
    table: HashMap<u64, (u64, i64, u8)>,
}

impl StridePrefetcher {
    /// Observes a demand access; returns lines to prefetch.
    fn observe(&mut self, pc: u64, line: u64, degree: usize) -> Vec<u64> {
        let entry = self.table.entry(pc).or_insert((line, 0, 0));
        let stride = line as i64 - entry.0 as i64;
        if stride != 0 && stride == entry.1 {
            entry.2 = entry.2.saturating_add(1);
        } else if stride != 0 {
            entry.1 = stride;
            entry.2 = 0;
        }
        entry.0 = line;
        if entry.2 >= 2 && entry.1 != 0 {
            let s = entry.1;
            (1..=degree as i64)
                .filter_map(|k| line.checked_add_signed(s * k))
                .collect()
        } else {
            Vec::new()
        }
    }
}

/// The full memory system of one core: private L1D, (share of the)
/// shared L2, and the DRAM channel.
#[derive(Debug, Clone)]
pub struct MemSystem {
    l1: CacheArray,
    l2: CacheArray,
    l1_lat: u64,
    l2_lat: u64,
    dram_lat: u64,
    dram_bytes_per_cycle: f64,
    dram_next_free: f64,
    prefetcher: StridePrefetcher,
    prefetch_degree: usize,
}

impl MemSystem {
    /// Builds the memory system for a core configuration.
    pub fn new(cfg: &CoreConfig) -> MemSystem {
        MemSystem {
            l1: CacheArray::new(&cfg.l1d),
            l2: CacheArray::new(&cfg.l2),
            l1_lat: cfg.l1d.latency,
            l2_lat: cfg.l2.latency,
            dram_lat: cfg.mem.latency,
            dram_bytes_per_cycle: cfg.mem.bytes_per_cycle,
            dram_next_free: 0.0,
            prefetcher: StridePrefetcher::default(),
            prefetch_degree: cfg.prefetch_degree,
        }
    }

    /// Timing+state update for one demand access of `size` bytes at
    /// `addr`, issued at `cycle` by instruction `pc`. Returns the
    /// completion cycle. Stores are absorbed by the write buffer (they
    /// complete at L1 latency) but still install lines (write-allocate)
    /// and generate DRAM traffic on miss.
    pub fn access(
        &mut self,
        pc: u64,
        addr: u64,
        size: usize,
        is_store: bool,
        cycle: u64,
        stats: &mut RunStats,
    ) -> u64 {
        // Saturating end address: a guest access at the top of the
        // address space must not wrap `last` below `first`.
        let first = self.l1.line_of(addr);
        let last = self.l1.line_of(addr.saturating_add(size.max(1) as u64 - 1));
        let mut done = cycle;
        for line in first..=last {
            let t = self.access_line(line, cycle, stats);
            done = done.max(t);
            // Train the prefetcher on demand lines and install its
            // predictions without charging latency (they proceed in the
            // background; timing effect is the later hit).
            for pl in self.prefetcher.observe(pc, line, self.prefetch_degree) {
                if !self.l2.contains(pl) {
                    stats.prefetches += 1;
                    stats.dram_bytes += self.l2.line_bytes() as u64;
                    self.l2.install(pl);
                }
                if !self.l1.contains(pl) {
                    self.l1.install(pl);
                }
            }
        }
        if is_store {
            // Write buffer: the store retires at L1 speed regardless of
            // where the line was found.
            cycle + self.l1_lat
        } else {
            done
        }
    }

    fn access_line(&mut self, line: u64, cycle: u64, stats: &mut RunStats) -> u64 {
        if self.l1.probe(line) {
            stats.l1_hits += 1;
            return cycle + self.l1_lat;
        }
        stats.l1_misses += 1;
        if self.l2.probe(line) {
            self.l1.install(line);
            return cycle + self.l2_lat;
        }
        stats.l2_misses += 1;
        stats.dram_bytes += self.l1.line_bytes() as u64;
        // Queue on the DRAM channel: bandwidth-limited line transfer.
        let start = self.dram_next_free.max(cycle as f64);
        let transfer = self.l1.line_bytes() as f64 / self.dram_bytes_per_cycle;
        self.dram_next_free = start + transfer;
        self.l2.install(line);
        self.l1.install(line);
        (start + transfer).ceil() as u64 + self.dram_lat
    }

    /// L1 latency (used by the store-buffer path of the timing model).
    pub fn l1_latency(&self) -> u64 {
        self.l1_lat
    }

    /// Cold-boots the memory system in place: caches invalidated,
    /// prefetcher history and DRAM channel occupancy cleared. Behaves
    /// exactly like a freshly built `MemSystem` while keeping the large
    /// tag-array allocations alive.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.dram_next_free = 0.0;
        self.prefetcher.table.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;

    fn sys() -> (MemSystem, RunStats) {
        (
            MemSystem::new(&CoreConfig::a64fx_like()),
            RunStats::default(),
        )
    }

    #[test]
    fn first_access_misses_second_hits() {
        let (mut m, mut s) = sys();
        let t1 = m.access(0, 0x1000, 8, false, 0, &mut s);
        assert!(t1 >= 120, "cold miss pays DRAM latency, got {t1}");
        assert_eq!(s.l2_misses, 1);
        let t2 = m.access(0, 0x1008, 8, false, t1, &mut s);
        assert_eq!(t2, t1 + 4, "same line now hits L1");
        assert_eq!(s.l1_hits, 1);
    }

    #[test]
    fn l2_hit_pays_l2_latency() {
        let (mut m, mut s) = sys();
        m.access(0, 0x2000, 8, false, 0, &mut s);
        // Evict from L1 by filling its set: L1 has 128 sets, so lines
        // 0x2000 + k*128*64 collide in set.
        let stride = 128 * 64;
        for k in 1..=9u64 {
            m.access(1000 + k, 0x2000 + k * stride, 8, false, 0, &mut s);
        }
        let before_hits = s.l1_hits;
        let t = m.access(0, 0x2000, 8, false, 1000, &mut s);
        assert_eq!(s.l1_hits, before_hits, "L1 must miss after eviction");
        assert_eq!(t, 1000 + 37, "L2 hit latency");
    }

    #[test]
    fn stores_complete_at_l1_speed_but_generate_traffic() {
        let (mut m, mut s) = sys();
        let t = m.access(0, 0x9000, 8, true, 5, &mut s);
        assert_eq!(t, 5 + 4, "write buffer absorbs the store");
        assert!(s.dram_bytes > 0, "write-allocate fetched the line");
    }

    #[test]
    fn multi_line_access_touches_both_lines() {
        let (mut m, mut s) = sys();
        m.access(0, 0x1000 - 4, 8, false, 0, &mut s);
        assert_eq!(s.l1_misses, 2, "straddling access probes two lines");
    }

    #[test]
    fn stride_prefetcher_hides_streaming_latency() {
        let (mut m, mut s) = sys();
        // Stream 64 consecutive lines from the same pc.
        let mut cold = 0;
        for k in 0..64u64 {
            let t = m.access(7, 0x10_0000 + k * 64, 8, false, k * 200, &mut s);
            if t - k * 200 > 37 {
                cold += 1;
            }
        }
        assert!(
            cold <= 4,
            "after training, the stream should hit prefetched lines (cold={cold})"
        );
        assert!(s.prefetches > 0);
    }

    #[test]
    fn dram_bandwidth_throttles_burst() {
        let cfg = {
            let mut c = CoreConfig::a64fx_like();
            c.mem.bytes_per_cycle = 1.0; // 64 cycles per line
            c.prefetch_degree = 0;
            c
        };
        let mut m = MemSystem::new(&cfg);
        let mut s = RunStats::default();
        // Two simultaneous cold misses: the second queues behind the first.
        let t1 = m.access(0, 0, 8, false, 0, &mut s);
        let t2 = m.access(1, 1 << 20, 8, false, 0, &mut s);
        assert!(
            t2 >= t1 + 63,
            "second line waits for the channel: {t1} {t2}"
        );
    }

    #[test]
    fn lru_eviction_keeps_recent_lines() {
        let cfg = CacheConfig {
            capacity: 4 * 64,
            ways: 2,
            line: 64,
            latency: 1,
        };
        let mut a = CacheArray::new(&cfg);
        // Two sets; lines 0,2,4 map to set 0.
        a.install(0);
        a.install(2);
        assert!(a.probe(0)); // refresh 0 -> LRU is 2
        a.install(4); // evicts 2
        assert!(a.contains(0));
        assert!(!a.contains(2));
        assert!(a.contains(4));
    }
}
