//! Pipeline observability probes.
//!
//! The timing engine ([`crate::ooo::OooTiming`]) is generic over a
//! [`Probe`] that observes every retired dynamic instruction. The
//! engine is **monomorphized** over the probe type and every
//! observation site is guarded by `if P::ENABLED` on an associated
//! `const`, so with the default [`NullProbe`] the compiler removes the
//! instrumentation entirely — the hot path compiles to the exact same
//! code as before the probe existed. `tests/timing_golden.rs` and the
//! probe-neutrality integration test pin this: golden cycle counts must
//! not move whether a probe is attached or not.
//!
//! # Invariants
//!
//! * **Probes are observers, never participants.** A probe receives
//!   `&RetireEvent` snapshots; nothing it does can feed back into the
//!   timing model. The engine computes every field of the event from
//!   state it already maintained — no extra model state exists for the
//!   probe's benefit.
//! * **Events are stack-only.** [`RetireEvent`] is `Copy` with no heap
//!   indirection, so an enabled probe adds no allocation to the
//!   per-retire path; any buffering strategy (ring buffer, aggregation)
//!   lives in the probe implementation.
//! * **Event ordering is program order.** `on_retire` fires once per
//!   retired instruction in commit order, bracketed by
//!   `on_run_start`/`on_run_end` per kernel submission and preceded by
//!   `on_program` when a driver submits a program.

use crate::predecode::FuClass;
use crate::stats::{RunStats, StallCat};
use quetzal_isa::InstClass;

/// Per-level cache traffic of one dynamic instruction: how many of its
/// demand line accesses hit L1, missed L1 (hit L2), and missed L2 (went
/// to memory). Derived from counter deltas around the instruction's
/// cache accesses, so it is exact and costs nothing when disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemLevelMix {
    /// Line accesses served by the L1.
    pub l1_hits: u64,
    /// Line accesses that missed the L1.
    pub l1_misses: u64,
    /// Line accesses that also missed the L2 (DRAM).
    pub l2_misses: u64,
}

impl MemLevelMix {
    /// Whether the instruction touched the cache hierarchy at all.
    pub fn any(&self) -> bool {
        self.l1_hits + self.l1_misses > 0
    }
}

/// The full lifecycle of one retired dynamic instruction, as the
/// out-of-order model computed it. All cycle fields are in the global
/// monotonic clock (`OooTiming::now`), not run-relative.
#[derive(Debug, Clone, Copy)]
pub struct RetireEvent {
    /// Static program counter (instruction index).
    pub pc: usize,
    /// Timing class.
    pub class: InstClass,
    /// Functional-unit pool the instruction occupied.
    pub fu: FuClass,
    /// Cycle the front end dispatched it into the window.
    pub dispatch: u64,
    /// Cycle its youngest source operand became ready.
    pub ops_ready: u64,
    /// Cycle it began executing (port/unit granted). For commit-time
    /// QBUFFER writes this equals `ops_ready`.
    pub issue: u64,
    /// Cycle its result was produced (writeback).
    pub complete: u64,
    /// Cycle it committed (after any commit-stage busy time).
    pub commit: u64,
    /// Cycles the in-order commit stage stalled waiting for it — the
    /// quantum the engine charged to `cat`.
    pub commit_gap: u64,
    /// Commit-stage busy cycles beyond the first (QBUFFER bank
    /// conflicts, charged to [`StallCat::Quetzal`]).
    pub extra_commit: u64,
    /// Coarse stall category charged for `commit_gap`.
    pub cat: StallCat,
    /// Stall taint of the operand that was ready last (what the
    /// instruction was waiting *on* when operand-bound).
    pub dep_cat: StallCat,
    /// Cache-level mix of the instruction's demand accesses.
    pub mem: MemLevelMix,
    /// Completion floor imposed by in-flight stores (store-to-load
    /// forwarding), 0 if none applied.
    pub store_ring_floor: u64,
    /// Whether a store-to-load forward failed and the access replayed.
    pub store_replay: bool,
    /// Cycles a QBUFFER read waited for the single read port.
    pub qz_port_wait: u64,
    /// Functional QUETZAL latency (port-limited reads, bank-conflict
    /// writes, count-ALU depth); 0 for non-QUETZAL instructions.
    pub qz_latency: u64,
    /// Whether a conditional branch mispredicted.
    pub mispredicted: bool,
}

impl RetireEvent {
    /// Cycles spent waiting on operands beyond dispatch.
    pub fn operand_wait(&self) -> u64 {
        self.ops_ready.saturating_sub(self.dispatch)
    }

    /// Cycles spent waiting for an execution resource after operands
    /// were ready (FU/port busy, gather-crack overhead).
    pub fn resource_wait(&self) -> u64 {
        self.issue.saturating_sub(self.ops_ready.max(self.dispatch))
    }

    /// Execution latency (issue to writeback).
    pub fn exec_latency(&self) -> u64 {
        self.complete.saturating_sub(self.issue)
    }
}

/// Observation hook monomorphized into the out-of-order engine.
///
/// Implementations set `ENABLED = true` to receive events; every call
/// site in the engine is guarded by `if P::ENABLED`, so a probe with
/// `ENABLED = false` (the default [`NullProbe`]) costs nothing.
pub trait Probe {
    /// Whether the engine should emit events to this probe. Guarded at
    /// compile time — `false` removes the instrumentation entirely.
    const ENABLED: bool;

    /// A driver submitted `program` (called once per `Core::run`).
    fn on_program(&mut self, _id: u64, _name: &str) {}

    /// A kernel run began at global cycle `cycle`.
    fn on_run_start(&mut self, _cycle: u64) {}

    /// One dynamic instruction retired.
    fn on_retire(&mut self, _ev: &RetireEvent) {}

    /// The run ended; `stats` is the run's final accounting.
    fn on_run_end(&mut self, _stats: &RunStats) {}
}

/// The default probe: observes nothing, costs nothing. The engine
/// monomorphized over `NullProbe` compiles to the identical hot path
/// the model had before probes existed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    const ENABLED: bool = false;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_probe_is_disabled() {
        const { assert!(!NullProbe::ENABLED) }
    }

    #[test]
    fn retire_event_derived_waits() {
        let ev = RetireEvent {
            pc: 3,
            class: InstClass::ScalarAlu,
            fu: FuClass::Scalar,
            dispatch: 10,
            ops_ready: 14,
            issue: 16,
            complete: 17,
            commit: 18,
            commit_gap: 2,
            extra_commit: 0,
            cat: StallCat::ScalarCompute,
            dep_cat: StallCat::Memory,
            mem: MemLevelMix::default(),
            store_ring_floor: 0,
            store_replay: false,
            qz_port_wait: 0,
            qz_latency: 0,
            mispredicted: false,
        };
        assert_eq!(ev.operand_wait(), 4);
        assert_eq!(ev.resource_wait(), 2);
        assert_eq!(ev.exec_latency(), 1);
        assert!(!ev.mem.any());
    }
}
