//! Architectural state: registers, simulated memory and accelerator.

use quetzal_accel::{QBuffers, QzConfig};
use quetzal_isa::{ElemSize, PReg, VReg, XReg, VLEN_BYTES};

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Pages kept on the free list across [`SimMemory::clear`] calls
/// (16 MiB): enough to recycle every page the repo's workloads touch
/// per pair, small enough that a one-off large run does not pin its
/// peak footprint forever.
const PAGE_POOL_CAP: usize = 4096;

/// Multiplicative hasher for the `u64` page-number keys.
///
/// The default SipHash costs more than the page access it guards —
/// every guest load and store in *both* execution engines pays it.
/// Page numbers are small and dense, so one odd-constant multiply
/// (Fibonacci hashing) spreads them across the table at a fraction of
/// the cost while keeping high bits well mixed for the control bytes.
#[derive(Default)]
struct PageNoHasher(u64);

impl Hasher for PageNoHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by the u64 keys below).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type PageMap = HashMap<u64, Box<[u8; PAGE_SIZE]>, BuildHasherDefault<PageNoHasher>>;

/// Default resident-page budget: 2^16 pages = 256 MiB of simulated
/// memory — far above any workload in the repo, far below what an
/// adversarial scatter across the 64-bit address space could otherwise
/// force the *host* to allocate.
pub const DEFAULT_PAGE_BUDGET: usize = 1 << 16;

/// A write needed a new page beyond the resident-page budget. Surfaced
/// by the interpreter as [`SimError::MemoryFault`](crate::SimError).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageBudgetExceeded;

/// Sparse, paged, byte-addressable simulated memory.
///
/// Unwritten memory reads as zero — convenient for buffers that
/// algorithms initialise lazily. The number of resident pages is capped
/// ([`DEFAULT_PAGE_BUDGET`]): guest writes that would exceed the cap
/// fail with [`PageBudgetExceeded`] instead of growing host memory
/// without bound.
#[derive(Debug, Clone)]
pub struct SimMemory {
    pages: PageMap,
    page_budget: usize,
    /// Recycled page allocations ([`clear`](Self::clear) parks pages
    /// here instead of freeing them). Invisible to guests: pooled pages
    /// are re-zeroed before reuse.
    pool: Vec<Box<[u8; PAGE_SIZE]>>,
}

impl Default for SimMemory {
    fn default() -> SimMemory {
        SimMemory {
            pages: PageMap::default(),
            page_budget: DEFAULT_PAGE_BUDGET,
            pool: Vec::new(),
        }
    }
}

impl SimMemory {
    /// Creates an empty memory.
    pub fn new() -> SimMemory {
        SimMemory::default()
    }

    /// Sets the resident-page budget (tests and fault-injection harnesses
    /// lower it to keep adversarial cases cheap).
    pub fn set_page_budget(&mut self, pages: usize) {
        self.page_budget = pages;
    }

    /// The page a write to `addr` lands in, allocating it if the budget
    /// allows.
    fn page_for_write(
        &mut self,
        addr: u64,
    ) -> Result<&mut Box<[u8; PAGE_SIZE]>, PageBudgetExceeded> {
        use std::collections::hash_map::Entry;
        let resident = self.pages.len();
        match self.pages.entry(addr >> PAGE_BITS) {
            Entry::Occupied(e) => Ok(e.into_mut()),
            Entry::Vacant(v) => {
                if resident >= self.page_budget {
                    return Err(PageBudgetExceeded);
                }
                let page = match self.pool.pop() {
                    Some(mut p) => {
                        p.fill(0);
                        p
                    }
                    None => Box::new([0u8; PAGE_SIZE]),
                };
                Ok(v.insert(page))
            }
        }
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_BITS)) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte, failing if it needs a page beyond the budget.
    ///
    /// # Errors
    ///
    /// Returns [`PageBudgetExceeded`] when the write would allocate a
    /// page past the resident cap.
    pub fn try_write_u8(&mut self, addr: u64, value: u8) -> Result<(), PageBudgetExceeded> {
        let page = self.page_for_write(addr)?;
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
        Ok(())
    }

    /// Writes one byte.
    ///
    /// # Panics
    ///
    /// Panics if the resident-page budget is exceeded (host-staging API;
    /// guest writes go through [`try_write_u8`](Self::try_write_u8)).
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.try_write_u8(addr, value)
            .expect("simulated memory page budget exceeded");
    }

    /// Reads `n ≤ 8` bytes little-endian, zero-extended.
    ///
    /// Fast path: an access contained in one page costs a single page
    /// lookup instead of one per byte (the interpreter's dominant
    /// memory operation — every scalar/vector element read lands here).
    pub fn read_le(&self, addr: u64, n: usize) -> u64 {
        debug_assert!(n <= 8);
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + n <= PAGE_SIZE {
            let Some(p) = self.pages.get(&(addr >> PAGE_BITS)) else {
                return 0;
            };
            let mut v = 0u64;
            for (i, &b) in p[off..off + n].iter().enumerate() {
                v |= (b as u64) << (8 * i);
            }
            v
        } else {
            // Page-straddling access: per-byte slow path. Wrapping
            // address arithmetic: an access at the top of the 64-bit
            // space wraps around, like the hardware bus would.
            let mut v = 0u64;
            for i in 0..n {
                v |= (self.read_u8(addr.wrapping_add(i as u64)) as u64) << (8 * i);
            }
            v
        }
    }

    /// Writes the low `n ≤ 8` bytes of `value` little-endian (single
    /// page lookup when the access stays within one page).
    ///
    /// # Errors
    ///
    /// Returns [`PageBudgetExceeded`] when the write would allocate a
    /// page past the resident cap.
    pub fn try_write_le(
        &mut self,
        addr: u64,
        value: u64,
        n: usize,
    ) -> Result<(), PageBudgetExceeded> {
        debug_assert!(n <= 8);
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + n <= PAGE_SIZE {
            let page = self.page_for_write(addr)?;
            for (i, b) in page[off..off + n].iter_mut().enumerate() {
                *b = (value >> (8 * i)) as u8;
            }
        } else {
            for i in 0..n {
                self.try_write_u8(addr.wrapping_add(i as u64), (value >> (8 * i)) as u8)?;
            }
        }
        Ok(())
    }

    /// Writes the low `n ≤ 8` bytes of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if the resident-page budget is exceeded (host-staging API;
    /// guest writes go through [`try_write_le`](Self::try_write_le)).
    pub fn write_le(&mut self, addr: u64, value: u64, n: usize) {
        self.try_write_le(addr, value, n)
            .expect("simulated memory page budget exceeded");
    }

    /// Copies a byte slice into memory, page by page.
    ///
    /// # Panics
    ///
    /// Panics if the resident-page budget is exceeded (host-staging API).
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let mut addr = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (addr as usize) & (PAGE_SIZE - 1);
            let chunk = rest.len().min(PAGE_SIZE - off);
            let page = self
                .page_for_write(addr)
                .expect("simulated memory page budget exceeded");
            page[off..off + chunk].copy_from_slice(&rest[..chunk]);
            rest = &rest[chunk..];
            addr = addr.wrapping_add(chunk as u64);
        }
    }

    /// Reads `len` bytes into a fresh vector, page by page.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut addr = addr;
        while out.len() < len {
            let off = (addr as usize) & (PAGE_SIZE - 1);
            let chunk = (len - out.len()).min(PAGE_SIZE - off);
            match self.pages.get(&(addr >> PAGE_BITS)) {
                Some(p) => out.extend_from_slice(&p[off..off + chunk]),
                None => out.resize(out.len() + chunk, 0),
            }
            addr = addr.wrapping_add(chunk as u64);
        }
        out
    }

    /// Number of resident pages (for footprint diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Drops every page: all addresses read as zero again, as in a
    /// fresh memory. Keeps the page-table capacity so a pooled machine
    /// does not re-grow the map from scratch, and parks up to
    /// [`PAGE_POOL_CAP`] page allocations on a free list for reuse —
    /// per-pair page allocation was a measurable slice of pooled batch
    /// runs. Pages beyond the cap are freed, so retained footprint
    /// stays bounded across workloads.
    pub fn clear(&mut self) {
        for (_, page) in self.pages.drain() {
            if self.pool.len() < PAGE_POOL_CAP {
                self.pool.push(page);
            }
        }
    }
}

/// A 512-bit vector register value.
pub type VValue = [u8; VLEN_BYTES];

/// Full architectural state of one core plus its QUETZAL instance.
#[derive(Debug, Clone)]
pub struct ArchState {
    x: [u64; 32],
    v: [VValue; 32],
    /// Predicates: one bit per byte lane (bit *i* governs byte lane *i*,
    /// as in SVE). An element is active iff the bit of its first byte is
    /// set.
    p: [u64; 16],
    /// Simulated main memory.
    pub mem: SimMemory,
    /// QUETZAL accelerator state.
    pub qz: QBuffers,
}

impl ArchState {
    /// Fresh state with zeroed registers and the given accelerator
    /// configuration.
    pub fn new(qz_config: QzConfig) -> ArchState {
        ArchState {
            x: [0; 32],
            v: [[0; VLEN_BYTES]; 32],
            p: [0; 16],
            mem: SimMemory::new(),
            qz: QBuffers::new(qz_config),
        }
    }

    /// Zeroes registers, memory and the accelerator in place. A reset
    /// state is architecturally indistinguishable from
    /// `ArchState::new(self.qz.config())` — the machine-pool
    /// equivalence test pins this. The memory page budget returns to its
    /// default, like every other per-run knob.
    pub fn reset(&mut self) {
        self.x = [0; 32];
        self.v = [[0; VLEN_BYTES]; 32];
        self.p = [0; 16];
        self.mem.clear();
        self.mem.set_page_budget(DEFAULT_PAGE_BUDGET);
        self.qz.reset();
    }

    /// Scalar register value.
    pub fn x(&self, r: XReg) -> u64 {
        self.x[r.index() as usize]
    }

    /// Sets a scalar register.
    pub fn set_x(&mut self, r: XReg, v: u64) {
        self.x[r.index() as usize] = v;
    }

    /// Vector register bytes.
    pub fn v(&self, r: VReg) -> &VValue {
        &self.v[r.index() as usize]
    }

    /// Mutable vector register bytes.
    pub fn v_mut(&mut self, r: VReg) -> &mut VValue {
        &mut self.v[r.index() as usize]
    }

    /// Predicate register (bit per byte lane).
    pub fn p(&self, r: PReg) -> u64 {
        self.p[r.index() as usize]
    }

    /// Sets a predicate register.
    pub fn set_p(&mut self, r: PReg, v: u64) {
        self.p[r.index() as usize] = v;
    }

    /// Reads element `i` of vector `r`, zero-extended to 64 bits.
    pub fn v_elem(&self, r: VReg, i: usize, esize: ElemSize) -> u64 {
        let b = esize.bytes();
        let off = i * b;
        let mut v = 0u64;
        for k in 0..b {
            v |= (self.v[r.index() as usize][off + k] as u64) << (8 * k);
        }
        v
    }

    /// Reads element `i` of vector `r` sign-extended to `i64`.
    pub fn v_elem_i64(&self, r: VReg, i: usize, esize: ElemSize) -> i64 {
        sign_extend(self.v_elem(r, i, esize), esize)
    }

    /// Writes the low bits of `value` to element `i` of vector `r`.
    pub fn set_v_elem(&mut self, r: VReg, i: usize, esize: ElemSize, value: u64) {
        let b = esize.bytes();
        let off = i * b;
        for k in 0..b {
            self.v[r.index() as usize][off + k] = (value >> (8 * k)) as u8;
        }
    }

    /// Whether element `i` (at `esize`) is active under predicate `pg`.
    pub fn lane_active(&self, pg: PReg, i: usize, esize: ElemSize) -> bool {
        (self.p(pg) >> (i * esize.bytes())) & 1 == 1
    }

    /// Builds a predicate word with the first `n` elements (at `esize`)
    /// active.
    pub fn pred_first_n(n: usize, esize: ElemSize) -> u64 {
        let mut p = 0u64;
        for i in 0..esize.lanes().min(n) {
            p |= 1 << (i * esize.bytes());
        }
        p
    }

    /// Counts active elements of a predicate at `esize`.
    pub fn pred_count(&self, pg: PReg, esize: ElemSize) -> u64 {
        (0..esize.lanes())
            .filter(|&i| self.lane_active(pg, i, esize))
            .count() as u64
    }

    /// The eight 64-bit lanes of a vector register.
    pub fn v_lanes64(&self, r: VReg) -> [u64; 8] {
        let mut out = [0u64; 8];
        for (i, item) in out.iter_mut().enumerate() {
            *item = self.v_elem(r, i, ElemSize::B64);
        }
        out
    }

    /// Active-lane mask at 64-bit granularity.
    pub fn mask64(&self, pg: PReg) -> [bool; 8] {
        let mut m = [false; 8];
        for (i, item) in m.iter_mut().enumerate() {
            *item = self.lane_active(pg, i, ElemSize::B64);
        }
        m
    }
}

/// Sign-extends the low `esize` bits of `v`.
pub fn sign_extend(v: u64, esize: ElemSize) -> i64 {
    let bits = esize.bits();
    if bits == 64 {
        v as i64
    } else {
        let shift = 64 - bits;
        ((v << shift) as i64) >> shift
    }
}

/// Truncates an `i64` to the element width (wrapping).
pub fn truncate(v: i64, esize: ElemSize) -> u64 {
    if esize.bits() == 64 {
        v as u64
    } else {
        (v as u64) & ((1u64 << esize.bits()) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal_isa::{P0, V0, X0};

    #[test]
    fn memory_reads_zero_when_untouched() {
        let m = SimMemory::new();
        assert_eq!(m.read_u8(0xDEAD_BEEF), 0);
        assert_eq!(m.read_le(12345, 8), 0);
    }

    #[test]
    fn memory_round_trip_across_page_boundary() {
        let mut m = SimMemory::new();
        let addr = (PAGE_SIZE - 3) as u64;
        m.write_le(addr, 0x1122_3344_5566_7788, 8);
        assert_eq!(m.read_le(addr, 8), 0x1122_3344_5566_7788);
        assert!(m.resident_pages() >= 2);
    }

    #[test]
    fn memory_bytes_round_trip() {
        let mut m = SimMemory::new();
        m.write_bytes(100, b"hello world");
        assert_eq!(m.read_bytes(100, 11), b"hello world");
    }

    #[test]
    fn vector_element_round_trip() {
        let mut s = ArchState::new(QzConfig::QZ_8P);
        for esize in ElemSize::all() {
            for i in 0..esize.lanes() {
                s.set_v_elem(V0, i, esize, (i as u64 * 3) & 0xFF);
            }
            for i in 0..esize.lanes() {
                assert_eq!(s.v_elem(V0, i, esize), (i as u64 * 3) & 0xFF);
            }
        }
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sign_extend(0xFF, ElemSize::B8), -1);
        assert_eq!(sign_extend(0x7F, ElemSize::B8), 127);
        assert_eq!(sign_extend(0xFFFF_FFFF, ElemSize::B32), -1);
        assert_eq!(sign_extend(u64::MAX, ElemSize::B64), -1);
    }

    #[test]
    fn truncation() {
        assert_eq!(truncate(-1, ElemSize::B8), 0xFF);
        assert_eq!(truncate(256, ElemSize::B8), 0);
        assert_eq!(truncate(-1, ElemSize::B64), u64::MAX);
    }

    #[test]
    fn predicates_at_element_granularity() {
        let mut s = ArchState::new(QzConfig::QZ_8P);
        s.set_p(P0, ArchState::pred_first_n(3, ElemSize::B64));
        assert!(s.lane_active(P0, 0, ElemSize::B64));
        assert!(s.lane_active(P0, 2, ElemSize::B64));
        assert!(!s.lane_active(P0, 3, ElemSize::B64));
        assert_eq!(s.pred_count(P0, ElemSize::B64), 3);
    }

    #[test]
    fn scalar_registers() {
        let mut s = ArchState::new(QzConfig::QZ_8P);
        s.set_x(X0, 42);
        assert_eq!(s.x(X0), 42);
    }
}
