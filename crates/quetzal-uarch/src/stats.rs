//! Execution statistics and stall attribution.

/// Category a stall (or committed-cycle gap) is attributed to. The
/// categories mirror the paper's execution-time breakdown (Fig. 4),
/// where "cache accesses" take 32–65 % of vectorized ASM run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCat {
    /// Useful, width-limited commit (no stall).
    Base,
    /// Front-end could not supply instructions (includes branch
    /// mispredict refill).
    Frontend,
    /// Waiting on scalar arithmetic.
    ScalarCompute,
    /// Waiting on vector arithmetic.
    VectorCompute,
    /// Waiting on the cache hierarchy / memory.
    Memory,
    /// Waiting on QUETZAL buffer accesses.
    Quetzal,
}

impl StallCat {
    /// All categories, in reporting order.
    pub fn all() -> [StallCat; 6] {
        [
            StallCat::Base,
            StallCat::Frontend,
            StallCat::ScalarCompute,
            StallCat::VectorCompute,
            StallCat::Memory,
            StallCat::Quetzal,
        ]
    }

    /// Dense index for accumulation arrays.
    pub fn index(self) -> usize {
        match self {
            StallCat::Base => 0,
            StallCat::Frontend => 1,
            StallCat::ScalarCompute => 2,
            StallCat::VectorCompute => 3,
            StallCat::Memory => 4,
            StallCat::Quetzal => 5,
        }
    }
}

impl std::fmt::Display for StallCat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StallCat::Base => "base",
            StallCat::Frontend => "frontend",
            StallCat::ScalarCompute => "scalar-compute",
            StallCat::VectorCompute => "vector-compute",
            StallCat::Memory => "cache-access",
            StallCat::Quetzal => "quetzal-access",
        };
        f.write_str(s)
    }
}

/// Statistics of one simulated run (or several accumulated runs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Total cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub instructions: u64,
    /// Committed micro-operations (gather/scatter elements count
    /// individually).
    pub uops: u64,
    /// Requests issued to the cache hierarchy (scalar requests; each
    /// gather/scatter element counts once — the quantity Fig. 14a plots).
    pub mem_requests: u64,
    /// L1D hits.
    pub l1_hits: u64,
    /// L1D misses (L2 lookups).
    pub l1_misses: u64,
    /// L2 misses (DRAM accesses).
    pub l2_misses: u64,
    /// Bytes transferred from/to DRAM.
    pub dram_bytes: u64,
    /// Lines installed by the prefetcher.
    pub prefetches: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Gather/scatter instructions executed.
    pub indexed_ops: u64,
    /// QUETZAL buffer accesses (reads + writes).
    pub qz_accesses: u64,
    /// Cycle attribution by category; sums to `cycles`.
    pub stall_cycles: [u64; 6],
}

impl RunStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles attributed to a category.
    pub fn stall_fraction(&self, cat: StallCat) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stall_cycles[cat.index()] as f64 / self.cycles as f64
        }
    }

    /// L1 hit rate over demand requests.
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    /// Accumulates another run's statistics into this one (cycles add;
    /// used when a workload is split across several kernel submissions).
    pub fn accumulate(&mut self, other: &RunStats) {
        self.merge(other);
    }

    /// Merges the statistics of an independently simulated piece of
    /// work (another kernel submission, or another shard of a parallel
    /// batch) into this one. Every event counter and every
    /// stall-attribution bucket sums, so merged stalls still account
    /// for merged `cycles` exactly, and — addition being commutative
    /// and associative over disjoint shards — the merged total is
    /// independent of how the batch was sharded or scheduled.
    pub fn merge(&mut self, other: &RunStats) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.uops += other.uops;
        self.mem_requests += other.mem_requests;
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.l2_misses += other.l2_misses;
        self.dram_bytes += other.dram_bytes;
        self.prefetches += other.prefetches;
        self.branches += other.branches;
        self.mispredicts += other.mispredicts;
        self.indexed_ops += other.indexed_ops;
        self.qz_accesses += other.qz_accesses;
        for i in 0..6 {
            self.stall_cycles[i] += other.stall_cycles[i];
        }
    }

    /// Merges an ordered sequence of per-shard statistics (see
    /// [`merge`](Self::merge)) into one total.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a RunStats>) -> RunStats {
        let mut total = RunStats::default();
        for p in parts {
            total.merge(p);
        }
        total
    }
}

impl std::fmt::Display for RunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cycles: {}  insts: {}  ipc: {:.2}",
            self.cycles,
            self.instructions,
            self.ipc()
        )?;
        writeln!(
            f,
            "mem requests: {}  L1 hit rate: {:.1}%  L2 misses: {}  dram: {} B",
            self.mem_requests,
            100.0 * self.l1_hit_rate(),
            self.l2_misses,
            self.dram_bytes
        )?;
        write!(f, "stalls:")?;
        for cat in StallCat::all() {
            write!(f, " {}={:.1}%", cat, 100.0 * self.stall_fraction(cat))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_rates() {
        let mut s = RunStats::default();
        assert_eq!(s.ipc(), 0.0);
        s.cycles = 100;
        s.instructions = 250;
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        s.l1_hits = 90;
        s.l1_misses = 10;
        assert!((s.l1_hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn accumulate_adds_everything() {
        let mut a = RunStats {
            cycles: 10,
            instructions: 20,
            stall_cycles: [1, 2, 3, 4, 5, 6],
            ..RunStats::default()
        };
        let b = a.clone();
        a.accumulate(&b);
        assert_eq!(a.cycles, 20);
        assert_eq!(a.instructions, 40);
        assert_eq!(a.stall_cycles, [2, 4, 6, 8, 10, 12]);
    }

    #[test]
    fn merge_sums_counters_and_stall_buckets() {
        let a = RunStats {
            cycles: 10,
            instructions: 20,
            mem_requests: 5,
            qz_accesses: 7,
            stall_cycles: [1, 2, 3, 4, 0, 0],
            ..RunStats::default()
        };
        let b = RunStats {
            cycles: 100,
            instructions: 200,
            mem_requests: 50,
            qz_accesses: 70,
            stall_cycles: [10, 20, 30, 40, 0, 0],
            ..RunStats::default()
        };
        // Merge order must not matter.
        let ab = RunStats::merged([&a, &b]);
        let ba = RunStats::merged([&b, &a]);
        assert_eq!(ab, ba);
        assert_eq!(ab.cycles, 110);
        assert_eq!(ab.instructions, 220);
        assert_eq!(ab.mem_requests, 55);
        assert_eq!(ab.qz_accesses, 77);
        assert_eq!(ab.stall_cycles, [11, 22, 33, 44, 0, 0]);
        // Stall buckets still account for every cycle.
        assert_eq!(ab.stall_cycles.iter().sum::<u64>(), ab.cycles);
    }

    #[test]
    fn stall_indices_are_dense() {
        for (i, c) in StallCat::all().into_iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn display_contains_key_fields() {
        let s = RunStats {
            cycles: 7,
            instructions: 3,
            ..RunStats::default()
        };
        let out = s.to_string();
        assert!(out.contains("cycles: 7"));
        assert!(out.contains("cache-access"));
    }
}
