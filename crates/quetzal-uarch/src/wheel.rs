//! Event-keyed free-slot structures for the out-of-order timing engine.
//!
//! The seed engine tracked every functional-unit pool as a `Vec<u64>` of
//! per-slot free times and allocated by **min-scanning** the pool, and
//! tracked the store-to-load forwarding window as a fixed ring scanned
//! **in full** on every load. Both costs scale with the configured
//! structure size, which is exactly the wrong shape for design-space
//! sweeps over wide (8-/16-issue, deep-ring) configurations.
//!
//! This module replaces them with event-keyed equivalents:
//!
//! * [`FreeWheel`] — a calendar-queue timing wheel over "unit free at
//!   cycle *c*" events. Allocation pops the earliest-free bucket and
//!   re-inserts the slot at its new ready cycle: O(1) amortized,
//!   independent of pool width.
//! * [`StoreIndex`] — the same FIFO forwarding window the ring
//!   implemented, plus a granule-keyed interval index so a load
//!   consults only the stores that touch its address neighbourhood,
//!   not the whole ring.
//! * [`RobRing`] — the reorder buffer as a fixed ring (no deque
//!   reallocation or spare-capacity bookkeeping on the per-retire
//!   path).
//!
//! # Equivalence contract
//!
//! All three structures are **observationally identical** to their
//! linear-scan predecessors; `RunStats` produced through them is
//! bit-identical (pinned by `tests/timing_golden.rs` and the randomized
//! differential suite in `crates/quetzal-uarch/tests/wheel_reference.rs`):
//!
//! * A min-scan allocation's start time depends only on the *minimum*
//!   of the pool's free-time multiset, never on which slot holds it —
//!   so any structure that maintains the same multiset and extracts its
//!   minimum allocates identically.
//! * The forwarding fold ignores non-overlapping stores entirely and
//!   combines overlapping ones with `max`/`or`, which is order- and
//!   duplicate-independent — so visiting any **superset** of the
//!   overlapping live stores (granule-bucket neighbours, hash-collision
//!   strays, a store visited twice because it and the load both
//!   straddle a granule boundary) folds to the same result as the full
//!   ring scan, which visited *every* live store.
//!
//! # Wheel geometry, rotation and overflow
//!
//! Buckets are one cycle wide ([`FreeWheel::DEFAULT_WINDOW`] of them,
//! power of two). The wheel covers the half-open cycle window
//! `[base, base + window)`; `base` — the earliest cycle any free event
//! can live at — only ever advances (the popped minimum is re-inserted
//! at a strictly later cycle, so the multiset minimum is monotone).
//! An occupancy bitmap (one bit per bucket) finds the next occupied
//! bucket a 64-bucket word at a time, so a pop costs a couple of word
//! scans rather than a walk over empty buckets. Events keyed beyond
//! the window spill into a `BinaryHeap` overflow; as `base` rotates
//! forward, overflow events whose cycle enters the window migrate back
//! into buckets, and when the wheel goes empty `base` jumps straight to
//! the overflow minimum.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Calendar-queue tracker of *unit free at cycle* events for a pool of
/// identical functional units or ports.
///
/// Semantics are exactly the seed min-scan with unit busy time: an
/// allocation at request cycle `at` starts at `max(pool minimum, at)`
/// and returns the slot to the pool `busy` cycles later.
#[derive(Debug, Clone)]
pub struct FreeWheel {
    /// Free events per cycle, indexed by `cycle & mask`.
    counts: Box<[u32]>,
    /// Occupancy bitmap over `counts` (bit set ⇔ bucket non-empty).
    words: Box<[u64]>,
    mask: u64,
    /// Cycle of the earliest possible wheel event; all bucketed events
    /// lie in `[base, base + window)`, all overflow events at or above
    /// `base + window` when they spilled.
    base: u64,
    /// Events currently bucketed.
    in_wheel: u32,
    /// Events beyond the window (rare: a request cycle far above the
    /// pool minimum, e.g. an operand arriving from a DRAM miss chain).
    overflow: BinaryHeap<Reverse<u64>>,
    /// Pool width (total events in wheel + overflow at rest).
    units: u32,
}

impl FreeWheel {
    /// Default bucket count: covers a window far wider than any
    /// realistic spread between the pool's earliest and latest free
    /// times (bounded by pool width × the longest operand-arrival gap);
    /// anything beyond spills to the overflow heap, losslessly.
    pub const DEFAULT_WINDOW: usize = 1024;

    /// A pool of `units` slots, all free at cycle 0.
    pub fn new(units: usize) -> FreeWheel {
        FreeWheel::with_window(units, Self::DEFAULT_WINDOW)
    }

    /// A pool with an explicit bucket count (rounded up to a power of
    /// two, minimum 2). Small windows force heavy rotation/overflow
    /// traffic — the differential tests use this to stress that path.
    pub fn with_window(units: usize, window: usize) -> FreeWheel {
        let units = units.max(1);
        let window = window.max(2).next_power_of_two();
        let mut counts = vec![0u32; window].into_boxed_slice();
        counts[0] = units as u32;
        let mut words = vec![0u64; window.div_ceil(64)].into_boxed_slice();
        words[0] = 1;
        FreeWheel {
            counts,
            words,
            mask: (window - 1) as u64,
            base: 0,
            in_wheel: units as u32,
            overflow: BinaryHeap::new(),
            units: units as u32,
        }
    }

    /// Pool width.
    pub fn units(&self) -> usize {
        self.units as usize
    }

    /// Returns every slot to "free at cycle 0" (cold boot). Keeps the
    /// bucket allocation.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.counts[0] = self.units;
        self.words.fill(0);
        self.words[0] = 1;
        self.base = 0;
        self.in_wheel = self.units;
        self.overflow.clear();
    }

    #[inline]
    fn bucket(&self, cycle: u64) -> usize {
        (cycle & self.mask) as usize
    }

    /// Adds one event to bucket `b`, maintaining the bitmap.
    #[inline]
    fn fill_bucket(&mut self, b: usize) {
        self.counts[b] += 1;
        self.words[b >> 6] |= 1u64 << (b & 63);
        self.in_wheel += 1;
    }

    /// Removes one event from bucket `b`, maintaining the bitmap.
    #[inline]
    fn drain_bucket(&mut self, b: usize) {
        self.counts[b] -= 1;
        if self.counts[b] == 0 {
            self.words[b >> 6] &= !(1u64 << (b & 63));
        }
        self.in_wheel -= 1;
    }

    /// Index of the first occupied bucket at or cyclically after
    /// `start`, found a 64-bucket word at a time. Returns `start` + the
    /// cyclic distance; caller guarantees the wheel is non-empty.
    #[inline]
    fn next_occupied(&self, start: usize) -> usize {
        let (w0, bit) = (start >> 6, start & 63);
        // First (partial) word: only bits at or after `start`.
        let masked = self.words[w0] & (u64::MAX << bit);
        if masked != 0 {
            return (w0 << 6) | masked.trailing_zeros() as usize;
        }
        let n = self.words.len();
        for step in 1..=n {
            let w = (w0 + step) % n;
            if self.words[w] != 0 {
                return (w << 6) | self.words[w].trailing_zeros() as usize;
            }
        }
        // Unreachable with in_wheel > 0; fall back to the cursor.
        debug_assert!(false, "occupancy bitmap empty with events in wheel");
        start
    }

    /// Extracts the earliest free event. The pool is never empty
    /// between operations (every pop is followed by an insert), so this
    /// always finds one; a corrupted-state fallback returns `base`
    /// rather than spinning.
    ///
    /// After the loop-top migration, any remaining overflow event is at
    /// or above `base + window` while every bucketed event is below it,
    /// so the bucketed minimum is the global minimum and `base` can
    /// jump straight to it (the multiset minimum is monotone, so no
    /// later event is skipped).
    fn pop_min(&mut self) -> u64 {
        let window = self.mask + 1;
        loop {
            // Migrate overflow events the advancing window has reached.
            while let Some(&Reverse(f)) = self.overflow.peek() {
                if f >= self.base + window {
                    break;
                }
                self.overflow.pop();
                let b = self.bucket(f);
                self.fill_bucket(b);
            }
            if self.in_wheel == 0 {
                match self.overflow.peek() {
                    // Wheel dry, overflow live: jump the window to the
                    // overflow minimum and let migration pull it in.
                    Some(&Reverse(f)) => {
                        self.base = f;
                        continue;
                    }
                    None => {
                        debug_assert!(false, "empty free-slot pool");
                        return self.base;
                    }
                }
            }
            let bb = self.bucket(self.base);
            let fb = self.next_occupied(bb);
            let delta = (fb.wrapping_sub(bb) as u64) & self.mask;
            let min = self.base + delta;
            self.drain_bucket(fb);
            self.base = min;
            return min;
        }
    }

    #[inline]
    fn insert(&mut self, cycle: u64) {
        debug_assert!(cycle >= self.base, "free event behind the window");
        if cycle < self.base + self.mask + 1 {
            let b = self.bucket(cycle);
            self.fill_bucket(b);
        } else {
            self.overflow.push(Reverse(cycle));
        }
    }

    /// Allocates the earliest-free slot for a request at cycle `at`
    /// occupying the slot for `busy` cycles. Returns the start cycle:
    /// `max(earliest free, at)`, exactly as the seed min-scan did.
    #[inline]
    pub fn alloc(&mut self, at: u64, busy: u64) -> u64 {
        let min = self.pop_min();
        let start = min.max(at);
        self.insert(start + busy);
        start
    }
}

/// Byte shift of the interval-index granule: stores and loads are
/// indexed by the 64-byte neighbourhoods they touch. 64 bytes is both
/// the cache-line size and the widest single access the ISA produces
/// (a full 512-bit unit-stride vector), so any access spans at most two
/// granules.
const GRANULE_SHIFT: u32 = 6;

/// Empty link / unlinked-node sentinel for the intrusive chains.
const NO_NODE: u32 = u32::MAX;

/// FIFO store-to-load forwarding window with a granule-hashed interval
/// index.
///
/// Holds the most recent `depth` stores (overwriting the oldest when
/// full, exactly like the seed ring). The index hashes each touched
/// granule into a power-of-two bucket table and chains stores through
/// two preallocated intrusive nodes per slot (a store spans at most two
/// granules), so pushes, evictions and candidate walks touch only flat
/// arrays — no hashing rounds beyond one multiply, no allocation.
///
/// A candidate walk yields a **superset** of the stores overlapping the
/// probed range: everything chained in the probed granules' buckets,
/// which may include hash-collision strays and a store visited twice
/// when it and the probe both straddle a granule boundary. All
/// candidates are live stores, and callers fold with overlap-checked,
/// duplicate-insensitive operations (`max`, `|=`) — exactly the fold
/// the seed applied to *every* live store — so the result is
/// bit-identical.
#[derive(Debug, Clone, Default)]
pub struct StoreIndex {
    /// `(address, bytes, completion cycle)` per slot, FIFO by `head`.
    slots: Vec<(u64, u32, u64)>,
    /// Live entries (saturates at `depth`).
    len: usize,
    /// Next slot to overwrite.
    head: usize,
    /// Window capacity.
    depth: usize,
    /// Bucket table: first chained node per bucket (power-of-two size).
    heads: Box<[u32]>,
    /// Forward links, two nodes per slot (`2 * slot`, `2 * slot + 1`).
    next: Box<[u32]>,
    /// Backward links (`NO_NODE` at a chain head).
    prev: Box<[u32]>,
    /// Bucket each node is chained in (`NO_NODE` when unlinked).
    node_bucket: Box<[u32]>,
    /// `64 - log2(bucket count)`, for the multiply-shift granule hash.
    shift: u32,
}

impl StoreIndex {
    /// An empty window of `depth` entries.
    pub fn new(depth: usize) -> StoreIndex {
        let depth = depth.max(1).min(u16::MAX as usize);
        // 4x oversized table keeps chains near length one.
        let buckets = (4 * depth).next_power_of_two();
        StoreIndex {
            slots: vec![(0, 0, 0); depth],
            len: 0,
            head: 0,
            depth,
            heads: vec![NO_NODE; buckets].into_boxed_slice(),
            next: vec![NO_NODE; 2 * depth].into_boxed_slice(),
            prev: vec![NO_NODE; 2 * depth].into_boxed_slice(),
            node_bucket: vec![NO_NODE; 2 * depth].into_boxed_slice(),
            shift: 64 - buckets.trailing_zeros(),
        }
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window holds no stores.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Window capacity.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Nodes currently chained in the index. Bounded by `2 * depth`
    /// however long the run: each live store owns exactly two
    /// preallocated nodes and eviction unlinks them.
    pub fn index_node_count(&self) -> usize {
        self.node_bucket.iter().filter(|&&b| b != NO_NODE).count()
    }

    /// The live entries, in no particular order (the forwarding fold is
    /// order-independent).
    pub fn entries(&self) -> &[(u64, u32, u64)] {
        &self.slots[..self.len]
    }

    /// Empties the window (cold boot).
    pub fn reset(&mut self) {
        self.slots[..self.len].fill((0, 0, 0));
        self.len = 0;
        self.head = 0;
        self.heads.fill(NO_NODE);
        self.node_bucket.fill(NO_NODE);
    }

    /// Granule range of `[addr, addr + size)` with saturating ends
    /// (guest addresses can sit at the top of the address space).
    #[inline]
    fn granules(addr: u64, size: u32) -> std::ops::RangeInclusive<u64> {
        let last = addr.saturating_add(size.saturating_sub(1) as u64);
        (addr >> GRANULE_SHIFT)..=(last >> GRANULE_SHIFT)
    }

    /// Multiply-shift hash of a granule into a bucket index.
    #[inline]
    fn bucket_of(&self, granule: u64) -> usize {
        (granule.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize
    }

    /// Chains `node` at the head of `bucket`.
    #[inline]
    fn link(&mut self, node: u32, bucket: usize) {
        let old = self.heads[bucket];
        self.next[node as usize] = old;
        self.prev[node as usize] = NO_NODE;
        if old != NO_NODE {
            self.prev[old as usize] = node;
        }
        self.heads[bucket] = node;
        self.node_bucket[node as usize] = bucket as u32;
    }

    /// Unchains `node` from wherever it is linked (no-op if unlinked).
    #[inline]
    fn unlink(&mut self, node: u32) {
        let bucket = self.node_bucket[node as usize];
        if bucket == NO_NODE {
            return;
        }
        let (n, p) = (self.next[node as usize], self.prev[node as usize]);
        if p != NO_NODE {
            self.next[p as usize] = n;
        } else {
            self.heads[bucket as usize] = n;
        }
        if n != NO_NODE {
            self.prev[n as usize] = p;
        }
        self.node_bucket[node as usize] = NO_NODE;
    }

    /// Records a store that completes at cycle `done`, evicting the
    /// oldest entry when the window is full (its nodes are unlinked and
    /// reused — the index never grows past `2 * depth` nodes).
    pub fn push(&mut self, addr: u64, size: u32, done: u64) {
        let slot = self.head;
        let (n0, n1) = ((2 * slot) as u32, (2 * slot + 1) as u32);
        self.unlink(n0);
        self.unlink(n1);
        self.slots[slot] = (addr, size, done);
        self.head = (self.head + 1) % self.depth;
        self.len = (self.len + 1).min(self.depth);
        let mut g = Self::granules(addr, size);
        let first = g.next().unwrap_or(addr >> GRANULE_SHIFT);
        self.link(n0, self.bucket_of(first));
        if let Some(second) = g.next() {
            self.link(n1, self.bucket_of(second));
        }
    }

    /// Calls `f(store_addr, store_size, store_done)` for every live
    /// store chained in a bucket the byte range `[addr, addr+size)`
    /// hashes to — a superset of the overlapping stores (see the type
    /// docs). Callers must fold with overlap-checked,
    /// duplicate-insensitive operations, which is what the
    /// forwarding-hazard model does.
    #[inline]
    pub fn for_each_candidate(&self, addr: u64, size: u32, mut f: impl FnMut(u64, u32, u64)) {
        for g in Self::granules(addr, size) {
            let mut node = self.heads[self.bucket_of(g)];
            while node != NO_NODE {
                let (sa, ss, done) = self.slots[(node >> 1) as usize];
                f(sa, ss, done);
                node = self.next[node as usize];
            }
        }
    }
}

/// The reorder buffer as a fixed ring of commit cycles: push at the
/// tail, pop at the head, capacity fixed at construction. Replaces the
/// seed's `VecDeque` (no growth checks or spare-capacity bookkeeping on
/// the per-retire path).
#[derive(Debug, Clone)]
pub struct RobRing {
    slots: Box<[u64]>,
    head: usize,
    len: usize,
}

impl RobRing {
    /// An empty ring holding up to `capacity` entries.
    pub fn new(capacity: usize) -> RobRing {
        RobRing {
            slots: vec![0; capacity.max(1)].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties the ring.
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }

    /// Appends at the tail.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the ring is not full; in release an overfull
    /// push overwrites the oldest entry (the engine pops before pushing
    /// at capacity, so this is unreachable from the retire path).
    #[inline]
    pub fn push_back(&mut self, v: u64) {
        debug_assert!(self.len < self.slots.len(), "rob ring overfull");
        if self.len == self.slots.len() {
            self.pop_front();
        }
        let tail = (self.head + self.len) % self.slots.len();
        self.slots[tail] = v;
        self.len += 1;
    }

    /// Removes and returns the oldest entry.
    #[inline]
    pub fn pop_front(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let v = self.slots[self.head];
        self.head = (self.head + 1) % self.slots.len();
        self.len -= 1;
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The seed engine's min-scan pool, verbatim (the reference model).
    struct LinearPool(Vec<u64>);

    impl LinearPool {
        fn alloc(&mut self, at: u64, busy: u64) -> u64 {
            let units = &mut self.0;
            let mut best = 0;
            for (i, &t) in units.iter().enumerate() {
                if t < units[best] {
                    best = i;
                }
            }
            let start = units[best].max(at);
            units[best] = start + busy;
            start
        }
    }

    /// SplitMix64 (in-tree RNG; no external dependencies).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    #[test]
    fn wheel_matches_linear_scan_on_random_schedules() {
        for units in [1usize, 2, 3, 8, 17] {
            for window in [2usize, 8, FreeWheel::DEFAULT_WINDOW] {
                let mut rng = Rng(0xC0FFEE ^ units as u64 ^ (window as u64) << 32);
                let mut wheel = FreeWheel::with_window(units, window);
                let mut lin = LinearPool(vec![0; units]);
                let mut at = 0u64;
                for step in 0..5000u64 {
                    // Mixed request pattern: local jitter, occasional
                    // big forward jumps (operands from a miss chain),
                    // occasional stale (past) request cycles.
                    at = match rng.below(10) {
                        0 => at + rng.below(5000),
                        1 => at.saturating_sub(rng.below(100)),
                        _ => at + rng.below(4),
                    };
                    let busy = 1 + rng.below(3);
                    assert_eq!(
                        wheel.alloc(at, busy),
                        lin.alloc(at, busy),
                        "units={units} window={window} step={step}"
                    );
                }
            }
        }
    }

    #[test]
    fn wheel_reset_restores_cold_boot() {
        let mut w = FreeWheel::new(2);
        let mut fresh = FreeWheel::new(2);
        for at in [0, 5, 1_000_000, 3] {
            w.alloc(at, 1);
        }
        w.reset();
        for at in [0, 7, 2, 900] {
            assert_eq!(w.alloc(at, 1), fresh.alloc(at, 1));
        }
    }

    #[test]
    fn wheel_zero_width_pool_clamps_to_one() {
        let mut w = FreeWheel::new(0);
        assert_eq!(w.units(), 1);
        assert_eq!(w.alloc(10, 1), 10);
        assert_eq!(w.alloc(0, 1), 11);
    }

    #[test]
    fn wheel_overflow_spill_and_return() {
        // Window of 2 buckets with jumps far beyond it: every insert
        // overflows, every pop migrates or rebase-jumps.
        let mut w = FreeWheel::with_window(1, 2);
        assert_eq!(w.alloc(1000, 1), 1000);
        assert_eq!(w.alloc(0, 1), 1001);
        assert_eq!(w.alloc(5000, 1), 5000);
        assert_eq!(w.alloc(5001, 1), 5001);
    }

    #[test]
    fn store_index_is_fifo_bounded_and_indexed() {
        let mut s = StoreIndex::new(4);
        for i in 0..10u64 {
            s.push(i * 8, 8, i + 100);
        }
        assert_eq!(s.len(), 4);
        // Evicted stores are no longer visible. Candidates are granule
        // neighbours, not exact overlaps, so dedup before comparing.
        let mut seen = Vec::new();
        for a in 0..10u64 {
            s.for_each_candidate(a * 8, 8, |sa, _, _| seen.push(sa));
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![48, 56, 64, 72]);
        // Bounded index: at most 2 nodes per live store.
        assert!(s.index_node_count() <= 2 * s.depth());
        s.reset();
        assert!(s.is_empty());
        s.for_each_candidate(0, 1 << 20, |_, _, _| panic!("reset index not empty"));
    }

    #[test]
    fn store_index_straddling_accesses_are_found() {
        let mut s = StoreIndex::new(8);
        // A store straddling the granule boundary at 64.
        s.push(60, 8, 42);
        for probe in [(0u64, 64u32), (64, 8), (56, 8), (60, 1), (67, 1)] {
            let mut hits = 0;
            s.for_each_candidate(probe.0, probe.1, |sa, ss, done| {
                assert_eq!((sa, ss, done), (60, 8, 42));
                hits += 1;
            });
            assert!(hits >= 1, "probe {probe:?} missed the straddling store");
        }
    }

    #[test]
    fn store_index_top_of_address_space() {
        let mut s = StoreIndex::new(4);
        s.push(u64::MAX - 3, 8, 7); // saturating end
        let mut hits = 0;
        s.for_each_candidate(u64::MAX - 63, 64, |_, _, _| hits += 1);
        assert!(hits >= 1);
    }

    #[test]
    fn rob_ring_is_a_fifo() {
        let mut r = RobRing::new(3);
        assert!(r.is_empty());
        assert_eq!(r.pop_front(), None);
        r.push_back(1);
        r.push_back(2);
        r.push_back(3);
        assert_eq!(r.len(), 3);
        assert_eq!(r.pop_front(), Some(1));
        r.push_back(4);
        assert_eq!(r.pop_front(), Some(2));
        assert_eq!(r.pop_front(), Some(3));
        assert_eq!(r.pop_front(), Some(4));
        assert!(r.is_empty());
        r.push_back(9);
        r.clear();
        assert!(r.is_empty());
    }
}
