//! Functional interpreter and the [`Core`] facade.
//!
//! The interpreter executes programs against [`ArchState`] with exact
//! ISA semantics (it *is* the functional model — vector instructions
//! really compute) and streams one [`DynInst`] per executed instruction
//! into an [`ExecSink`]. Paired with [`OooTiming`] this yields an
//! execution-driven, cycle-level simulation; paired with [`NullSink`]
//! it is a fast functional emulator
//! used by correctness tests.

use crate::config::CoreConfig;
use crate::functional::{CompiledCache, ExecMode};
use crate::ooo::{DynInst, ExecSink, OooTiming};
use crate::predecode::{DecodeCache, MicroOp, Predecode};
use crate::probe::{NullProbe, Probe};
use crate::state::{truncate, ArchState};
use crate::stats::RunStats;
use quetzal_accel::count_alu::{qzcount_vector, COUNT_ALU_LATENCY};
use quetzal_isa::{
    ElemSize, Instruction, PReg, Program, RedOp, SAluOp, VAluOp, VReg, LANES_64, VLEN_BYTES,
};

/// Errors raised during simulation.
///
/// Every variant carries enough context to locate the faulting dynamic
/// instruction. This is the complete *guest-visible* failure taxonomy:
/// anything a guest program can trigger surfaces as one of these, never
/// as a panic (the fault-injection sweep in `tests/fault_injection.rs`
/// enforces that). True simulator-internal invariants stay
/// `debug_assert!`s; see DESIGN.md "Failure model & fault injection".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The instruction budget was exhausted (runaway kernel loop).
    InstLimit {
        /// The configured budget.
        budget: u64,
    },
    /// The timing-side cycle watchdog fired: the clock advanced past the
    /// configured cycle budget. Distinct from [`SimError::InstLimit`] —
    /// this catches a *timing-model* livelock (pathological structural
    /// stalls) even when the retired-instruction count stays small.
    CycleLimit {
        /// The configured cycle budget.
        budget: u64,
    },
    /// `qzconf` was executed with an invalid element-size field.
    InvalidQzConf {
        /// The offending `Esiz` value.
        esiz: u64,
        /// Program counter of the instruction.
        pc: usize,
    },
    /// The program counter left the program: sequential execution fell
    /// off the end, or a corrupted branch/jump target pointed outside
    /// the instruction stream (truncated or mutated program image).
    DecodeError {
        /// The out-of-range program counter.
        pc: usize,
    },
    /// A lane index encoded in the instruction is out of range for its
    /// element size (`vextract`/`vinsert` with `lane >= lanes(esize)`).
    InvalidRegister {
        /// The offending lane index.
        index: u8,
        /// Program counter of the instruction.
        pc: usize,
    },
    /// A store touched more distinct memory pages than the simulated
    /// memory's page budget allows — the guest scribbled over an
    /// adversarial address range instead of its staged working set.
    MemoryFault {
        /// The faulting (first unmappable) address.
        addr: u64,
        /// Program counter of the instruction.
        pc: usize,
    },
    /// `qzencode` was executed with an element index that violates the
    /// configured encoding's alignment contract.
    QBufferIndexOutOfRange {
        /// The offending element index.
        idx: u64,
        /// Program counter of the instruction.
        pc: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InstLimit { budget } => {
                write!(f, "instruction budget of {budget} exhausted")
            }
            SimError::CycleLimit { budget } => {
                write!(f, "cycle budget of {budget} exhausted (timing watchdog)")
            }
            SimError::InvalidQzConf { esiz, pc } => {
                write!(f, "invalid qzconf element size {esiz} at pc {pc}")
            }
            SimError::DecodeError { pc } => {
                write!(f, "program counter {pc} outside program")
            }
            SimError::InvalidRegister { index, pc } => {
                write!(f, "lane index {index} out of range at pc {pc}")
            }
            SimError::MemoryFault { addr, pc } => {
                write!(
                    f,
                    "memory fault at address {addr:#x} (pc {pc}): page budget exceeded"
                )
            }
            SimError::QBufferIndexOutOfRange { idx, pc } => {
                write!(
                    f,
                    "qbuffer element index {idx} invalid for configured encoding at pc {pc}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

pub(crate) fn scalar_alu(op: SAluOp, a: u64, b: u64) -> u64 {
    // Single shared semantics: `quetzal-verify`'s constant propagation
    // folds through the same routine the interpreter executes.
    op.eval(a, b)
}

pub(crate) fn vector_alu(op: VAluOp, a: i64, b: i64, esize: ElemSize) -> u64 {
    let r = match op {
        VAluOp::Add => a.wrapping_add(b),
        VAluOp::Sub => a.wrapping_sub(b),
        VAluOp::Mul => a.wrapping_mul(b),
        VAluOp::And => a & b,
        VAluOp::Or => a | b,
        VAluOp::Xor => a ^ b,
        VAluOp::Smin => a.min(b),
        VAluOp::Smax => a.max(b),
        VAluOp::Shl => ((a as u64).wrapping_shl(b as u32 & 63)) as i64,
        VAluOp::Shr => ((a as u64) & mask_of(esize)).wrapping_shr(b as u32 & 63) as i64,
    };
    truncate(r, esize)
}

fn mask_of(esize: ElemSize) -> u64 {
    if esize.bits() == 64 {
        u64::MAX
    } else {
        (1u64 << esize.bits()) - 1
    }
}

/// Packs the active `(index, value)` lane pairs of a predicated QBUFFER
/// write into caller-provided stack scratch, returning the live prefix
/// (replaces a per-instruction `Vec` allocation on the hot path).
pub(crate) fn active_lane_pairs<'a>(
    state: &ArchState,
    pg: PReg,
    idx: VReg,
    val: VReg,
    buf: &'a mut [(u64, u64); LANES_64],
) -> &'a [(u64, u64)] {
    let mask = state.mask64(pg);
    let idxs = state.v_lanes64(idx);
    let vals = state.v_lanes64(val);
    let mut n = 0;
    for i in 0..LANES_64 {
        if mask[i] {
            buf[n] = (idxs[i], vals[i]);
            n += 1;
        }
    }
    &buf[..n]
}

/// Executes `program` on `state`, streaming retired instructions into
/// `sink`. Predecodes the program locally (no cache) and delegates to
/// [`execute_predecoded`]. Returns the number of executed instructions.
///
/// # Errors
///
/// Returns [`SimError`] if the instruction budget is exhausted or an
/// invalid `qzconf` is executed.
pub fn execute(
    state: &mut ArchState,
    program: &Program,
    sink: &mut impl ExecSink,
    budget: u64,
) -> Result<u64, SimError> {
    let pre = Predecode::of(program);
    execute_predecoded(state, program, &pre, sink, budget)
}

/// Reference (seed-path) executor: decodes each instruction's
/// [`MicroOp`] afresh at retire time instead of reading the predecoded
/// table. Timing-equivalent to [`execute_predecoded`] by construction —
/// kept so the golden timing-neutrality test can assert the equivalence
/// on real workloads, and as the oracle for decode-cache bugs (a stale
/// or misindexed table diverges from this path immediately).
///
/// # Errors
///
/// Returns [`SimError`] if the instruction budget is exhausted or an
/// invalid `qzconf` is executed.
pub fn execute_reference(
    state: &mut ArchState,
    program: &Program,
    sink: &mut impl ExecSink,
    budget: u64,
) -> Result<u64, SimError> {
    let mut d = DynInst::default();
    execute_impl(state, program, sink, budget, &mut d, |_pc, inst| {
        MicroOp::decode(inst)
    })
}

/// Executes `program` with a prebuilt [`Predecode`] table (the hot
/// path: the table is computed once per program and cached by
/// [`Core`]).
///
/// # Panics
///
/// Panics if `pre` was built from a different (shorter) program.
///
/// # Errors
///
/// Returns [`SimError`] if the instruction budget is exhausted or an
/// invalid `qzconf` is executed.
pub fn execute_predecoded(
    state: &mut ArchState,
    program: &Program,
    pre: &Predecode,
    sink: &mut impl ExecSink,
    budget: u64,
) -> Result<u64, SimError> {
    assert_eq!(pre.len(), program.len(), "predecode table mismatch");
    let mut d = DynInst::default();
    execute_impl(state, program, sink, budget, &mut d, |pc, _inst| {
        *pre.op(pc)
    })
}

/// The interpreter loop, generic over where each instruction's
/// [`MicroOp`] record comes from (predecoded table or per-retire
/// decode). `d` is caller-provided scratch: its `mem` buffer is reused
/// across every dynamic instruction (and, via [`Core`], across runs),
/// so the loop allocates nothing per instruction.
fn execute_impl(
    state: &mut ArchState,
    program: &Program,
    sink: &mut impl ExecSink,
    budget: u64,
    d: &mut DynInst,
    mut uop_of: impl FnMut(usize, &Instruction) -> MicroOp,
) -> Result<u64, SimError> {
    let mut pc = 0usize;
    let mut executed = 0u64;

    loop {
        if executed >= budget {
            return Err(SimError::InstLimit { budget });
        }
        // Fallible fetch: a truncated program image or a corrupted
        // branch target surfaces as a typed decode fault, not a panic.
        let Some(inst) = program.get(pc) else {
            return Err(SimError::DecodeError { pc });
        };
        executed += 1;
        d.reset(pc);
        let mut next_pc = pc + 1;

        match inst {
            Instruction::MovImm { rd, imm } => state.set_x(rd, imm as u64),
            Instruction::AluRR { op, rd, rn, rm } => {
                let v = scalar_alu(op, state.x(rn), state.x(rm));
                state.set_x(rd, v);
            }
            Instruction::AluRI { op, rd, rn, imm } => {
                let v = scalar_alu(op, state.x(rn), imm as u64);
                state.set_x(rd, v);
            }
            Instruction::Load {
                rd,
                rn,
                offset,
                size,
            } => {
                let addr = state.x(rn).wrapping_add_signed(offset);
                let v = state.mem.read_le(addr, size.bytes());
                state.set_x(rd, v);
                d.mem.push((addr, size.bytes() as u32));
            }
            Instruction::Store {
                rs,
                rn,
                offset,
                size,
            } => {
                let addr = state.x(rn).wrapping_add_signed(offset);
                if state
                    .mem
                    .try_write_le(addr, state.x(rs), size.bytes())
                    .is_err()
                {
                    return Err(SimError::MemoryFault { addr, pc });
                }
                d.mem.push((addr, size.bytes() as u32));
            }
            Instruction::Branch {
                cond,
                rn,
                rm,
                target,
            } => {
                let taken = cond.eval(state.x(rn) as i64, state.x(rm) as i64);
                d.taken = taken;
                if taken {
                    next_pc = target;
                }
            }
            Instruction::Jump { target } => {
                d.taken = true;
                next_pc = target;
            }
            Instruction::Halt => {
                sink.retire(&uop_of(pc, &inst), d);
                return Ok(executed);
            }

            Instruction::Dup { vd, rn, esize } => {
                let v = state.x(rn);
                for i in 0..esize.lanes() {
                    state.set_v_elem(vd, i, esize, v);
                }
            }
            Instruction::DupImm { vd, imm, esize } => {
                for i in 0..esize.lanes() {
                    state.set_v_elem(vd, i, esize, imm as u64);
                }
            }
            Instruction::Index {
                vd,
                rn,
                step,
                esize,
            } => {
                let start = state.x(rn) as i64;
                for i in 0..esize.lanes() {
                    let v = start.wrapping_add(step.wrapping_mul(i as i64));
                    state.set_v_elem(vd, i, esize, truncate(v, esize));
                }
            }
            Instruction::VAluVV {
                op,
                vd,
                vn,
                vm,
                pg,
                esize,
            } => {
                for i in 0..esize.lanes() {
                    if state.lane_active(pg, i, esize) {
                        let a = state.v_elem_i64(vn, i, esize);
                        let b = state.v_elem_i64(vm, i, esize);
                        state.set_v_elem(vd, i, esize, vector_alu(op, a, b, esize));
                    }
                }
            }
            Instruction::VAluVI {
                op,
                vd,
                vn,
                imm,
                pg,
                esize,
            } => {
                for i in 0..esize.lanes() {
                    if state.lane_active(pg, i, esize) {
                        let a = state.v_elem_i64(vn, i, esize);
                        state.set_v_elem(vd, i, esize, vector_alu(op, a, imm, esize));
                    }
                }
            }
            Instruction::VCmpVV {
                cond,
                pd,
                vn,
                vm,
                pg,
                esize,
            } => {
                let mut p = 0u64;
                for i in 0..esize.lanes() {
                    if state.lane_active(pg, i, esize) {
                        let a = state.v_elem_i64(vn, i, esize);
                        let b = state.v_elem_i64(vm, i, esize);
                        if cond.eval(a, b) {
                            p |= 1 << (i * esize.bytes());
                        }
                    }
                }
                state.set_p(pd, p);
            }
            Instruction::VCmpVI {
                cond,
                pd,
                vn,
                imm,
                pg,
                esize,
            } => {
                let mut p = 0u64;
                for i in 0..esize.lanes() {
                    if state.lane_active(pg, i, esize) {
                        let a = state.v_elem_i64(vn, i, esize);
                        if cond.eval(a, imm) {
                            p |= 1 << (i * esize.bytes());
                        }
                    }
                }
                state.set_p(pd, p);
            }
            Instruction::VSel {
                vd,
                pg,
                vn,
                vm,
                esize,
            } => {
                for i in 0..esize.lanes() {
                    let v = if state.lane_active(pg, i, esize) {
                        state.v_elem(vn, i, esize)
                    } else {
                        state.v_elem(vm, i, esize)
                    };
                    state.set_v_elem(vd, i, esize, v);
                }
            }
            Instruction::VLoad { vd, rn, pg, esize } => {
                let base = state.x(rn);
                for i in 0..esize.lanes() {
                    let v = if state.lane_active(pg, i, esize) {
                        let addr = base.wrapping_add((i * esize.bytes()) as u64);
                        state.mem.read_le(addr, esize.bytes())
                    } else {
                        0
                    };
                    state.set_v_elem(vd, i, esize, v);
                }
                d.mem.push((base, VLEN_BYTES as u32));
            }
            Instruction::VLoadN {
                vd,
                rn,
                pg,
                esize,
                msize,
            } => {
                let base = state.x(rn);
                for i in 0..esize.lanes() {
                    let v = if state.lane_active(pg, i, esize) {
                        let addr = base.wrapping_add((i * msize.bytes()) as u64);
                        state.mem.read_le(addr, msize.bytes())
                    } else {
                        0
                    };
                    state.set_v_elem(vd, i, esize, v);
                }
                d.mem.push((base, (esize.lanes() * msize.bytes()) as u32));
            }
            Instruction::VStore { vs, rn, pg, esize } => {
                let base = state.x(rn);
                for i in 0..esize.lanes() {
                    if state.lane_active(pg, i, esize) {
                        let v = state.v_elem(vs, i, esize);
                        let addr = base.wrapping_add((i * esize.bytes()) as u64);
                        if state.mem.try_write_le(addr, v, esize.bytes()).is_err() {
                            return Err(SimError::MemoryFault { addr, pc });
                        }
                    }
                }
                d.mem.push((base, VLEN_BYTES as u32));
            }
            Instruction::VGather {
                vd,
                rn,
                idx,
                pg,
                esize,
                msize,
                scale,
            } => {
                let base = state.x(rn);
                for i in 0..esize.lanes() {
                    if state.lane_active(pg, i, esize) {
                        let off = state.v_elem_i64(idx, i, esize);
                        let addr = base.wrapping_add_signed(off.wrapping_mul(scale as i64));
                        let v = state.mem.read_le(addr, msize.bytes());
                        state.set_v_elem(vd, i, esize, v);
                        d.mem.push((addr, msize.bytes() as u32));
                    } else {
                        state.set_v_elem(vd, i, esize, 0);
                    }
                }
            }
            Instruction::VScatter {
                vs,
                rn,
                idx,
                pg,
                esize,
                msize,
                scale,
            } => {
                let base = state.x(rn);
                for i in 0..esize.lanes() {
                    if state.lane_active(pg, i, esize) {
                        let off = state.v_elem_i64(idx, i, esize);
                        let addr = base.wrapping_add_signed(off.wrapping_mul(scale as i64));
                        if state
                            .mem
                            .try_write_le(addr, state.v_elem(vs, i, esize), msize.bytes())
                            .is_err()
                        {
                            return Err(SimError::MemoryFault { addr, pc });
                        }
                        d.mem.push((addr, msize.bytes() as u32));
                    }
                }
            }
            Instruction::VReduce {
                op,
                rd,
                vn,
                pg,
                esize,
            } => {
                let mut acc: Option<i64> = None;
                for i in 0..esize.lanes() {
                    if state.lane_active(pg, i, esize) {
                        let v = state.v_elem_i64(vn, i, esize);
                        acc = Some(match (acc, op) {
                            (None, _) => v,
                            (Some(a), RedOp::Add) => a.wrapping_add(v),
                            (Some(a), RedOp::Min) => a.min(v),
                            (Some(a), RedOp::Max) => a.max(v),
                        });
                    }
                }
                let empty = match op {
                    RedOp::Add => 0,
                    RedOp::Min => i64::MAX,
                    RedOp::Max => i64::MIN,
                };
                state.set_x(rd, acc.unwrap_or(empty) as u64);
            }
            Instruction::VExtract {
                rd,
                vn,
                lane,
                esize,
            } => {
                if lane as usize >= esize.lanes() {
                    return Err(SimError::InvalidRegister { index: lane, pc });
                }
                let v = state.v_elem(vn, lane as usize, esize);
                state.set_x(rd, v);
            }
            Instruction::VInsert {
                vd,
                rn,
                lane,
                esize,
            } => {
                if lane as usize >= esize.lanes() {
                    return Err(SimError::InvalidRegister { index: lane, pc });
                }
                let v = state.x(rn);
                state.set_v_elem(vd, lane as usize, esize, v);
            }
            Instruction::VSlideDown {
                vd,
                vn,
                amount,
                esize,
            } => {
                // Stack scratch: at most VLEN_BYTES lanes (B8 elements),
                // so a fixed array replaces the per-instruction Vec.
                let lanes = esize.lanes();
                let mut buf = [0u64; VLEN_BYTES];
                let tmp = &mut buf[..lanes];
                for (i, item) in tmp.iter_mut().enumerate() {
                    let src = i + amount as usize;
                    *item = if src < lanes {
                        state.v_elem(vn, src, esize)
                    } else {
                        0
                    };
                }
                for (i, &v) in tmp.iter().enumerate() {
                    state.set_v_elem(vd, i, esize, v);
                }
            }
            Instruction::VSlide1Up { vd, vn, rn, esize } => {
                let lanes = esize.lanes();
                let mut buf = [0u64; VLEN_BYTES];
                let tmp = &mut buf[..lanes];
                tmp[0] = state.x(rn);
                for (i, item) in tmp.iter_mut().enumerate().skip(1) {
                    *item = state.v_elem(vn, i - 1, esize);
                }
                for (i, &v) in tmp.iter().enumerate() {
                    state.set_v_elem(vd, i, esize, v);
                }
            }

            Instruction::PTrue { pd, esize } => {
                state.set_p(pd, ArchState::pred_first_n(esize.lanes(), esize));
            }
            Instruction::PWhileLt { pd, rn, esize } => {
                let n = state.x(rn) as i64;
                let n = n.clamp(0, esize.lanes() as i64) as usize;
                state.set_p(pd, ArchState::pred_first_n(n, esize));
            }
            Instruction::PFalse { pd } => state.set_p(pd, 0),
            Instruction::PAnd { pd, pn, pm } => state.set_p(pd, state.p(pn) & state.p(pm)),
            Instruction::POr { pd, pn, pm } => state.set_p(pd, state.p(pn) | state.p(pm)),
            Instruction::PBic { pd, pn, pm } => state.set_p(pd, state.p(pn) & !state.p(pm)),
            Instruction::PCount { rd, pn, esize } => {
                let c = state.pred_count(pn, esize);
                state.set_x(rd, c);
            }

            Instruction::QzConf { eb0, eb1, esiz } => {
                let esiz_v = state.x(esiz);
                if !state.qz.conf(state.x(eb0), state.x(eb1), esiz_v) {
                    return Err(SimError::InvalidQzConf { esiz: esiz_v, pc });
                }
                d.qz_latency = 1;
            }
            Instruction::QzEncode { sel, val, idx } => {
                let chars = *state.v(val);
                let at = state.x(idx);
                match state.qz.encode(sel.index(), &chars, at) {
                    Ok(lat) => d.qz_latency = lat,
                    Err(_) => return Err(SimError::QBufferIndexOutOfRange { idx: at, pc }),
                }
            }
            Instruction::QzStore { val, idx, sel, pg } => {
                let mut buf = [(0u64, 0u64); LANES_64];
                let lanes = active_lane_pairs(state, pg, idx, val, &mut buf);
                d.qz_latency = state.qz.store(sel.index(), lanes);
            }
            Instruction::QzUpdate {
                op,
                val,
                idx,
                sel,
                pg,
            } => {
                let mut buf = [(0u64, 0u64); LANES_64];
                let lanes = active_lane_pairs(state, pg, idx, val, &mut buf);
                d.qz_latency = state.qz.update(sel.index(), op, lanes);
            }
            Instruction::QzLoad { vd, idx, sel, pg } => {
                let mask = state.mask64(pg);
                let idxs = state.v_lanes64(idx);
                let (vals, lat) = state.qz.load(sel.index(), &idxs, &mask);
                for (i, &v) in vals.iter().enumerate() {
                    state.set_v_elem(vd, i, ElemSize::B64, v);
                }
                d.qz_latency = lat;
            }
            Instruction::QzMhm {
                op,
                vd,
                idx0,
                idx1,
                pg,
            } => {
                let mask = state.mask64(pg);
                let i0 = state.v_lanes64(idx0);
                let i1 = state.v_lanes64(idx1);
                let (vals, lat) = state.qz.mhm(op, &i0, &i1, &mask);
                for (i, &v) in vals.iter().enumerate() {
                    state.set_v_elem(vd, i, ElemSize::B64, v);
                }
                d.qz_latency = lat;
            }
            Instruction::QzMm {
                op,
                vd,
                val,
                idx,
                sel,
                pg,
            } => {
                let mask = state.mask64(pg);
                let vv = state.v_lanes64(val);
                let ii = state.v_lanes64(idx);
                let (vals, lat) = state.qz.mm(op, sel.index(), &vv, &ii, &mask);
                for (i, &v) in vals.iter().enumerate() {
                    state.set_v_elem(vd, i, ElemSize::B64, v);
                }
                d.qz_latency = lat;
            }
            Instruction::QzCount { vd, vn, vm } => {
                let a = state.v_lanes64(vn);
                let b = state.v_lanes64(vm);
                let counts = qzcount_vector(&a, &b, state.qz.esize);
                for (i, &c) in counts.iter().enumerate() {
                    state.set_v_elem(vd, i, ElemSize::B64, c);
                }
                d.qz_latency = COUNT_ALU_LATENCY;
            }
        }

        sink.retire(&uop_of(pc, &inst), d);
        // Timing-side watchdog: the sink reports when its clock passed
        // the configured cycle budget (see [`SimError::CycleLimit`]).
        // Checked after retire so the clock reflects this instruction.
        if let Some(cycles) = sink.cycle_budget_exceeded() {
            return Err(SimError::CycleLimit { budget: cycles });
        }
        pc = next_pc;
    }
}

/// One simulated core: architectural state plus the out-of-order timing
/// engine. Cache and accelerator state persist across `run` calls, so a
/// workload can be submitted as many consecutive kernels.
///
/// Generic over an observation [`Probe`]; the default [`NullProbe`]
/// compiles all instrumentation out (see [`crate::probe`]).
#[derive(Debug, Clone)]
pub struct Core<P: Probe = NullProbe> {
    state: ArchState,
    timing: OooTiming<P>,
    budget: u64,
    /// Per-program predecode tables, keyed by [`Program::id`].
    decode: DecodeCache,
    /// Per-program compiled superblocks for the functional tier, keyed
    /// by [`Program::id`] alongside the predecode tables.
    compiled: CompiledCache,
    /// Which engine [`run`](Core::run) drives (default: cycle-level).
    mode: ExecMode,
    /// Recycled dynamic-instruction record; its `mem` buffer keeps its
    /// capacity across runs, so steady-state simulation allocates
    /// nothing per instruction.
    scratch: DynInst,
    /// When set, [`run`](Core::run) takes the reference decode path
    /// instead of the predecode table (timing-neutrality tests only).
    reference_path: bool,
}

impl Core {
    /// Creates a core with the given configuration (no probe).
    pub fn new(cfg: CoreConfig) -> Core {
        Core::with_probe(cfg, NullProbe)
    }
}

impl<P: Probe> Core<P> {
    /// Default per-run instruction budget.
    pub const DEFAULT_BUDGET: u64 = 2_000_000_000;

    /// Creates a core with an attached observation probe.
    pub fn with_probe(cfg: CoreConfig, probe: P) -> Core<P> {
        Core {
            state: ArchState::new(cfg.qz),
            timing: OooTiming::with_probe(cfg, probe),
            budget: Self::DEFAULT_BUDGET,
            decode: DecodeCache::default(),
            compiled: CompiledCache::default(),
            mode: ExecMode::default(),
            scratch: DynInst::default(),
            reference_path: false,
        }
    }

    /// The attached observation probe.
    pub fn probe(&self) -> &P {
        self.timing.probe()
    }

    /// Mutable access to the attached probe (drain recorded data).
    pub fn probe_mut(&mut self) -> &mut P {
        self.timing.probe_mut()
    }

    /// Routes subsequent [`run`](Core::run) calls through the reference
    /// decode path (see [`run_reference`](Core::run_reference)). Lets
    /// whole-workload drivers be replayed without predecode so tests can
    /// assert the hot path is timing-identical end to end.
    pub fn set_reference_path(&mut self, on: bool) {
        self.reference_path = on;
    }

    /// Resolves future predecode misses through a shared
    /// [`PredecodeRegistry`](crate::predecode::PredecodeRegistry), so
    /// sibling cores (batch shards) decode each program once between
    /// them. Timing-neutral: a shared table is identical to a locally
    /// decoded one.
    pub fn set_predecode_registry(&mut self, registry: crate::predecode::PredecodeRegistry) {
        self.decode.set_registry(registry);
    }

    /// Cold-boots the core in place: architectural state, accelerator
    /// and the whole timing engine (clock, caches, predictor) return to
    /// power-on values while the big allocations — cache tag arrays,
    /// predecode cache, scratch buffers — are reused. Behaviourally
    /// identical to building a fresh core with the same configuration:
    /// budget and reference-path flag return to their defaults. The
    /// decode cache and any attached predecode registry survive —
    /// predecode is pure, so stale entries cannot exist.
    pub fn reset(&mut self) {
        self.state.reset();
        self.timing.reset();
        self.budget = Self::DEFAULT_BUDGET;
        self.reference_path = false;
        // Cold boot selects the timing engine; batch pools re-apply
        // their configured mode after every reset. The compiled cache
        // survives for the same reason the decode cache does:
        // compilation is pure.
        self.mode = ExecMode::default();
    }

    /// Selects which engine [`run`](Core::run) drives: the cycle-level
    /// out-of-order model (default) or the compiled functional tier,
    /// which produces bit-identical architectural results under the
    /// same instruction and page budgets but models no clock — its
    /// [`RunStats`] carries only the instruction count.
    /// [`reset`](Core::reset) restores the default.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// The currently selected execution engine.
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }

    /// Architectural state (registers, memory, QBUFFERs).
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// Mutable architectural state — used by drivers to stage inputs and
    /// read results.
    pub fn state_mut(&mut self) -> &mut ArchState {
        &mut self.state
    }

    /// Sets the per-run instruction budget (runaway-loop guard).
    pub fn set_budget(&mut self, budget: u64) {
        self.budget = budget;
    }

    /// Sets the timing-side cycle watchdog: a timed run whose clock
    /// passes `cycles` terminates with [`SimError::CycleLimit`]. Only
    /// meaningful for timed runs — functional runs have no clock.
    /// Defaults to effectively unlimited; [`reset`](Core::reset)
    /// restores the default.
    pub fn set_cycle_budget(&mut self, cycles: u64) {
        self.timing.set_cycle_budget(cycles);
    }

    /// Runs a program with full timing; returns this run's statistics.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on budget exhaustion or invalid `qzconf`.
    pub fn run(&mut self, program: &Program) -> Result<RunStats, SimError> {
        if self.mode == ExecMode::Functional {
            // The functional tier has no clock and no observability:
            // probes, timing state and every `RunStats` field except
            // the retired-instruction count stay untouched.
            let instructions = self.run_functional(program)?;
            return Ok(RunStats {
                instructions,
                ..RunStats::default()
            });
        }
        if self.reference_path {
            return self.run_reference(program);
        }
        let Core {
            state,
            timing,
            budget,
            decode,
            scratch,
            ..
        } = self;
        let pre = decode.get(program);
        if P::ENABLED {
            timing.probe_mut().on_program(program.id(), program.name());
        }
        timing.begin_run();
        execute_impl(state, program, timing, *budget, scratch, |pc, _inst| {
            *pre.op(pc)
        })?;
        Ok(timing.end_run())
    }

    /// Runs a program with full timing through the *reference* decode
    /// path ([`execute_reference`]): micro-ops are decoded afresh per
    /// retired instruction, bypassing the predecode table and cache.
    /// Exists so tests can assert the cached hot path is
    /// timing-identical; not for production use.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on budget exhaustion or invalid `qzconf`.
    pub fn run_reference(&mut self, program: &Program) -> Result<RunStats, SimError> {
        if P::ENABLED {
            self.timing
                .probe_mut()
                .on_program(program.id(), program.name());
        }
        self.timing.begin_run();
        execute_reference(&mut self.state, program, &mut self.timing, self.budget)?;
        Ok(self.timing.end_run())
    }

    /// Runs a program on the compiled functional tier (no timing): each
    /// basic block of the recovered CFG is lifted to a flat step table
    /// over the predecode records, chained into superblocks, and
    /// cached per [`Program::id`] alongside the decode cache (see
    /// [`crate::functional`]). Architectural results, the instruction
    /// budget and the typed error taxonomy are bit-identical to a timed
    /// run; only the clock is absent. Returns the executed instruction
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on budget exhaustion or invalid `qzconf`.
    pub fn run_functional(&mut self, program: &Program) -> Result<u64, SimError> {
        let Core {
            state,
            budget,
            decode,
            compiled,
            ..
        } = self;
        let pre = decode.get(program);
        let cp = compiled.get(program, pre);
        crate::functional::run_compiled(&cp, state, *budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::sign_extend;
    use quetzal_isa::*;

    fn core() -> Core {
        Core::new(CoreConfig::a64fx_like())
    }

    fn run(b: &mut ProgramBuilder) -> (Core, RunStats) {
        let mut c = core();
        let p = b.build().unwrap();
        let s = c.run(&p).unwrap();
        (c, s)
    }

    #[test]
    fn scalar_loop_sums() {
        // for i in 0..10 { acc += i }
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.mov_imm(X0, 0); // i
        b.mov_imm(X1, 0); // acc
        b.mov_imm(X2, 10);
        b.bind(top);
        b.alu_rr(SAluOp::Add, X1, X1, X0);
        b.alu_ri(SAluOp::Add, X0, X0, 1);
        b.branch(BranchCond::Lt, X0, X2, top);
        b.halt();
        let (c, s) = run(&mut b);
        assert_eq!(c.state().x(X1), 45);
        assert_eq!(s.branches, 10);
    }

    #[test]
    fn memory_round_trip_through_isa() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 0x100);
        b.mov_imm(X1, 0xABCD);
        b.store(X1, X0, 8, MemSize::B8);
        b.load(X2, X0, 8, MemSize::B8);
        b.halt();
        let (c, _) = run(&mut b);
        assert_eq!(c.state().x(X2), 0xABCD);
    }

    #[test]
    fn vector_add_with_predicate() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 5);
        b.pwhilelt(P0, X0, ElemSize::B64); // first 5 lanes
        b.dup_imm(V0, 7, ElemSize::B64);
        b.dup_imm(V1, 0, ElemSize::B64);
        b.ptrue(P1, ElemSize::B64);
        b.valu_vv(VAluOp::Add, V1, V0, V0, P0, ElemSize::B64);
        b.halt();
        let (c, _) = run(&mut b);
        assert_eq!(c.state().v_elem(V1, 0, ElemSize::B64), 14);
        assert_eq!(c.state().v_elem(V1, 4, ElemSize::B64), 14);
        assert_eq!(
            c.state().v_elem(V1, 5, ElemSize::B64),
            0,
            "inactive lane merged"
        );
    }

    #[test]
    fn gather_reads_indexed_elements() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 0x1000);
        b.ptrue(P0, ElemSize::B64);
        // idx = [0, 2, 4, ...] * 8 bytes scale
        b.mov_imm(X1, 0);
        b.index(V0, X1, 2, ElemSize::B64);
        b.vgather(V1, X0, V0, P0, ElemSize::B64, MemSize::B8, 8);
        b.halt();
        let mut c = core();
        for i in 0..20u64 {
            c.state_mut().mem.write_le(0x1000 + i * 8, 100 + i, 8);
        }
        let p = b.build().unwrap();
        let s = c.run(&p).unwrap();
        assert_eq!(c.state().v_elem(V1, 0, ElemSize::B64), 100);
        assert_eq!(c.state().v_elem(V1, 3, ElemSize::B64), 106);
        assert_eq!(s.indexed_ops, 1);
        assert_eq!(s.mem_requests, 8);
    }

    #[test]
    fn scatter_then_gather_round_trip() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 0x2000);
        b.ptrue(P0, ElemSize::B64);
        b.mov_imm(X1, 0);
        b.index(V0, X1, 3, ElemSize::B64); // indices 0,3,6,...
        b.mov_imm(X2, 50);
        b.index(V1, X2, 1, ElemSize::B64); // values 50..57
        b.vscatter(V1, X0, V0, P0, ElemSize::B64, MemSize::B8, 8);
        b.vgather(V2, X0, V0, P0, ElemSize::B64, MemSize::B8, 8);
        b.halt();
        let (c, _) = run(&mut b);
        for i in 0..8 {
            assert_eq!(c.state().v_elem(V2, i, ElemSize::B64), 50 + i as u64);
        }
    }

    #[test]
    fn reduction_and_extract() {
        let mut b = ProgramBuilder::new();
        b.ptrue(P0, ElemSize::B64);
        b.mov_imm(X0, 1);
        b.index(V0, X0, 1, ElemSize::B64); // 1..8
        b.vreduce(RedOp::Add, X1, V0, P0, ElemSize::B64);
        b.vreduce(RedOp::Max, X2, V0, P0, ElemSize::B64);
        b.vreduce(RedOp::Min, X3, V0, P0, ElemSize::B64);
        b.vextract(X4, V0, 3, ElemSize::B64);
        b.halt();
        let (c, _) = run(&mut b);
        assert_eq!(c.state().x(X1), 36);
        assert_eq!(c.state().x(X2), 8);
        assert_eq!(c.state().x(X3), 1);
        assert_eq!(c.state().x(X4), 4);
    }

    #[test]
    fn empty_reduction_identities() {
        let mut b = ProgramBuilder::new();
        b.pfalse(P0);
        b.dup_imm(V0, 9, ElemSize::B64);
        b.vreduce(RedOp::Add, X1, V0, P0, ElemSize::B64);
        b.vreduce(RedOp::Min, X2, V0, P0, ElemSize::B64);
        b.halt();
        let (c, _) = run(&mut b);
        assert_eq!(c.state().x(X1), 0);
        assert_eq!(c.state().x(X2) as i64, i64::MAX);
    }

    #[test]
    fn slide_operations() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 10);
        b.index(V0, X0, 10, ElemSize::B64); // 10,20,...,80
        b.vslidedown(V1, V0, 2, ElemSize::B64);
        b.mov_imm(X1, 99);
        b.vslide1up(V2, V0, X1, ElemSize::B64);
        b.halt();
        let (c, _) = run(&mut b);
        assert_eq!(c.state().v_elem(V1, 0, ElemSize::B64), 30);
        assert_eq!(c.state().v_elem(V1, 5, ElemSize::B64), 80);
        assert_eq!(c.state().v_elem(V1, 6, ElemSize::B64), 0, "zero fill");
        assert_eq!(c.state().v_elem(V2, 0, ElemSize::B64), 99);
        assert_eq!(c.state().v_elem(V2, 1, ElemSize::B64), 10);
    }

    #[test]
    fn vcmp_and_pcount_loop_control() {
        // Deactivate lanes where V0 >= 4 and count the rest.
        let mut b = ProgramBuilder::new();
        b.ptrue(P0, ElemSize::B64);
        b.mov_imm(X0, 0);
        b.index(V0, X0, 1, ElemSize::B64); // 0..7
        b.vcmp_vi(BranchCond::Lt, P1, V0, 4, P0, ElemSize::B64);
        b.pcount(X1, P1, ElemSize::B64);
        b.halt();
        let (c, _) = run(&mut b);
        assert_eq!(c.state().x(X1), 4);
    }

    #[test]
    fn qz_conf_encode_load_pipeline() {
        let mut b = ProgramBuilder::new();
        // Configure: 64 elements each, 2-bit.
        b.mov_imm(X0, 64).mov_imm(X1, 64).mov_imm(X2, 0);
        b.qzconf(X0, X1, X2);
        // Load 64 chars from memory into V0, encode into Q0 at 0.
        b.mov_imm(X3, 0x100);
        b.ptrue(P0, ElemSize::B8);
        b.vload(V0, X3, P0, ElemSize::B8);
        b.mov_imm(X4, 0);
        b.qzencode(QBufSel::Q0, V0, X4);
        // Read back segment at element 0.
        b.ptrue(P1, ElemSize::B64);
        b.dup_imm(V1, 0, ElemSize::B64);
        b.qzload(V2, V1, QBufSel::Q0, P1);
        b.halt();
        let mut c = core();
        let seq: Vec<u8> = (0..64).map(|i| b"ACGT"[i % 4]).collect();
        c.state_mut().mem.write_bytes(0x100, &seq);
        let p = b.build().unwrap();
        let s = c.run(&p).unwrap();
        // Expected packed word: ACGT repeated -> codes 0,1,3,2 LSB-first.
        let mut want = 0u64;
        for i in 0..32 {
            want |= ([0u64, 1, 3, 2][i % 4]) << (2 * i);
        }
        assert_eq!(c.state().v_elem(V2, 0, ElemSize::B64), want);
        assert!(s.qz_accesses >= 2);
    }

    #[test]
    fn qzmhm_count_between_buffers() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 64).mov_imm(X1, 64).mov_imm(X2, 0);
        b.qzconf(X0, X1, X2);
        b.ptrue(P0, ElemSize::B64);
        b.dup_imm(V0, 0, ElemSize::B64);
        b.qzmhm(QzOp::Count, V1, V0, V0, P0);
        b.halt();
        let mut c = core();
        // Same image in both buffers -> 32 matches per segment.
        let img: Vec<u8> = (0..16).map(|i| i as u8).collect();
        c.state_mut().qz.load_image(0, &img);
        c.state_mut().qz.load_image(1, &img);
        let p = b.build().unwrap();
        c.run(&p).unwrap();
        assert_eq!(c.state().v_elem(V1, 0, ElemSize::B64), 32);
    }

    #[test]
    fn qzstore_and_qzupdate_histogram_style() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 128).mov_imm(X1, 128).mov_imm(X2, 2);
        b.qzconf(X0, X1, X2);
        b.ptrue(P0, ElemSize::B64);
        b.dup_imm(V0, 5, ElemSize::B64); // all lanes index 5
        b.dup_imm(V1, 1, ElemSize::B64); // +1 each
        b.qzupdate(QzOp::Add, V1, V0, QBufSel::Q0, P0);
        b.dup_imm(V2, 5, ElemSize::B64);
        b.qzload(V3, V2, QBufSel::Q0, P0);
        b.halt();
        let (c, _) = run(&mut b);
        assert_eq!(
            c.state().v_elem(V3, 0, ElemSize::B64),
            8,
            "eight lanes accumulated into bin 5"
        );
    }

    #[test]
    fn invalid_qzconf_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 1).mov_imm(X1, 1).mov_imm(X2, 7);
        b.qzconf(X0, X1, X2);
        b.halt();
        let mut c = core();
        let p = b.build().unwrap();
        assert!(matches!(
            c.run(&p),
            Err(SimError::InvalidQzConf { esiz: 7, .. })
        ));
    }

    #[test]
    fn truncated_program_is_a_decode_error() {
        // `from_raw` bypasses the builder's trailing-halt validation:
        // execution runs off the end and must fault, not panic.
        let p = Program::from_raw(vec![Instruction::MovImm { rd: X0, imm: 1 }], "truncated");
        let mut c = core();
        assert!(matches!(c.run(&p), Err(SimError::DecodeError { pc: 1 })));
    }

    #[test]
    fn corrupted_branch_target_is_a_decode_error() {
        let p = Program::from_raw(
            vec![Instruction::Jump { target: 99 }, Instruction::Halt],
            "bad-target",
        );
        let mut c = core();
        assert!(matches!(c.run(&p), Err(SimError::DecodeError { pc: 99 })));
    }

    #[test]
    fn out_of_range_lane_is_an_error() {
        let p = Program::from_raw(
            vec![
                Instruction::VExtract {
                    rd: X0,
                    vn: V0,
                    lane: 60,
                    esize: ElemSize::B64, // only 8 lanes
                },
                Instruction::Halt,
            ],
            "bad-lane",
        );
        let mut c = core();
        assert!(matches!(
            c.run(&p),
            Err(SimError::InvalidRegister { index: 60, pc: 0 })
        ));
        let p = Program::from_raw(
            vec![
                Instruction::VInsert {
                    vd: V0,
                    rn: X0,
                    lane: 200,
                    esize: ElemSize::B8,
                },
                Instruction::Halt,
            ],
            "bad-lane-insert",
        );
        assert!(matches!(
            c.run(&p),
            Err(SimError::InvalidRegister { index: 200, pc: 0 })
        ));
    }

    #[test]
    fn misaligned_qzencode_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 64).mov_imm(X1, 64).mov_imm(X2, 0);
        b.qzconf(X0, X1, X2); // 2-bit mode: encode index must be 32-aligned
        b.mov_imm(X3, 7);
        b.qzencode(QBufSel::Q0, V0, X3);
        b.halt();
        let mut c = core();
        let p = b.build().unwrap();
        assert!(matches!(
            c.run(&p),
            Err(SimError::QBufferIndexOutOfRange { idx: 7, .. })
        ));
    }

    #[test]
    fn page_budget_turns_wild_stores_into_memory_fault() {
        // Stride-64KiB stores touch a fresh page each iteration; a small
        // page budget turns the spree into a typed fault instead of
        // letting a corrupted kernel eat host memory.
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 0);
        b.mov_imm(X1, 0x5A);
        let top = b.label();
        b.bind(top);
        b.store(X1, X0, 0, MemSize::B8);
        b.alu_ri(SAluOp::Add, X0, X0, 1 << 16);
        b.jump(top);
        b.halt();
        let mut c = core();
        c.state_mut().mem.set_page_budget(16);
        let p = b.build().unwrap();
        assert!(matches!(c.run(&p), Err(SimError::MemoryFault { .. })));
        // Reset restores the default budget: the same core afterwards
        // hits the *instruction* budget instead, proving the fault came
        // from the lowered page budget and cold-boot is complete.
        c.reset();
        c.set_budget(10_000);
        assert!(matches!(c.run(&p), Err(SimError::InstLimit { .. })));
    }

    #[test]
    fn cycle_watchdog_stops_timing_livelock() {
        // Pathological store-ring schedule: every load misaligned-
        // overlaps the store before it, so each one fails to forward,
        // replays through the load ports and pays the forwarding
        // penalty — cycles per instruction far above normal. The
        // instruction budget would let this grind on for ages; the
        // cycle watchdog terminates it with a *typed* error.
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 0x1000);
        b.mov_imm(X1, 0xFF);
        let top = b.label();
        b.bind(top);
        b.store(X1, X0, 0, MemSize::B8);
        b.load(X2, X0, 2, MemSize::B2); // misaligned overlap -> replay
        b.jump(top);
        b.halt();
        let p = b.build().unwrap();
        let mut c = core();
        c.set_cycle_budget(10_000);
        assert!(matches!(
            c.run(&p),
            Err(SimError::CycleLimit { budget: 10_000 })
        ));
        // Distinct from InstLimit: without the cycle watchdog the same
        // program runs until the instruction budget fires.
        c.reset();
        c.set_budget(1_000);
        assert!(matches!(
            c.run(&p),
            Err(SimError::InstLimit { budget: 1_000 })
        ));
    }

    #[test]
    fn budget_stops_runaway_loops() {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.bind(top);
        b.jump(top);
        b.halt();
        let mut c = core();
        c.set_budget(10_000);
        let p = b.build().unwrap();
        assert!(matches!(
            c.run(&p),
            Err(SimError::InstLimit { budget: 10_000 })
        ));
    }

    #[test]
    fn signed_vector_semantics() {
        let mut b = ProgramBuilder::new();
        b.ptrue(P0, ElemSize::B32);
        b.dup_imm(V0, -3, ElemSize::B32);
        b.dup_imm(V1, 2, ElemSize::B32);
        b.valu_vv(VAluOp::Smax, V2, V0, V1, P0, ElemSize::B32);
        b.valu_vv(VAluOp::Smin, V3, V0, V1, P0, ElemSize::B32);
        b.halt();
        let (c, _) = run(&mut b);
        assert_eq!(
            sign_extend(c.state().v_elem(V2, 0, ElemSize::B32), ElemSize::B32),
            2
        );
        assert_eq!(
            sign_extend(c.state().v_elem(V3, 0, ElemSize::B32), ElemSize::B32),
            -3
        );
    }

    #[test]
    fn functional_run_matches_timed_run() {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.mov_imm(X0, 0);
        b.mov_imm(X1, 0);
        b.mov_imm(X2, 50);
        b.bind(top);
        b.alu_rr(SAluOp::Add, X1, X1, X0);
        b.alu_ri(SAluOp::Add, X0, X0, 1);
        b.branch(BranchCond::Lt, X0, X2, top);
        b.halt();
        let p = b.build().unwrap();
        let mut c1 = core();
        c1.run(&p).unwrap();
        let mut c2 = core();
        c2.run_functional(&p).unwrap();
        assert_eq!(c1.state().x(X1), c2.state().x(X1));
    }
}

#[cfg(test)]
mod proptests {
    //! Differential testing: random straight-line scalar programs are
    //! executed by the simulator and by a direct Rust evaluator; the
    //! final register files must agree exactly. Case generation is
    //! seeded (in-tree PRNG), so failures reproduce exactly.

    use super::*;
    use quetzal_genomics::rng::SplitMix64;
    use quetzal_isa::{ProgramBuilder, SAluOp, XReg};

    #[derive(Debug, Clone)]
    enum Op {
        MovImm(u8, i64),
        AluRR(SAluOp, u8, u8, u8),
        AluRI(SAluOp, u8, u8, i64),
        Store(u8, u64),
        Load(u8, u64),
    }

    const ALU_OPS: [SAluOp; 13] = [
        SAluOp::Add,
        SAluOp::Sub,
        SAluOp::Mul,
        SAluOp::And,
        SAluOp::Or,
        SAluOp::Xor,
        SAluOp::Shl,
        SAluOp::Shr,
        SAluOp::Sar,
        SAluOp::Min,
        SAluOp::Max,
        SAluOp::SetLt,
        SAluOp::SetEq,
    ];

    fn random_op(rng: &mut SplitMix64) -> Op {
        match rng.below(5) {
            0 => Op::MovImm(rng.below(24) as u8, rng.next_u64() as i64),
            1 => Op::AluRR(
                *rng.pick(&ALU_OPS),
                rng.below(24) as u8,
                rng.below(24) as u8,
                rng.below(24) as u8,
            ),
            2 => Op::AluRI(
                *rng.pick(&ALU_OPS),
                rng.below(24) as u8,
                rng.below(24) as u8,
                rng.i64_in(-1000, 1000),
            ),
            3 => Op::Store(rng.below(24) as u8, 0x4000 + 8 * rng.below(64)),
            _ => Op::Load(rng.below(24) as u8, 0x4000 + 8 * rng.below(64)),
        }
    }

    fn oracle_alu(op: SAluOp, a: u64, b: u64) -> u64 {
        // Independent re-statement of the architectural semantics.
        match op {
            SAluOp::Add => a.wrapping_add(b),
            SAluOp::Sub => a.wrapping_sub(b),
            SAluOp::Mul => a.wrapping_mul(b),
            SAluOp::And => a & b,
            SAluOp::Or => a | b,
            SAluOp::Xor => a ^ b,
            SAluOp::Shl => a << (b & 63),
            SAluOp::Shr => a >> (b & 63),
            SAluOp::Sar => ((a as i64) >> (b & 63)) as u64,
            SAluOp::Min => (a as i64).min(b as i64) as u64,
            SAluOp::Max => (a as i64).max(b as i64) as u64,
            SAluOp::SetLt => ((a as i64) < (b as i64)) as u64,
            SAluOp::SetEq => (a == b) as u64,
        }
    }

    fn check_program(case: usize, ops: &[Op]) {
        // Build the simulated program.
        let mut b = ProgramBuilder::new();
        for op in ops {
            match *op {
                Op::MovImm(r, v) => {
                    b.mov_imm(XReg::new(r), v);
                }
                Op::AluRR(o, d, x, y) => {
                    b.alu_rr(o, XReg::new(d), XReg::new(x), XReg::new(y));
                }
                Op::AluRI(o, d, x, v) => {
                    b.alu_ri(o, XReg::new(d), XReg::new(x), v);
                }
                Op::Store(r, addr) => {
                    b.mov_imm(XReg::new(25), addr as i64);
                    b.store(XReg::new(r), XReg::new(25), 0, quetzal_isa::MemSize::B8);
                }
                Op::Load(r, addr) => {
                    b.mov_imm(XReg::new(25), addr as i64);
                    b.load(XReg::new(r), XReg::new(25), 0, quetzal_isa::MemSize::B8);
                }
            }
        }
        b.halt();
        let mut core = Core::new(CoreConfig::a64fx_like());
        core.run(&b.build().unwrap()).unwrap();

        // Evaluate with the direct oracle.
        let mut regs = [0u64; 26];
        let mut mem = std::collections::HashMap::<u64, u64>::new();
        for op in ops {
            match *op {
                Op::MovImm(r, v) => regs[r as usize] = v as u64,
                Op::AluRR(o, d, x, y) => {
                    regs[d as usize] = oracle_alu(o, regs[x as usize], regs[y as usize])
                }
                Op::AluRI(o, d, x, v) => {
                    regs[d as usize] = oracle_alu(o, regs[x as usize], v as u64)
                }
                Op::Store(r, addr) => {
                    regs[25] = addr;
                    mem.insert(addr, regs[r as usize]);
                }
                Op::Load(r, addr) => {
                    regs[25] = addr;
                    regs[r as usize] = mem.get(&addr).copied().unwrap_or(0);
                }
            }
        }
        for (r, &want) in regs.iter().enumerate() {
            assert_eq!(
                core.state().x(XReg::new(r as u8)),
                want,
                "case {case}: x{r} ({ops:?})"
            );
        }
        for (&addr, &want) in &mem {
            assert_eq!(
                core.state().mem.read_le(addr, 8),
                want,
                "case {case}: mem {addr:#x} ({ops:?})"
            );
        }
    }

    #[test]
    fn interpreter_matches_oracle() {
        let mut rng = SplitMix64::new(0x1A7E_5EED);
        for case in 0..48 {
            let len = rng.i64_in(1, 60) as usize;
            let ops: Vec<Op> = (0..len).map(|_| random_op(&mut rng)).collect();
            check_program(case, &ops);
        }
    }

    /// Every ALU op is exercised against the oracle on targeted operand
    /// classes (zero, one, all-ones, extremes), not just random draws.
    #[test]
    fn interpreter_matches_oracle_on_edge_operands() {
        const EDGES: [i64; 7] = [0, 1, -1, 63, 64, i64::MIN, i64::MAX];
        let mut case = 0;
        for op in ALU_OPS {
            for &a in &EDGES {
                for &b in &EDGES {
                    let ops = [Op::MovImm(0, a), Op::MovImm(1, b), Op::AluRR(op, 2, 0, 1)];
                    check_program(case, &ops);
                    case += 1;
                }
            }
        }
    }
}
