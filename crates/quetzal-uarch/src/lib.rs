//! Cycle-level out-of-order CPU model — the simulation substrate of the
//! QUETZAL reproduction.
//!
//! The paper evaluates QUETZAL in gem5, modelling a Fujitsu A64FX-like
//! core (Table I). There is no comparable simulator in the Rust
//! ecosystem, so this crate builds one from scratch, with exactly the
//! mechanisms the paper's results hinge on:
//!
//! * an **execution-driven functional interpreter** ([`interp`]) for the
//!   `quetzal-isa` instruction set, including the QUETZAL accelerator
//!   state (QBUFFERs, count ALU);
//! * an **out-of-order timing model** ([`ooo`]) with a reorder buffer,
//!   per-class functional units, limited load/store ports, a branch
//!   predictor, and — crucially — gather/scatter instructions *cracked
//!   into per-element cache accesses* (the §II-G bottleneck: ≥ 19–22
//!   cycles even on L1 hits);
//! * a **two-level cache hierarchy** ([`cache`]) with LRU set-associative
//!   arrays, a stride prefetcher and a bandwidth-limited HBM2 main
//!   memory;
//! * per-cycle **stall attribution** so the paper's execution-time
//!   breakdown (Fig. 4) can be regenerated;
//! * a **multicore scaling model** ([`multicore`]) sharing L2 capacity
//!   and DRAM bandwidth across cores (Fig. 13b).
//!
//! The entry point is [`Core`]: load data into [`SimMemory`], run a
//! [`Program`](quetzal_isa::Program), read back results and
//! [`RunStats`].
//!
//! ```
//! use quetzal_isa::*;
//! use quetzal_uarch::{Core, CoreConfig};
//!
//! let mut core = Core::new(CoreConfig::a64fx_like());
//! let mut b = ProgramBuilder::new();
//! b.mov_imm(X0, 21);
//! b.alu_ri(SAluOp::Add, X0, X0, 21);
//! b.halt();
//! let prog = b.build()?;
//! let stats = core.run(&prog)?;
//! assert_eq!(core.state().x(X0), 42);
//! assert!(stats.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// Guest-reachable paths must return typed errors, never unwrap (see
// DESIGN.md "Failure model & fault injection"); tests are exempt.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cache;
pub mod config;
pub mod functional;
pub mod interp;
pub mod multicore;
pub mod ooo;
pub mod predecode;
pub mod probe;
pub mod state;
pub mod stats;
pub mod wheel;

pub use config::{CacheConfig, CoreConfig, MemConfig};
pub use functional::ExecMode;
pub use interp::{Core, SimError};
pub use predecode::{DecodeCache, MicroOp, Predecode, PredecodeRegistry};
pub use probe::{MemLevelMix, NullProbe, Probe, RetireEvent};
pub use state::{ArchState, SimMemory};
pub use stats::{RunStats, StallCat};
pub use wheel::{FreeWheel, RobRing, StoreIndex};
