//! Multicore scaling model (paper Fig. 13b).
//!
//! The paper runs 1–16 cores that share the L2 and the HBM2 channels;
//! scaling is near-linear for cache-resident working sets and
//! bandwidth-limited for long reads. We reproduce that with a
//! *surrogate-core* model: one core is simulated processing `1/n` of the
//! workload while seeing its *share* of the shared resources (L2
//! capacity divided by `n`, DRAM bandwidth divided by `n` — see
//! [`CoreConfig::share_of`]). The parallel run time is the surrogate's
//! run time; speedup is `T(1) / T(n)`.
//!
//! This captures both limiters the paper identifies (capacity pressure
//! and bandwidth saturation) without a lock-step multi-core event loop,
//! and is documented as a substitution in DESIGN.md.

use crate::config::CoreConfig;
use crate::interp::{Core, SimError};
use crate::stats::RunStats;

/// Result of a multicore scaling experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Number of cores.
    pub cores: usize,
    /// Parallel run time in cycles (surrogate core's time on its shard).
    pub cycles: u64,
    /// Speedup over the single-core run.
    pub speedup: f64,
    /// Surrogate-core statistics.
    pub stats: RunStats,
}

/// Runs `workload` on 1..=`max_cores` cores (powers of two) and reports
/// the scaling curve.
///
/// `workload(core, shard, shards)` must execute shard `shard` of
/// `shards` equal parts of the full workload on `core`, returning the
/// accumulated statistics of all kernels it submitted. The model
/// simulates shard 0 as the surrogate.
///
/// # Errors
///
/// Propagates any [`SimError`] from the workload.
pub fn scaling_curve<F>(
    base_cfg: &CoreConfig,
    max_cores: usize,
    mut workload: F,
) -> Result<Vec<ScalingPoint>, SimError>
where
    F: FnMut(&mut Core, usize, usize) -> Result<RunStats, SimError>,
{
    let mut points = Vec::new();
    let mut t1 = 0u64;
    let mut n = 1;
    while n <= max_cores {
        let cfg = base_cfg.clone().share_of(n);
        let mut core = Core::new(cfg);
        let stats = workload(&mut core, 0, n)?;
        let cycles = stats.cycles.max(1);
        if n == 1 {
            t1 = cycles;
        }
        points.push(ScalingPoint {
            cores: n,
            cycles,
            speedup: t1 as f64 / cycles as f64,
            stats,
        });
        n *= 2;
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal_isa::*;

    /// A trivially parallel compute workload: speedup should be ~linear.
    #[test]
    fn compute_bound_workload_scales_linearly() {
        let cfg = CoreConfig::a64fx_like();
        let points = scaling_curve(&cfg, 8, |core, _shard, shards| {
            let iters = 8000 / shards as i64;
            let mut b = ProgramBuilder::new();
            let top = b.label();
            b.mov_imm(X0, 0);
            b.mov_imm(X2, iters);
            b.bind(top);
            b.alu_ri(SAluOp::Add, X0, X0, 1);
            b.branch(BranchCond::Lt, X0, X2, top);
            b.halt();
            core.run(&b.build().unwrap())
        })
        .unwrap();
        assert_eq!(points.len(), 4); // 1, 2, 4, 8
        let s8 = points[3].speedup;
        assert!(s8 > 5.0, "compute-bound speedup at 8 cores: {s8}");
    }

    /// A streaming workload larger than the L2 share: bandwidth division
    /// must bend the curve away from linear.
    #[test]
    fn bandwidth_bound_workload_saturates() {
        let mut cfg = CoreConfig::a64fx_like();
        // Make bandwidth scarce so the effect is visible at small scale.
        cfg.mem.bytes_per_cycle = 4.0;
        cfg.prefetch_degree = 0;
        let total_bytes = 4 << 20; // 4 MiB stream
        let points = scaling_curve(&cfg, 8, |core, _shard, shards| {
            let bytes = total_bytes / shards;
            let lines = (bytes / 64) as i64;
            let mut b = ProgramBuilder::new();
            let top = b.label();
            b.mov_imm(X0, 0);
            b.mov_imm(X1, 1 << 26);
            b.mov_imm(X2, lines);
            b.bind(top);
            b.load(X3, X1, 0, MemSize::B8);
            b.alu_ri(SAluOp::Add, X1, X1, 64);
            b.alu_ri(SAluOp::Add, X0, X0, 1);
            b.branch(BranchCond::Lt, X0, X2, top);
            b.halt();
            core.run(&b.build().unwrap())
        })
        .unwrap();
        let s8 = points[3].speedup;
        assert!(
            s8 < 6.0,
            "bandwidth-bound speedup must be sub-linear at 8 cores: {s8}"
        );
    }
}
