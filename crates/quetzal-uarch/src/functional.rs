//! Compiled functional execution tier (no timing model).
//!
//! The cycle-level engine interprets one instruction at a time and
//! streams it through the out-of-order timing model. This module is the
//! *second*, independent engine: it lifts each basic block of the
//! recovered CFG ([`quetzal_isa::cfg`]) into **flat step tables** —
//! contiguous arrays of `(pc, Instruction)` records dispatched by a
//! direct match, with no per-step heap allocation — and chains blocks
//! connected by unconditional control flow into **superblocks**
//! dispatched with a single lookup. Compiled programs are cached by id
//! *and by instruction-stream content* alongside the predecode tables
//! (see [`CompiledCache`]), so steady-state execution touches no
//! decoder at all — even when a driver stages a fresh `Program` per
//! sequence pair, identical code compiles exactly once.
//!
//! The tier is architecturally exact: it produces bit-identical
//! register, memory and QBUFFER state to the interpreter, enforces the
//! same instruction budget with the same error-ordering semantics
//! ([`SimError::InstLimit`] before [`SimError::DecodeError`] when the
//! budget expires exactly at an out-of-program target), and surfaces
//! the identical typed [`SimError`] taxonomy — everything except the
//! clock, which it does not model ([`SimError::CycleLimit`] cannot
//! occur here). `tests/functional_equiv.rs` and the fault-injection
//! sweep pin this equivalence differentially against the cycle-level
//! core.
//!
//! Lane loops reuse the interpreter's shared ALU routines
//! ([`vector_alu`], [`scalar_alu`]), so per-lane arithmetic cannot
//! drift between the engines; what the differential oracle therefore
//! independently exercises is decode, dispatch, control flow, predication,
//! budget accounting and the memory/QBUFFER access paths.

use std::collections::HashMap;
use std::sync::Arc;

use crate::interp::{active_lane_pairs, scalar_alu, vector_alu, SimError};
use crate::predecode::Predecode;
use crate::state::{truncate, ArchState};
use quetzal_accel::count_alu::qzcount_vector;
use quetzal_isa::cfg::Cfg;
use quetzal_isa::{
    BranchCond, ElemSize, InstClass, Instruction, Program, RedOp, XReg, LANES_64, VLEN_BYTES,
};

/// Which execution engine [`Core::run`](crate::Core::run) drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// The cycle-level out-of-order engine (timing ground truth).
    #[default]
    Cycle,
    /// The compiled functional tier: identical architectural results,
    /// no clock — `RunStats` carries only the instruction count.
    Functional,
}

/// One compiled instruction: the decoded [`Instruction`] plus the pc it
/// sits at, captured for fault attribution. Steps are `Copy` and stored
/// flat, so compiling a superblock costs one `Vec` allocation total —
/// not one boxed closure per instruction, which on a slow allocator
/// costs more than actually *running* the kernel (compilation went from
/// hundreds of microseconds to single digits per program when the
/// closure representation was replaced by this table).
#[derive(Debug, Clone, Copy)]
struct Step {
    pc: u32,
    inst: Instruction,
}

/// Where control goes after a superblock.
#[derive(Debug, Clone, Copy)]
enum Target {
    /// Another superblock (index into [`CompiledProgram::blocks`]).
    Block(usize),
    /// An out-of-program pc — a typed decode fault at dispatch time.
    Out(usize),
}

/// How a superblock ends. `Halt` and `Branch` are *counted*
/// instructions (the interpreter executes them); `Goto` is free — the
/// jump or fallthrough that produced it was already compiled as a step.
enum Terminator {
    /// The program halts.
    Halt,
    /// A conditional branch: evaluate and pick an edge.
    Branch {
        cond: BranchCond,
        rn: XReg,
        rm: XReg,
        taken: Target,
        fall: Target,
    },
    /// Unconditional transfer (jump or fallthrough out of the chain).
    Goto(Target),
}

/// A chain of basic blocks entered only at the top and executed
/// straight through: every inner block transfers unconditionally to the
/// next ([`Cfg::chain_from`]), so one dispatch covers the whole chain.
struct Superblock {
    steps: Vec<Step>,
    term: Terminator,
    /// Dynamic instructions one full pass consumes (steps plus a
    /// counted terminator). Always ≥ 1, so dispatch cannot livelock.
    insts: u64,
}

/// A program compiled to superblocks, indexed like the CFG's blocks
/// (superblock `i` starts at basic block `i`; tail duplication means a
/// block's steps may also appear inside earlier chains).
pub(crate) struct CompiledProgram {
    blocks: Vec<Superblock>,
}

impl std::fmt::Debug for CompiledProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledProgram")
            .field("superblocks", &self.blocks.len())
            .finish()
    }
}

/// Longest block chain folded into one superblock. Bounds tail
/// duplication (a block may be re-compiled into many chains) while
/// still covering the unrolled straight-line bodies the kernel
/// builders emit.
const MAX_CHAIN: usize = 16;

/// Compiles `program` into superblocks. `pre` must be the program's
/// predecode table: terminators are classified from its [`MicroOp`]
/// records rather than re-inspecting raw instructions.
///
/// [`MicroOp`]: crate::predecode::MicroOp
pub(crate) fn compile(program: &Program, pre: &Predecode) -> CompiledProgram {
    debug_assert_eq!(pre.len(), program.len(), "predecode table mismatch");
    let insts = program.instructions();
    let len = insts.len();
    let cfg = Cfg::of(insts);
    let target = |pc: usize| {
        if pc < len {
            Target::Block(cfg.block_of(pc))
        } else {
            Target::Out(pc)
        }
    };

    let mut blocks = Vec::with_capacity(cfg.blocks().len());
    for b in 0..cfg.blocks().len() {
        let chain = cfg.chain_from(b, insts, MAX_CHAIN);
        let chain_insts: usize = chain.iter().map(|&cb| cfg.blocks()[cb].pcs().len()).sum();
        let mut steps = Vec::with_capacity(chain_insts);
        let mut n_insts = 0u64;
        // Always overwritten: every chain ends with a terminal
        // instruction (blocks are non-empty by construction).
        let mut term = Terminator::Halt;
        for (ci, &cb) in chain.iter().enumerate() {
            let block = &cfg.blocks()[cb];
            let last_in_chain = ci + 1 == chain.len();
            for pc in block.pcs() {
                let inst = insts[pc];
                n_insts += 1;
                if !(last_in_chain && pc + 1 == block.end) {
                    // Interior of the chain: straight-line step. A
                    // chained jump executes (it is counted) but
                    // transfers nowhere — the chain already continues
                    // at its target.
                    steps.push(Step {
                        pc: pc as u32,
                        inst,
                    });
                    continue;
                }
                let uop = pre.op(pc);
                term = match inst {
                    _ if uop.class == InstClass::Halt => Terminator::Halt,
                    Instruction::Branch {
                        cond,
                        rn,
                        rm,
                        target: t,
                    } => {
                        debug_assert!(uop.is_cond_branch);
                        Terminator::Branch {
                            cond,
                            rn,
                            rm,
                            taken: target(t),
                            fall: target(pc + 1),
                        }
                    }
                    Instruction::Jump { target: t } => {
                        debug_assert!(uop.class == InstClass::Branch && !uop.is_cond_branch);
                        steps.push(Step {
                            pc: pc as u32,
                            inst,
                        });
                        Terminator::Goto(target(t))
                    }
                    _ => {
                        steps.push(Step {
                            pc: pc as u32,
                            inst,
                        });
                        Terminator::Goto(target(pc + 1))
                    }
                };
            }
        }
        let counted_term = matches!(term, Terminator::Halt | Terminator::Branch { .. }) as u64;
        debug_assert_eq!(n_insts, steps.len() as u64 + counted_term);
        blocks.push(Superblock {
            steps,
            term,
            insts: n_insts,
        });
    }
    CompiledProgram { blocks }
}

/// Dispatches a superblock edge: in-program targets continue at their
/// block; out-of-program targets fault with the interpreter's exact
/// ordering (budget exhaustion wins over the decode fault).
fn dispatch(t: Target, remaining: u64, budget: u64) -> Result<usize, SimError> {
    match t {
        Target::Block(b) => Ok(b),
        Target::Out(pc) => {
            if remaining == 0 {
                Err(SimError::InstLimit { budget })
            } else {
                Err(SimError::DecodeError { pc })
            }
        }
    }
}

/// Runs a compiled program against `state` under the same instruction
/// budget the interpreter enforces. Returns the executed instruction
/// count (halt included), exactly as [`crate::interp::execute`] does.
///
/// Budget accounting is superblock-granular on the fast path: when the
/// whole chain fits in the remaining budget it is debited up front —
/// observationally identical, because no guest-visible effect reads the
/// count mid-chain. Only when the budget could expire inside the chain
/// does dispatch fall back to per-instruction checks.
pub(crate) fn run_compiled(
    cp: &CompiledProgram,
    state: &mut ArchState,
    budget: u64,
) -> Result<u64, SimError> {
    if cp.blocks.is_empty() {
        // Empty image: pc 0 is already outside the program, but the
        // interpreter checks the budget first.
        return if budget == 0 {
            Err(SimError::InstLimit { budget })
        } else {
            Err(SimError::DecodeError { pc: 0 })
        };
    }
    let mut remaining = budget;
    let mut block = 0usize;
    loop {
        let sb = &cp.blocks[block];
        block = if remaining >= sb.insts {
            remaining -= sb.insts;
            for step in &sb.steps {
                exec_step(step.pc as usize, step.inst, state)?;
            }
            match sb.term {
                Terminator::Halt => return Ok(budget - remaining),
                Terminator::Goto(t) => dispatch(t, remaining, budget)?,
                Terminator::Branch {
                    cond,
                    rn,
                    rm,
                    taken,
                    fall,
                } => {
                    let t = if cond.eval(state.x(rn) as i64, state.x(rm) as i64) {
                        taken
                    } else {
                        fall
                    };
                    dispatch(t, remaining, budget)?
                }
            }
        } else {
            // The budget expires somewhere in this chain: mirror the
            // interpreter's check-fetch-execute order per instruction.
            for step in &sb.steps {
                if remaining == 0 {
                    return Err(SimError::InstLimit { budget });
                }
                remaining -= 1;
                exec_step(step.pc as usize, step.inst, state)?;
            }
            match sb.term {
                Terminator::Goto(t) => dispatch(t, remaining, budget)?,
                Terminator::Halt => {
                    if remaining == 0 {
                        return Err(SimError::InstLimit { budget });
                    }
                    remaining -= 1;
                    return Ok(budget - remaining);
                }
                Terminator::Branch {
                    cond,
                    rn,
                    rm,
                    taken,
                    fall,
                } => {
                    if remaining == 0 {
                        return Err(SimError::InstLimit { budget });
                    }
                    remaining -= 1;
                    let t = if cond.eval(state.x(rn) as i64, state.x(rm) as i64) {
                        taken
                    } else {
                        fall
                    };
                    dispatch(t, remaining, budget)?
                }
            }
        };
    }
}

/// Executes one compiled step against `state`. Semantics mirror the
/// interpreter's match in [`crate::interp`] arm for arm (shared ALU
/// helpers included); the sink-only fields (`d.mem`, `d.taken`,
/// `d.qz_latency`) have no functional analogue and are simply absent.
/// `pc` is the step's program counter, used only for fault attribution.
#[allow(clippy::too_many_lines)]
#[inline]
fn exec_step(pc: usize, inst: Instruction, s: &mut ArchState) -> Result<(), SimError> {
    match inst {
        Instruction::MovImm { rd, imm } => {
            s.set_x(rd, imm as u64);
            Ok(())
        }
        Instruction::AluRR { op, rd, rn, rm } => {
            let v = scalar_alu(op, s.x(rn), s.x(rm));
            s.set_x(rd, v);
            Ok(())
        }
        Instruction::AluRI { op, rd, rn, imm } => {
            let v = scalar_alu(op, s.x(rn), imm as u64);
            s.set_x(rd, v);
            Ok(())
        }
        Instruction::Load {
            rd,
            rn,
            offset,
            size,
        } => {
            let addr = s.x(rn).wrapping_add_signed(offset);
            let v = s.mem.read_le(addr, size.bytes());
            s.set_x(rd, v);
            Ok(())
        }
        Instruction::Store {
            rs,
            rn,
            offset,
            size,
        } => {
            let addr = s.x(rn).wrapping_add_signed(offset);
            if s.mem.try_write_le(addr, s.x(rs), size.bytes()).is_err() {
                return Err(SimError::MemoryFault { addr, pc });
            }
            Ok(())
        }
        Instruction::Jump { .. } => {
            // Counted no-op: the superblock chain or `Goto` terminator
            // already encodes the transfer.
            Ok(())
        }
        Instruction::Halt | Instruction::Branch { .. } => {
            // Structurally unreachable: `compile` turns these into
            // superblock terminators. Surface a typed fault (never a
            // panic) if a compiler bug ever emits one as a step.
            debug_assert!(false, "terminator compiled as a step at pc {pc}");
            Err(SimError::DecodeError { pc })
        }

        Instruction::Dup { vd, rn, esize } => {
            let lanes = esize.lanes();
            let v = s.x(rn);
            for i in 0..lanes {
                s.set_v_elem(vd, i, esize, v);
            }
            Ok(())
        }
        Instruction::DupImm { vd, imm, esize } => {
            let lanes = esize.lanes();
            for i in 0..lanes {
                s.set_v_elem(vd, i, esize, imm as u64);
            }
            Ok(())
        }
        Instruction::Index {
            vd,
            rn,
            step: stride,
            esize,
        } => {
            let lanes = esize.lanes();
            let start = s.x(rn) as i64;
            for i in 0..lanes {
                let v = start.wrapping_add(stride.wrapping_mul(i as i64));
                s.set_v_elem(vd, i, esize, truncate(v, esize));
            }
            Ok(())
        }
        Instruction::VAluVV {
            op,
            vd,
            vn,
            vm,
            pg,
            esize,
        } => {
            let lanes = esize.lanes();
            for i in 0..lanes {
                if s.lane_active(pg, i, esize) {
                    let a = s.v_elem_i64(vn, i, esize);
                    let b = s.v_elem_i64(vm, i, esize);
                    s.set_v_elem(vd, i, esize, vector_alu(op, a, b, esize));
                }
            }
            Ok(())
        }
        Instruction::VAluVI {
            op,
            vd,
            vn,
            imm,
            pg,
            esize,
        } => {
            let lanes = esize.lanes();
            for i in 0..lanes {
                if s.lane_active(pg, i, esize) {
                    let a = s.v_elem_i64(vn, i, esize);
                    s.set_v_elem(vd, i, esize, vector_alu(op, a, imm, esize));
                }
            }
            Ok(())
        }
        Instruction::VCmpVV {
            cond,
            pd,
            vn,
            vm,
            pg,
            esize,
        } => {
            let lanes = esize.lanes();
            let mut p = 0u64;
            for i in 0..lanes {
                if s.lane_active(pg, i, esize) {
                    let a = s.v_elem_i64(vn, i, esize);
                    let b = s.v_elem_i64(vm, i, esize);
                    if cond.eval(a, b) {
                        p |= 1 << (i * esize.bytes());
                    }
                }
            }
            s.set_p(pd, p);
            Ok(())
        }
        Instruction::VCmpVI {
            cond,
            pd,
            vn,
            imm,
            pg,
            esize,
        } => {
            let lanes = esize.lanes();
            let mut p = 0u64;
            for i in 0..lanes {
                if s.lane_active(pg, i, esize) {
                    let a = s.v_elem_i64(vn, i, esize);
                    if cond.eval(a, imm) {
                        p |= 1 << (i * esize.bytes());
                    }
                }
            }
            s.set_p(pd, p);
            Ok(())
        }
        Instruction::VSel {
            vd,
            pg,
            vn,
            vm,
            esize,
        } => {
            let lanes = esize.lanes();
            for i in 0..lanes {
                let v = if s.lane_active(pg, i, esize) {
                    s.v_elem(vn, i, esize)
                } else {
                    s.v_elem(vm, i, esize)
                };
                s.set_v_elem(vd, i, esize, v);
            }
            Ok(())
        }
        Instruction::VLoad { vd, rn, pg, esize } => {
            let lanes = esize.lanes();
            let base = s.x(rn);
            for i in 0..lanes {
                let v = if s.lane_active(pg, i, esize) {
                    let addr = base.wrapping_add((i * esize.bytes()) as u64);
                    s.mem.read_le(addr, esize.bytes())
                } else {
                    0
                };
                s.set_v_elem(vd, i, esize, v);
            }
            Ok(())
        }
        Instruction::VLoadN {
            vd,
            rn,
            pg,
            esize,
            msize,
        } => {
            let lanes = esize.lanes();
            let base = s.x(rn);
            for i in 0..lanes {
                let v = if s.lane_active(pg, i, esize) {
                    let addr = base.wrapping_add((i * msize.bytes()) as u64);
                    s.mem.read_le(addr, msize.bytes())
                } else {
                    0
                };
                s.set_v_elem(vd, i, esize, v);
            }
            Ok(())
        }
        Instruction::VStore { vs, rn, pg, esize } => {
            let lanes = esize.lanes();
            let base = s.x(rn);
            for i in 0..lanes {
                if s.lane_active(pg, i, esize) {
                    let v = s.v_elem(vs, i, esize);
                    let addr = base.wrapping_add((i * esize.bytes()) as u64);
                    if s.mem.try_write_le(addr, v, esize.bytes()).is_err() {
                        return Err(SimError::MemoryFault { addr, pc });
                    }
                }
            }
            Ok(())
        }
        Instruction::VGather {
            vd,
            rn,
            idx,
            pg,
            esize,
            msize,
            scale,
        } => {
            let lanes = esize.lanes();
            let base = s.x(rn);
            for i in 0..lanes {
                if s.lane_active(pg, i, esize) {
                    let off = s.v_elem_i64(idx, i, esize);
                    let addr = base.wrapping_add_signed(off.wrapping_mul(scale as i64));
                    let v = s.mem.read_le(addr, msize.bytes());
                    s.set_v_elem(vd, i, esize, v);
                } else {
                    s.set_v_elem(vd, i, esize, 0);
                }
            }
            Ok(())
        }
        Instruction::VScatter {
            vs,
            rn,
            idx,
            pg,
            esize,
            msize,
            scale,
        } => {
            let lanes = esize.lanes();
            let base = s.x(rn);
            for i in 0..lanes {
                if s.lane_active(pg, i, esize) {
                    let off = s.v_elem_i64(idx, i, esize);
                    let addr = base.wrapping_add_signed(off.wrapping_mul(scale as i64));
                    if s.mem
                        .try_write_le(addr, s.v_elem(vs, i, esize), msize.bytes())
                        .is_err()
                    {
                        return Err(SimError::MemoryFault { addr, pc });
                    }
                }
            }
            Ok(())
        }
        Instruction::VReduce {
            op,
            rd,
            vn,
            pg,
            esize,
        } => {
            let lanes = esize.lanes();
            let empty = match op {
                RedOp::Add => 0,
                RedOp::Min => i64::MAX,
                RedOp::Max => i64::MIN,
            };
            let mut acc: Option<i64> = None;
            for i in 0..lanes {
                if s.lane_active(pg, i, esize) {
                    let v = s.v_elem_i64(vn, i, esize);
                    acc = Some(match (acc, op) {
                        (None, _) => v,
                        (Some(a), RedOp::Add) => a.wrapping_add(v),
                        (Some(a), RedOp::Min) => a.min(v),
                        (Some(a), RedOp::Max) => a.max(v),
                    });
                }
            }
            s.set_x(rd, acc.unwrap_or(empty) as u64);
            Ok(())
        }
        Instruction::VExtract {
            rd,
            vn,
            lane,
            esize,
        } => {
            if lane as usize >= esize.lanes() {
                // The fault is decidable from instruction fields alone.
                return Err(SimError::InvalidRegister { index: lane, pc });
            }
            let v = s.v_elem(vn, lane as usize, esize);
            s.set_x(rd, v);
            Ok(())
        }
        Instruction::VInsert {
            vd,
            rn,
            lane,
            esize,
        } => {
            if lane as usize >= esize.lanes() {
                return Err(SimError::InvalidRegister { index: lane, pc });
            }
            let v = s.x(rn);
            s.set_v_elem(vd, lane as usize, esize, v);
            Ok(())
        }
        Instruction::VSlideDown {
            vd,
            vn,
            amount,
            esize,
        } => {
            let lanes = esize.lanes();
            let mut buf = [0u64; VLEN_BYTES];
            let tmp = &mut buf[..lanes];
            for (i, item) in tmp.iter_mut().enumerate() {
                let src = i + amount as usize;
                *item = if src < lanes {
                    s.v_elem(vn, src, esize)
                } else {
                    0
                };
            }
            for (i, &v) in tmp.iter().enumerate() {
                s.set_v_elem(vd, i, esize, v);
            }
            Ok(())
        }
        Instruction::VSlide1Up { vd, vn, rn, esize } => {
            let lanes = esize.lanes();
            let mut buf = [0u64; VLEN_BYTES];
            let tmp = &mut buf[..lanes];
            tmp[0] = s.x(rn);
            for (i, item) in tmp.iter_mut().enumerate().skip(1) {
                *item = s.v_elem(vn, i - 1, esize);
            }
            for (i, &v) in tmp.iter().enumerate() {
                s.set_v_elem(vd, i, esize, v);
            }
            Ok(())
        }

        Instruction::PTrue { pd, esize } => {
            let word = ArchState::pred_first_n(esize.lanes(), esize);
            s.set_p(pd, word);
            Ok(())
        }
        Instruction::PWhileLt { pd, rn, esize } => {
            let lanes = esize.lanes();
            let n = s.x(rn) as i64;
            let n = n.clamp(0, lanes as i64) as usize;
            s.set_p(pd, ArchState::pred_first_n(n, esize));
            Ok(())
        }
        Instruction::PFalse { pd } => {
            s.set_p(pd, 0);
            Ok(())
        }
        Instruction::PAnd { pd, pn, pm } => {
            s.set_p(pd, s.p(pn) & s.p(pm));
            Ok(())
        }
        Instruction::POr { pd, pn, pm } => {
            s.set_p(pd, s.p(pn) | s.p(pm));
            Ok(())
        }
        Instruction::PBic { pd, pn, pm } => {
            s.set_p(pd, s.p(pn) & !s.p(pm));
            Ok(())
        }
        Instruction::PCount { rd, pn, esize } => {
            let c = s.pred_count(pn, esize);
            s.set_x(rd, c);
            Ok(())
        }

        Instruction::QzConf { eb0, eb1, esiz } => {
            let esiz_v = s.x(esiz);
            if !s.qz.conf(s.x(eb0), s.x(eb1), esiz_v) {
                return Err(SimError::InvalidQzConf { esiz: esiz_v, pc });
            }
            Ok(())
        }
        Instruction::QzEncode { sel, val, idx } => {
            let chars = *s.v(val);
            let at = s.x(idx);
            match s.qz.encode(sel.index(), &chars, at) {
                Ok(_) => Ok(()),
                Err(_) => Err(SimError::QBufferIndexOutOfRange { idx: at, pc }),
            }
        }
        Instruction::QzStore { val, idx, sel, pg } => {
            let mut buf = [(0u64, 0u64); LANES_64];
            let lanes = active_lane_pairs(s, pg, idx, val, &mut buf);
            s.qz.store(sel.index(), lanes);
            Ok(())
        }
        Instruction::QzUpdate {
            op,
            val,
            idx,
            sel,
            pg,
        } => {
            let mut buf = [(0u64, 0u64); LANES_64];
            let lanes = active_lane_pairs(s, pg, idx, val, &mut buf);
            s.qz.update(sel.index(), op, lanes);
            Ok(())
        }
        Instruction::QzLoad { vd, idx, sel, pg } => {
            let mask = s.mask64(pg);
            let idxs = s.v_lanes64(idx);
            let (vals, _) = s.qz.load(sel.index(), &idxs, &mask);
            for (i, &v) in vals.iter().enumerate() {
                s.set_v_elem(vd, i, ElemSize::B64, v);
            }
            Ok(())
        }
        Instruction::QzMhm {
            op,
            vd,
            idx0,
            idx1,
            pg,
        } => {
            let mask = s.mask64(pg);
            let i0 = s.v_lanes64(idx0);
            let i1 = s.v_lanes64(idx1);
            let (vals, _) = s.qz.mhm(op, &i0, &i1, &mask);
            for (i, &v) in vals.iter().enumerate() {
                s.set_v_elem(vd, i, ElemSize::B64, v);
            }
            Ok(())
        }
        Instruction::QzMm {
            op,
            vd,
            val,
            idx,
            sel,
            pg,
        } => {
            let mask = s.mask64(pg);
            let vv = s.v_lanes64(val);
            let ii = s.v_lanes64(idx);
            let (vals, _) = s.qz.mm(op, sel.index(), &vv, &ii, &mask);
            for (i, &v) in vals.iter().enumerate() {
                s.set_v_elem(vd, i, ElemSize::B64, v);
            }
            Ok(())
        }
        Instruction::QzCount { vd, vn, vm } => {
            let a = s.v_lanes64(vn);
            let b = s.v_lanes64(vm);
            let counts = qzcount_vector(&a, &b, s.qz.esize);
            for (i, &c) in counts.iter().enumerate() {
                s.set_v_elem(vd, i, ElemSize::B64, c);
            }
            Ok(())
        }
    }
}

/// Per-core cache of compiled programs — the functional analogue of
/// [`crate::predecode::DecodeCache`], with the same wholesale-flush
/// bound.
///
/// Two-level keying: a fast path by [`Program::id`], and behind it a
/// **content index** keyed by the hash of the instruction stream. The
/// staged alignment drivers build a fresh `Program` (fresh id) per
/// sequence pair, but pairs with equal lengths and edit distance stage
/// byte-identical code — the content index lets every such program
/// share one compiled superblock table across pairs *and across
/// kernels*, so steady-state batch execution stops recompiling at all.
/// Hash collisions are guarded by full instruction-stream equality, so
/// a collision costs a compare, never a wrong program.
/// One content-index entry: the instruction stream (collision guard)
/// and its compiled form.
type ContentEntry = (Arc<[Instruction]>, Arc<CompiledProgram>);

#[derive(Debug, Clone, Default)]
pub(crate) struct CompiledCache {
    by_id: HashMap<u64, Arc<CompiledProgram>>,
    by_content: HashMap<u64, Vec<ContentEntry>>,
}

impl CompiledCache {
    /// Matches `DecodeCache::CAPACITY`: far above any driver's working
    /// set, small enough that eviction is a non-event.
    const CAPACITY: usize = 64;

    /// The compiled form of `program`, compiling on first sight of its
    /// *content* (identical code under a different id hits the cache).
    pub(crate) fn get(&mut self, program: &Program, pre: &Predecode) -> Arc<CompiledProgram> {
        if self.by_id.len() >= Self::CAPACITY && !self.by_id.contains_key(&program.id()) {
            self.by_id.clear();
            self.by_content.clear();
        }
        if let Some(cp) = self.by_id.get(&program.id()) {
            return Arc::clone(cp);
        }
        let insts = program.instructions();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::hash::Hash::hash(insts, &mut h);
        let key = std::hash::Hasher::finish(&h);
        let bucket = self.by_content.entry(key).or_default();
        let cp = match bucket.iter().find(|(code, _)| code[..] == *insts) {
            Some((_, cp)) => Arc::clone(cp),
            None => {
                let cp = Arc::new(compile(program, pre));
                bucket.push((insts.into(), Arc::clone(&cp)));
                cp
            }
        };
        self.by_id.insert(program.id(), Arc::clone(&cp));
        cp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::execute;
    use crate::ooo::NullSink;
    use quetzal_accel::QzConfig;
    use quetzal_isa::*;

    fn compile_program(p: &Program) -> CompiledProgram {
        compile(p, &Predecode::of(p))
    }

    /// Runs `p` through both engines from identical cold states and
    /// asserts the full results — executed counts or errors, plus an
    /// architectural digest — are bit-equal.
    fn assert_engines_agree(p: &Program, budget: u64) {
        let mut si = ArchState::new(QzConfig::QZ_8P);
        let mut sc = ArchState::new(QzConfig::QZ_8P);
        let ri = execute(&mut si, p, &mut NullSink, budget);
        let rc = run_compiled(&compile_program(p), &mut sc, budget);
        assert_eq!(ri, rc, "engines disagree at budget {budget}");
        for i in 0..32 {
            assert_eq!(
                si.x(XReg::new(i)),
                sc.x(XReg::new(i)),
                "x{i} diverged at budget {budget}"
            );
            assert_eq!(
                si.v_lanes64(VReg::new(i)),
                sc.v_lanes64(VReg::new(i)),
                "v{i} diverged at budget {budget}"
            );
        }
        for i in 0..8 {
            assert_eq!(si.p(PReg::new(i)), sc.p(PReg::new(i)), "p{i} diverged");
        }
        assert_eq!(si.mem.resident_pages(), sc.mem.resident_pages());
        assert_eq!(si.qz.buf(0).words(), sc.qz.buf(0).words());
    }

    fn loop_program() -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.mov_imm(X0, 0);
        b.mov_imm(X1, 0);
        b.mov_imm(X2, 10);
        b.bind(top);
        b.alu_rr(SAluOp::Add, X1, X1, X0);
        b.alu_ri(SAluOp::Add, X0, X0, 1);
        b.branch(BranchCond::Lt, X0, X2, top);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn compiled_loop_matches_interpreter_at_every_budget() {
        // Sweeping the budget over the whole run length pins the exact
        // InstLimit boundary semantics, including the halt edge case.
        let p = loop_program();
        let mut s = ArchState::new(QzConfig::QZ_8P);
        let total = run_compiled(&compile_program(&p), &mut s, u64::MAX).unwrap();
        for budget in 0..=total + 1 {
            assert_engines_agree(&p, budget);
        }
    }

    #[test]
    fn compiled_vector_kernel_matches_interpreter() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 0x2000);
        b.mov_imm(X1, 7);
        b.ptrue(P0, ElemSize::B64);
        b.index(V0, X0, 3, ElemSize::B64);
        b.dup(V1, X1, ElemSize::B64);
        b.valu_vv(VAluOp::Add, V2, V0, V1, P0, ElemSize::B64);
        b.vstore(V2, X0, P0, ElemSize::B64);
        b.vload(V3, X0, P0, ElemSize::B64);
        b.vreduce(RedOp::Add, X2, V3, P0, ElemSize::B64);
        b.halt();
        let p = b.build().unwrap();
        assert_engines_agree(&p, u64::MAX);
    }

    #[test]
    fn out_of_program_targets_fault_identically() {
        // Falling off the end.
        let trunc = Program::from_raw(vec![Instruction::MovImm { rd: X0, imm: 1 }], "trunc");
        for budget in 0..4 {
            assert_engines_agree(&trunc, budget);
        }
        // A wild jump target.
        let wild = Program::from_raw(
            vec![Instruction::Jump { target: 99 }, Instruction::Halt],
            "wild",
        );
        for budget in 0..4 {
            assert_engines_agree(&wild, budget);
        }
        // A wild branch target, taken and not taken.
        for imm in [0, 1] {
            let p = Program::from_raw(
                vec![
                    Instruction::MovImm { rd: X0, imm },
                    Instruction::MovImm { rd: X1, imm: 1 },
                    Instruction::Branch {
                        cond: BranchCond::Eq,
                        rn: X0,
                        rm: X1,
                        target: 77,
                    },
                    Instruction::Halt,
                ],
                "wild-branch",
            );
            for budget in 0..6 {
                assert_engines_agree(&p, budget);
            }
        }
    }

    #[test]
    fn empty_program_faults_identically() {
        let p = Program::from_raw(Vec::new(), "empty");
        assert_engines_agree(&p, 0);
        assert_engines_agree(&p, 5);
    }

    #[test]
    fn static_lane_fault_matches_interpreter() {
        let p = Program::from_raw(
            vec![
                Instruction::VExtract {
                    rd: X0,
                    vn: V0,
                    lane: 63,
                    esize: ElemSize::B64,
                },
                Instruction::Halt,
            ],
            "bad-lane",
        );
        assert_engines_agree(&p, u64::MAX);
    }

    #[test]
    fn page_budget_fault_matches_interpreter() {
        // A store loop that touches a new page per iteration.
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.mov_imm(X0, 0x10_0000);
        b.mov_imm(X1, 0x10_0000 + 4096 * 64);
        b.bind(top);
        b.store(X0, X0, 0, MemSize::B8);
        b.alu_ri(SAluOp::Add, X0, X0, 4096);
        b.branch(BranchCond::Lt, X0, X1, top);
        b.halt();
        let p = b.build().unwrap();

        let mut si = ArchState::new(QzConfig::QZ_8P);
        let mut sc = ArchState::new(QzConfig::QZ_8P);
        si.mem.set_page_budget(8);
        sc.mem.set_page_budget(8);
        let ri = execute(&mut si, &p, &mut NullSink, u64::MAX);
        let rc = run_compiled(&compile_program(&p), &mut sc, u64::MAX);
        assert!(matches!(ri, Err(SimError::MemoryFault { .. })));
        assert_eq!(ri, rc);
    }

    #[test]
    fn qbuffer_kernel_matches_interpreter() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(X4, 128);
        b.mov_imm(X5, 2);
        b.qzconf(X4, X4, X5);
        b.ptrue(P0, ElemSize::B64);
        b.index(V0, X6, 1, ElemSize::B64);
        b.dup_imm(V1, 9, ElemSize::B64);
        b.qzstore(V1, V0, QBufSel::Q0, P0);
        b.qzupdate(QzOp::Add, V1, V0, QBufSel::Q0, P0);
        b.qzload(V2, V0, QBufSel::Q0, P0);
        b.qzmhm(QzOp::Count, V3, V0, V0, P0);
        b.halt();
        let p = b.build().unwrap();
        assert_engines_agree(&p, u64::MAX);
    }

    #[test]
    fn invalid_qzconf_faults_identically() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(X4, 128);
        b.mov_imm(X5, 777);
        b.qzconf(X4, X4, X5);
        b.halt();
        let p = b.build().unwrap();
        assert_engines_agree(&p, u64::MAX);
    }

    #[test]
    fn superblocks_chain_across_unconditional_edges() {
        // mov / jump / mov / jump / ... — one entry superblock should
        // swallow the whole chain.
        let p = Program::from_raw(
            vec![
                Instruction::MovImm { rd: X0, imm: 1 },
                Instruction::Jump { target: 2 },
                Instruction::MovImm { rd: X1, imm: 2 },
                Instruction::Jump { target: 4 },
                Instruction::Halt,
            ],
            "chain",
        );
        let cp = compile_program(&p);
        assert_eq!(cp.blocks[0].insts, 5, "entry superblock covers the chain");
        assert!(matches!(cp.blocks[0].term, Terminator::Halt));
        for budget in 0..7 {
            assert_engines_agree(&p, budget);
        }
    }

    #[test]
    fn compiled_cache_reuses_and_bounds_entries() {
        let p = loop_program();
        let mut cache = CompiledCache::default();
        let a = cache.get(&p, &Predecode::of(&p));
        let b = cache.get(&p, &Predecode::of(&p));
        assert!(Arc::ptr_eq(&a, &b), "same program id must hit the cache");

        for i in 0..(CompiledCache::CAPACITY * 2) {
            let mut pb = ProgramBuilder::new();
            pb.mov_imm(X0, i as i64);
            pb.halt();
            let q = pb.build().unwrap();
            cache.get(&q, &Predecode::of(&q));
        }
        assert!(cache.by_id.len() <= CompiledCache::CAPACITY);
        assert!(cache.by_content.len() <= CompiledCache::CAPACITY);
    }

    #[test]
    fn compiled_cache_shares_identical_content_across_program_ids() {
        // Two programs staged separately (distinct ids) with identical
        // instruction streams — the per-pair driver pattern — must
        // share one compiled table.
        let p = loop_program();
        let q = loop_program();
        assert_ne!(p.id(), q.id(), "staged programs get fresh ids");
        assert_eq!(p.instructions(), q.instructions());
        let mut cache = CompiledCache::default();
        let a = cache.get(&p, &Predecode::of(&p));
        let b = cache.get(&q, &Predecode::of(&q));
        assert!(
            Arc::ptr_eq(&a, &b),
            "identical content must share a compiled program across ids"
        );

        // Different content must not alias.
        let mut pb = ProgramBuilder::new();
        pb.mov_imm(X0, 7);
        pb.halt();
        let r = pb.build().unwrap();
        let c = cache.get(&r, &Predecode::of(&r));
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
