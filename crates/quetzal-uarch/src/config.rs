//! Simulated-system configuration (paper Table I).

use quetzal_accel::QzConfig;

/// One cache level's parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity (ways).
    pub ways: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Load-to-use latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity / (self.ways * self.line)
    }
}

/// Main-memory (HBM2) parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// Access latency in cycles (row activation + channel).
    pub latency: u64,
    /// Aggregate bandwidth in bytes per core cycle. The A64FX's 4-channel
    /// HBM2 delivers roughly 256 GB/s per CMG; at 2 GHz that is 128 B per
    /// cycle.
    pub bytes_per_cycle: f64,
}

/// Full single-core configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Front-end dispatch width (instructions per cycle).
    pub dispatch_width: u64,
    /// Commit width (instructions per cycle).
    pub commit_width: u64,
    /// Reorder-buffer capacity.
    pub rob_size: usize,
    /// Number of scalar ALUs.
    pub scalar_alus: usize,
    /// Number of vector execution pipes.
    pub vector_fus: usize,
    /// Number of load ports (AGU + cache port).
    pub load_ports: usize,
    /// Number of store ports.
    pub store_ports: usize,
    /// Scalar ALU latency.
    pub scalar_alu_lat: u64,
    /// Scalar multiply latency.
    pub scalar_mul_lat: u64,
    /// Vector ALU latency.
    pub vector_alu_lat: u64,
    /// Vector multiply latency.
    pub vector_mul_lat: u64,
    /// Cross-lane (reduction / permute) latency.
    pub vector_horiz_lat: u64,
    /// Predicate-op latency.
    pub pred_lat: u64,
    /// Fixed overhead of cracking an indexed memory instruction into
    /// scalar requests (address generation, no LSQ coalescing, §II-G).
    /// Calibrated so an all-L1-hit 8-lane gather costs ≈ 19–22 cycles
    /// end to end, matching the A64FX/Intel numbers the paper cites.
    pub gather_crack_overhead: u64,
    /// Branch misprediction penalty (front-end refill).
    pub mispredict_penalty: u64,
    /// Penalty when a load partially overlaps an in-flight store at a
    /// different alignment (failed store-to-load forwarding — the
    /// hazard Fig. 7 shows QUETZAL removing from classical DP).
    pub store_fwd_penalty: u64,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Shared L2 cache.
    pub l2: CacheConfig,
    /// Main memory.
    pub mem: MemConfig,
    /// QUETZAL accelerator configuration attached to this core.
    pub qz: QzConfig,
    /// Stride-prefetcher aggressiveness (lines prefetched ahead); 0
    /// disables prefetching.
    pub prefetch_degree: usize,
    /// Store-to-load forwarding window depth (entries the timing model
    /// remembers when checking loads against in-flight stores).
    pub store_ring_slots: usize,
    /// QUETZAL read-issue ports on the core side (how many `qzload`s
    /// can start per cycle; the accelerator-internal port count lives
    /// in [`QzConfig`]).
    pub qz_read_ports: usize,
}

impl CoreConfig {
    /// The paper's simulated system (Table I): a 2.0 GHz A64FX-like core
    /// with 512-bit SVE, 64 KB 8-way L1D (4-cycle load-to-use), 8 MB
    /// 16-way shared L2 (37-cycle), 4-channel HBM2, and the QZ_8P
    /// QUETZAL instance.
    pub fn a64fx_like() -> CoreConfig {
        CoreConfig {
            dispatch_width: 4,
            commit_width: 4,
            rob_size: 128,
            scalar_alus: 2,
            vector_fus: 2,
            load_ports: 2,
            store_ports: 1,
            scalar_alu_lat: 1,
            scalar_mul_lat: 3,
            vector_alu_lat: 4,
            vector_mul_lat: 5,
            vector_horiz_lat: 6,
            pred_lat: 1,
            gather_crack_overhead: 12,
            mispredict_penalty: 12,
            store_fwd_penalty: 10,
            l1d: CacheConfig {
                capacity: 64 * 1024,
                ways: 8,
                line: 64,
                latency: 4,
            },
            l2: CacheConfig {
                capacity: 8 * 1024 * 1024,
                ways: 16,
                line: 64,
                latency: 37,
            },
            mem: MemConfig {
                latency: 120,
                bytes_per_cycle: 128.0,
            },
            qz: QzConfig::QZ_8P,
            prefetch_degree: 4,
            store_ring_slots: 40,
            qz_read_ports: 1,
        }
    }

    /// Same core with the dispatch/commit width set to `w` and the
    /// shared FU pools and load/store ports scaled proportionally
    /// (rounding up, minimum one unit). Used by the `design_space`
    /// sweep and the wide-config benchmark series.
    pub fn with_issue_width(mut self, w: u64) -> CoreConfig {
        let old = self.dispatch_width.max(1);
        let scale = |n: usize| (n as u64 * w).div_ceil(old).max(1) as usize;
        self.scalar_alus = scale(self.scalar_alus);
        self.vector_fus = scale(self.vector_fus);
        self.load_ports = scale(self.load_ports);
        self.store_ports = scale(self.store_ports);
        self.dispatch_width = w;
        self.commit_width = w;
        self
    }

    /// Same core with a different reorder-buffer capacity.
    pub fn with_rob(mut self, rob: usize) -> CoreConfig {
        self.rob_size = rob.max(1);
        self
    }

    /// Same core with a different store-forwarding window depth.
    pub fn with_store_ring(mut self, slots: usize) -> CoreConfig {
        self.store_ring_slots = slots.max(1);
        self
    }

    /// The wide 8-issue design point (8-wide dispatch/commit, doubled
    /// FU pools, 256-entry ROB, 80-entry store window, QZ_8P) used by
    /// the wide-config series in `BENCH_uarch.json`.
    pub fn wide8() -> CoreConfig {
        CoreConfig::a64fx_like()
            .with_issue_width(8)
            .with_rob(256)
            .with_store_ring(80)
    }

    /// Same core with a different QUETZAL port configuration (used by
    /// the Fig. 12 design-space sweep).
    pub fn with_qz(mut self, qz: QzConfig) -> CoreConfig {
        self.qz = qz;
        self
    }

    /// Scales the shared-L2 capacity and memory bandwidth to this core's
    /// share when `n` cores run concurrently (used by the multicore
    /// model).
    pub fn share_of(mut self, n: usize) -> CoreConfig {
        assert!(n > 0, "core count must be positive");
        // Keep at least one way and a sane minimum capacity.
        let cap = (self.l2.capacity / n).max(self.l2.line * self.l2.ways);
        self.l2.capacity = cap;
        self.mem.bytes_per_cycle /= n as f64;
        self
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::a64fx_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameters() {
        let c = CoreConfig::a64fx_like();
        assert_eq!(c.l1d.capacity, 64 * 1024);
        assert_eq!(c.l1d.ways, 8);
        assert_eq!(c.l1d.latency, 4);
        assert_eq!(c.l2.capacity, 8 * 1024 * 1024);
        assert_eq!(c.l2.latency, 37);
        assert_eq!(c.qz, QzConfig::QZ_8P);
    }

    #[test]
    fn cache_sets() {
        let c = CoreConfig::a64fx_like();
        assert_eq!(c.l1d.sets(), 64 * 1024 / (8 * 64));
    }

    #[test]
    fn issue_width_scales_pools() {
        let c = CoreConfig::a64fx_like().with_issue_width(8);
        assert_eq!(c.dispatch_width, 8);
        assert_eq!(c.commit_width, 8);
        assert_eq!(c.scalar_alus, 4);
        assert_eq!(c.vector_fus, 4);
        assert_eq!(c.load_ports, 4);
        assert_eq!(c.store_ports, 2);
        let narrow = CoreConfig::a64fx_like().with_issue_width(1);
        assert_eq!(narrow.store_ports, 1, "pools never scale below one");
        let w = CoreConfig::wide8();
        assert_eq!(w.rob_size, 256);
        assert_eq!(w.store_ring_slots, 80);
    }

    #[test]
    fn share_of_divides_resources() {
        let c = CoreConfig::a64fx_like().share_of(16);
        assert_eq!(c.l2.capacity, 512 * 1024);
        assert!((c.mem.bytes_per_cycle - 8.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn share_of_zero_panics() {
        let _ = CoreConfig::a64fx_like().share_of(0);
    }
}
