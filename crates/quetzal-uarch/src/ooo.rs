//! Out-of-order timing model.
//!
//! The interpreter ([`crate::interp`]) executes instructions functionally
//! and streams [`DynInst`] records into this model, which computes when
//! each instruction would dispatch, issue, complete and commit on an
//! A64FX-like out-of-order core. The model captures exactly the effects
//! the paper's analysis rests on:
//!
//! * **dataflow timing with renaming** — an instruction issues when its
//!   youngest source operand is ready and a functional unit of its class
//!   is free (WAW/WAR hazards are removed, as register renaming would);
//! * **bounded reorder buffer** — dispatch stalls when the ROB is full,
//!   so long-latency memory operations back-pressure the front end;
//! * **limited load/store ports** and **gather/scatter cracking**: an
//!   indexed memory instruction becomes one cache access per active
//!   lane, issued through the load ports with a fixed crack overhead, so
//!   an all-L1-hit 8-lane gather costs ≈ 20 cycles (§II-G cites 19–22);
//! * **commit-time execution of QBUFFER writes** (`qzstore`/`qzencode`,
//!   §IV-E): they occupy the commit stage for their bank-conflict
//!   latency;
//! * **stall attribution** — every cycle of the final run time is
//!   attributed to a [`StallCat`], with memory-ness propagated through
//!   dependence chains, regenerating the Fig. 4 breakdown.

use crate::cache::MemSystem;
use crate::config::CoreConfig;
use crate::predecode::{FuClass, MicroOp, NO_DEF};
use crate::probe::{MemLevelMix, NullProbe, Probe, RetireEvent};
use crate::stats::{RunStats, StallCat};
use crate::wheel::{FreeWheel, RobRing, StoreIndex};
use quetzal_isa::{InstClass, Reg};

/// One dynamic instruction record produced by the functional
/// interpreter.
#[derive(Debug, Clone, Default)]
pub struct DynInst {
    /// Static program counter (instruction index).
    pub pc: usize,
    /// Whether a conditional branch was taken.
    pub taken: bool,
    /// Demand memory accesses: `(address, bytes)`. Unit-stride vector
    /// accesses carry a single entry covering the whole range;
    /// gather/scatter carry one entry per active lane.
    pub mem: Vec<(u64, u32)>,
    /// Latency determined functionally for QUETZAL operations
    /// (port-limited reads, bank-conflict writes, count-ALU depth).
    pub qz_latency: u64,
}

impl DynInst {
    /// Resets the record for reuse (avoids reallocating `mem`).
    pub fn reset(&mut self, pc: usize) {
        self.pc = pc;
        self.taken = false;
        self.mem.clear();
        self.qz_latency = 0;
    }
}

/// Receives retired instructions from the interpreter.
pub trait ExecSink {
    /// Called once per executed instruction, in program order. `uop` is
    /// the instruction's predecoded static record (see
    /// [`crate::predecode`]); `dyn_inst` carries the dynamic facts of
    /// this execution.
    fn retire(&mut self, uop: &MicroOp, dyn_inst: &DynInst);

    /// Timing-side watchdog hook, polled by the interpreter after every
    /// retire. Returns `Some(budget)` once the sink's clock has advanced
    /// past its configured cycle budget, terminating the run with
    /// [`SimError::CycleLimit`](crate::interp::SimError::CycleLimit).
    /// Sinks without a clock (the default) never fire.
    fn cycle_budget_exceeded(&self) -> Option<u64> {
        None
    }
}

/// A sink that discards timing (pure functional execution).
#[derive(Debug, Default)]
pub struct NullSink;

impl ExecSink for NullSink {
    fn retire(&mut self, _uop: &MicroOp, _dyn_inst: &DynInst) {}
}

const BPRED_ENTRIES: usize = 4096;

/// The out-of-order timing engine. State (caches, predictor, clock)
/// persists across kernel submissions so a workload composed of many
/// kernels sees warm caches, exactly as consecutive function calls on
/// real hardware would.
///
/// Generic over a [`Probe`]; the default [`NullProbe`] disables every
/// observation site at compile time (see [`crate::probe`]).
#[derive(Debug, Clone)]
pub struct OooTiming<P: Probe = NullProbe> {
    cfg: CoreConfig,
    /// The memory hierarchy.
    pub mem: MemSystem,
    reg_ready: [u64; Reg::FLAT_COUNT],
    reg_taint: [StallCat; Reg::FLAT_COUNT],
    // Front end.
    front_cycle: u64,
    front_slots: u64,
    fetch_resume: u64,
    // Functional units / ports, tracked as timing wheels of "slot free
    // at cycle" events (see [`crate::wheel`]); allocation cost is
    // independent of the configured pool width.
    fu_scalar: FreeWheel,
    fu_vector: FreeWheel,
    load_ports: FreeWheel,
    store_ports: FreeWheel,
    // Dedicated indexed-access (gather/scatter) pipe: the A64FX cracks
    // memory-indexed SVE operations into a serial element stream through
    // a single pipeline, which is why their latency is >= 19 cycles even
    // on L1 hits (paper SII-G).
    gather_pipe: u64,
    qz_port: FreeWheel,
    // Recent stores for the store-to-load forwarding hazard model,
    // granule-indexed so a load consults only the stores near its
    // address instead of the whole window.
    store_buffer: StoreIndex,
    // In-order commit. Capacity rob_size + 1: commit pushes before its
    // conditional pop, so the ring momentarily holds one extra entry.
    rob: RobRing,
    commit_cycle: u64,
    commit_slots: u64,
    run_start_cycle: u64,
    /// Per-run cycle watchdog (see [`ExecSink::cycle_budget_exceeded`]).
    cycle_budget: u64,
    // Branch predictor: 2-bit saturating counters (fixed table, boxed
    // so `OooTiming` itself stays small and clones stay cheap-ish).
    bpred: Box<[u8; BPRED_ENTRIES]>,
    stats: RunStats,
    probe: P,
}

impl OooTiming {
    /// Creates a timing engine for a core configuration (no probe).
    pub fn new(cfg: CoreConfig) -> OooTiming {
        OooTiming::with_probe(cfg, NullProbe)
    }
}

impl<P: Probe> OooTiming<P> {
    /// Creates a timing engine with an attached observation probe.
    pub fn with_probe(cfg: CoreConfig, probe: P) -> OooTiming<P> {
        let mem = MemSystem::new(&cfg);
        // Commit pushes before its conditional pop, so the ring must
        // hold one entry beyond the architectural ROB size.
        let rob = RobRing::new(cfg.rob_size.saturating_add(1));
        OooTiming {
            // Zero-width pools in a hand-built config would deadlock
            // allocation; `FreeWheel` clamps to one unit so any config
            // simulates.
            fu_scalar: FreeWheel::new(cfg.scalar_alus),
            fu_vector: FreeWheel::new(cfg.vector_fus),
            load_ports: FreeWheel::new(cfg.load_ports),
            store_ports: FreeWheel::new(cfg.store_ports),
            gather_pipe: 0,
            qz_port: FreeWheel::new(cfg.qz_read_ports),
            store_buffer: StoreIndex::new(cfg.store_ring_slots),
            mem,
            cfg,
            reg_ready: [0; Reg::FLAT_COUNT],
            reg_taint: [StallCat::Base; Reg::FLAT_COUNT],
            front_cycle: 0,
            front_slots: 0,
            fetch_resume: 0,
            rob,
            commit_cycle: 0,
            commit_slots: 0,
            run_start_cycle: 0,
            cycle_budget: u64::MAX,
            bpred: Box::new([1u8; BPRED_ENTRIES]),
            stats: RunStats::default(),
            probe,
        }
    }

    /// The attached probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Mutable access to the attached probe (drain recorded data).
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Starts accounting a new kernel run (cycle counters continue,
    /// statistics restart).
    pub fn begin_run(&mut self) {
        self.stats = RunStats::default();
        self.run_start_cycle = self.commit_cycle;
        // A kernel submission is a serialising boundary: the new kernel's
        // first instruction cannot dispatch before the previous kernel
        // fully committed.
        self.front_cycle = self.front_cycle.max(self.commit_cycle);
        self.front_slots = 0;
        self.fetch_resume = self.fetch_resume.max(self.commit_cycle);
        if P::ENABLED {
            self.probe.on_run_start(self.run_start_cycle);
        }
    }

    /// Finishes the run: closes the stall attribution and returns the
    /// run's statistics.
    pub fn end_run(&mut self) -> RunStats {
        let mut stats = std::mem::take(&mut self.stats);
        stats.cycles = self.commit_cycle - self.run_start_cycle;
        let attributed: u64 = stats.stall_cycles.iter().skip(1).sum();
        stats.stall_cycles[StallCat::Base.index()] = stats.cycles.saturating_sub(attributed);
        if P::ENABLED {
            self.probe.on_run_end(&stats);
        }
        stats
    }

    /// The current global cycle (monotonic across runs).
    pub fn now(&self) -> u64 {
        self.commit_cycle
    }

    /// Sets the per-run cycle watchdog: once the clock advances more
    /// than `cycles` past the run start, the interpreter terminates the
    /// run with a typed `CycleLimit` error. Defaults to `u64::MAX`
    /// (effectively off); [`reset`](OooTiming::reset) restores that.
    pub fn set_cycle_budget(&mut self, cycles: u64) {
        self.cycle_budget = cycles;
    }

    /// Cold-boots the engine in place: clock back to zero, pipeline and
    /// predictor state cleared, caches invalidated. Timing-equivalent
    /// to a freshly built engine while reusing every allocation (FU
    /// vectors, ROB, predictor table, cache tag arrays). The attached
    /// probe is deliberately *not* cleared — observation spans pool
    /// reuse; its cycle timeline restarts at zero with the engine.
    pub fn reset(&mut self) {
        self.mem.reset();
        self.reg_ready = [0; Reg::FLAT_COUNT];
        self.reg_taint = [StallCat::Base; Reg::FLAT_COUNT];
        self.front_cycle = 0;
        self.front_slots = 0;
        self.fetch_resume = 0;
        self.fu_scalar.reset();
        self.fu_vector.reset();
        self.load_ports.reset();
        self.store_ports.reset();
        self.gather_pipe = 0;
        self.qz_port.reset();
        self.store_buffer.reset();
        self.rob.clear();
        self.commit_cycle = 0;
        self.commit_slots = 0;
        self.run_start_cycle = 0;
        self.cycle_budget = u64::MAX;
        self.bpred.fill(1);
        self.stats = RunStats::default();
    }

    fn dispatch(&mut self) -> u64 {
        let mut floor = self.fetch_resume;
        if self.rob.len() >= self.cfg.rob_size {
            // Oldest in-flight instruction must commit to free a slot.
            // `rob_size >= 1` makes the deque nonempty here, but a pop on
            // an empty deque is just "no backpressure", not a crash.
            if let Some(oldest) = self.rob.pop_front() {
                floor = floor.max(oldest);
            }
        }
        if floor > self.front_cycle {
            self.front_cycle = floor;
            self.front_slots = 0;
        }
        if self.front_slots >= self.cfg.dispatch_width {
            self.front_cycle += 1;
            self.front_slots = 0;
        }
        self.front_slots += 1;
        self.front_cycle
    }

    /// Width-limited, in-order commit. Returns the cycle the
    /// instruction finally committed at and the stall gap charged to
    /// its category (both consumed only by probes; dead values compile
    /// away when no probe is attached).
    fn commit(&mut self, completion: u64, cat: StallCat, extra_commit_busy: u64) -> (u64, u64) {
        if self.commit_slots >= self.cfg.commit_width {
            self.commit_cycle += 1;
            self.commit_slots = 0;
        }
        let ideal = self.commit_cycle;
        let commit_at = ideal.max(completion);
        let mut gap = 0;
        if commit_at > ideal {
            gap = commit_at - ideal;
            self.stats.stall_cycles[cat.index()] += gap;
            self.commit_cycle = commit_at;
            self.commit_slots = 0;
        }
        self.commit_slots += 1;
        if extra_commit_busy > 0 {
            // Commit-time QBUFFER writes occupy the commit stage.
            self.stats.stall_cycles[StallCat::Quetzal.index()] += extra_commit_busy;
            self.commit_cycle += extra_commit_busy;
            self.commit_slots = 0;
        }
        self.rob.push_back(self.commit_cycle);
        if self.rob.len() > self.cfg.rob_size {
            self.rob.pop_front();
        }
        (self.commit_cycle, gap)
    }

    /// Latest source-register ready time and its stall taint. Walks the
    /// predecoded use list, which preserves `for_each_use` operand
    /// order: with the `>=` comparison the taint comes from the *last*
    /// operand tying the maximum, exactly as the seed model behaved.
    fn operands_ready(&self, uop: &MicroOp) -> (u64, StallCat) {
        let mut t = 0;
        let mut cat = StallCat::Frontend;
        for &u in uop.uses() {
            let i = u as usize;
            if self.reg_ready[i] >= t {
                t = self.reg_ready[i];
                cat = self.reg_taint[i];
            }
        }
        (t, cat)
    }

    fn set_defs(&mut self, uop: &MicroOp, ready: u64, cat: StallCat) {
        if uop.def != NO_DEF {
            let i = uop.def as usize;
            self.reg_ready[i] = ready;
            self.reg_taint[i] = cat;
        }
    }

    /// Memory-dependence ordering through the store buffer: a load that
    /// overlaps an older in-flight store cannot complete before that
    /// store's data exists. Same-address same-size overlaps forward from
    /// the store buffer at no extra cost; *misaligned* overlaps cannot
    /// be forwarded and replay after the store drains — the classic
    /// store-to-load forwarding failure that Fig. 7 shows QUETZAL
    /// removing from classical DP.
    /// Returns the earliest completion floor imposed by in-flight
    /// stores, and whether the load must replay (failed forward).
    fn forwarding_hazard(&self, addr: u64, size: u32) -> (u64, bool) {
        let mut floor = 0;
        let mut replay = false;
        let penalty = self.cfg.store_fwd_penalty;
        // The index may visit a store twice when both it and the load
        // straddle a granule boundary; the `max`/`or` fold is duplicate-
        // and order-insensitive, so the result matches a full scan.
        self.store_buffer
            .for_each_candidate(addr, size, |sa, ss, done| {
                // Saturating ends: guest addresses can sit at the top of the
                // address space, and a wrapped end would miss the overlap.
                let overlap =
                    addr < sa.saturating_add(ss as u64) && sa < addr.saturating_add(size as u64);
                if !overlap {
                    return;
                }
                if sa == addr && ss == size {
                    // Clean forward: data available when the store's data is.
                    floor = floor.max(done);
                } else {
                    floor = floor.max(done + penalty);
                    replay = true;
                }
            });
        (floor, replay)
    }

    fn record_store(&mut self, addr: u64, size: u32, done: u64) {
        self.store_buffer.push(addr, size, done);
    }

    /// Compute-unit pool selected by the predecoded [`FuClass`].
    ///
    /// Only `Scalar` and `Vector` name shared pools; the other classes
    /// (load/store ports, gather pipe, QZ port) are dedicated resources
    /// the retire arms address directly, and `MicroOp::decode`'s
    /// `fu_of` mapping only assigns `Scalar`/`Vector` to the compute
    /// classes that reach this function — provably unreachable from any
    /// `Program`, however corrupted, so this is an internal invariant
    /// (`debug_assert!`), not a guest-reachable fault. The release
    /// fallback routes to the scalar pool rather than aborting.
    fn compute_pool(&mut self, fu: FuClass) -> &mut FreeWheel {
        match fu {
            FuClass::Scalar => &mut self.fu_scalar,
            FuClass::Vector => &mut self.fu_vector,
            _ => {
                debug_assert!(false, "not a shared compute pool: {fu:?}");
                &mut self.fu_scalar
            }
        }
    }

    fn predict(&mut self, pc: usize, taken: bool) -> bool {
        let idx = pc % BPRED_ENTRIES;
        let predicted = self.bpred[idx] >= 2;
        // 2-bit saturating update.
        if taken {
            self.bpred[idx] = (self.bpred[idx] + 1).min(3);
        } else {
            self.bpred[idx] = self.bpred[idx].saturating_sub(1);
        }
        predicted == taken
    }
}

impl<P: Probe> ExecSink for OooTiming<P> {
    fn cycle_budget_exceeded(&self) -> Option<u64> {
        (self.commit_cycle - self.run_start_cycle > self.cycle_budget).then_some(self.cycle_budget)
    }

    fn retire(&mut self, uop: &MicroOp, d: &DynInst) {
        let class = uop.class;
        let dispatched = self.dispatch();
        let (ops_ready, ops_cat) = self.operands_ready(uop);
        let ready_at = dispatched.max(ops_ready);
        self.stats.instructions += 1;
        self.stats.uops += 1;

        // Probe-only capture: counter snapshots (for per-instruction
        // cache-level deltas) and hazard facts the match arms would
        // otherwise discard. All of it folds away for `NullProbe`.
        let (pr_l1h, pr_l1m, pr_l2m, pr_misp) = if P::ENABLED {
            (
                self.stats.l1_hits,
                self.stats.l1_misses,
                self.stats.l2_misses,
                self.stats.mispredicts,
            )
        } else {
            (0, 0, 0, 0)
        };
        let mut pr_store_floor = 0u64;
        let mut pr_store_replay = false;
        let mut pr_qz_wait = 0u64;

        let (completion, cat, extra_commit, issue) = match class {
            InstClass::ScalarAlu | InstClass::ScalarMul => {
                let lat = if class == InstClass::ScalarMul {
                    self.cfg.scalar_mul_lat
                } else {
                    self.cfg.scalar_alu_lat
                };
                let start = self.compute_pool(uop.fu).alloc(ready_at, 1);
                let cat = if ops_ready > dispatched {
                    ops_cat
                } else {
                    StallCat::ScalarCompute
                };
                (start + lat, cat, 0, start)
            }
            InstClass::Branch => {
                self.stats.branches += 1;
                let start = self.compute_pool(uop.fu).alloc(ready_at, 1);
                let completion = start + self.cfg.scalar_alu_lat;
                if uop.is_cond_branch && !self.predict(d.pc, d.taken) {
                    self.stats.mispredicts += 1;
                    self.fetch_resume = completion + self.cfg.mispredict_penalty;
                }
                let cat = if ops_ready > dispatched {
                    ops_cat
                } else {
                    StallCat::Frontend
                };
                (completion, cat, 0, start)
            }
            InstClass::ScalarLoad | InstClass::VectorLoad => {
                let start = self.load_ports.alloc(ready_at, 1);
                let mut done = start;
                for &(addr, size) in &d.mem {
                    self.stats.mem_requests += 1;
                    done = done.max(self.mem.access(
                        d.pc as u64,
                        addr,
                        size as usize,
                        false,
                        start,
                        &mut self.stats,
                    ));
                    let (floor, replay) = self.forwarding_hazard(addr, size);
                    if replay {
                        // The replayed access occupies a port slot again.
                        let r = self.load_ports.alloc(start, 1);
                        done = done.max(r + self.mem.l1_latency());
                    }
                    done = done.max(floor);
                    if P::ENABLED {
                        pr_store_floor = pr_store_floor.max(floor);
                        pr_store_replay |= replay;
                    }
                }
                (done.max(start + 1), StallCat::Memory, 0, start)
            }
            InstClass::ScalarStore | InstClass::VectorStore => {
                let start = self.store_ports.alloc(ready_at, 1);
                let mut done = start;
                for &(addr, size) in &d.mem {
                    self.stats.mem_requests += 1;
                    done = done.max(self.mem.access(
                        d.pc as u64,
                        addr,
                        size as usize,
                        true,
                        start,
                        &mut self.stats,
                    ));
                }
                for &(addr, size) in &d.mem {
                    self.record_store(addr, size, done);
                }
                (done.max(start + 1), StallCat::Memory, 0, start)
            }
            InstClass::Gather | InstClass::Scatter => {
                // Cracked into one scalar request per active lane: each
                // element generates its own address and occupies a cache
                // port; no coalescing (paper §II-G).
                self.stats.indexed_ops += 1;
                let is_store = class == InstClass::Scatter;
                let start = ready_at + self.cfg.gather_crack_overhead;
                let mut done = start;
                // Elements drain through the single indexed-access pipe
                // at one address per cycle; concurrent gathers queue.
                // Issue-slot assignment and the cache access are fused
                // into one pass (the cache model never reads the pipe
                // clock, so per-element interleaving cannot change any
                // issue time).
                for &(addr, size) in &d.mem {
                    let at = self.gather_pipe.max(start);
                    self.gather_pipe = at + 1;
                    self.stats.mem_requests += 1;
                    self.stats.uops += 1;
                    done = done.max(self.mem.access(
                        d.pc as u64,
                        addr,
                        size as usize,
                        is_store,
                        at,
                        &mut self.stats,
                    ));
                }
                (done.max(start + 1), StallCat::Memory, 0, start)
            }
            InstClass::VectorAlu | InstClass::VectorMul | InstClass::VectorHorizontal => {
                let lat = match class {
                    InstClass::VectorMul => self.cfg.vector_mul_lat,
                    InstClass::VectorHorizontal => self.cfg.vector_horiz_lat,
                    _ => self.cfg.vector_alu_lat,
                };
                let start = self.compute_pool(uop.fu).alloc(ready_at, 1);
                let cat = if ops_ready > dispatched {
                    ops_cat
                } else {
                    StallCat::VectorCompute
                };
                (start + lat, cat, 0, start)
            }
            InstClass::Predicate => {
                let start = self.compute_pool(uop.fu).alloc(ready_at, 1);
                let cat = if ops_ready > dispatched {
                    ops_cat
                } else {
                    StallCat::ScalarCompute
                };
                (start + self.cfg.pred_lat, cat, 0, start)
            }
            InstClass::QzRead => {
                self.stats.qz_accesses += 1;
                let start = self.qz_port.alloc(ready_at, 1);
                if P::ENABLED {
                    pr_qz_wait = start - ready_at;
                }
                (start + d.qz_latency, StallCat::Quetzal, 0, start)
            }
            InstClass::QzCountOp => {
                let start = self.compute_pool(uop.fu).alloc(ready_at, 1);
                (
                    start + d.qz_latency.max(1),
                    StallCat::VectorCompute,
                    0,
                    start,
                )
            }
            InstClass::QzWrite | InstClass::QzConfig => {
                // Executes at commit (paper §IV-E): the value must be
                // ready, then the write occupies commit for any
                // bank-conflict cycles beyond the first (a conflict-free
                // write retires within its commit slot like a normal
                // buffered store).
                self.stats.qz_accesses += 1;
                (
                    ready_at,
                    StallCat::Quetzal,
                    d.qz_latency.saturating_sub(1),
                    ready_at,
                )
            }
            InstClass::Halt => (ready_at, StallCat::Frontend, 0, ready_at),
        };

        self.set_defs(uop, completion, cat);
        let (commit_at, commit_gap) = self.commit(completion, cat, extra_commit);
        if P::ENABLED {
            let ev = RetireEvent {
                pc: d.pc,
                class,
                fu: uop.fu,
                dispatch: dispatched,
                ops_ready,
                issue,
                complete: completion,
                commit: commit_at,
                commit_gap,
                extra_commit,
                cat,
                dep_cat: ops_cat,
                mem: MemLevelMix {
                    l1_hits: self.stats.l1_hits - pr_l1h,
                    l1_misses: self.stats.l1_misses - pr_l1m,
                    l2_misses: self.stats.l2_misses - pr_l2m,
                },
                store_ring_floor: pr_store_floor,
                store_replay: pr_store_replay,
                qz_port_wait: pr_qz_wait,
                qz_latency: d.qz_latency,
                mispredicted: self.stats.mispredicts > pr_misp,
            };
            self.probe.on_retire(&ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal_isa::*;

    fn engine() -> OooTiming {
        let mut t = OooTiming::new(CoreConfig::a64fx_like());
        t.begin_run();
        t
    }

    /// Decode-and-retire shorthand for tests built around raw
    /// `Instruction` values.
    fn retire(t: &mut OooTiming, inst: &Instruction, d: &DynInst) {
        ExecSink::retire(t, &MicroOp::decode(inst), d);
    }

    fn dyn_at(pc: usize) -> DynInst {
        DynInst {
            pc,
            ..DynInst::default()
        }
    }

    #[test]
    fn independent_alus_pipeline() {
        let mut t = engine();
        // 8 independent scalar adds on 2 ALUs, width 4: should take only
        // a handful of cycles.
        for pc in 0..8 {
            let inst = Instruction::MovImm {
                rd: XReg::new(pc as u8),
                imm: 1,
            };
            retire(&mut t, &inst, &dyn_at(pc));
        }
        let s = t.end_run();
        assert_eq!(s.instructions, 8);
        assert!(s.cycles <= 10, "cycles = {}", s.cycles);
    }

    #[test]
    fn dependent_chain_serialises() {
        let mut t = engine();
        let inst = Instruction::AluRI {
            op: SAluOp::Add,
            rd: X0,
            rn: X0,
            imm: 1,
        };
        for pc in 0..100 {
            retire(&mut t, &inst, &dyn_at(pc));
        }
        let s = t.end_run();
        assert!(s.cycles >= 100, "chain must be ≥1 cycle/inst: {}", s.cycles);
    }

    #[test]
    fn gather_l1_hit_costs_about_twenty_cycles() {
        let mut t = engine();
        // Warm the line.
        let warm = Instruction::Load {
            rd: X1,
            rn: X0,
            offset: 0,
            size: MemSize::B8,
        };
        let mut d = dyn_at(0);
        d.mem.push((0x1000, 8));
        retire(&mut t, &warm, &d);
        let _ = t.end_run();

        t.begin_run();
        let gather = Instruction::VGather {
            vd: V0,
            rn: X0,
            idx: V1,
            pg: P0,
            esize: ElemSize::B64,
            msize: MemSize::B8,
            scale: 8,
        };
        let mut d = dyn_at(1);
        for i in 0..8u64 {
            d.mem.push((0x1000 + 8 * i, 8));
        }
        retire(&mut t, &gather, &d);
        let s = t.end_run();
        assert!(
            (16..=28).contains(&s.cycles),
            "L1-hit gather should cost ~19-22 cycles, got {}",
            s.cycles
        );
        assert_eq!(s.mem_requests, 8, "one request per lane");
        assert_eq!(s.indexed_ops, 1);
    }

    #[test]
    fn qz_read_beats_gather() {
        let mut t = engine();
        let qzload = Instruction::QzLoad {
            vd: V0,
            idx: V1,
            sel: QBufSel::Q0,
            pg: P0,
        };
        let mut d = dyn_at(0);
        d.qz_latency = 2;
        retire(&mut t, &qzload, &d);
        let s = t.end_run();
        assert!(s.cycles <= 4, "qzload is 2 cycles + commit: {}", s.cycles);
        assert_eq!(s.qz_accesses, 1);
        assert_eq!(s.mem_requests, 0, "no cache traffic");
    }

    #[test]
    fn qz_write_serialises_commit() {
        let mut t = engine();
        let st = Instruction::QzStore {
            val: V0,
            idx: V1,
            sel: QBufSel::Q0,
            pg: P0,
        };
        let mut d = dyn_at(0);
        d.qz_latency = 8; // worst-case bank conflicts
        retire(&mut t, &st, &d);
        let s = t.end_run();
        // Seven conflict cycles beyond the ordinary commit slot.
        assert!(s.cycles >= 7, "cycles = {}", s.cycles);
        assert!(s.stall_cycles[StallCat::Quetzal.index()] >= 7);
    }

    #[test]
    fn mispredicted_branch_pays_penalty() {
        let mut t = engine();
        let br = Instruction::Branch {
            cond: BranchCond::Eq,
            rn: X0,
            rm: X1,
            target: 0,
        };
        // Alternating taken/not-taken defeats the 2-bit predictor.
        for pc in 0..40 {
            let mut d = dyn_at(0); // same pc -> same predictor entry
            d.taken = pc % 2 == 0;
            retire(&mut t, &br, &d);
        }
        let s = t.end_run();
        assert!(s.mispredicts > 10, "mispredicts = {}", s.mispredicts);
        assert!(
            s.cycles > 40 * 2,
            "mispredict penalties must show: {}",
            s.cycles
        );
    }

    #[test]
    fn rob_backpressure_limits_overlap() {
        // A long-latency cold miss at the head plus many independent adds:
        // with a 128-entry ROB, at most ~128 instructions can slip past.
        let mut t = engine();
        let load = Instruction::Load {
            rd: X1,
            rn: X0,
            offset: 0,
            size: MemSize::B8,
        };
        let mut d = dyn_at(0);
        d.mem.push((1 << 30, 8));
        retire(&mut t, &load, &d);
        // 1000 independent single-cycle instructions.
        for pc in 1..=1000 {
            retire(&mut t, &Instruction::MovImm { rd: X2, imm: 0 }, &dyn_at(pc));
        }
        let s = t.end_run();
        // Ideal would be 1000/4 = 250 cycles; the cold miss (≥120) must
        // not be fully hidden because commit is in-order.
        assert!(s.stall_cycles[StallCat::Memory.index()] >= 100);
        assert!(s.cycles >= 250);
    }

    #[test]
    fn million_store_run_holds_peak_memory_flat() {
        // The forwarding window is a fixed-capacity ring and the
        // predictor a fixed table: no structure in the timing engine may
        // grow with dynamic instruction count. Retire a million stores
        // and check every bounded structure is at (not beyond) its cap.
        let mut t = engine();
        let st = Instruction::Store {
            rs: X1,
            rn: X0,
            offset: 0,
            size: MemSize::B8,
        };
        let uop = MicroOp::decode(&st);
        let mut d = DynInst::default();
        for i in 0..1_000_000u64 {
            d.reset((i % 64) as usize);
            d.mem.push((0x4000 + (i % 512) * 8, 8));
            t.retire(&uop, &d);
        }
        assert_eq!(t.store_buffer.len(), t.cfg.store_ring_slots);
        assert!(
            t.store_buffer.index_node_count() <= 2 * t.cfg.store_ring_slots,
            "forwarding index bounded by the live window"
        );
        assert!(t.rob.len() <= t.cfg.rob_size, "rob bounded");
        assert_eq!(t.bpred.len(), BPRED_ENTRIES);
        assert!(
            d.mem.capacity() <= 4,
            "recycled DynInst must not accumulate accesses (capacity {})",
            d.mem.capacity()
        );
        let s = t.end_run();
        assert_eq!(s.instructions, 1_000_000);
        assert_eq!(s.mem_requests, 1_000_000);
    }

    #[test]
    fn store_window_keeps_newest_entries() {
        let depth = CoreConfig::a64fx_like().store_ring_slots;
        let mut r = StoreIndex::new(depth);
        for i in 0..(depth as u64 * 3) {
            r.push(i, 8, i + 100);
        }
        assert_eq!(r.entries().len(), depth);
        let min_addr = (depth as u64) * 2;
        assert!(
            r.entries().iter().all(|&(a, _, _)| a >= min_addr),
            "window must hold exactly the newest {depth} stores"
        );
    }

    #[test]
    fn stall_attribution_sums_to_cycles() {
        let mut t = engine();
        for pc in 0..50 {
            let mut d = dyn_at(pc);
            d.mem.push((0x2000 + (pc as u64) * 8, 8));
            retire(
                &mut t,
                &Instruction::Load {
                    rd: X1,
                    rn: X0,
                    offset: 0,
                    size: MemSize::B8,
                },
                &d,
            );
        }
        let s = t.end_run();
        let total: u64 = s.stall_cycles.iter().sum();
        assert_eq!(total, s.cycles);
    }

    #[test]
    fn memory_taint_propagates_to_dependents() {
        let mut t = engine();
        // Cold load into X1, then a long chain of adds consuming X1.
        let load = Instruction::Load {
            rd: X1,
            rn: X0,
            offset: 0,
            size: MemSize::B8,
        };
        let mut d = dyn_at(0);
        d.mem.push((1 << 25, 8));
        retire(&mut t, &load, &d);
        let add = Instruction::AluRR {
            op: SAluOp::Add,
            rd: X1,
            rn: X1,
            rm: X1,
        };
        retire(&mut t, &add, &dyn_at(1));
        let s = t.end_run();
        // The add's commit gap must be attributed to memory.
        assert!(s.stall_cycles[StallCat::Memory.index()] > 0);
    }
}
