//! Runs the calibration-sensitivity ablations (see the experiment
//! module docs; not a paper figure).
fn main() {
    let scale = quetzal_bench::scale_from_env();
    println!("{}", quetzal_bench::experiments::ablations::run(scale));
}
