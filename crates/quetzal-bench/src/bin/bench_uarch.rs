//! Simulator-throughput benchmark: emits the `BENCH_uarch.json`
//! perf-trajectory document on stdout (per-kernel simulated MIPS and
//! wall-clock over the Fig. 3 / Fig. 4 kernels, median of 15 samples)
//! and the human-readable table on stderr. `scripts/ci.sh` redirects
//! stdout to `BENCH_uarch.json` at the repository root.
fn main() {
    let scale = quetzal_bench::scale_from_env();
    eprintln!("measuring simulator throughput at scale {scale} ...");
    let results = quetzal_bench::throughput::measure_fig_kernels(scale);
    eprint!("{}", quetzal_bench::throughput::summary_table(&results));
    println!("{}", quetzal_bench::throughput::to_json(&results, scale));
}
