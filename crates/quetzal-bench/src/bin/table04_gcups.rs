//! Prints the accelerator GCUPS/mm² comparison (paper Table IV).
fn main() {
    let scale = quetzal_bench::scale_from_env();
    println!("{}", quetzal_bench::experiments::tables::table04(scale));
}
