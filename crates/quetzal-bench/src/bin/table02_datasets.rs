//! Prints the dataset characteristics (paper Table II).
fn main() {
    let scale = quetzal_bench::scale_from_env();
    println!("{}", quetzal_bench::experiments::tables::table02(scale));
}
