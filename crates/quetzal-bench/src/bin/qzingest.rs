//! `qzingest` — crash-safe genome-scale ingestion front-end.
//!
//! ```text
//! qzingest stage --dataset NAME --pairs N --out FILE [--seed S]
//! qzingest run   --input FILE --ckpt DIR [--output FILE]
//!                [--algo wfa|biwfa|ss|sw|nw] [--tier base|vec|quetzal|quetzal+c]
//!                [--alphabet dna|rna|protein] [--threshold N]
//!                [--shard N] [--chunk N] [--expect N]
//!                [--deadline-ms N] [--shard-insts N] [--retry-quarantined]
//!                [--heartbeat-ms N] [--quiet]
//!                [--crash-after-shard K] [--crash-mid-manifest K]
//! ```
//!
//! `stage` streams a Table II dataset's generated pairs into a pair
//! file — one pair in memory at a time, so any `--pairs` count stays
//! flat-memory. `run` streams that file (or any pair file) through the
//! sharded, checkpointed pipeline: kill it at any point and re-run the
//! same command against the same `--ckpt` directory to resume from the
//! last committed shard. The final `--output` report of a resumed run
//! is byte-identical to an uninterrupted run at any `QUETZAL_THREADS`.
//!
//! The `--crash-*` flags arm the crash-injection plan used by the CI
//! recovery smoke: the process dies with exit code 137 at the chosen
//! shard boundary or mid-manifest-write.

use quetzal::ingest::{self, pair_digest, CrashPlan, IngestConfig, ItemOutput, ShardDeadline};
use quetzal::{BatchRunner, MachineConfig, MachinePool};
use quetzal_algos::Tier;
use quetzal_bench::workloads::{try_simulate_pair_outcome, Algo, SEED};
use quetzal_genomics::fasta::PairReader;
use quetzal_genomics::{Alphabet, DatasetSpec};
use std::io::{BufReader, BufWriter, Write};
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: qzingest <stage|run>\n\
         \x20 stage: --dataset NAME --pairs N --out FILE [--seed S]\n\
         \x20 run:   --input FILE --ckpt DIR [--output FILE] [--algo A] [--tier T]\n\
         \x20        [--alphabet dna|rna|protein] [--threshold N] [--shard N] [--chunk N]\n\
         \x20        [--expect N] [--deadline-ms N] [--shard-insts N] [--retry-quarantined]\n\
         \x20        [--heartbeat-ms N] [--quiet] [--crash-after-shard K] [--crash-mid-manifest K]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("qzingest: {msg}");
    std::process::exit(1);
}

fn dataset_by_name(name: &str) -> DatasetSpec {
    match name {
        "100bp_1" => DatasetSpec::d100(),
        "250bp_1" => DatasetSpec::d250(),
        "10Kbp" => DatasetSpec::d10k(),
        "30Kbp" => DatasetSpec::d30k(),
        "10Kbp_hifi" => DatasetSpec::d10k_hifi(),
        "protein" => DatasetSpec::protein(),
        other => fail(&format!(
            "unknown dataset '{other}' (100bp_1|250bp_1|10Kbp|30Kbp|10Kbp_hifi|protein)"
        )),
    }
}

fn parse_algo(code: &str) -> Algo {
    match code {
        "wfa" => Algo::Wfa,
        "biwfa" => Algo::BiWfa,
        "ss" => Algo::Ss,
        "sw" => Algo::Sw,
        "nw" => Algo::Nw,
        other => fail(&format!("unknown algo '{other}'")),
    }
}

fn parse_tier(code: &str) -> Tier {
    match code {
        "base" => Tier::Base,
        "vec" => Tier::Vec,
        "quetzal" => Tier::Quetzal,
        "quetzal+c" => Tier::QuetzalC,
        other => fail(&format!("unknown tier '{other}'")),
    }
}

fn parse_alphabet(code: &str) -> Alphabet {
    match code {
        "dna" => Alphabet::Dna,
        "rna" => Alphabet::Rna,
        "protein" => Alphabet::Protein,
        other => fail(&format!("unknown alphabet '{other}'")),
    }
}

struct Options {
    dataset: String,
    pairs: u64,
    out: Option<PathBuf>,
    seed: u64,
    input: Option<PathBuf>,
    ckpt: Option<PathBuf>,
    output: Option<PathBuf>,
    algo: Algo,
    tier: Tier,
    alphabet: Alphabet,
    threshold: u32,
    shard: usize,
    chunk: usize,
    expect: Option<u64>,
    deadline_ms: Option<u64>,
    shard_insts: Option<u64>,
    retry_quarantined: bool,
    heartbeat_ms: u64,
    quiet: bool,
    crash_after_shard: Option<u64>,
    crash_mid_manifest: Option<u64>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            dataset: "100bp_1".to_string(),
            pairs: 64,
            out: None,
            seed: SEED,
            input: None,
            ckpt: None,
            output: None,
            algo: Algo::Ss,
            tier: Tier::QuetzalC,
            alphabet: Alphabet::Dna,
            threshold: 100,
            shard: 256,
            chunk: 32,
            expect: None,
            deadline_ms: None,
            shard_insts: None,
            retry_quarantined: false,
            heartbeat_ms: 2000,
            quiet: false,
            crash_after_shard: None,
            crash_mid_manifest: None,
        }
    }
}

fn next_arg(iter: &mut impl Iterator<Item = String>, flag: &str) -> String {
    iter.next()
        .unwrap_or_else(|| fail(&format!("{flag} needs an argument")))
}

fn num<T: std::str::FromStr>(iter: &mut impl Iterator<Item = String>, flag: &str) -> T {
    next_arg(iter, flag)
        .parse()
        .unwrap_or_else(|_| fail(&format!("{flag} needs a number")))
}

fn parse_options(mut args: impl Iterator<Item = String>) -> Options {
    let mut opts = Options::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dataset" => opts.dataset = next_arg(&mut args, "--dataset"),
            "--pairs" => opts.pairs = num(&mut args, "--pairs"),
            "--out" => opts.out = Some(PathBuf::from(next_arg(&mut args, "--out"))),
            "--seed" => {
                let v = next_arg(&mut args, "--seed");
                opts.seed = v
                    .strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16).ok())
                    .unwrap_or_else(|| v.parse().ok())
                    .unwrap_or_else(|| fail("--seed needs a number"));
            }
            "--input" => opts.input = Some(PathBuf::from(next_arg(&mut args, "--input"))),
            "--ckpt" => opts.ckpt = Some(PathBuf::from(next_arg(&mut args, "--ckpt"))),
            "--output" => opts.output = Some(PathBuf::from(next_arg(&mut args, "--output"))),
            "--algo" => opts.algo = parse_algo(&next_arg(&mut args, "--algo")),
            "--tier" => opts.tier = parse_tier(&next_arg(&mut args, "--tier")),
            "--alphabet" => opts.alphabet = parse_alphabet(&next_arg(&mut args, "--alphabet")),
            "--threshold" => opts.threshold = num(&mut args, "--threshold"),
            "--shard" => opts.shard = num(&mut args, "--shard"),
            "--chunk" => opts.chunk = num(&mut args, "--chunk"),
            "--expect" => opts.expect = Some(num(&mut args, "--expect")),
            "--deadline-ms" => opts.deadline_ms = Some(num(&mut args, "--deadline-ms")),
            "--shard-insts" => opts.shard_insts = Some(num(&mut args, "--shard-insts")),
            "--retry-quarantined" => opts.retry_quarantined = true,
            "--heartbeat-ms" => opts.heartbeat_ms = num(&mut args, "--heartbeat-ms"),
            "--quiet" => opts.quiet = true,
            "--crash-after-shard" => {
                opts.crash_after_shard = Some(num(&mut args, "--crash-after-shard"))
            }
            "--crash-mid-manifest" => {
                opts.crash_mid_manifest = Some(num(&mut args, "--crash-mid-manifest"))
            }
            "--help" | "-h" => usage(),
            other => fail(&format!("unknown argument '{other}'")),
        }
    }
    opts
}

/// Streams `--pairs` generated pairs into a pair file, one pair in
/// memory at a time.
fn run_stage(opts: &Options) {
    let spec = dataset_by_name(&opts.dataset);
    let out = opts
        .out
        .as_ref()
        .unwrap_or_else(|| fail("stage needs --out FILE"));
    let file = std::fs::File::create(out)
        .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", out.display())));
    let mut w = BufWriter::new(file);
    for pair in spec.pair_stream(opts.seed).take(opts.pairs as usize) {
        writeln!(w, "{}\t{}", pair.pattern, pair.text)
            .unwrap_or_else(|e| fail(&format!("writing {}: {e}", out.display())));
    }
    w.flush()
        .unwrap_or_else(|e| fail(&format!("flushing {}: {e}", out.display())));
    eprintln!(
        "qzingest: staged {} pair(s) of {} into {}",
        opts.pairs,
        spec.name,
        out.display()
    );
}

fn run_ingest(opts: &Options) {
    let input = opts
        .input
        .as_ref()
        .unwrap_or_else(|| fail("run needs --input FILE"));
    let ckpt = opts
        .ckpt
        .as_ref()
        .unwrap_or_else(|| fail("run needs --ckpt DIR"));
    let config = IngestConfig {
        shard_items: opts.shard.max(1),
        chunk_items: opts.chunk.max(1),
        deadline: ShardDeadline {
            wall: opts.deadline_ms.map(Duration::from_millis),
            instructions: opts.shard_insts,
        },
        heartbeat: if opts.quiet {
            None
        } else {
            Some(Duration::from_millis(opts.heartbeat_ms.max(1)))
        },
        expected_items: opts.expect,
        retry_quarantined: opts.retry_quarantined,
        crash: CrashPlan {
            after_shard: opts.crash_after_shard,
            mid_manifest: opts.crash_mid_manifest,
            exit_process: true,
        },
        ..IngestConfig::new(ckpt)
    };
    let file = std::fs::File::open(input)
        .unwrap_or_else(|e| fail(&format!("cannot open {}: {e}", input.display())));
    let source = PairReader::new(BufReader::new(file), opts.alphabet);
    let runner = BatchRunner::from_env();
    let pool = MachinePool::new(&MachineConfig::default(), runner.exec_mode());
    let (algo, alphabet, threshold, tier) = (opts.algo, opts.alphabet, opts.threshold, opts.tier);
    let summary = ingest::run_ingest(
        &config,
        &runner,
        &pool,
        source,
        pair_digest,
        |m, _g, pair| {
            let out = try_simulate_pair_outcome(m, algo, alphabet, threshold, pair, tier)?;
            Ok(ItemOutput {
                value: out.value,
                cycles: out.stats.cycles,
                instructions: out.stats.instructions,
            })
        },
        |_| {},
    )
    .unwrap_or_else(|e| fail(&e.to_string()));
    if let Some(output) = &opts.output {
        let bytes = ingest::concat_to_path(ckpt, summary.shards, output)
            .unwrap_or_else(|e| fail(&format!("assembling final output: {e}")));
        eprintln!(
            "qzingest: wrote {bytes} byte(s) to {} from {} shard(s)",
            output.display(),
            summary.shards
        );
    }
    let pool_stats = pool.stats();
    eprintln!(
        "qzingest: {} item(s) in {} shard(s) ({} resumed, {} quarantined, {} torn manifest(s)): \
         {} ok, {} failed, {} recovered | pool built {} quarantined {}",
        summary.items,
        summary.shards,
        summary.shards_resumed,
        summary.shards_quarantined,
        summary.manifests_torn,
        summary.ok,
        summary.failed,
        summary.recovered,
        pool_stats.built,
        pool_stats.quarantined,
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else { usage() };
    let opts = parse_options(args);
    match command.as_str() {
        "stage" => run_stage(&opts),
        "run" => run_ingest(&opts),
        _ => usage(),
    }
}
