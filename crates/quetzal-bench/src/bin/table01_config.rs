//! Prints the simulated system setup (paper Table I).
fn main() {
    println!("{}", quetzal_bench::experiments::tables::table01());
}
