//! Regenerates the paper's Fig. 4 (see the experiment module docs).
fn main() {
    let scale = quetzal_bench::scale_from_env();
    println!("{}", quetzal_bench::experiments::fig04::run(scale));
}
