//! Runs every experiment in sequence (tables + figures). Workload sizes
//! scale with the QUETZAL_SCALE environment variable.
//!
//! Experiment tables go to stdout and are deterministic (byte-identical
//! across hosts and `QUETZAL_THREADS` values). The simulator-throughput
//! summary — the same table `bench_uarch` measures for
//! `BENCH_uarch.json` — is wall-clock-dependent, so it goes to stderr,
//! as does the optional `--cpi-stacks` probed-replay summary (it is
//! deterministic too, but keeping stdout's byte-identity contract
//! independent of flags keeps the CI comparison simple).
fn main() {
    let cpi_stacks = std::env::args().skip(1).any(|a| a == "--cpi-stacks");
    let scale = quetzal_bench::scale_from_env();
    eprintln!("running all experiments at scale {scale} ...");
    for table in quetzal_bench::experiments::run_all(scale) {
        println!("{table}");
    }
    if cpi_stacks {
        eprint!("{}", quetzal_bench::trace::cpi_stacks_summary(scale));
    }
    let throughput = quetzal_bench::throughput::measure_fig_kernels(scale);
    eprint!("{}", quetzal_bench::throughput::summary_table(&throughput));
}
