//! Runs every experiment in sequence (tables + figures). Workload sizes
//! scale with the QUETZAL_SCALE environment variable.
fn main() {
    let scale = quetzal_bench::scale_from_env();
    eprintln!("running all experiments at scale {scale} ...");
    for table in quetzal_bench::experiments::run_all(scale) {
        println!("{table}");
    }
}
