//! Runs every experiment in sequence (tables + figures). Workload sizes
//! scale with the QUETZAL_SCALE environment variable.
//!
//! Experiment tables go to stdout and are deterministic (byte-identical
//! across hosts and `QUETZAL_THREADS` values). The simulator-throughput
//! summary — the same table `bench_uarch` measures for
//! `BENCH_uarch.json` — is wall-clock-dependent, so it goes to stderr.
fn main() {
    let scale = quetzal_bench::scale_from_env();
    eprintln!("running all experiments at scale {scale} ...");
    for table in quetzal_bench::experiments::run_all(scale) {
        println!("{table}");
    }
    let throughput = quetzal_bench::throughput::measure_fig_kernels(scale);
    eprint!("{}", quetzal_bench::throughput::summary_table(&throughput));
}
