//! `qz_align` — a small command-line aligner over the simulated QUETZAL
//! machine, for downstream users who want to drive it on their own
//! data.
//!
//! Usage:
//!   qz_align <pairs.tsv> [--algo wfa|biwfa|ss|nw] [--tier base|vec|qz|qzc]
//!            [--threshold E] [--protein]
//!
//! The input file holds one `pattern<TAB>text` pair per line (the
//! SneakySnake pair format; see `quetzal_genomics::fasta::read_pairs`).
//! Prints one line per pair (score or filter verdict) plus aggregate
//! simulated-cycle statistics.

use quetzal::{Machine, MachineConfig};
use quetzal_algos::biwfa::biwfa_sim;
use quetzal_algos::dp_sim::LinearCosts;
use quetzal_algos::nw::nw_sim;
use quetzal_algos::sneakysnake::ss_sim;
use quetzal_algos::wfa_sim::wfa_sim;
use quetzal_algos::Tier;
use quetzal_genomics::fasta::read_pairs;
use quetzal_genomics::Alphabet;
use std::io::BufReader;

fn usage() -> ! {
    eprintln!(
        "usage: qz_align <pairs.tsv> [--algo wfa|biwfa|ss|nw] \
         [--tier base|vec|qz|qzc] [--threshold E] [--protein]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut algo = "wfa".to_string();
    let mut tier = Tier::QuetzalC;
    let mut threshold = 10u32;
    let mut alphabet = Alphabet::Dna;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--algo" => algo = it.next().unwrap_or_else(|| usage()),
            "--tier" => {
                tier = match it.next().as_deref() {
                    Some("base") => Tier::Base,
                    Some("vec") => Tier::Vec,
                    Some("qz") => Tier::Quetzal,
                    Some("qzc") => Tier::QuetzalC,
                    _ => usage(),
                }
            }
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--protein" => alphabet = Alphabet::Protein,
            _ if path.is_none() && !arg.starts_with('-') => path = Some(arg),
            _ => usage(),
        }
    }
    let path = path.unwrap_or_else(|| usage());
    let file = std::fs::File::open(&path).unwrap_or_else(|e| {
        eprintln!("qz_align: cannot open {path}: {e}");
        std::process::exit(1)
    });
    let pairs = read_pairs(BufReader::new(file), alphabet).unwrap_or_else(|e| {
        eprintln!("qz_align: {e}");
        std::process::exit(1)
    });

    let mut machine = Machine::new(MachineConfig::default());
    let mut total_cycles = 0u64;
    let mut total_requests = 0u64;
    for (i, pair) in pairs.iter().enumerate() {
        let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
        let out = match algo.as_str() {
            "wfa" => wfa_sim(&mut machine, p, t, alphabet, tier).expect("wfa"),
            "biwfa" => biwfa_sim(&mut machine, p, t, alphabet, tier).expect("biwfa"),
            "ss" => ss_sim(&mut machine, p, t, alphabet, threshold, tier).expect("ss"),
            "nw" => nw_sim(&mut machine, p, t, LinearCosts::UNIT, tier).expect("nw"),
            _ => usage(),
        };
        total_cycles += out.stats.cycles;
        total_requests += out.stats.mem_requests;
        if algo == "ss" {
            let verdict = if out.value as u32 <= threshold {
                "accept"
            } else {
                "reject"
            };
            println!("pair {i}: bound {} -> {verdict}", out.value);
        } else {
            println!("pair {i}: score {}", out.value);
        }
    }
    eprintln!(
        "{} pairs, {algo}/{tier}: {total_cycles} simulated cycles, {total_requests} cache requests",
        pairs.len()
    );
}
