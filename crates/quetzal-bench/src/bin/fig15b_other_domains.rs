//! Regenerates the paper's Fig. 15b (see the experiment module docs).
fn main() {
    let scale = quetzal_bench::scale_from_env();
    println!("{}", quetzal_bench::experiments::fig15b::run(scale));
}
