//! Regenerates the paper's Fig. 14a (see the experiment module docs).
fn main() {
    let scale = quetzal_bench::scale_from_env();
    println!("{}", quetzal_bench::experiments::fig14a::run(scale));
}
