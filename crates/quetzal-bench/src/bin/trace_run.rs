//! Probed replay of one experiment kernel: CPI stack, per-class stall
//! matrix, hottest-static-instruction table, and (optionally) a Chrome
//! `trace_event` JSON file loadable in Perfetto / `chrome://tracing`.
//!
//! ```text
//! trace_run [ALGO] [TIER] [--dataset NAME] [--top N] [--chrome FILE]
//! ```
//!
//! `ALGO` is one of `wfa`, `biwfa`, `ss`, `sw`, `nw` (default `wfa`);
//! `TIER` one of `base`, `vec`, `quetzal`, `quetzal+c` (default `vec`).
//! `--dataset` selects a Table II dataset by name prefix (default the
//! first short-read set). Workload sizes scale with `QUETZAL_SCALE`.
//!
//! All analysis goes to stdout and is deterministic. The emitted
//! Chrome JSON is validated with the crate's own strict parser before
//! it is written, so a file on disk is always loadable.

use std::process::ExitCode;

use quetzal::MachineConfig;
use quetzal_algos::Tier;
use quetzal_bench::trace::{hottest_table, kernel_label, trace_kernel};
use quetzal_bench::workloads::{table2_workloads, Algo, Workload};
use quetzal_trace::{chrome, json, CpiStack, RecordingProbe};

struct Args {
    algo: Algo,
    tier: Tier,
    dataset: Option<String>,
    top: usize,
    chrome_out: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!("usage: trace_run [wfa|biwfa|ss|sw|nw] [base|vec|quetzal|quetzal+c]");
    eprintln!("                 [--dataset NAME] [--top N] [--chrome FILE]");
    ExitCode::FAILURE
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        algo: Algo::Wfa,
        tier: Tier::Vec,
        dataset: None,
        top: 10,
        chrome_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "wfa" => args.algo = Algo::Wfa,
            "biwfa" => args.algo = Algo::BiWfa,
            "ss" => args.algo = Algo::Ss,
            "sw" => args.algo = Algo::Sw,
            "nw" => args.algo = Algo::Nw,
            "base" => args.tier = Tier::Base,
            "vec" => args.tier = Tier::Vec,
            "quetzal" => args.tier = Tier::Quetzal,
            "quetzal+c" | "quetzalc" => args.tier = Tier::QuetzalC,
            "--dataset" => args.dataset = Some(it.next().ok_or_else(usage)?),
            "--top" => {
                args.top = it.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?;
            }
            "--chrome" => args.chrome_out = Some(it.next().ok_or_else(usage)?),
            _ => return Err(usage()),
        }
    }
    Ok(args)
}

fn pick_workload(dataset: Option<&str>, scale: f64) -> Option<Workload> {
    let workloads = table2_workloads(scale);
    match dataset {
        Some(prefix) => workloads.into_iter().find(|w| {
            w.spec
                .name
                .to_lowercase()
                .starts_with(&prefix.to_lowercase())
        }),
        None => workloads.into_iter().find(|w| !w.is_long()),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let scale = quetzal_bench::scale_from_env();
    let Some(wl) = pick_workload(args.dataset.as_deref(), scale) else {
        eprintln!("no Table II dataset matches {:?}", args.dataset);
        return ExitCode::FAILURE;
    };

    let cfg = MachineConfig::default();
    let (probe, stats) = trace_kernel(
        &cfg,
        args.algo,
        &wl,
        args.tier,
        RecordingProbe::DEFAULT_CAPACITY,
    );
    if !probe.audit_failures().is_empty() {
        eprintln!("stall-accounting audit FAILED:");
        for f in probe.audit_failures() {
            eprintln!("  {f}");
        }
        return ExitCode::FAILURE;
    }

    let label = kernel_label(args.algo, &wl, args.tier);
    println!(
        "traced {label}: {} pairs, {} runs, {} instructions, {} cycles",
        wl.pairs.len(),
        probe.runs(),
        stats.instructions,
        stats.cycles
    );
    println!();
    let stack = CpiStack::from_probe(&label, &probe);
    print!("{}", stack.render());
    println!();
    println!("stalls by instruction class:");
    print!("{}", stack.render_by_class());
    println!();
    println!("hottest static instructions (top {}):", args.top);
    print!("{}", hottest_table(&probe, args.top));

    if let Some(path) = args.chrome_out {
        let rendered = chrome::render(&probe);
        if let Err(e) = json::Value::parse(&rendered) {
            eprintln!("internal error: emitted Chrome JSON does not parse: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!();
        println!(
            "wrote Chrome trace to {path} ({} events in ring, {} dropped) — load in Perfetto or chrome://tracing",
            probe.events().count(),
            probe.dropped()
        );
    }
    ExitCode::SUCCESS
}
