//! Static verification gate over every in-tree kernel.
//!
//! Installs the ISA-level build observer
//! ([`quetzal_isa::set_build_observer`]), replays the full experiment
//! grid (`experiments::run_all` at `QUETZAL_SCALE`), and runs
//! `quetzal-verify` over every program the replay built — the
//! tables, the fig03–fig15 figures, and through them every
//! `quetzal-algos` kernel tier the experiments stage. Experiment
//! tables are swallowed; what this binary reports is the *verifier's*
//! view of the kernels.
//!
//! Exit status is the CI contract: `0` iff every collected program
//! verified fully `Clean`. A warning is a failure here on purpose —
//! in-tree kernels are held to the strictest bar the verifier has, so
//! any regression (an undefined read, an unprovable QBUFFER index, a
//! config conflict) shows up as a red build, with the diagnostics
//! printed next to the kernel that caused them.
//!
//! Usage: `qzverify [--verbose]`
//! - `--verbose` prints every diagnostic of every program, clean or
//!   not, instead of only the offenders.

use std::collections::BTreeMap;
use std::sync::Mutex;

use quetzal::verify::{self, Verdict};
use quetzal_isa::{set_build_observer, Program};

/// Every program built during the grid replay, in build order.
static COLLECTED: Mutex<Vec<Program>> = Mutex::new(Vec::new());

fn main() {
    let verbose = std::env::args()
        .skip(1)
        .any(|a| a == "--verbose" || a == "-v");
    let installed = set_build_observer(|program| {
        COLLECTED
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(program.clone());
    });
    assert!(installed, "first observer in the process");

    let scale = quetzal_bench::scale_from_env();
    eprintln!("qzverify: replaying the experiment grid at scale {scale} to collect kernels ...");
    let tables = quetzal_bench::experiments::run_all(scale);
    let programs = std::mem::take(&mut *COLLECTED.lock().unwrap_or_else(|e| e.into_inner()));
    eprintln!(
        "qzverify: {} experiments staged {} program builds",
        tables.len(),
        programs.len()
    );

    // Verify every build, aggregated per kernel name. A kernel that is
    // rebuilt per workload size is verified per build (the images can
    // differ), but reported once with its worst verdict.
    struct Row {
        builds: usize,
        worst: Verdict,
        reports: Vec<verify::Report>,
    }
    let mut rows: BTreeMap<String, Row> = BTreeMap::new();
    for program in &programs {
        let report = verify::verify(program);
        let verdict = report.verdict();
        let row = rows.entry(program.name().to_string()).or_insert(Row {
            builds: 0,
            worst: Verdict::Clean,
            reports: Vec::new(),
        });
        row.builds += 1;
        row.worst = row.worst.max(verdict);
        if verdict != Verdict::Clean || verbose {
            row.reports.push(report);
        }
    }

    let mut failed = 0usize;
    for (name, row) in &rows {
        let tag = match row.worst {
            Verdict::Clean => "clean",
            Verdict::Warnings => "WARNINGS",
            Verdict::Fatal => "FATAL",
        };
        println!(
            "{tag:>8}  {name} ({} build{})",
            row.builds,
            if row.builds == 1 { "" } else { "s" }
        );
        if row.worst != Verdict::Clean {
            failed += 1;
        }
        for report in &row.reports {
            if report.is_empty() && !verbose {
                continue;
            }
            for line in report.to_string().lines() {
                println!("          {line}");
            }
        }
    }
    println!(
        "qzverify: {} kernels, {} builds, {} non-clean",
        rows.len(),
        programs.len(),
        failed
    );
    if failed > 0 {
        eprintln!("qzverify: FAILED — {failed} kernel(s) did not verify Clean");
        std::process::exit(1);
    }
}
