//! OoO design-space sweep: dispatch/commit width × QBUFFER read ports ×
//! ROB size × store-window depth (72 points), WFA + SneakySnake on the
//! `100bp_1` dataset at the QUETZAL tier.
//!
//! The table goes to stdout and is deterministic (byte-identical across
//! hosts and `QUETZAL_THREADS` values — all cells are simulated-cycle
//! ratios). `--json PATH` additionally writes the machine-readable
//! artifact. Workload sizes scale with `QUETZAL_SCALE`; `scripts/ci.sh`
//! smokes the full grid at reduced scale.
fn main() {
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => {
                    eprintln!("usage: design_space [--json PATH]");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("usage: design_space [--json PATH] (unknown argument `{other}`)");
                std::process::exit(2);
            }
        }
    }
    let scale = quetzal_bench::scale_from_env();
    let points = quetzal_bench::experiments::design_space::grid();
    eprintln!(
        "sweeping {} design points at scale {scale} ...",
        points.len()
    );
    let results = quetzal_bench::experiments::design_space::sweep_points(scale, &points);
    print!(
        "{}",
        quetzal_bench::experiments::design_space::table(&results)
    );
    if let Some(path) = json_path {
        let json = quetzal_bench::experiments::design_space::to_json(&results, scale);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("FAIL: writing {path}: {e}");
            std::process::exit(1);
        }
    }
}
