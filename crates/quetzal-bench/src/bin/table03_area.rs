//! Prints the area/power model results (paper Table III).
fn main() {
    println!("{}", quetzal_bench::experiments::tables::table03());
}
