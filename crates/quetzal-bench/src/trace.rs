//! Probed kernel replay: CPI stacks, hot-site tables and Chrome traces
//! for the experiment kernels.
//!
//! This module reruns exactly the kernels the experiment tables measure
//! — same [`simulate_pair`] staging, windowing and thresholds — on a
//! `Machine<RecordingProbe>`, and renders what the probe saw. By the
//! probe-neutrality invariant (DESIGN.md §"Pipeline observability";
//! pinned by `tests/probe_neutrality.rs`) the replay's `RunStats` are
//! bit-identical to the unprobed experiment runs, so a CPI stack
//! printed here decomposes precisely the cycle counts the tables
//! report.
//!
//! Replay is intentionally serial: one probed machine, pairs in order,
//! with a [`Machine::reset`] between pairs — the pooled batch runner's
//! fresh-machine-per-shard timing, reproduced on a single machine so
//! one probe aggregates the whole kernel.

use crate::workloads::{simulate_pair, table2_workloads, Algo, Workload};
use quetzal::uarch::RunStats;
use quetzal::{Machine, MachineConfig};
use quetzal_algos::Tier;
use quetzal_trace::{CpiStack, RecordingProbe};

/// Label for one traced kernel, e.g. `wfa/100bp_1/vec`.
pub fn kernel_label(algo: Algo, wl: &Workload, tier: Tier) -> String {
    let algo = match algo {
        Algo::Wfa => "wfa",
        Algo::BiWfa => "biwfa",
        Algo::Ss => "ss",
        Algo::Sw => "sw",
        Algo::Nw => "nw",
    };
    format!("{algo}/{}/{tier}", wl.spec.name).to_lowercase()
}

/// Replays `algo` at `tier` over every pair of the workload on one
/// probed machine and returns the probe plus the merged statistics.
///
/// # Panics
///
/// Panics if a simulation fails (experiment harness context).
pub fn trace_kernel(
    cfg: &MachineConfig,
    algo: Algo,
    wl: &Workload,
    tier: Tier,
    capacity: usize,
) -> (RecordingProbe, RunStats) {
    let mut machine = Machine::with_probe(cfg.clone(), RecordingProbe::new(capacity));
    let threshold = wl.ss_threshold();
    let alphabet = wl.spec.alphabet;
    let mut per_pair = Vec::with_capacity(wl.pairs.len());
    for pair in &wl.pairs {
        machine.reset();
        per_pair.push(simulate_pair(
            &mut machine,
            algo,
            alphabet,
            threshold,
            pair,
            tier,
        ));
    }
    let probe = std::mem::take(machine.probe_mut());
    (probe, RunStats::merged(&per_pair))
}

/// [`trace_kernel`] reduced to its CPI stack.
pub fn cpi_stack(cfg: &MachineConfig, algo: Algo, wl: &Workload, tier: Tier) -> CpiStack {
    let (probe, _) = trace_kernel(cfg, algo, wl, tier, RecordingProbe::DEFAULT_CAPACITY);
    let stack = CpiStack::from_probe(&kernel_label(algo, wl, tier), &probe);
    assert!(
        probe.audit_failures().is_empty(),
        "stall audit failed: {:?}",
        probe.audit_failures()
    );
    stack
}

/// Renders the top-`n` hottest static instructions of a probed replay
/// as an aligned table (stall cycles, executions, class, program, pc).
pub fn hottest_table(probe: &RecordingProbe, n: usize) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>6} {:>12} {:>10} {:>8}",
        "program", "pc", "stall cyc", "execs", "class"
    );
    for ((program, pc), e) in probe.hottest(n) {
        let name = probe.program_name(program).unwrap_or("?");
        let class = e.class.map(quetzal_trace::class_label).unwrap_or("?");
        let _ = writeln!(
            out,
            "{name:<24} {pc:>6} {:>12} {:>10} {class:>8}",
            e.stall_cycles, e.count
        );
    }
    out
}

/// The `run_all --cpi-stacks` summary: the paper's §II-G contrast on
/// the short-read grid. For each short-read dataset and modern
/// algorithm, the hand-vectorised tier (gathers cracked into
/// per-element L1D accesses) is set against `QUETZAL+C` (QBUFFER-fed),
/// with the memory-hierarchy and QUETZAL stall totals side by side —
/// the cycles the paper's 19–22-vs-2-cycle access-latency claim says
/// must move out of the memory bucket.
pub fn cpi_stacks_summary(scale: f64) -> String {
    use std::fmt::Write;
    let cfg = MachineConfig::default();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== CPI stacks (probed replay; VEC gathers vs QUETZAL+C QBUFFERs)"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>9} {:>7} {:>10} {:>9} {:>9}",
        "kernel", "cycles", "cpi", "base", "mem", "quetzal"
    );
    for wl in table2_workloads(scale).into_iter().filter(|w| !w.is_long()) {
        for algo in Algo::modern() {
            for tier in [Tier::Vec, Tier::QuetzalC] {
                let s = cpi_stack(&cfg, algo, &wl, tier);
                let _ = writeln!(
                    out,
                    "{:<22} {:>9} {:>7.3} {:>10} {:>9} {:>9}",
                    s.name,
                    s.cycles,
                    s.cpi(),
                    s.base_cycles,
                    s.memory_stall_cycles(),
                    s.quetzal_stall_cycles()
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::SEED;
    use quetzal_genomics::dataset::DatasetSpec;

    fn tiny_workload() -> Workload {
        Workload {
            spec: DatasetSpec::d100(),
            pairs: DatasetSpec::d100().generate_n(SEED, 1),
        }
    }

    #[test]
    fn traced_stats_match_unprobed_run() {
        let wl = tiny_workload();
        let cfg = MachineConfig::default();
        let (probe, stats) = trace_kernel(&cfg, Algo::Wfa, &wl, Tier::Vec, 1024);
        let unprobed = quetzal::uarch::RunStats::merged(&crate::workloads::run_algo_pairs(
            &quetzal::BatchRunner::new(1),
            &cfg,
            Algo::Wfa,
            &wl,
            Tier::Vec,
        ));
        assert_eq!(stats, unprobed, "probe must not perturb timing");
        assert!(probe.audit_failures().is_empty());
        assert_eq!(probe.instructions(), stats.instructions);
        assert_eq!(probe.cycles(), stats.cycles);
    }

    #[test]
    fn quetzal_tier_moves_memory_stalls_into_quetzal_bucket() {
        // The §II-G claim, as a testable inequality: on the same pairs,
        // QUETZAL+C spends a smaller share of its cycles in the memory
        // hierarchy than the gather-based VEC tier.
        let wl = tiny_workload();
        let cfg = MachineConfig::default();
        let vec = cpi_stack(&cfg, Algo::Wfa, &wl, Tier::Vec);
        let qzc = cpi_stack(&cfg, Algo::Wfa, &wl, Tier::QuetzalC);
        let share = |s: &CpiStack| s.memory_stall_cycles() as f64 / s.cycles.max(1) as f64;
        assert!(
            share(&qzc) < share(&vec),
            "memory-stall share: qzc {} !< vec {}",
            share(&qzc),
            share(&vec)
        );
        assert!(qzc.quetzal_stall_cycles() > 0);
    }

    #[test]
    fn hottest_table_lists_requested_rows() {
        let wl = tiny_workload();
        let cfg = MachineConfig::default();
        let (probe, _) = trace_kernel(&cfg, Algo::Ss, &wl, Tier::Vec, 1024);
        let table = hottest_table(&probe, 3);
        // Header + 3 rows.
        assert_eq!(table.lines().count(), 4);
    }
}
