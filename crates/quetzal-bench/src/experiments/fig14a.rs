//! Fig. 14a — reduction of memory requests issued to the cache
//! hierarchy: QUETZAL+C vs VEC. All accesses to the input sequences are
//! served by the QBUFFERs, so only the (prefetcher-friendly, strided)
//! wavefront/DP traffic remains.

use crate::report::{ratio, Table};
use crate::workloads::{prefetch, run_algo, table2_workloads, Algo, AlgoJob};
use quetzal::MachineConfig;
use quetzal_algos::Tier;

/// Runs the experiment.
pub fn run(scale: f64) -> Table {
    let mut t = Table::new(
        "Fig. 14a",
        "cache-hierarchy memory requests: VEC vs QUETZAL+C",
        &[
            "dataset",
            "algorithm",
            "VEC requests",
            "QZ+C requests",
            "reduction",
        ],
    );
    let cfg = MachineConfig::default();
    let workloads = table2_workloads(scale);
    let mut jobs: Vec<AlgoJob<'_>> = Vec::new();
    for wl in &workloads {
        for algo in Algo::modern() {
            for tier in [Tier::Vec, Tier::QuetzalC] {
                jobs.push((&cfg, algo, wl, tier));
            }
        }
    }
    prefetch(&jobs);
    for wl in workloads {
        for algo in Algo::modern() {
            let vec = run_algo(&cfg, algo, &wl, Tier::Vec);
            let qzc = run_algo(&cfg, algo, &wl, Tier::QuetzalC);
            t.row(&[
                wl.spec.name.to_string(),
                algo.to_string(),
                vec.mem_requests.to_string(),
                qzc.mem_requests.to_string(),
                ratio(vec.mem_requests as f64, qzc.mem_requests as f64),
            ]);
        }
    }
    t.note("paper: all sequence accesses move into the QBUFFERs, leaving strided DP traffic that the prefetcher handles");
    t
}
