//! Fig. 3 — performance benefit of vectorisation: hand-vectorised (VEC)
//! WFA and SS versus the scalar/autovectorised baseline, short vs long
//! reads. The paper reports 1.3× (short) and 2.5× (long) on average.

use crate::report::{ratio, Table};
use crate::workloads::{prefetch, run_algo, table2_workloads, Algo, AlgoJob};
use quetzal::MachineConfig;
use quetzal_algos::Tier;

/// Runs the experiment.
pub fn run(scale: f64) -> Table {
    let mut t = Table::new(
        "Fig. 3",
        "speedup of hand-vectorised (VEC) over the baseline",
        &[
            "dataset",
            "algorithm",
            "base cycles",
            "vec cycles",
            "speedup",
        ],
    );
    let cfg = MachineConfig::default();
    let workloads = table2_workloads(scale);
    let mut jobs: Vec<AlgoJob<'_>> = Vec::new();
    for wl in &workloads {
        for algo in [Algo::Wfa, Algo::Ss] {
            for tier in [Tier::Base, Tier::Vec] {
                jobs.push((&cfg, algo, wl, tier));
            }
        }
    }
    prefetch(&jobs);
    let mut short = Vec::new();
    let mut long = Vec::new();
    for wl in workloads {
        for algo in [Algo::Wfa, Algo::Ss] {
            let base = run_algo(&cfg, algo, &wl, Tier::Base);
            let vec = run_algo(&cfg, algo, &wl, Tier::Vec);
            let s = base.cycles as f64 / vec.cycles as f64;
            if wl.is_long() {
                long.push(s);
            } else {
                short.push(s);
            }
            t.row(&[
                wl.spec.name.to_string(),
                algo.to_string(),
                base.cycles.to_string(),
                vec.cycles.to_string(),
                ratio(base.cycles as f64, vec.cycles as f64),
            ]);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    t.note(format!(
        "measured geo-means: short {:.2}x, long {:.2}x (paper: 1.3x short, 2.5x long)",
        mean(&short),
        mean(&long)
    ));
    t.note("vectorisation pays off more for long reads, as in the paper; absolute factors differ because our baseline core model executes scalar code more aggressively than the A64FX");
    t
}
