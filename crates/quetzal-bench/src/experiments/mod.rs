//! One module per table/figure of the paper's evaluation.
//!
//! Every module exposes `run(scale: f64) -> Table` producing the same
//! rows/series the paper reports, plus notes comparing against the
//! paper's published values. `scale` multiplies workload sizes.

pub mod ablations;
pub mod design_space;
pub mod fig03;
pub mod fig04;
pub mod fig12;
pub mod fig13a;
pub mod fig13b;
pub mod fig14a;
pub mod fig14b;
pub mod fig15a;
pub mod fig15b;
pub mod tables;

use crate::report::Table;

/// Runs every experiment in paper order (tables first, then figures).
pub fn run_all(scale: f64) -> Vec<Table> {
    vec![
        tables::table01(),
        tables::table02(scale),
        tables::table03(),
        fig03::run(scale),
        fig04::run(scale),
        fig12::run(scale),
        fig13a::run(scale),
        fig13b::run(scale),
        fig14a::run(scale),
        fig14b::run(scale),
        fig15a::run(scale),
        fig15b::run(scale),
        tables::table04(scale),
        ablations::run(scale),
    ]
}
