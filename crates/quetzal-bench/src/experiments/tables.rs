//! Tables I–IV of the paper.

use crate::report::{num, Table};
use crate::workloads::{run_algo, table2_workloads, Algo, SEED};
use quetzal::accel::area::{area_report, table3};
use quetzal::uarch::CoreConfig;
use quetzal::{MachineConfig, QzConfig};
use quetzal_algos::Tier;
use quetzal_genomics::dataset::DatasetSpec;
use quetzal_genomics::distance::myers_distance;

/// Table I — the simulated system setup.
pub fn table01() -> Table {
    let c = CoreConfig::a64fx_like();
    let mut t = Table::new("Table I", "simulated system setup", &["parameter", "value"]);
    let mut kv = |k: &str, v: String| t.row(&[k.to_string(), v]);
    kv("CPU", "2.0 GHz, A64FX-like out-of-order core(s)".into());
    kv("Vector ISA", "SVE-like, 512-bit vector length".into());
    kv(
        "L1D",
        format!(
            "{} KB, {}-way, load-to-use = {} cycles, stride prefetcher",
            c.l1d.capacity / 1024,
            c.l1d.ways,
            c.l1d.latency
        ),
    );
    kv(
        "L2 (shared)",
        format!(
            "{} MB, {}-way, load-to-use = {} cycles, stride prefetcher",
            c.l2.capacity / (1024 * 1024),
            c.l2.ways,
            c.l2.latency
        ),
    );
    kv(
        "DRAM",
        format!(
            "HBM2-like: {} cycles latency, {} B/cycle bandwidth",
            c.mem.latency, c.mem.bytes_per_cycle
        ),
    );
    kv(
        "OoO core",
        format!(
            "{}-wide, ROB {}, {} scalar ALUs, {} vector pipes, {} load + {} store ports",
            c.dispatch_width, c.rob_size, c.scalar_alus, c.vector_fus, c.load_ports, c.store_ports
        ),
    );
    for qz in [QzConfig::QZ_1P, QzConfig::QZ_2P, QzConfig::QZ_8P] {
        kv(
            &qz.ports.to_string(),
            format!(
                "QBUFFERs: {} KB each, read latency = {} cycles",
                qz.kib_per_buffer,
                qz.read_latency()
            ),
        );
    }
    t
}

/// Table II — input dataset characteristics (with measured edit rates).
pub fn table02(scale: f64) -> Table {
    let mut t = Table::new(
        "Table II",
        "input dataset characteristics",
        &[
            "dataset",
            "read length",
            "pairs (nominal)",
            "pairs (simulated)",
            "mean edit distance",
        ],
    );
    for wl in table2_workloads(scale) {
        let d: f64 = wl
            .pairs
            .iter()
            .map(|p| myers_distance(p.pattern.as_bytes(), p.text.as_bytes()) as f64)
            .sum::<f64>()
            / wl.pairs.len() as f64;
        t.row(&[
            wl.spec.name.to_string(),
            wl.spec.read_len.to_string(),
            wl.spec.pairs.to_string(),
            wl.pairs.len().to_string(),
            num(d),
        ]);
    }
    let protein = DatasetSpec::protein();
    let pairs = protein.generate_n(SEED, 2);
    let d: f64 = pairs
        .iter()
        .map(|p| myers_distance(p.pattern.as_bytes(), p.text.as_bytes()) as f64)
        .sum::<f64>()
        / pairs.len() as f64;
    t.row(&[
        "protein".into(),
        protein.read_len.to_string(),
        protein.pairs.to_string(),
        "2".into(),
        num(d),
    ]);
    t.note("generated pairs (DESIGN.md substitution); simulated pair counts are capped like the paper's, scaled by QUETZAL_SCALE");
    t
}

/// Table III — area and power of the QUETZAL configurations (7 nm).
pub fn table03() -> Table {
    let mut t = Table::new(
        "Table III",
        "area and power of the QUETZAL configurations (7 nm model)",
        &[
            "config",
            "area (mm²)",
            "power (µW)",
            "% of A64FX core",
            "% of SoC",
        ],
    );
    for r in table3() {
        t.row(&[
            r.config.ports.to_string(),
            format!("{:.3}", r.area_mm2),
            format!("{:.0}", r.power_uw),
            format!("{:.2}%", r.core_overhead_pct),
            format!("{:.2}%", r.soc_overhead_pct),
        ]);
    }
    t.note(
        "published anchors: 0.013 / 0.026 / 0.048 / 0.097 mm²; QZ_8P = 746 µW and 1.41% of the SoC",
    );
    t
}

/// Table IV — throughput-per-area comparison against domain-specific
/// accelerators (published PGCUPS/mm² constants + our measured GCUPS).
pub fn table04(scale: f64) -> Table {
    let mut t = Table::new(
        "Table IV",
        "peak GCUPS/mm² vs domain-specific accelerators (7 nm-scaled)",
        &["design", "kind", "area (mm²)", "PGCUPS/mm²", "source"],
    );
    // Our measured DP-cell rate: banded SW under QUETZAL on the densest
    // short-read workload.
    let wl = &table2_workloads(scale)[1]; // 250bp
    let stats = run_algo(&MachineConfig::default(), Algo::Sw, wl, Tier::QuetzalC);
    let band = quetzal_algos::swg::default_band(wl.spec.read_len) as f64;
    let cells: f64 = wl.pairs.len() as f64 * wl.spec.read_len as f64 * band;
    let gcups = cells * 2.0 / stats.cycles as f64; // 2 GHz -> giga-cells/s
    let qz_area = area_report(QzConfig::QZ_8P).area_mm2;
    t.row(&[
        "QUETZAL".into(),
        "CPU ext.".into(),
        format!("{qz_area:.3}"),
        num(gcups / qz_area),
        "measured".into(),
    ]);
    t.row(&[
        "Core+QUETZAL".into(),
        "CPU".into(),
        "2.89".into(),
        num(gcups / 2.89),
        "measured".into(),
    ]);
    for (name, kind, area, pgcups) in [
        ("GenASM", "ASIC", 1.37, 1491.8),
        ("WFAsic (w/ backtrack)", "ASIC", 0.45, 136.1),
        ("GenDP", "ASIC", 5.82, 51.0),
        ("Darwin", "ASIC", 5.06, 685.6),
    ] {
        t.row(&[
            name.into(),
            kind.into(),
            format!("{area:.2}"),
            num(pgcups),
            "published".into(),
        ]);
    }
    t.note("published rows are the paper's Table IV constants; our GCUPS comes from the simulated banded-SW cell rate, so absolute comparability is indicative only");
    t
}
