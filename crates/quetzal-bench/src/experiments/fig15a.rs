//! Fig. 15a — throughput of 16-core QUETZAL vs GPU aligners (WFA-GPU,
//! GASAL2 on an NVIDIA A40).
//!
//! Paper observations: (1) GPUs win on short reads; (2) long reads
//! collapse GPU occupancy; (3) QUETZAL outperforms GASAL2 by 1.1× and
//! WFA-GPU by 2.7× on long reads; (4) the A40 spends >10× the area.

use crate::report::{num, Table};
use crate::workloads::{prefetch, run_algo, table2_workloads, Algo, AlgoJob, Workload, SW_WINDOW};
use quetzal::uarch::CoreConfig;
use quetzal::MachineConfig;
use quetzal_algos::swg::default_band;
use quetzal_algos::Tier;
use quetzal_genomics::distance::myers_distance;
use quetzal_gpu::{throughput_pairs_per_sec, GpuAligner, GpuModel};

const CORES: usize = 16;
const CLOCK_HZ: f64 = 2.0e9;

/// The surrogate 16-core configuration: one core with 1/16 of the
/// shared resources.
fn shared_cfg() -> MachineConfig {
    MachineConfig {
        core: CoreConfig::a64fx_like().share_of(CORES),
    }
}

/// Simulated 16-core CPU throughput in pairs/second: surrogate core
/// with 1/16 of the shared resources, times 16.
fn cpu_throughput(wl: &Workload, algo: Algo, tier: Tier) -> f64 {
    let cfg = shared_cfg();
    let stats = run_algo(&cfg, algo, wl, tier);
    // Banded SW simulates a window of long reads; scale its cost to the
    // full-length alignment (cells grow as len x band) so the pairs/s
    // number means the same thing as the GPU model's.
    let mut cycles = stats.cycles as f64;
    if algo == Algo::Sw && wl.spec.read_len > SW_WINDOW {
        let full = wl.spec.read_len as f64 * default_band(wl.spec.read_len) as f64;
        let windowed = SW_WINDOW as f64 * default_band(SW_WINDOW) as f64;
        cycles *= full / windowed;
    }
    CORES as f64 * wl.pairs.len() as f64 * CLOCK_HZ / cycles
}

/// Runs the experiment.
pub fn run(scale: f64) -> Table {
    let mut t = Table::new(
        "Fig. 15a",
        "alignment throughput (pairs/s): 16-core CPU vs NVIDIA A40 model",
        &[
            "dataset", "WFA VEC", "WFA QZ+C", "WFA-GPU", "SW VEC", "SW QZ+C", "GASAL2",
        ],
    );
    let gpu = GpuModel::a40();
    let cfg = shared_cfg();
    let workloads = table2_workloads(scale);
    let mut jobs: Vec<AlgoJob<'_>> = Vec::new();
    for wl in &workloads {
        for algo in [Algo::Wfa, Algo::Sw] {
            for tier in [Tier::Vec, Tier::QuetzalC] {
                jobs.push((&cfg, algo, wl, tier));
            }
        }
    }
    prefetch(&jobs);
    for wl in workloads {
        let d = wl
            .pairs
            .iter()
            .map(|p| myers_distance(p.pattern.as_bytes(), p.text.as_bytes()) as f64)
            .sum::<f64>()
            / wl.pairs.len() as f64;
        let n = wl.spec.read_len as f64;
        t.row(&[
            wl.spec.name.to_string(),
            num(cpu_throughput(&wl, Algo::Wfa, Tier::Vec)),
            num(cpu_throughput(&wl, Algo::Wfa, Tier::QuetzalC)),
            num(throughput_pairs_per_sec(&gpu, GpuAligner::WfaGpu, n, d)),
            num(cpu_throughput(&wl, Algo::Sw, Tier::Vec)),
            num(cpu_throughput(&wl, Algo::Sw, Tier::QuetzalC)),
            num(throughput_pairs_per_sec(&gpu, GpuAligner::Gasal2, n, d)),
        ]);
    }
    t.note("GPU columns come from the analytical occupancy model (DESIGN.md substitution); the crossover — GPUs ahead on short reads, QUETZAL ahead on long reads — is the reproduced shape");
    t.note(format!(
        "area: A40 = {} mm² vs core+QUETZAL = 2.89 mm² (>10x, paper observation 1)",
        GpuModel::a40().area_mm2
    ));
    t
}
