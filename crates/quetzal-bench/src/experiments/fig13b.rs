//! Fig. 13b — multicore scalability of QUETZAL+C (1–16 cores).
//!
//! Paper: scaling is near-linear while working sets fit the caches and
//! bends when off-chip bandwidth saturates (long reads). We use the
//! surrogate-core model of `quetzal-uarch::multicore`: each core runs a
//! fixed per-core workload against its 1/n share of the L2 and memory
//! bandwidth, so `speedup(n) = n × T(1) / T(n)` (weak-scaling form).

use crate::report::{num, Table};
use crate::workloads::{Workload, SEED};
use quetzal::uarch::CoreConfig;
use quetzal::{BatchRunner, Machine, MachineConfig};
use quetzal_algos::wfa_sim::wfa_sim;
use quetzal_algos::Tier;
use quetzal_genomics::dataset::DatasetSpec;

/// Core counts on the figure's x-axis.
const CORES: [usize; 5] = [1, 2, 4, 8, 16];

/// One surrogate core's cycles for the whole workload: one machine
/// (warm caches across pairs, like a real per-core run) with 1/n of
/// the shared resources.
fn per_core_cycles(cfg: CoreConfig, wl: &Workload) -> u64 {
    let mut machine = Machine::new(MachineConfig { core: cfg });
    let mut total = 0;
    for pair in &wl.pairs {
        let out = wfa_sim(
            &mut machine,
            pair.pattern.as_bytes(),
            pair.text.as_bytes(),
            wl.spec.alphabet,
            Tier::QuetzalC,
        )
        .expect("wfa sim");
        total += out.stats.cycles;
    }
    total
}

/// Runs the experiment.
pub fn run(scale: f64) -> Table {
    let mut t = Table::new(
        "Fig. 13b",
        "multicore scalability of WFA QUETZAL+C (speedup over 1 core)",
        &["dataset", "1", "2", "4", "8", "16"],
    );
    // A fixed per-core workload; memory pressure per core grows with n.
    let workloads: Vec<Workload> = [DatasetSpec::d100(), DatasetSpec::d30k()]
        .into_iter()
        .map(|spec| {
            let n_pairs = if spec.is_long() { 1 } else { 4 };
            let n_pairs = ((n_pairs as f64 * scale).round() as usize).max(1);
            Workload {
                pairs: spec.generate_n(SEED, n_pairs),
                spec,
            }
        })
        .collect();
    // Every (dataset, core-count) cell is an independent simulation —
    // batch all of them.
    let mut items: Vec<(usize, usize)> = Vec::new();
    for w in 0..workloads.len() {
        for n in CORES {
            items.push((w, n));
        }
    }
    let cycles = BatchRunner::from_env()
        .run(
            &items,
            || (),
            |(), _i, &(w, n)| per_core_cycles(CoreConfig::a64fx_like().share_of(n), &workloads[w]),
        )
        .expect("fig13b simulation panicked");
    for (w, wl) in workloads.iter().enumerate() {
        // share_of(1) is the unshared core, so the first cell is T(1).
        let t1 = cycles[w * CORES.len()];
        let mut row = vec![wl.spec.name.to_string()];
        for (j, n) in CORES.into_iter().enumerate() {
            let tn = cycles[w * CORES.len() + j];
            let speedup = n as f64 * t1 as f64 / tn as f64;
            row.push(num(speedup));
        }
        t.row(&row);
    }
    t.note("paper: near-linear for cache-resident working sets; long reads bend as shared L2 capacity and HBM2 bandwidth saturate");
    t
}
