//! Fig. 15b — QUETZAL beyond genomics: SpMV and histogram speedups
//! over their vectorised implementations (paper: 1.94× and 3.02×).

use crate::report::{ratio, Table};
use quetzal::{Machine, MachineConfig};
use quetzal_algos::histogram::histogram_sim;
use quetzal_algos::spmv::{spmv_sim, CsrMatrix};
use quetzal_algos::Tier;
use quetzal_genomics::dataset::SplitMix64;

/// Runs the experiment.
pub fn run(scale: f64) -> Table {
    let mut t = Table::new(
        "Fig. 15b",
        "other application domains: QUETZAL speedup over VEC",
        &["kernel", "size", "VEC cycles", "QUETZAL cycles", "speedup"],
    );

    // SpMV: dense rows so the staging amortises (typical sparse suites).
    let rows = ((60.0 * scale) as usize).max(20);
    let a = CsrMatrix::random(rows, 512, 160, 23);
    let mut rng = SplitMix64::new(24);
    let x: Vec<i64> = (0..512).map(|_| rng.below(1 << 12) as i64).collect();
    let mut mv = Machine::new(MachineConfig::default());
    let (vec_out, _) = spmv_sim(&mut mv, &a, &x, Tier::Vec).expect("spmv vec");
    let mut mq = Machine::new(MachineConfig::default());
    let (qz_out, _) = spmv_sim(&mut mq, &a, &x, Tier::Quetzal).expect("spmv qz");
    t.row(&[
        "SpMV".into(),
        format!("{} nnz", a.nnz()),
        vec_out.stats.cycles.to_string(),
        qz_out.stats.cycles.to_string(),
        ratio(vec_out.stats.cycles as f64, qz_out.stats.cycles as f64),
    ]);

    // Histogram.
    let n = ((4000.0 * scale) as usize).max(1000);
    let bins = 128;
    let vals: Vec<u8> = {
        let mut rng = SplitMix64::new(31);
        (0..n).map(|_| rng.below(bins as u64) as u8).collect()
    };
    let mut mv = Machine::new(MachineConfig::default());
    let (vec_out, _) = histogram_sim(&mut mv, &vals, bins, Tier::Vec).expect("hist vec");
    let mut mq = Machine::new(MachineConfig::default());
    let (qz_out, _) = histogram_sim(&mut mq, &vals, bins, Tier::Quetzal).expect("hist qz");
    t.row(&[
        "histogram".into(),
        format!("{n} elems / {bins} bins"),
        vec_out.stats.cycles.to_string(),
        qz_out.stats.cycles.to_string(),
        ratio(vec_out.stats.cycles as f64, qz_out.stats.cycles as f64),
    ]);

    t.note("paper: SpMV 1.94x, histogram 3.02x");
    t
}
