//! Fig. 15b — QUETZAL beyond genomics: SpMV and histogram speedups
//! over their vectorised implementations (paper: 1.94× and 3.02×).

use crate::report::{ratio, Table};
use quetzal::{BatchRunner, MachineConfig};
use quetzal_algos::histogram::histogram_sim;
use quetzal_algos::spmv::{spmv_sim, CsrMatrix};
use quetzal_algos::Tier;
use quetzal_genomics::dataset::SplitMix64;

/// Runs the experiment.
pub fn run(scale: f64) -> Table {
    let mut t = Table::new(
        "Fig. 15b",
        "other application domains: QUETZAL speedup over VEC",
        &["kernel", "size", "VEC cycles", "QUETZAL cycles", "speedup"],
    );

    // SpMV: dense rows so the staging amortises (typical sparse suites).
    let rows = ((60.0 * scale) as usize).max(20);
    let a = CsrMatrix::random(rows, 512, 160, 23);
    let mut rng = SplitMix64::new(24);
    let x: Vec<i64> = (0..512).map(|_| rng.below(1 << 12) as i64).collect();

    // Histogram.
    let n = ((4000.0 * scale) as usize).max(1000);
    let bins = 128;
    let vals: Vec<u8> = {
        let mut rng = SplitMix64::new(31);
        (0..n).map(|_| rng.below(bins as u64) as u8).collect()
    };

    // The four kernel/tier simulations are independent — batch them.
    let items = [
        ("spmv", Tier::Vec),
        ("spmv", Tier::Quetzal),
        ("hist", Tier::Vec),
        ("hist", Tier::Quetzal),
    ];
    let cycles = BatchRunner::from_env()
        .run_machines(
            &MachineConfig::default(),
            &items,
            |m, _i, &(kernel, tier)| match kernel {
                "spmv" => spmv_sim(m, &a, &x, tier).expect("spmv sim").0.stats.cycles,
                _ => {
                    histogram_sim(m, &vals, bins, tier)
                        .expect("hist sim")
                        .0
                        .stats
                        .cycles
                }
            },
        )
        .expect("fig15b simulation panicked");

    t.row(&[
        "SpMV".into(),
        format!("{} nnz", a.nnz()),
        cycles[0].to_string(),
        cycles[1].to_string(),
        ratio(cycles[0] as f64, cycles[1] as f64),
    ]);
    t.row(&[
        "histogram".into(),
        format!("{n} elems / {bins} bins"),
        cycles[2].to_string(),
        cycles[3].to_string(),
        ratio(cycles[2] as f64, cycles[3] as f64),
    ]);

    t.note("paper: SpMV 1.94x, histogram 3.02x");
    t
}
