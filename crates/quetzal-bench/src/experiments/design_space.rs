//! OoO design-space sweep — the Fig. 12 port ablation generalised to a
//! full core grid: dispatch/commit width × QBUFFER read ports × ROB
//! size × store-forwarding window depth.
//!
//! The event-driven timing wheel (see `quetzal-uarch/src/wheel.rs`)
//! makes the per-retire cost independent of the configured widths, so
//! the whole grid batches through one [`BatchRunner`] prefetch and
//! simulates in the time the old linear-scan engine needed for the
//! widest points alone. All numbers are simulated cycles — exact and
//! deterministic — so both the table and the JSON artifact are
//! byte-identical across hosts and `QUETZAL_THREADS` settings.
//!
//! The sweep is *not* part of `run_all` (whose stdout is a pinned CI
//! artifact); it has its own binary, `design_space`, which
//! `scripts/ci.sh` smokes at reduced scale.
//!
//! [`BatchRunner`]: quetzal::BatchRunner

use crate::report::{ratio, Table};
use crate::workloads::{prefetch, run_algo, table2_workloads, Algo, AlgoJob, Workload};
use quetzal::{CoreConfig, MachineConfig, QzConfig};
use quetzal_algos::Tier;

/// One core design point of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridPoint {
    /// Dispatch/commit width (FU pools scale proportionally, see
    /// [`CoreConfig::with_issue_width`]).
    pub width: u64,
    /// QUETZAL QBUFFER read-port configuration.
    pub qz: QzConfig,
    /// Reorder-buffer capacity.
    pub rob: usize,
    /// Store-to-load forwarding window depth.
    pub ring: usize,
}

impl GridPoint {
    /// The Table I default system as a grid point (4-wide, QZ_8P,
    /// 128-entry ROB, 40-entry store window) — the normalisation
    /// baseline of the sweep.
    pub fn baseline() -> GridPoint {
        let core = CoreConfig::a64fx_like();
        GridPoint {
            width: core.dispatch_width,
            qz: core.qz,
            rob: core.rob_size,
            ring: core.store_ring_slots,
        }
    }

    /// The [`CoreConfig`] this point describes.
    pub fn core(&self) -> CoreConfig {
        CoreConfig::a64fx_like()
            .with_issue_width(self.width)
            .with_rob(self.rob)
            .with_store_ring(self.ring)
            .with_qz(self.qz)
    }
}

/// Simulated cycles of one grid point over the sweep kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointResult {
    /// The design point.
    pub point: GridPoint,
    /// WFA (QUETZAL tier) cycles over the workload.
    pub wfa_cycles: u64,
    /// SneakySnake (QUETZAL tier) cycles over the workload.
    pub ss_cycles: u64,
}

/// The full sweep grid: 3 widths × 4 port configs × 3 ROB sizes ×
/// 2 store-window depths = 72 points, widths outermost (deterministic
/// order; the Table I baseline is a member).
pub fn grid() -> Vec<GridPoint> {
    let mut points = Vec::new();
    for &width in &[2u64, 4, 8] {
        for &qz in &[
            QzConfig::QZ_1P,
            QzConfig::QZ_2P,
            QzConfig::QZ_4P,
            QzConfig::QZ_8P,
        ] {
            for &rob in &[64usize, 128, 256] {
                for &ring in &[20usize, 40] {
                    points.push(GridPoint {
                        width,
                        qz,
                        rob,
                        ring,
                    });
                }
            }
        }
    }
    points
}

/// The sweep workload: the short-read `100bp_1` dataset (the Fig. 12
/// short-read column), scaled like every other experiment.
fn workload(scale: f64) -> Workload {
    table2_workloads(scale)
        .into_iter()
        .find(|w| w.spec.name == "100bp_1")
        .unwrap_or_else(|| panic!("table2 workloads are missing 100bp_1"))
}

/// Runs the given design points over the sweep kernels (WFA and
/// SneakySnake on `100bp_1`, QUETZAL tier), batching every simulation
/// through one [`prefetch`] so `QUETZAL_THREADS` machines fill the
/// grid in parallel.
pub fn sweep_points(scale: f64, points: &[GridPoint]) -> Vec<PointResult> {
    let cfgs: Vec<MachineConfig> = points
        .iter()
        .map(|p| MachineConfig { core: p.core() })
        .collect();
    let wl = workload(scale);
    let mut jobs: Vec<AlgoJob<'_>> = Vec::new();
    for cfg in &cfgs {
        for algo in [Algo::Wfa, Algo::Ss] {
            jobs.push((cfg, algo, &wl, Tier::Quetzal));
        }
    }
    prefetch(&jobs);
    points
        .iter()
        .zip(&cfgs)
        .map(|(&point, cfg)| PointResult {
            point,
            wfa_cycles: run_algo(cfg, Algo::Wfa, &wl, Tier::Quetzal).cycles,
            ss_cycles: run_algo(cfg, Algo::Ss, &wl, Tier::Quetzal).cycles,
        })
        .collect()
}

/// Runs the full 72-point grid.
pub fn sweep(scale: f64) -> Vec<PointResult> {
    sweep_points(scale, &grid())
}

/// The baseline point's result (panics if the baseline was not swept).
fn baseline_of(results: &[PointResult]) -> PointResult {
    let base = GridPoint::baseline();
    results
        .iter()
        .copied()
        .find(|r| r.point == base)
        .unwrap_or_else(|| panic!("sweep results are missing the Table I baseline point"))
}

/// Renders sweep results as a [`Table`], speedups normalised to the
/// Table I baseline point (values above `1.00x` are faster than the
/// default system).
pub fn table(results: &[PointResult]) -> Table {
    let mut t = Table::new(
        "Sweep",
        "OoO design-space sweep (100bp_1, QUETZAL tier; speedup vs Table I baseline)",
        &[
            "width", "qz", "rob", "ring", "WFA cyc", "SS cyc", "WFA", "SS",
        ],
    );
    let base = baseline_of(results);
    for r in results {
        t.row(&[
            r.point.width.to_string(),
            r.point.qz.ports.to_string(),
            r.point.rob.to_string(),
            r.point.ring.to_string(),
            r.wfa_cycles.to_string(),
            r.ss_cycles.to_string(),
            ratio(base.wfa_cycles as f64, r.wfa_cycles as f64),
            ratio(base.ss_cycles as f64, r.ss_cycles as f64),
        ]);
    }
    t.note(format!(
        "baseline: width {} / {} / rob {} / ring {} (Table I system)",
        base.point.width, base.point.qz.ports, base.point.rob, base.point.ring
    ));
    t
}

/// Renders sweep results as the `design_space.json` artifact (flat,
/// hand-emitted; no external JSON dependency).
pub fn to_json(results: &[PointResult], scale: f64) -> String {
    use std::fmt::Write;
    let base = baseline_of(results);
    let speedup = |b: u64, c: u64| {
        if c == 0 {
            0.0
        } else {
            b as f64 / c as f64
        }
    };
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"benchmark\": \"uarch-design-space\",");
    let _ = writeln!(out, "  \"scale\": {scale},");
    let _ = writeln!(out, "  \"workload\": \"100bp_1\",");
    let _ = writeln!(out, "  \"tier\": \"quetzal\",");
    let _ = writeln!(
        out,
        "  \"baseline\": {{\"width\": {}, \"qz\": \"{}\", \"rob\": {}, \"ring\": {}}},",
        base.point.width, base.point.qz.ports, base.point.rob, base.point.ring
    );
    let _ = writeln!(out, "  \"points\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"width\": {}, \"qz\": \"{}\", \"rob\": {}, \"ring\": {}, \
             \"wfa_cycles\": {}, \"ss_cycles\": {}, \
             \"wfa_speedup\": {:.4}, \"ss_speedup\": {:.4}}}{comma}",
            r.point.width,
            r.point.qz.ports,
            r.point.rob,
            r.point.ring,
            r.wfa_cycles,
            r.ss_cycles,
            speedup(base.wfa_cycles, r.wfa_cycles),
            speedup(base.ss_cycles, r.ss_cycles)
        );
    }
    let _ = writeln!(out, "  ]");
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_72_unique_points_and_contains_the_baseline() {
        let g = grid();
        assert_eq!(g.len(), 3 * 4 * 3 * 2);
        for (i, a) in g.iter().enumerate() {
            for b in &g[i + 1..] {
                assert_ne!(a, b, "duplicate grid point");
            }
        }
        assert!(g.contains(&GridPoint::baseline()));
    }

    #[test]
    fn baseline_matches_table1_system() {
        let b = GridPoint::baseline();
        assert_eq!(b.width, 4);
        assert_eq!(b.qz, QzConfig::QZ_8P);
        assert_eq!(b.rob, 128);
        assert_eq!(b.ring, 40);
        assert_eq!(b.core(), CoreConfig::a64fx_like());
    }

    #[test]
    fn grid_point_core_applies_every_axis() {
        let p = GridPoint {
            width: 8,
            qz: QzConfig::QZ_2P,
            rob: 256,
            ring: 20,
        };
        let core = p.core();
        assert_eq!(core.dispatch_width, 8);
        assert_eq!(core.commit_width, 8);
        assert_eq!(core.qz, QzConfig::QZ_2P);
        assert_eq!(core.rob_size, 256);
        assert_eq!(core.store_ring_slots, 20);
        assert_eq!(core.scalar_alus, 4, "FU pools scale with width");
    }

    fn fake(point: GridPoint, wfa: u64, ss: u64) -> PointResult {
        PointResult {
            point,
            wfa_cycles: wfa,
            ss_cycles: ss,
        }
    }

    #[test]
    fn table_and_json_normalise_to_the_baseline() {
        let base = GridPoint::baseline();
        let wide = GridPoint { width: 8, ..base };
        let results = [fake(base, 1000, 2000), fake(wide, 500, 1000)];
        let t = table(&results);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][6], "1.00x");
        assert_eq!(t.rows[1][6], "2.00x");
        let j = to_json(&results, 0.25);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(j.matches("\"width\"").count(), 3, "baseline + 2 points");
        assert!(j.contains("\"wfa_speedup\": 2.0000"));
        assert!(j.contains("\"qz\": \"QZ_8P\""));
        // Comma-separated entries, no trailing comma.
        assert!(j.contains("}\n  ]"));
    }

    #[test]
    fn tiny_sweep_is_deterministic_and_orders_results_like_the_points() {
        let base = GridPoint::baseline();
        let narrow = GridPoint {
            width: 2,
            qz: QzConfig::QZ_1P,
            rob: 64,
            ring: 20,
        };
        let points = [narrow, base];
        let a = sweep_points(0.25, &points);
        let b = sweep_points(0.25, &points);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].point, narrow);
        assert_eq!(a[1].point, base);
        assert!(a.iter().all(|r| r.wfa_cycles > 0 && r.ss_cycles > 0));
        // The starved point cannot beat the Table I system.
        assert!(a[0].wfa_cycles >= a[1].wfa_cycles);
    }
}
