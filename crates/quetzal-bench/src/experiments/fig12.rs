//! Fig. 12 — design-space exploration: relative performance of the
//! QZ_1P/2P/4P/8P port configurations, normalised to QZ_1P.
//! (Paper §VI: more ports cut QBUFFER read latency from 9 to 2 cycles.)

use crate::report::{ratio, Table};
use crate::workloads::{prefetch, run_algo, table2_workloads, Algo, AlgoJob};
use quetzal::{MachineConfig, QzConfig};
use quetzal_algos::Tier;

/// Runs the experiment.
pub fn run(scale: f64) -> Table {
    let mut t = Table::new(
        "Fig. 12",
        "QUETZAL performance vs number of QBUFFER read ports (normalised to QZ_1P)",
        &["dataset", "algorithm", "QZ_1P", "QZ_2P", "QZ_4P", "QZ_8P"],
    );
    let configs = [
        QzConfig::QZ_1P,
        QzConfig::QZ_2P,
        QzConfig::QZ_4P,
        QzConfig::QZ_8P,
    ];
    let machine_cfgs: Vec<MachineConfig> = configs
        .iter()
        .map(|&qz| MachineConfig::with_qz(qz))
        .collect();
    let workloads: Vec<_> = table2_workloads(scale)
        .into_iter()
        .filter(|w| w.spec.name == "100bp_1" || w.spec.name == "10Kbp")
        .collect();
    let mut jobs: Vec<AlgoJob<'_>> = Vec::new();
    for wl in &workloads {
        for algo in [Algo::Wfa, Algo::Ss] {
            for cfg in &machine_cfgs {
                jobs.push((cfg, algo, wl, Tier::Quetzal));
            }
        }
    }
    prefetch(&jobs);
    for wl in workloads {
        for algo in [Algo::Wfa, Algo::Ss] {
            let cycles: Vec<u64> = machine_cfgs
                .iter()
                .map(|cfg| run_algo(cfg, algo, &wl, Tier::Quetzal).cycles)
                .collect();
            let base = cycles[0] as f64;
            let mut row = vec![wl.spec.name.to_string(), algo.to_string()];
            row.extend(cycles.iter().map(|&c| ratio(base, c as f64)));
            t.row(&row);
        }
    }
    t.note("paper: performance rises monotonically with ports; QZ_8P is chosen for all other experiments");
    t
}
