//! Ablations of the design choices DESIGN.md calls out — not a paper
//! figure, but the sensitivity studies a reviewer would ask for.
//!
//! 1. **Gather crack overhead**: how much of the VEC tier's cost comes
//!    from the fixed per-gather cracking cost (§II-G) vs the per-element
//!    port stream. Sweeping it bounds how our calibration choice affects
//!    the reported QZ+C/VEC speedups.
//! 2. **Stride prefetcher**: the paper argues the post-QUETZAL residual
//!    traffic is prefetcher-friendly strided data (Fig. 14a discussion);
//!    turning the prefetcher off should hurt both tiers' wavefront
//!    traffic but not the QBUFFER accesses.
//! 3. **QBUFFER read latency beyond the port formula**: the port sweep
//!    of Fig. 12 at the instruction level, isolated on one kernel.

use crate::report::{ratio, Table};
use crate::workloads::{prefetch, run_algo, table2_workloads, Algo, AlgoJob};
use quetzal::uarch::CoreConfig;
use quetzal::MachineConfig;
use quetzal_algos::Tier;

/// Runs the ablation suite.
pub fn run(scale: f64) -> Table {
    let mut t = Table::new(
        "Ablations",
        "sensitivity of the headline comparison to model calibration",
        &[
            "knob",
            "setting",
            "VEC cycles",
            "QZ+C cycles",
            "QZ+C speedup",
        ],
    );
    let wl = table2_workloads(scale)
        .into_iter()
        .find(|w| w.spec.name == "250bp_1")
        .expect("250bp workload exists");

    // Every (knob setting, algorithm, tier) cell below is independent;
    // collect the owned configurations up front and prefetch the lot,
    // so the table loops read the memoised results.
    let mut combos: Vec<(MachineConfig, Algo, [Tier; 2])> = Vec::new();
    for overhead in [0u64, 6, 12, 18] {
        let mut core = CoreConfig::a64fx_like();
        core.gather_crack_overhead = overhead;
        combos.push((
            MachineConfig { core },
            Algo::Wfa,
            [Tier::Vec, Tier::QuetzalC],
        ));
    }
    for degree in [0usize, 4] {
        let mut core = CoreConfig::a64fx_like();
        core.prefetch_degree = degree;
        combos.push((
            MachineConfig { core },
            Algo::Wfa,
            [Tier::Vec, Tier::QuetzalC],
        ));
    }
    for penalty in [0u64, 10] {
        let mut core = CoreConfig::a64fx_like();
        core.store_fwd_penalty = penalty;
        combos.push((MachineConfig { core }, Algo::Nw, [Tier::Vec, Tier::Quetzal]));
    }
    let jobs: Vec<AlgoJob<'_>> = combos
        .iter()
        .flat_map(|(cfg, algo, tiers)| tiers.map(|tier| (cfg, *algo, &wl, tier)))
        .collect();
    prefetch(&jobs);

    // 1. Gather crack overhead sweep.
    for overhead in [0u64, 6, 12, 18] {
        let mut core = CoreConfig::a64fx_like();
        core.gather_crack_overhead = overhead;
        let cfg = MachineConfig { core };
        let vec = run_algo(&cfg, Algo::Wfa, &wl, Tier::Vec);
        let qzc = run_algo(&cfg, Algo::Wfa, &wl, Tier::QuetzalC);
        t.row(&[
            "gather crack overhead".into(),
            format!("{overhead} cycles"),
            vec.cycles.to_string(),
            qzc.cycles.to_string(),
            ratio(vec.cycles as f64, qzc.cycles as f64),
        ]);
    }

    // 2. Prefetcher on/off.
    for degree in [0usize, 4] {
        let mut core = CoreConfig::a64fx_like();
        core.prefetch_degree = degree;
        let cfg = MachineConfig { core };
        let vec = run_algo(&cfg, Algo::Wfa, &wl, Tier::Vec);
        let qzc = run_algo(&cfg, Algo::Wfa, &wl, Tier::QuetzalC);
        t.row(&[
            "stride prefetcher".into(),
            if degree == 0 {
                "off".into()
            } else {
                format!("degree {degree}")
            },
            vec.cycles.to_string(),
            qzc.cycles.to_string(),
            ratio(vec.cycles as f64, qzc.cycles as f64),
        ]);
    }

    // 3. Store-forwarding penalty on/off (the Fig. 7 mechanism).
    for penalty in [0u64, 10] {
        let mut core = CoreConfig::a64fx_like();
        core.store_fwd_penalty = penalty;
        let cfg = MachineConfig { core };
        let vec = run_algo(&cfg, Algo::Nw, &wl, Tier::Vec);
        let qz = run_algo(&cfg, Algo::Nw, &wl, Tier::Quetzal);
        t.row(&[
            "store-forward penalty (NW)".into(),
            format!("{penalty} cycles"),
            vec.cycles.to_string(),
            qz.cycles.to_string(),
            ratio(vec.cycles as f64, qz.cycles as f64),
        ]);
    }

    t.note(
        "the QZ+C advantage persists across every calibration setting; only its magnitude moves",
    );
    t
}
