//! Fig. 13a — single-core performance of VEC / QUETZAL / QUETZAL+C over
//! the baseline, for every algorithm and dataset (plus the protein
//! use case 4).
//!
//! Paper headline numbers: modern algorithms gain 1.5×/2.1× (QUETZAL /
//! QUETZAL+C over VEC) on short reads and 5.1×/5.5× on long reads;
//! classical DP gains a modest 1.3–1.4×; protein alignment gains
//! 6.0×/6.6×.

use crate::report::{ratio, Table};
use crate::workloads::{
    prefetch, protein_workload, run_algo, table2_workloads, Algo, AlgoJob, Workload,
};
use quetzal::MachineConfig;
use quetzal_algos::Tier;

/// Every tier compared in the figure.
const TIERS: [Tier; 4] = [Tier::Base, Tier::Vec, Tier::Quetzal, Tier::QuetzalC];

fn run_workload(t: &mut Table, cfg: &MachineConfig, wl: &Workload, algos: &[Algo]) {
    for &algo in algos {
        let base = run_algo(cfg, algo, wl, Tier::Base).cycles as f64;
        let vec = run_algo(cfg, algo, wl, Tier::Vec).cycles as f64;
        let qz = run_algo(cfg, algo, wl, Tier::Quetzal).cycles as f64;
        let qzc = run_algo(cfg, algo, wl, Tier::QuetzalC).cycles as f64;
        t.row(&[
            wl.spec.name.to_string(),
            algo.to_string(),
            ratio(base, vec),
            ratio(base, qz),
            ratio(base, qzc),
            ratio(vec, qz),
            ratio(vec, qzc),
        ]);
    }
}

/// Runs the experiment.
pub fn run(scale: f64) -> Table {
    let mut t = Table::new(
        "Fig. 13a",
        "single-core speedups over the baseline (and over VEC)",
        &[
            "dataset",
            "algorithm",
            "VEC/base",
            "QZ/base",
            "QZ+C/base",
            "QZ/VEC",
            "QZ+C/VEC",
        ],
    );
    let cfg = MachineConfig::default();
    let workloads = table2_workloads(scale);
    // Use case 4: protein alignment (modern algorithms only, as in the
    // paper).
    let protein = protein_workload(scale);
    let mut jobs: Vec<AlgoJob<'_>> = Vec::new();
    for wl in &workloads {
        for algo in Algo::all() {
            for tier in TIERS {
                jobs.push((&cfg, algo, wl, tier));
            }
        }
    }
    for algo in Algo::modern() {
        for tier in TIERS {
            jobs.push((&cfg, algo, &protein, tier));
        }
    }
    prefetch(&jobs);
    for wl in &workloads {
        run_workload(&mut t, &cfg, wl, &Algo::all());
    }
    run_workload(&mut t, &cfg, &protein, &Algo::modern());
    t.note("paper: QZ/VEC and QZ+C/VEC are 1.5x/2.1x (short), 5.1x/5.5x (long); classical DP 1.3-1.4x; protein 6.0x/6.6x");
    t.note("NW/SW run on windowed long reads (paper SVI prescribes windowing/tiling for long sequences)");
    t
}
