//! Fig. 14b — the combined SS + WFA pipeline (use case 5): QUETZAL+C vs
//! VEC over mixed accept/reject workloads. Paper (16 cores): 1.8×,
//! 2.7×, 3.6× and 3.1× for the four datasets.

use crate::report::{ratio, Table};
use crate::workloads::{table2_workloads, Workload, SEED};
use quetzal::{BatchRunner, MachineConfig};
use quetzal_algos::pipeline::{mixed_pairs, pipeline_batch};
use quetzal_algos::Tier;

fn pipeline_cycles(
    runner: &BatchRunner,
    wl: &Workload,
    pairs: &[quetzal_genomics::dataset::SeqPair],
    tier: Tier,
) -> u64 {
    let (_, stats) = pipeline_batch(
        runner,
        &MachineConfig::default(),
        pairs,
        wl.spec.alphabet,
        wl.ss_threshold(),
        tier,
    )
    .expect("pipeline sim");
    stats.cycles
}

/// Runs the experiment.
pub fn run(scale: f64) -> Table {
    let mut t = Table::new(
        "Fig. 14b",
        "SS+WFA pipeline speedup: QUETZAL+C over VEC (50% dissimilar pairs)",
        &["dataset", "pairs", "VEC cycles", "QZ+C cycles", "speedup"],
    );
    let runner = BatchRunner::from_env();
    for wl in table2_workloads(scale) {
        let n = wl.pairs.len().max(2);
        let pairs = mixed_pairs(&wl.spec, SEED, n, 0.5);
        let vec = pipeline_cycles(&runner, &wl, &pairs, Tier::Vec);
        let qzc = pipeline_cycles(&runner, &wl, &pairs, Tier::QuetzalC);
        t.row(&[
            wl.spec.name.to_string(),
            pairs.len().to_string(),
            vec.to_string(),
            qzc.to_string(),
            ratio(vec as f64, qzc as f64),
        ]);
    }
    t.note("paper (16 cores): 1.8x, 2.7x, 3.6x, 3.1x across the four datasets; we report the single-core ratio (the multicore model scales both tiers alike)");
    t
}
