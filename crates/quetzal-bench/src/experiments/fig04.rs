//! Fig. 4 — execution-time breakdown of the vectorised modern ASM
//! algorithms. The paper shows cache accesses taking 32–65 % of the
//! run time of vectorised WFA, BiWFA and SS.

use crate::report::{pct, Table};
use crate::workloads::{prefetch, run_algo, table2_workloads, Algo, AlgoJob};
use quetzal::{MachineConfig, StallCat};
use quetzal_algos::Tier;

/// Runs the experiment.
pub fn run(scale: f64) -> Table {
    let mut t = Table::new(
        "Fig. 4",
        "execution-time breakdown of vectorised (VEC) algorithms",
        &[
            "dataset",
            "algorithm",
            "cache-access",
            "vector-compute",
            "scalar-compute",
            "frontend",
            "base",
        ],
    );
    let cfg = MachineConfig::default();
    let workloads = table2_workloads(scale);
    // The paper plots one short and one long dataset per algorithm.
    let plotted: Vec<_> = workloads
        .iter()
        .filter(|w| w.spec.name == "100bp_1" || w.spec.name == "10Kbp")
        .collect();
    let jobs: Vec<AlgoJob<'_>> = plotted
        .iter()
        .flat_map(|wl| Algo::modern().map(|algo| (&cfg, algo, *wl, Tier::Vec)))
        .collect();
    prefetch(&jobs);
    for wl in plotted {
        for algo in Algo::modern() {
            let s = run_algo(&cfg, algo, wl, Tier::Vec);
            t.row(&[
                wl.spec.name.to_string(),
                algo.to_string(),
                pct(s.stall_fraction(StallCat::Memory)),
                pct(s.stall_fraction(StallCat::VectorCompute)),
                pct(s.stall_fraction(StallCat::ScalarCompute)),
                pct(s.stall_fraction(StallCat::Frontend)),
                pct(s.stall_fraction(StallCat::Base)),
            ]);
        }
    }
    t.note("paper: cache accesses are 32-65% of vectorised execution time; the cache-access column should fall in or above that band");
    t
}
