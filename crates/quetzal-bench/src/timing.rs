//! Minimal in-tree micro-benchmark harness.
//!
//! The workspace builds fully offline, so the bench targets cannot pull
//! in an external benchmarking framework; this module provides the
//! small part actually needed: a calibrated timing loop around
//! [`std::time::Instant`] reporting the median of several samples
//! (median, unlike mean, is robust to scheduler noise spikes).
//!
//! Used by the `harness = false` bench targets (`cargo bench`); not a
//! statistics suite — for rigorous comparisons run the samples through
//! your own analysis.

use std::time::{Duration, Instant};

/// Samples per benchmark; the reported time is their median.
pub const SAMPLES: usize = 15;

/// Minimum wall-clock per sample the calibration loop aims for.
/// Batches grow until one batch takes at least this long, so
/// per-iteration costs below the `Instant` resolution still measure.
const MIN_SAMPLE: Duration = Duration::from_millis(2);

/// Times `iters` calls of `f` (results routed through
/// [`std::hint::black_box`] so the work is not optimised away).
fn time_batch<R>(f: &mut impl FnMut() -> R, iters: u64) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed()
}

/// Median of a sample set (mean of the middle two for even sizes).
pub fn median(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Simulated MIPS: millions of simulated instructions retired per
/// wall-clock second — the simulator-throughput metric tracked by
/// `BENCH_uarch.json` (instructions are simulated, seconds are host
/// time; `ns` is the wall-clock of one run retiring `sim_instructions`).
pub fn sim_mips(sim_instructions: u64, wall_ns: f64) -> f64 {
    if wall_ns <= 0.0 {
        0.0
    } else {
        sim_instructions as f64 * 1e3 / wall_ns
    }
}

/// Renders nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// One measurement: median/min/max per-iteration time over
/// [`SAMPLES`] batches.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Median per-iteration nanoseconds.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Iterations per sample (after calibration).
    pub iters: u64,
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<40} {:>12}   [{} .. {}]   ({} iters x {} samples)",
            self.name,
            fmt_ns(self.median_ns),
            fmt_ns(self.min_ns),
            fmt_ns(self.max_ns),
            self.iters,
            SAMPLES
        )
    }
}

/// Measures `f` without printing: calibrates a batch size so one batch
/// takes at least [`MIN_SAMPLE`], then times [`SAMPLES`] batches.
pub fn measure<R>(name: &str, mut f: impl FnMut() -> R) -> Measurement {
    let mut iters = 1u64;
    loop {
        let t = time_batch(&mut f, iters);
        if t >= MIN_SAMPLE || iters >= 1 << 30 {
            break;
        }
        iters *= 2;
    }
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| time_batch(&mut f, iters).as_nanos() as f64 / iters as f64)
        .collect();
    let median_ns = median(&mut samples);
    Measurement {
        name: name.to_string(),
        median_ns,
        min_ns: samples[0],
        max_ns: samples[samples.len() - 1],
        iters,
    }
}

/// Measures `f` and prints one result line — the bench targets' main
/// entry point.
pub fn bench<R>(name: &str, f: impl FnMut() -> R) -> Measurement {
    let m = measure(name, f);
    println!("{m}");
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut [7.0]), 7.0);
    }

    #[test]
    fn sim_mips_is_instructions_per_wall_second() {
        // 2_000_000 simulated instructions in 1 ms of wall time
        // -> 2e6 / 1e-3 s = 2e9 inst/s = 2000 MIPS.
        assert!((sim_mips(2_000_000, 1e6) - 2000.0).abs() < 1e-9);
        assert_eq!(sim_mips(1000, 0.0), 0.0);
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(12_500.0), "12.50 µs");
        assert_eq!(fmt_ns(12_500_000.0), "12.50 ms");
        assert_eq!(fmt_ns(2.5e9), "2.50 s");
    }

    #[test]
    fn measure_times_real_work() {
        let mut acc = 0u64;
        let m = measure("spin", || {
            for i in 0..100u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            acc
        });
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.max_ns);
        assert!(m.iters >= 1);
        assert!(m.name == "spin");
    }
}
