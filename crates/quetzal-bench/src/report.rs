//! Plain-text experiment reports (aligned table + TSV).

/// A simple experiment output table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Experiment identifier (e.g. `Fig. 13a`).
    pub id: String,
    /// One-line description.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes appended after the table (paper-vs-measured
    /// commentary, substitutions, scaling caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Appends a note line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Tab-separated form (machine-readable).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join("\t"));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join("\t"));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} — {}", self.id, self.title)?;
        // Column widths.
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        let line = |cells: &[String], w: &[usize]| -> String {
            cells
                .iter()
                .zip(w)
                .map(|(c, &w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", line(&self.headers, &w))?;
        writeln!(
            f,
            "{}",
            "-".repeat(w.iter().sum::<usize>() + 2 * (w.len() - 1))
        )?;
        for r in &self.rows {
            writeln!(f, "{}", line(r, &w))?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Formats a ratio as `1.23x`.
pub fn ratio(num: f64, den: f64) -> String {
    if den == 0.0 {
        "n/a".to_string()
    } else {
        format!("{:.2}x", num / den)
    }
}

/// Formats a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

/// Formats a float with SI-ish precision.
pub fn num(v: f64) -> String {
    if v.abs() >= 1e6 {
        format!("{:.3e}", v)
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Fig. X", "demo", &["a", "bbbb"]);
        t.row(&["1".into(), "2".into()]);
        t.note("hello");
        let s = t.to_string();
        assert!(s.contains("Fig. X"));
        assert!(s.contains("note: hello"));
        assert_eq!(t.to_tsv(), "a\tbbbb\n1\t2\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("x", "y", &["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(3.0, 2.0), "1.50x");
        assert_eq!(ratio(1.0, 0.0), "n/a");
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(num(5.0), "5.00");
        assert_eq!(num(12345.0), "12345");
    }
}
