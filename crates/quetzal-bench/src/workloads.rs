//! Shared workload construction and algorithm runners for the
//! experiment harness.
//!
//! Simulation here is **deterministically parallel**: every pair of a
//! workload is an independent work item submitted through
//! [`BatchRunner`], and experiment modules batch their independent
//! algorithm/dataset/tier combinations through [`prefetch`]. Both
//! levels inherit the runner's guarantee that results are bit-identical
//! for every `QUETZAL_THREADS` value, so the printed tables never
//! depend on the host's core count.

use quetzal::uarch::RunStats;
use quetzal::{BatchRunner, Machine, MachineConfig, MachinePool, Probe, SimError};
use quetzal_algos::biwfa::biwfa_sim;
use quetzal_algos::dp_sim::LinearCosts;
use quetzal_algos::nw::nw_sim;
use quetzal_algos::sneakysnake::ss_sim;
use quetzal_algos::swg::{default_band, swg_sim};
use quetzal_algos::wfa_sim::wfa_sim;
use quetzal_algos::{SimOutcome, Tier};
use quetzal_genomics::dataset::{DatasetSpec, SeqPair};

/// Deterministic seed for every experiment.
pub const SEED: u64 = 2024;

/// A dataset with generated pairs.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The dataset description (lengths, error profile).
    pub spec: DatasetSpec,
    /// The generated pairs.
    pub pairs: Vec<SeqPair>,
}

impl Workload {
    /// Whether this counts as a long-read dataset.
    pub fn is_long(&self) -> bool {
        self.spec.is_long()
    }

    /// SneakySnake threshold for this dataset: twice the nominal edit
    /// count, capped like SneakySnake's long-read configurations.
    pub fn ss_threshold(&self) -> u32 {
        ((2.0 * self.spec.edit_rate * self.spec.read_len as f64).ceil() as u32).clamp(2, 4000)
    }
}

/// Baseline pair counts per dataset, chosen (like the paper's read-count
/// capping, §V-C) so experiments simulate in seconds, scaled by
/// `QUETZAL_SCALE`.
fn pair_count(spec: &DatasetSpec, scale: f64) -> usize {
    let base = match spec.read_len {
        0..=150 => 4,
        151..=500 => 3,
        501..=15_000 => 1,
        _ => 1,
    };
    ((base as f64 * scale).round() as usize).max(1)
}

/// The four Table II DNA workloads.
pub fn table2_workloads(scale: f64) -> Vec<Workload> {
    DatasetSpec::table2()
        .into_iter()
        .map(|spec| {
            let n = pair_count(&spec, scale);
            Workload {
                pairs: spec.generate_n(SEED, n),
                spec,
            }
        })
        .collect()
}

/// A BAliBASE-like protein workload (sequences trimmed for simulation
/// speed; protein pairs are highly divergent, §VII-A.4).
pub fn protein_workload(scale: f64) -> Workload {
    let spec = DatasetSpec::protein();
    let n = ((2.0 * scale).round() as usize).max(1);
    let mut pairs = spec.generate_n(SEED, n);
    for p in &mut pairs {
        let pl = p.pattern.len().min(200);
        let tl = p.text.len().min(200);
        p.pattern = p.pattern.subseq(0, pl);
        p.text = p.text.subseq(0, tl);
    }
    Workload { spec, pairs }
}

/// The evaluated algorithms (paper Fig. 13a x-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// Wavefront alignment (use case 1).
    Wfa,
    /// Bidirectional WFA (use case 1).
    BiWfa,
    /// SneakySnake filtering (use case 2).
    Ss,
    /// Banded Smith-Waterman, ksw2-style (use case 3).
    Sw,
    /// Full-matrix Needleman-Wunsch, parasail-style (use case 3).
    Nw,
}

impl Algo {
    /// All algorithms in presentation order.
    pub fn all() -> [Algo; 5] {
        [Algo::Wfa, Algo::BiWfa, Algo::Ss, Algo::Sw, Algo::Nw]
    }

    /// The modern (non-classical) algorithms.
    pub fn modern() -> [Algo; 3] {
        [Algo::Wfa, Algo::BiWfa, Algo::Ss]
    }

    /// Display name matching the paper's labels.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Wfa => "WFA",
            Algo::BiWfa => "BiWFA",
            Algo::Ss => "SS",
            Algo::Sw => "SW (ksw2)",
            Algo::Nw => "NW (parasail)",
        }
    }
}

impl std::fmt::Display for Algo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Window length applied to classical DP on long reads (the paper's own
/// prescription for long sequences, §VI: minimap2-style windowing /
/// tiling). Sized so the QUETZAL variant's three diagonal regions fit
/// one QBUFFER (3 × (window + 3) ≤ 1024 64-bit elements).
pub const NW_WINDOW: usize = 320;
/// Banded-SW window (same constraint as [`NW_WINDOW`]).
pub const SW_WINDOW: usize = 320;

fn windowed(seq: &[u8], window: usize) -> &[u8] {
    &seq[..seq.len().min(window)]
}

/// An algorithm/workload/tier combination to simulate on a machine
/// configuration — the coarse work unit experiments batch through
/// [`prefetch`].
pub type AlgoJob<'a> = (&'a MachineConfig, Algo, &'a Workload, Tier);

fn memo() -> &'static std::sync::Mutex<std::collections::HashMap<String, RunStats>> {
    // Experiments share workloads (Fig. 3/4/13a/14a all run the same
    // algorithm/dataset/tier combinations); memoise by configuration so
    // `run_all` simulates each combination once.
    static MEMO: std::sync::OnceLock<
        std::sync::Mutex<std::collections::HashMap<String, RunStats>>,
    > = std::sync::OnceLock::new();
    MEMO.get_or_init(Default::default)
}

fn memo_key(cfg: &MachineConfig, algo: Algo, wl: &Workload, tier: Tier) -> String {
    format!(
        "{cfg:?}|{algo}|{}|{}|{}|{tier}",
        wl.spec.name,
        wl.pairs.len(),
        wl.ss_threshold()
    )
}

/// Simulates every not-yet-memoised combination, in parallel across
/// combinations *and* across each combination's pairs. Experiment
/// modules call this once with all the combinations they are about to
/// read, then read them through [`run_algo`] (which hits the memo) —
/// so the table-building code stays a simple serial loop while the
/// simulation wall-clock scales with `QUETZAL_THREADS`.
pub fn prefetch(jobs: &[AlgoJob<'_>]) {
    let mut todo: Vec<(String, AlgoJob<'_>)> = Vec::new();
    {
        let cache = memo().lock().expect("memo lock");
        for &job in jobs {
            let key = memo_key(job.0, job.1, job.2, job.3);
            if !cache.contains_key(&key) && !todo.iter().any(|(k, _)| *k == key) {
                todo.push((key, job));
            }
        }
    }
    if todo.is_empty() {
        return;
    }
    let runner = BatchRunner::from_env();
    let stats = runner
        .run(
            &todo,
            || (),
            |(), _i, (_key, (cfg, algo, wl, tier))| run_algo_uncached(cfg, *algo, wl, *tier),
        )
        .expect("experiment simulation panicked");
    let mut cache = memo().lock().expect("memo lock");
    for ((key, _), s) in todo.into_iter().zip(stats) {
        cache.insert(key, s);
    }
}

/// Runs `algo` at `tier` over every pair of the workload, returning
/// merged statistics. Pairs are independent work items sharded across
/// `QUETZAL_THREADS` worker threads (each shard on its own fresh
/// machine); the result is bit-identical for every thread count.
///
/// # Panics
///
/// Panics if a simulation fails (experiment harness context).
pub fn run_algo(cfg: &MachineConfig, algo: Algo, wl: &Workload, tier: Tier) -> RunStats {
    let key = memo_key(cfg, algo, wl, tier);
    if let Some(hit) = memo().lock().expect("memo lock").get(&key) {
        return hit.clone();
    }
    let stats = run_algo_uncached(cfg, algo, wl, tier);
    memo().lock().expect("memo lock").insert(key, stats.clone());
    stats
}

fn run_algo_uncached(cfg: &MachineConfig, algo: Algo, wl: &Workload, tier: Tier) -> RunStats {
    RunStats::merged(&run_algo_pairs(
        &BatchRunner::from_env(),
        cfg,
        algo,
        wl,
        tier,
    ))
}

/// Per-pair statistics of `algo` at `tier` over the workload, simulated
/// through `runner`: one shard per pair, one fresh machine per shard,
/// results in pair order. This is the quantity `tests/parallel.rs`
/// asserts is thread-count-invariant.
///
/// Pairs whose simulation fails (typed [`SimError`] or kernel panic,
/// after one retry on a fresh machine) are dropped from the result; the
/// failures are summarised on **stderr** so stdout tables stay
/// byte-identical between fault-free runs at any thread count. The
/// healthy pairs' statistics are bit-identical to a fully healthy run.
///
/// # Panics
///
/// Panics only on simulation-infrastructure failure (a panic outside
/// the per-item fault boundary).
pub fn run_algo_pairs(
    runner: &BatchRunner,
    cfg: &MachineConfig,
    algo: Algo,
    wl: &Workload,
    tier: Tier,
) -> Vec<RunStats> {
    let pool = MachinePool::new(cfg, runner.exec_mode());
    run_algo_pairs_pooled(runner, &pool, algo, wl, tier)
}

/// [`run_algo_pairs`] over a caller-owned [`MachinePool`]: repeated
/// runs of one kernel (e.g. the throughput trajectory's timing samples)
/// reuse the pool's machines instead of rebuilding them per run.
/// Checkout resets every recycled machine to cold-boot state, so the
/// per-pair statistics are bit-identical to a per-call pool.
///
/// # Panics
///
/// Panics only on simulation-infrastructure failure (a panic outside
/// the per-item fault boundary).
pub fn run_algo_pairs_pooled(
    runner: &BatchRunner,
    pool: &MachinePool,
    algo: Algo,
    wl: &Workload,
    tier: Tier,
) -> Vec<RunStats> {
    let threshold = wl.ss_threshold();
    let alphabet = wl.spec.alphabet;
    let report = runner
        .run_machines_report_pooled(pool, &wl.pairs, |machine, _i, pair| {
            try_simulate_pair(machine, algo, alphabet, threshold, pair, tier)
        })
        .expect("simulation infrastructure panicked");
    if !report.is_clean() {
        let recovered = report.failures.iter().filter(|f| f.recovered).count();
        let stats = pool.stats();
        eprintln!(
            "warning: {} of {} pairs failed ({algo}, {}, {tier}; \
             {recovered} recovered by retry; pool built {} quarantined {}):",
            report.failures.len(),
            wl.pairs.len(),
            wl.spec.name,
            stats.built,
            stats.quarantined,
        );
        for failure in &report.failures {
            eprintln!("  {failure}");
        }
    }
    report.results.into_iter().flatten().collect()
}

/// Simulates one pair (the per-shard work item of [`run_algo_pairs`]).
///
/// Public and generic over the machine's [`Probe`] so observability
/// tooling (`trace_run`, the `--cpi-stacks` summary) can replay exactly
/// the kernels the experiment tables measure on a
/// `Machine<RecordingProbe>` — same staging, same windowing, same
/// thresholds.
///
/// # Panics
///
/// Panics if the simulation fails; use [`try_simulate_pair`] for the
/// fault-tolerant variant.
pub fn simulate_pair<P: Probe>(
    machine: &mut Machine<P>,
    algo: Algo,
    alphabet: quetzal_genomics::Alphabet,
    ss_threshold: u32,
    pair: &SeqPair,
    tier: Tier,
) -> RunStats {
    try_simulate_pair(machine, algo, alphabet, ss_threshold, pair, tier)
        .expect("pair simulation failed")
}

/// Fallible [`simulate_pair`]: machine-level faults come back as typed
/// [`SimError`]s so [`run_algo_pairs`] can degrade per pair instead of
/// killing the batch. Algorithm-driver bugs that are not machine faults
/// (e.g. a WFA score-cap overflow) still panic — they indicate a broken
/// harness, not a misbehaving kernel, and the panic is caught at the
/// same per-item boundary.
pub fn try_simulate_pair<P: Probe>(
    machine: &mut Machine<P>,
    algo: Algo,
    alphabet: quetzal_genomics::Alphabet,
    ss_threshold: u32,
    pair: &SeqPair,
    tier: Tier,
) -> Result<RunStats, SimError> {
    try_simulate_pair_outcome(machine, algo, alphabet, ss_threshold, pair, tier)
        .map(|outcome| outcome.stats)
}

/// [`try_simulate_pair`], but returning the full [`SimOutcome`] — the
/// algorithm's architectural result (alignment score, filter verdict)
/// alongside the statistics. The differential oracle in
/// `tests/functional_equiv.rs` compares this value between the
/// cycle-level and functional execution tiers.
///
/// # Errors
///
/// Returns [`SimError`] if the simulated kernel faults.
pub fn try_simulate_pair_outcome<P: Probe>(
    machine: &mut Machine<P>,
    algo: Algo,
    alphabet: quetzal_genomics::Alphabet,
    ss_threshold: u32,
    pair: &SeqPair,
    tier: Tier,
) -> Result<SimOutcome, SimError> {
    use quetzal_algos::wfa_sim::WfaSimError;
    let unwrap_wfa = |r: Result<quetzal_algos::SimOutcome, WfaSimError>| match r {
        Ok(outcome) => Ok(outcome),
        Err(WfaSimError::Sim(e)) => Err(e),
        Err(e @ WfaSimError::ScoreCapExceeded) => panic!("wfa driver bug: {e}"),
    };
    let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
    let outcome = match algo {
        Algo::Wfa => unwrap_wfa(wfa_sim(machine, p, t, alphabet, tier))?,
        Algo::BiWfa => unwrap_wfa(biwfa_sim(machine, p, t, alphabet, tier))?,
        Algo::Ss => ss_sim(machine, p, t, alphabet, ss_threshold, tier)?,
        Algo::Sw => {
            let (pw, tw) = (windowed(p, SW_WINDOW), windowed(t, SW_WINDOW));
            swg_sim(
                machine,
                pw,
                tw,
                LinearCosts::UNIT,
                default_band(pw.len()),
                tier,
            )?
        }
        Algo::Nw => {
            let (pw, tw) = (windowed(p, NW_WINDOW), windowed(t, NW_WINDOW));
            nw_sim(machine, pw, tw, LinearCosts::UNIT, tier)?
        }
    };
    Ok(outcome)
}

/// Base pairs processed by one run of `algo` over `wl` (for throughput
/// figures): the pattern lengths actually aligned.
pub fn bases_processed(algo: Algo, wl: &Workload) -> u64 {
    wl.pairs
        .iter()
        .map(|p| match algo {
            Algo::Nw => p.pattern.len().min(NW_WINDOW) as u64,
            Algo::Sw => p.pattern.len().min(SW_WINDOW) as u64,
            _ => p.pattern.len() as u64,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal_genomics::Alphabet;

    #[test]
    fn workloads_are_deterministic_and_scaled() {
        let a = table2_workloads(1.0);
        let b = table2_workloads(1.0);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pairs, y.pairs);
        }
        let big = table2_workloads(2.0);
        assert!(big[0].pairs.len() >= a[0].pairs.len());
    }

    #[test]
    fn thresholds_are_sane() {
        for wl in table2_workloads(1.0) {
            let e = wl.ss_threshold();
            assert!((2..=4000).contains(&e), "{e}");
        }
    }

    #[test]
    fn run_algo_smoke_all_algorithms_short() {
        let wl = Workload {
            spec: DatasetSpec::d100(),
            pairs: DatasetSpec::d100().generate_n(SEED, 1),
        };
        let cfg = MachineConfig::default();
        for algo in Algo::all() {
            let s = run_algo(&cfg, algo, &wl, Tier::QuetzalC);
            assert!(s.cycles > 0, "{algo}");
        }
    }

    #[test]
    fn pair_batching_is_thread_invariant() {
        let wl = Workload {
            spec: DatasetSpec::d100(),
            pairs: DatasetSpec::d100().generate_n(SEED, 3),
        };
        let cfg = MachineConfig::default();
        let serial = run_algo_pairs(&BatchRunner::new(1), &cfg, Algo::Wfa, &wl, Tier::Vec);
        let parallel = run_algo_pairs(&BatchRunner::new(4), &cfg, Algo::Wfa, &wl, Tier::Vec);
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 3);
        assert_eq!(
            RunStats::merged(&serial),
            RunStats::merged(&parallel),
            "merged totals must match too"
        );
    }

    #[test]
    fn prefetch_then_read_matches_direct_run() {
        let wl = Workload {
            spec: DatasetSpec::d100(),
            pairs: DatasetSpec::d100().generate_n(SEED, 2),
        };
        let cfg = MachineConfig::default();
        prefetch(&[
            (&cfg, Algo::Ss, &wl, Tier::Vec),
            (&cfg, Algo::Ss, &wl, Tier::Vec),
        ]);
        let memoised = run_algo(&cfg, Algo::Ss, &wl, Tier::Vec);
        let direct = RunStats::merged(&run_algo_pairs(
            &BatchRunner::new(2),
            &cfg,
            Algo::Ss,
            &wl,
            Tier::Vec,
        ));
        assert_eq!(memoised, direct);
    }

    #[test]
    fn protein_workload_is_trimmed() {
        let wl = protein_workload(1.0);
        assert!(wl.pairs.iter().all(|p| p.pattern.len() <= 200));
        assert_eq!(wl.spec.alphabet, Alphabet::Protein);
    }
}
