//! Experiment harness regenerating every table and figure of the
//! QUETZAL paper's evaluation (§VI–§VII).
//!
//! Each experiment lives in [`experiments`] as a `run(scale)` function
//! returning a [`report::Table`] with the same rows/series the paper
//! plots; one binary per table/figure (see `src/bin/`) prints it, and
//! `run_all` drives every experiment in sequence. The `QUETZAL_SCALE`
//! environment variable multiplies workload sizes (pair counts), like
//! the paper's own read-count capping for tractable simulation times.

pub mod experiments;
pub mod report;
pub mod throughput;
pub mod timing;
pub mod trace;
pub mod workloads;

/// Reads the workload scale factor from `QUETZAL_SCALE` (default 1.0).
pub fn scale_from_env() -> f64 {
    std::env::var("QUETZAL_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0.0)
        .unwrap_or(1.0)
}
