//! Criterion micro-benchmarks of the building blocks: accelerator
//! functional models and the host-side genomics algorithms.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use quetzal::accel::count_alu::qzcount_segment;
use quetzal::accel::encoder::encode_vector;
use quetzal::accel::{QBuffers, QzConfig};
use quetzal::isa::EncSize;
use quetzal_genomics::dataset::DatasetSpec;
use quetzal_genomics::distance::{levenshtein, myers_distance};
use quetzal_genomics::packed::Packed2;
use quetzal_genomics::Alphabet;

fn bench_count_alu(c: &mut Criterion) {
    c.bench_function("count_alu/qzcount_segment_2bit", |b| {
        b.iter(|| qzcount_segment(black_box(0x0123_4567_89AB_CDEF), black_box(0x0123_4567_89AB_CDEE), EncSize::E2))
    });
}

fn bench_encoder(c: &mut Criterion) {
    let chars = [b'G'; 64];
    c.bench_function("encoder/encode_vector_64_chars", |b| {
        b.iter(|| encode_vector(black_box(&chars)))
    });
}

fn bench_qbuffer(c: &mut Criterion) {
    let mut q = QBuffers::new(QzConfig::QZ_8P);
    q.conf(4096, 4096, 0);
    let seq: Vec<u8> = (0..4096).map(|i| b"ACGT"[i % 4]).collect();
    let packed = Packed2::from_bytes(&seq, Alphabet::Dna);
    q.load_image(0, &packed.to_le_bytes());
    c.bench_function("qbuffer/read_segment_unaligned", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 13) % 4000;
            q.buf(0).read_segment(black_box(i), EncSize::E2)
        })
    });
}

fn bench_distances(c: &mut Criterion) {
    let pair = &DatasetSpec::d250().generate_n(5, 1)[0];
    let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
    c.bench_function("distance/levenshtein_250bp", |b| {
        b.iter(|| levenshtein(black_box(p), black_box(t)))
    });
    c.bench_function("distance/myers_250bp", |b| {
        b.iter(|| myers_distance(black_box(p), black_box(t)))
    });
}

fn bench_packing(c: &mut Criterion) {
    let seq: Vec<u8> = (0..10_000).map(|i| b"ACGT"[i % 4]).collect();
    c.bench_function("packed2/pack_10kbp", |b| {
        b.iter(|| Packed2::from_bytes(black_box(&seq), Alphabet::Dna))
    });
}

criterion_group!(
    benches,
    bench_count_alu,
    bench_encoder,
    bench_qbuffer,
    bench_distances,
    bench_packing
);
criterion_main!(benches);
