//! Micro-benchmarks of the building blocks: accelerator functional
//! models and the host-side genomics algorithms. Runs under the
//! in-tree timing harness (`quetzal_bench::timing`) — no external
//! benchmarking framework, per the offline build policy.

use std::hint::black_box;

use quetzal::accel::count_alu::qzcount_segment;
use quetzal::accel::encoder::encode_vector;
use quetzal::accel::{QBuffers, QzConfig};
use quetzal::isa::EncSize;
use quetzal_bench::timing::bench;
use quetzal_genomics::dataset::DatasetSpec;
use quetzal_genomics::distance::{levenshtein, myers_distance};
use quetzal_genomics::packed::Packed2;
use quetzal_genomics::Alphabet;

fn bench_count_alu() {
    bench("count_alu/qzcount_segment_2bit", || {
        qzcount_segment(
            black_box(0x0123_4567_89AB_CDEF),
            black_box(0x0123_4567_89AB_CDEE),
            EncSize::E2,
        )
    });
}

fn bench_encoder() {
    let chars = [b'G'; 64];
    bench("encoder/encode_vector_64_chars", || {
        encode_vector(black_box(&chars))
    });
}

fn bench_qbuffer() {
    let mut q = QBuffers::new(QzConfig::QZ_8P);
    q.conf(4096, 4096, 0);
    let seq: Vec<u8> = (0..4096).map(|i| b"ACGT"[i % 4]).collect();
    let packed = Packed2::from_bytes(&seq, Alphabet::Dna);
    q.load_image(0, &packed.to_le_bytes());
    let mut i = 0u64;
    bench("qbuffer/read_segment_unaligned", || {
        i = (i + 13) % 4000;
        q.buf(0).read_segment(black_box(i), EncSize::E2)
    });
}

fn bench_distances() {
    let pair = &DatasetSpec::d250().generate_n(5, 1)[0];
    let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
    bench("distance/levenshtein_250bp", || {
        levenshtein(black_box(p), black_box(t))
    });
    bench("distance/myers_250bp", || {
        myers_distance(black_box(p), black_box(t))
    });
}

fn bench_packing() {
    let seq: Vec<u8> = (0..10_000).map(|i| b"ACGT"[i % 4]).collect();
    bench("packed2/pack_10kbp", || {
        Packed2::from_bytes(black_box(&seq), Alphabet::Dna)
    });
}

fn main() {
    // `cargo bench` passes --bench (and filter args); ignore them.
    bench_count_alu();
    bench_encoder();
    bench_qbuffer();
    bench_distances();
    bench_packing();
}
