//! Benchmarks of the simulated kernels themselves (host time to
//! simulate one pair per tier — the simulator's own performance).
//! Runs under the in-tree timing harness (`quetzal_bench::timing`).

use quetzal::{Machine, MachineConfig};
use quetzal_algos::sneakysnake::ss_sim;
use quetzal_algos::wfa_sim::wfa_sim;
use quetzal_algos::Tier;
use quetzal_bench::timing::bench;
use quetzal_genomics::dataset::DatasetSpec;
use quetzal_genomics::Alphabet;

fn bench_wfa_tiers() {
    let pair = &DatasetSpec::d100().generate_n(3, 1)[0];
    let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
    for tier in Tier::all() {
        bench(&format!("sim/wfa_100bp/{tier}"), || {
            let mut m = Machine::new(MachineConfig::default());
            wfa_sim(&mut m, p, t, Alphabet::Dna, tier).unwrap()
        });
    }
}

fn bench_ss_tiers() {
    let pair = &DatasetSpec::d100().generate_n(5, 1)[0];
    let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
    for tier in [Tier::Vec, Tier::QuetzalC] {
        bench(&format!("sim/ss_100bp/{tier}"), || {
            let mut m = Machine::new(MachineConfig::default());
            ss_sim(&mut m, p, t, Alphabet::Dna, 8, tier).unwrap()
        });
    }
}

fn main() {
    // `cargo bench` passes --bench (and filter args); ignore them.
    bench_wfa_tiers();
    bench_ss_tiers();
}
