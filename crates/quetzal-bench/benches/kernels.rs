//! Criterion benchmarks of the simulated kernels themselves (host time
//! to simulate one pair per tier — the simulator's own performance).

use criterion::{criterion_group, criterion_main, Criterion};
use quetzal::{Machine, MachineConfig};
use quetzal_algos::sneakysnake::ss_sim;
use quetzal_algos::wfa_sim::wfa_sim;
use quetzal_algos::Tier;
use quetzal_genomics::dataset::DatasetSpec;
use quetzal_genomics::Alphabet;

fn bench_wfa_tiers(c: &mut Criterion) {
    let pair = &DatasetSpec::d100().generate_n(3, 1)[0];
    let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
    let mut g = c.benchmark_group("sim/wfa_100bp");
    for tier in Tier::all() {
        g.bench_function(tier.to_string(), |b| {
            b.iter(|| {
                let mut m = Machine::new(MachineConfig::default());
                wfa_sim(&mut m, p, t, Alphabet::Dna, tier).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_ss_tiers(c: &mut Criterion) {
    let pair = &DatasetSpec::d100().generate_n(5, 1)[0];
    let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
    let mut g = c.benchmark_group("sim/ss_100bp");
    for tier in [Tier::Vec, Tier::QuetzalC] {
        g.bench_function(tier.to_string(), |b| {
            b.iter(|| {
                let mut m = Machine::new(MachineConfig::default());
                ss_sim(&mut m, p, t, Alphabet::Dna, 8, tier).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_wfa_tiers, bench_ss_tiers);
criterion_main!(benches);
