//! `cargo bench` entry point that regenerates every paper table and
//! figure at a reduced scale (QUETZAL_SCALE defaults to 0.5 here so the
//! full sweep finishes quickly; the `run_all` binary runs full size).

fn main() {
    // Criterion passes --bench; ignore all arguments.
    let scale = std::env::var("QUETZAL_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.5);
    eprintln!("regenerating all paper tables/figures at scale {scale}");
    for table in quetzal_bench::experiments::run_all(scale) {
        println!("{table}");
    }
}
