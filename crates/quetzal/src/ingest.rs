//! Streaming, crash-safe ingestion: sharded batch execution with
//! durable per-shard checkpoints, resume, heartbeats, and
//! deadline-bounded shards.
//!
//! # Model
//!
//! [`run_ingest`] pulls items from a fallible streaming source (e.g.
//! the pair-file reader in `quetzal-genomics`) **one shard at a time**
//! — memory is bounded by the shard size, never the input size — and
//! runs each shard through the deterministic [`BatchRunner`] merge, so
//! the rendered output is bit-identical at every worker-thread count.
//! Sharding is a pure function of item order and
//! [`IngestConfig::shard_items`]; thread count never moves a shard
//! boundary.
//!
//! Each shard commits two files to the checkpoint directory (see
//! [`manifest`]): its rendered output lines, then — as the commit point
//! — a checksummed manifest written atomically. A run killed anywhere
//! resumes from the last committed shard: committed shards are
//! validated (manifest checksum, input checksum, output length and
//! checksum) and skipped; anything torn or missing is re-run. The
//! resumed run's final output is byte-identical to an uninterrupted
//! run — the crash-injection tests pin exactly this.
//!
//! # Degradation
//!
//! Failures stay typed and local at two granularities: per *item*, the
//! pool's retry-once-on-a-fresh-machine boundary (PR 4) records a
//! failure line and keeps the shard going; per *shard*, an optional
//! wall-clock deadline or retired-instruction budget quarantines the
//! remainder of the shard — unrun items get typed `shard-deadline`
//! failure lines, the manifest records the quarantine cause, and the
//! run continues with the next shard. The wall-clock deadline is
//! inherently nondeterministic and is **off by default**; the
//! instruction budget is checked at deterministic chunk boundaries.

pub mod manifest;

use crate::batch::{BatchError, BatchRunner};
use crate::pool::{FailureCause, MachinePool};
use crate::{Machine, SimError};
use manifest::{Fnv64, ManifestState, ShardManifest, ShardStatus};
use std::fmt;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// One item's simulation result, as recorded in the shard output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItemOutput {
    /// Algorithm result (score / filter verdict).
    pub value: i64,
    /// Simulated cycles the item cost.
    pub cycles: u64,
    /// Instructions the item retired.
    pub instructions: u64,
}

/// Where an injected crash fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// Immediately after shard `n`'s manifest committed (the durable
    /// state is exactly shards `0..=n`).
    ShardBoundary(u64),
    /// Mid-manifest-write of shard `n`: the output file is durable but
    /// only a torn prefix of the manifest reached the disk (the
    /// adversarial non-atomic-write case — shard `n` must be re-run).
    MidManifest(u64),
}

impl fmt::Display for CrashSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashSite::ShardBoundary(n) => write!(f, "shard {n} boundary"),
            CrashSite::MidManifest(n) => write!(f, "mid-manifest-write of shard {n}"),
        }
    }
}

/// Crash-injection plan for the recovery tests and the CI smoke. The
/// default plan never fires.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrashPlan {
    /// Die right after this shard's manifest commits.
    pub after_shard: Option<u64>,
    /// Die mid-manifest-write of this shard, leaving a torn manifest.
    pub mid_manifest: Option<u64>,
    /// `true`: kill the whole process with exit code 137 (the binary /
    /// CI path — a real `SIGKILL`-like death). `false`: return the
    /// typed [`IngestError::CrashInjected`] instead (the in-process
    /// test path).
    pub exit_process: bool,
}

/// Per-shard execution bounds. Both default to unbounded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardDeadline {
    /// Wall-clock bound per shard, checked at chunk boundaries.
    /// **Nondeterministic** — a quarantine moves with host load — so
    /// off by default and documented as an operational safety valve,
    /// not a reproducibility feature.
    pub wall: Option<Duration>,
    /// Retired-instruction budget per shard, checked at chunk
    /// boundaries. Deterministic: the same input quarantines at the
    /// same boundary on every host and thread count.
    pub instructions: Option<u64>,
}

/// Configuration of one ingestion run.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Checkpoint directory (created if missing). Shard outputs and
    /// manifests live here; resuming means pointing a second run at
    /// the same directory.
    pub checkpoint_dir: PathBuf,
    /// Items per shard — the checkpoint granularity *and* the memory
    /// bound (one shard of items is in memory at a time).
    pub shard_items: usize,
    /// Items per [`BatchRunner`] chunk within a shard; also the
    /// deadline-check granularity.
    pub chunk_items: usize,
    /// Per-shard execution bounds.
    pub deadline: ShardDeadline,
    /// Minimum interval between heartbeat frames on stderr (`None`
    /// silences them).
    pub heartbeat: Option<Duration>,
    /// Total items expected, when the caller knows it (enables
    /// `done/total` and ETA in heartbeats; purely cosmetic).
    pub expected_items: Option<u64>,
    /// Re-run shards previously committed as quarantined instead of
    /// skipping them.
    pub retry_quarantined: bool,
    /// Crash injection (tests / CI only).
    pub crash: CrashPlan,
}

impl IngestConfig {
    /// Defaults: 256-item shards, 32-item chunks, no deadline, 2 s
    /// heartbeats.
    pub fn new(checkpoint_dir: impl Into<PathBuf>) -> IngestConfig {
        IngestConfig {
            checkpoint_dir: checkpoint_dir.into(),
            shard_items: 256,
            chunk_items: 32,
            deadline: ShardDeadline::default(),
            heartbeat: Some(Duration::from_secs(2)),
            expected_items: None,
            retry_quarantined: false,
            crash: CrashPlan::default(),
        }
    }
}

/// What one shard contributed, streamed to the observer as shards
/// complete (or validate, on resume).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index.
    pub shard: u64,
    /// Global index of the first item.
    pub start: u64,
    /// Items in the shard.
    pub count: u64,
    /// Items that produced a result.
    pub ok: u64,
    /// Items that failed (runtime failures plus quarantine-skipped).
    pub failed: u64,
    /// Items recovered by the fresh-machine retry.
    pub recovered: u64,
    /// Simulated cycles over healthy items.
    pub cycles: u64,
    /// Retired instructions over healthy items.
    pub instructions: u64,
    /// `true` when the shard was satisfied from a committed checkpoint
    /// instead of being executed.
    pub resumed: bool,
    /// Quarantine cause, when the shard hit its deadline / budget.
    pub quarantined: Option<String>,
    /// Checksum of the shard's output lines.
    pub output_fnv: u64,
}

/// Aggregate of one ingestion run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestSummary {
    /// Shards processed.
    pub shards: u64,
    /// Shards satisfied from committed checkpoints.
    pub shards_resumed: u64,
    /// Shards quarantined by a deadline / budget.
    pub shards_quarantined: u64,
    /// Torn / corrupt manifests detected (and re-run) during resume.
    pub manifests_torn: u64,
    /// Total items.
    pub items: u64,
    /// Items that produced a result.
    pub ok: u64,
    /// Items that failed.
    pub failed: u64,
    /// Items recovered by the fresh-machine retry.
    pub recovered: u64,
    /// Simulated cycles over healthy items.
    pub cycles: u64,
    /// Retired instructions over healthy items.
    pub instructions: u64,
}

/// A typed ingestion failure.
#[derive(Debug)]
pub enum IngestError {
    /// Filesystem failure on a checkpoint file.
    Io {
        /// What was being written / read.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// The streaming source yielded an error (I/O or parse) at `item`.
    Source {
        /// Global index of the offending item.
        item: u64,
        /// The source's error message.
        message: String,
    },
    /// A committed checkpoint disagrees with the current input — the
    /// checkpoint directory belongs to a different run.
    InputMismatch {
        /// The disagreeing shard.
        shard: u64,
        /// What differed.
        detail: String,
    },
    /// Simulation-infrastructure failure (a panic outside the per-item
    /// fault boundary).
    Infra(BatchError),
    /// An injected crash fired with [`CrashPlan::exit_process`] unset.
    CrashInjected(CrashSite),
    /// Concatenation found no committed manifest for a shard.
    MissingShard {
        /// The uncommitted shard.
        shard: u64,
    },
    /// Concatenation found a shard output that fails its manifest's
    /// length / checksum.
    Corrupt {
        /// The corrupt shard.
        shard: u64,
        /// What failed to validate.
        detail: String,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io { context, source } => write!(f, "{context}: {source}"),
            IngestError::Source { item, message } => {
                write!(f, "input source failed at item {item}: {message}")
            }
            IngestError::InputMismatch { shard, detail } => write!(
                f,
                "checkpoint shard {shard} does not match the input ({detail}); \
                 refusing to mix checkpoints from different runs"
            ),
            IngestError::Infra(e) => write!(f, "batch infrastructure failure: {e}"),
            IngestError::CrashInjected(site) => write!(f, "injected crash at {site}"),
            IngestError::MissingShard { shard } => {
                write!(f, "shard {shard} has no committed manifest")
            }
            IngestError::Corrupt { shard, detail } => {
                write!(f, "shard {shard} output is corrupt: {detail}")
            }
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io { source, .. } => Some(source),
            IngestError::Infra(e) => Some(e),
            _ => None,
        }
    }
}

fn io_err(context: impl Into<String>, source: io::Error) -> IngestError {
    IngestError::Io {
        context: context.into(),
        source,
    }
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn cause_kind(cause: &FailureCause) -> &'static str {
    match cause {
        FailureCause::Sim(_) => "sim",
        FailureCause::Panic(_) => "panic",
        FailureCause::Rejected(_) => "rejected",
    }
}

fn ok_line(item: u64, out: &ItemOutput, recovered: Option<&'static str>) -> String {
    match recovered {
        None => format!(
            "{{\"item\":{item},\"value\":{},\"cycles\":{},\"instructions\":{}}}\n",
            out.value, out.cycles, out.instructions
        ),
        Some(kind) => format!(
            "{{\"item\":{item},\"value\":{},\"cycles\":{},\"instructions\":{},\"recovered\":\"{kind}\"}}\n",
            out.value, out.cycles, out.instructions
        ),
    }
}

fn failed_line(item: u64, cause: &str, message: &str) -> String {
    format!(
        "{{\"item\":{item},\"cause\":\"{cause}\",\"message\":\"{}\"}}\n",
        json_escape(message)
    )
}

/// Heartbeat state: wall-clock pacing of stderr progress frames.
struct Heartbeat {
    interval: Option<Duration>,
    started: Instant,
    last: Option<Instant>,
}

impl Heartbeat {
    fn new(interval: Option<Duration>) -> Heartbeat {
        Heartbeat {
            interval,
            started: Instant::now(),
            last: None,
        }
    }

    fn beat(
        &mut self,
        summary: &IngestSummary,
        config: &IngestConfig,
        pool: &MachinePool,
        force: bool,
    ) {
        let Some(interval) = self.interval else {
            return;
        };
        let now = Instant::now();
        if !force {
            if let Some(last) = self.last {
                if now.duration_since(last) < interval {
                    return;
                }
            }
        }
        self.last = Some(now);
        let elapsed = now.duration_since(self.started).as_secs_f64().max(1e-9);
        let rate = summary.items as f64 / elapsed;
        let total_shards = config.expected_items.map(|n| {
            let per = config.shard_items.max(1) as u64;
            n.div_ceil(per)
        });
        let shards = match total_shards {
            Some(total) => format!("{}/{}", summary.shards, total.max(summary.shards)),
            None => format!("{}/?", summary.shards),
        };
        let eta = match config.expected_items {
            Some(total) if rate > 0.0 && total > summary.items => {
                format!(", eta {:.0}s", (total - summary.items) as f64 / rate)
            }
            _ => String::new(),
        };
        let pool_stats = pool.stats();
        eprintln!(
            "[ingest] shards {shards} ({} resumed, {} quarantined, {} torn) | \
             items {} (ok {}, failed {}, recovered {}) | {rate:.1} items/s{eta} | \
             pool built {} quarantined {}",
            summary.shards_resumed,
            summary.shards_quarantined,
            summary.manifests_torn,
            summary.items,
            summary.ok,
            summary.failed,
            summary.recovered,
            pool_stats.built,
            pool_stats.quarantined,
        );
    }
}

fn crash(site: CrashSite, exit_process: bool) -> IngestError {
    if exit_process {
        eprintln!("[ingest] injected crash at {site}; dying with exit code 137");
        std::process::exit(137);
    }
    IngestError::CrashInjected(site)
}

/// Validates a committed manifest against the current input slice and
/// the shard output on disk. `Ok(true)` means the checkpoint satisfies
/// the shard; `Ok(false)` means re-run (e.g. missing / corrupt output
/// file); `Err` means the checkpoint provably belongs to different
/// input.
fn checkpoint_satisfies(
    dir: &Path,
    m: &ShardManifest,
    shard: u64,
    start: u64,
    count: u64,
    input_fnv: u64,
    retry_quarantined: bool,
) -> Result<bool, IngestError> {
    if m.start != start || m.count != count || m.input_fnv != input_fnv {
        return Err(IngestError::InputMismatch {
            shard,
            detail: format!(
                "manifest has start={} count={} input_fnv={:016x}, \
                 input stream has start={start} count={count} input_fnv={input_fnv:016x}",
                m.start, m.count, m.input_fnv
            ),
        });
    }
    if m.status == ShardStatus::Quarantined && retry_quarantined {
        return Ok(false);
    }
    // The manifest only commits after the output file, but a deleted or
    // externally-truncated output must surface as "not done".
    let path = manifest::output_path(dir, shard);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Err(_) => return Ok(false),
        Ok(mut f) => {
            if f.read_to_end(&mut bytes).is_err() {
                return Ok(false);
            }
        }
    }
    Ok(bytes.len() as u64 == m.output_len && manifest::fnv64(&bytes) == m.output_fnv)
}

/// Runs one shard's items through the pool, rendering one line per
/// item, honouring the shard deadline, and committing output +
/// manifest. Returns the shard's report.
#[allow(clippy::too_many_arguments)]
fn run_shard<T: Sync>(
    config: &IngestConfig,
    runner: &BatchRunner,
    pool: &MachinePool,
    shard: u64,
    start: u64,
    items: &[T],
    input_fnv: u64,
    work: &(impl Fn(&mut Machine, u64, &T) -> Result<ItemOutput, SimError> + Sync),
) -> Result<ShardReport, IngestError> {
    let mut lines = String::new();
    let (mut ok, mut failed, mut recovered) = (0u64, 0u64, 0u64);
    let (mut cycles, mut instructions) = (0u64, 0u64);
    let mut quarantined: Option<String> = None;
    let shard_started = Instant::now();
    let chunk_items = config.chunk_items.max(1);
    for (chunk_idx, chunk) in items.chunks(chunk_items).enumerate() {
        let chunk_base = start + (chunk_idx * chunk_items) as u64;
        let done = (chunk_idx * chunk_items) as u64;
        if quarantined.is_none() {
            if let Some(budget) = config.deadline.instructions {
                if instructions > budget {
                    quarantined = Some(format!(
                        "instruction budget {budget} exceeded ({instructions} retired after {done} item(s))"
                    ));
                }
            }
            if let Some(wall) = config.deadline.wall {
                let elapsed = shard_started.elapsed();
                if elapsed > wall {
                    quarantined = Some(format!(
                        "wall deadline {}ms exceeded ({}ms elapsed after {done} item(s))",
                        wall.as_millis(),
                        elapsed.as_millis()
                    ));
                }
            }
        }
        if let Some(cause) = &quarantined {
            for local in 0..chunk.len() {
                lines.push_str(&failed_line(
                    chunk_base + local as u64,
                    "shard-deadline",
                    cause,
                ));
                failed += 1;
            }
            continue;
        }
        let report = runner
            .run_machines_report_pooled(pool, chunk, |m, i, item| {
                work(m, chunk_base + i as u64, item)
            })
            .map_err(IngestError::Infra)?;
        let mut failures = report.failures.iter().peekable();
        for (local, slot) in report.results.iter().enumerate() {
            let item = chunk_base + local as u64;
            let failure = failures.next_if(|f| f.item == local);
            match slot {
                Some(out) => {
                    ok += 1;
                    cycles += out.cycles;
                    instructions += out.instructions;
                    let kind = failure.map(|f| {
                        recovered += 1;
                        cause_kind(&f.cause)
                    });
                    lines.push_str(&ok_line(item, out, kind));
                }
                None => {
                    let failure = failure.expect("resultless item has a failure entry");
                    failed += 1;
                    lines.push_str(&failed_line(
                        item,
                        cause_kind(&failure.cause),
                        &failure.cause.to_string(),
                    ));
                }
            }
        }
    }
    let bytes = lines.as_bytes();
    let output_fnv = manifest::fnv64(bytes);
    let out_path = manifest::output_path(&config.checkpoint_dir, shard);
    manifest::write_atomic(&out_path, bytes)
        .map_err(|e| io_err(format!("writing {}", out_path.display()), e))?;
    let m = ShardManifest {
        shard,
        start,
        count: items.len() as u64,
        input_fnv,
        status: if quarantined.is_some() {
            ShardStatus::Quarantined
        } else {
            ShardStatus::Done
        },
        cause: quarantined.clone().unwrap_or_default(),
        ok,
        failed,
        recovered,
        cycles,
        instructions,
        output_len: bytes.len() as u64,
        output_fnv,
    };
    if config.crash.mid_manifest == Some(shard) {
        // Adversarial non-atomic write: a torn prefix lands on the
        // *final* manifest path, then the process dies.
        let enc = m.encode();
        let path = manifest::manifest_path(&config.checkpoint_dir, shard);
        std::fs::write(&path, &enc[..enc.len() / 2])
            .map_err(|e| io_err(format!("writing torn {}", path.display()), e))?;
        return Err(crash(
            CrashSite::MidManifest(shard),
            config.crash.exit_process,
        ));
    }
    manifest::store(&config.checkpoint_dir, &m)
        .map_err(|e| io_err(format!("committing manifest for shard {shard}"), e))?;
    Ok(ShardReport {
        shard,
        start,
        count: items.len() as u64,
        ok,
        failed,
        recovered,
        cycles,
        instructions,
        resumed: false,
        quarantined,
        output_fnv,
    })
}

/// Runs (or resumes) one ingestion: streams items from `source`,
/// executes them shard by shard over `pool`, commits a durable
/// checkpoint per shard, and reports progress.
///
/// `digest` must be a pure function of the item's content — it feeds
/// the per-shard input checksum that protects a checkpoint directory
/// from being resumed against different input. `work` is the per-item
/// simulation; `observe` sees every shard's report in shard order
/// (resumed shards included).
///
/// After a clean return, [`concat_output`] (or [`concat_to_path`])
/// assembles the final report from the shard files.
///
/// # Errors
///
/// Returns a typed [`IngestError`] for source failures, checkpoint I/O
/// failures, input/checkpoint mismatches, infrastructure panics, and
/// in-process injected crashes. Per-item and per-shard-deadline
/// failures are *not* errors — they degrade into failure lines and
/// quarantined shards, and the run keeps going.
pub fn run_ingest<T, E>(
    config: &IngestConfig,
    runner: &BatchRunner,
    pool: &MachinePool,
    source: impl IntoIterator<Item = Result<T, E>>,
    digest: impl Fn(&T) -> u64,
    work: impl Fn(&mut Machine, u64, &T) -> Result<ItemOutput, SimError> + Sync,
    mut observe: impl FnMut(&ShardReport),
) -> Result<IngestSummary, IngestError>
where
    T: Sync,
    E: fmt::Display,
{
    std::fs::create_dir_all(&config.checkpoint_dir).map_err(|e| {
        io_err(
            format!(
                "creating checkpoint dir {}",
                config.checkpoint_dir.display()
            ),
            e,
        )
    })?;
    let shard_items = config.shard_items.max(1);
    let mut source = source.into_iter();
    let mut summary = IngestSummary::default();
    let mut heartbeat = Heartbeat::new(config.heartbeat);
    let mut shard = 0u64;
    let mut start = 0u64;
    let mut items: Vec<T> = Vec::with_capacity(shard_items);
    loop {
        items.clear();
        while items.len() < shard_items {
            match source.next() {
                None => break,
                Some(Ok(item)) => items.push(item),
                Some(Err(e)) => {
                    return Err(IngestError::Source {
                        item: start + items.len() as u64,
                        message: e.to_string(),
                    })
                }
            }
        }
        if items.is_empty() {
            break;
        }
        let mut input_hash = Fnv64::new();
        for item in &items {
            input_hash.update(&digest(item).to_le_bytes());
        }
        let input_fnv = input_hash.digest();
        let count = items.len() as u64;
        let state = manifest::load(&config.checkpoint_dir, shard);
        if let ManifestState::Torn(fault) = &state {
            summary.manifests_torn += 1;
            eprintln!("[ingest] shard {shard}: torn manifest detected ({fault}); re-running");
        }
        let report = match state {
            ManifestState::Committed(m)
                if checkpoint_satisfies(
                    &config.checkpoint_dir,
                    &m,
                    shard,
                    start,
                    count,
                    input_fnv,
                    config.retry_quarantined,
                )? =>
            {
                ShardReport {
                    shard,
                    start,
                    count,
                    ok: m.ok,
                    failed: m.failed,
                    recovered: m.recovered,
                    cycles: m.cycles,
                    instructions: m.instructions,
                    resumed: true,
                    quarantined: match m.status {
                        ShardStatus::Quarantined => Some(m.cause),
                        ShardStatus::Done => None,
                    },
                    output_fnv: m.output_fnv,
                }
            }
            _ => run_shard(config, runner, pool, shard, start, &items, input_fnv, &work)?,
        };
        summary.shards += 1;
        summary.items += report.count;
        summary.ok += report.ok;
        summary.failed += report.failed;
        summary.recovered += report.recovered;
        summary.cycles += report.cycles;
        summary.instructions += report.instructions;
        if report.resumed {
            summary.shards_resumed += 1;
        }
        if report.quarantined.is_some() {
            summary.shards_quarantined += 1;
        }
        observe(&report);
        heartbeat.beat(&summary, config, pool, false);
        if config.crash.after_shard == Some(shard) {
            return Err(crash(
                CrashSite::ShardBoundary(shard),
                config.crash.exit_process,
            ));
        }
        shard += 1;
        start += count;
    }
    heartbeat.beat(&summary, config, pool, true);
    Ok(summary)
}

/// The canonical content digest of one sequence pair, feeding the
/// per-shard input checksum. Every ingestion front-end (`qzingest`,
/// the `qzserved` ingest job) uses this same digest, so a checkpoint
/// directory written by one can be resumed by the other.
pub fn pair_digest(pair: &crate::genomics::dataset::SeqPair) -> u64 {
    let mut h = Fnv64::new();
    h.update(pair.pattern.as_bytes());
    h.update(&[0xff]);
    h.update(pair.text.as_bytes());
    h.digest()
}

/// Streams the final report — the ordered concatenation of every
/// shard's committed output — into `out`, validating each shard
/// against its manifest on the way. Returns the byte count.
///
/// # Errors
///
/// Returns [`IngestError::MissingShard`] for an uncommitted shard and
/// [`IngestError::Corrupt`] when an output file fails its manifest's
/// length / checksum.
pub fn concat_output(dir: &Path, shards: u64, out: &mut dyn Write) -> Result<u64, IngestError> {
    let mut total = 0u64;
    for shard in 0..shards {
        let m = match manifest::load(dir, shard) {
            ManifestState::Committed(m) => m,
            ManifestState::Absent | ManifestState::Torn(_) => {
                return Err(IngestError::MissingShard { shard })
            }
        };
        let path = manifest::output_path(dir, shard);
        let mut bytes = Vec::new();
        File::open(&path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| io_err(format!("reading {}", path.display()), e))?;
        if bytes.len() as u64 != m.output_len || manifest::fnv64(&bytes) != m.output_fnv {
            return Err(IngestError::Corrupt {
                shard,
                detail: format!(
                    "length {} / fnv {:016x} vs manifest length {} / fnv {:016x}",
                    bytes.len(),
                    manifest::fnv64(&bytes),
                    m.output_len,
                    m.output_fnv
                ),
            });
        }
        out.write_all(&bytes)
            .map_err(|e| io_err("writing concatenated output", e))?;
        total += bytes.len() as u64;
    }
    Ok(total)
}

/// [`concat_output`] to a file, atomically (temp + rename).
///
/// # Errors
///
/// Propagates [`concat_output`] errors and file I/O failures.
pub fn concat_to_path(dir: &Path, shards: u64, path: &Path) -> Result<u64, IngestError> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp).map_err(|e| io_err(format!("creating {}", tmp.display()), e))?;
    let total = concat_output(dir, shards, &mut f)?;
    f.sync_all()
        .map_err(|e| io_err(format!("syncing {}", tmp.display()), e))?;
    drop(f);
    std::fs::rename(&tmp, path)
        .map_err(|e| io_err(format!("renaming into {}", path.display()), e))?;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecMode, MachineConfig};
    use quetzal_isa::{ProgramBuilder, X0};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qz-ingest-unit-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Tiny deterministic work item: value = item * 3 via one mov_imm.
    fn tiny_work(m: &mut Machine, _g: u64, item: &u64) -> Result<ItemOutput, SimError> {
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, (*item as i64) * 3);
        b.halt();
        let program = b.build().expect("tiny program builds");
        let stats = m.run(&program)?;
        Ok(ItemOutput {
            value: m.core().state().x(X0) as i64,
            cycles: stats.cycles,
            instructions: stats.instructions,
        })
    }

    fn run(
        dir: &Path,
        items: u64,
        threads: usize,
        crash: CrashPlan,
    ) -> Result<IngestSummary, IngestError> {
        let config = IngestConfig {
            shard_items: 4,
            chunk_items: 2,
            heartbeat: None,
            crash,
            ..IngestConfig::new(dir)
        };
        let runner = BatchRunner::new(threads);
        let pool = MachinePool::new(&MachineConfig::default(), ExecMode::Cycle);
        let source = (0..items).map(Ok::<u64, std::convert::Infallible>);
        run_ingest(&config, &runner, &pool, source, |i| *i, tiny_work, |_| {})
    }

    fn concat_string(dir: &Path, shards: u64) -> String {
        let mut buf = Vec::new();
        concat_output(dir, shards, &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn clean_run_renders_every_item_in_order() {
        let dir = tmp_dir("clean");
        let summary = run(&dir, 10, 2, CrashPlan::default()).unwrap();
        assert_eq!(summary.shards, 3);
        assert_eq!((summary.items, summary.ok, summary.failed), (10, 10, 0));
        let text = concat_string(&dir, summary.shards);
        assert_eq!(text.lines().count(), 10);
        assert!(text
            .lines()
            .next()
            .unwrap()
            .starts_with("{\"item\":0,\"value\":0,"));
        assert!(text
            .lines()
            .last()
            .unwrap()
            .starts_with("{\"item\":9,\"value\":27,"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_then_resume_is_byte_identical() {
        let fresh = tmp_dir("fresh");
        let fresh_summary = run(&fresh, 10, 1, CrashPlan::default()).unwrap();
        let baseline = concat_string(&fresh, fresh_summary.shards);

        let crashed = tmp_dir("crashed");
        let err = run(
            &crashed,
            10,
            1,
            CrashPlan {
                after_shard: Some(1),
                ..CrashPlan::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            IngestError::CrashInjected(CrashSite::ShardBoundary(1))
        ));
        let resumed = run(&crashed, 10, 4, CrashPlan::default()).unwrap();
        assert_eq!(resumed.shards_resumed, 2, "shards 0 and 1 were committed");
        assert_eq!(concat_string(&crashed, resumed.shards), baseline);
        std::fs::remove_dir_all(&fresh).unwrap();
        std::fs::remove_dir_all(&crashed).unwrap();
    }

    #[test]
    fn mid_manifest_crash_leaves_torn_state_and_recovers() {
        let fresh = tmp_dir("mm-fresh");
        let fresh_summary = run(&fresh, 10, 1, CrashPlan::default()).unwrap();
        let baseline = concat_string(&fresh, fresh_summary.shards);

        let crashed = tmp_dir("mm-crashed");
        let err = run(
            &crashed,
            10,
            1,
            CrashPlan {
                mid_manifest: Some(1),
                ..CrashPlan::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            IngestError::CrashInjected(CrashSite::MidManifest(1))
        ));
        assert!(
            matches!(manifest::load(&crashed, 1), ManifestState::Torn(_)),
            "the torn manifest is on disk"
        );
        let resumed = run(&crashed, 10, 2, CrashPlan::default()).unwrap();
        assert_eq!(resumed.shards_resumed, 1, "only shard 0 was committed");
        assert_eq!(resumed.manifests_torn, 1, "the torn manifest was counted");
        assert_eq!(concat_string(&crashed, resumed.shards), baseline);
        std::fs::remove_dir_all(&fresh).unwrap();
        std::fs::remove_dir_all(&crashed).unwrap();
    }

    #[test]
    fn input_mismatch_is_refused() {
        let dir = tmp_dir("mismatch");
        run(&dir, 10, 1, CrashPlan::default()).unwrap();
        let config = IngestConfig {
            shard_items: 4,
            chunk_items: 2,
            heartbeat: None,
            ..IngestConfig::new(&dir)
        };
        let runner = BatchRunner::new(1);
        let pool = MachinePool::new(&MachineConfig::default(), ExecMode::Cycle);
        // Same shape, different content: digest disagrees.
        let source = (100..110).map(Ok::<u64, std::convert::Infallible>);
        let err =
            run_ingest(&config, &runner, &pool, source, |i| *i, tiny_work, |_| {}).unwrap_err();
        assert!(matches!(err, IngestError::InputMismatch { shard: 0, .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn instruction_budget_quarantines_the_shard_not_the_run() {
        let dir = tmp_dir("budget");
        let config = IngestConfig {
            shard_items: 4,
            chunk_items: 1,
            deadline: ShardDeadline {
                wall: None,
                instructions: Some(1),
            },
            heartbeat: None,
            ..IngestConfig::new(&dir)
        };
        let runner = BatchRunner::new(1);
        let pool = MachinePool::new(&MachineConfig::default(), ExecMode::Cycle);
        let source = (0..6).map(Ok::<u64, std::convert::Infallible>);
        let mut reports = Vec::new();
        let summary = run_ingest(
            &config,
            &runner,
            &pool,
            source,
            |i| *i,
            tiny_work,
            |r| reports.push(r.clone()),
        )
        .unwrap();
        assert_eq!(summary.shards, 2);
        assert_eq!(summary.shards_quarantined, 2, "both shards exceed 1 inst");
        assert!(summary.failed > 0, "unrun items are recorded as failures");
        assert!(summary.ok > 0, "items before the budget still ran");
        let text = concat_string(&dir, summary.shards);
        assert!(text.contains("\"cause\":\"shard-deadline\""));
        assert_eq!(
            text.lines().count(),
            6,
            "every item is accounted for exactly once"
        );
        // Quarantined shards are skipped on resume by default...
        let resumed = run_ingest(
            &config,
            &runner,
            &pool,
            (0..6).map(Ok::<u64, std::convert::Infallible>),
            |i| *i,
            tiny_work,
            |_| {},
        )
        .unwrap();
        assert_eq!(resumed.shards_resumed, 2);
        // ...and re-run when asked to retry them.
        let retry_config = IngestConfig {
            retry_quarantined: true,
            deadline: ShardDeadline::default(),
            ..config
        };
        let retried = run_ingest(
            &retry_config,
            &runner,
            &pool,
            (0..6).map(Ok::<u64, std::convert::Infallible>),
            |i| *i,
            tiny_work,
            |_| {},
        )
        .unwrap();
        assert_eq!(retried.shards_resumed, 0);
        assert_eq!(retried.shards_quarantined, 0);
        assert_eq!((retried.ok, retried.failed), (6, 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn source_errors_are_typed_with_the_item_index() {
        let dir = tmp_dir("source-err");
        let config = IngestConfig {
            shard_items: 4,
            heartbeat: None,
            ..IngestConfig::new(&dir)
        };
        let runner = BatchRunner::new(1);
        let pool = MachinePool::new(&MachineConfig::default(), ExecMode::Cycle);
        let source = (0..7).map(|i| {
            if i == 5 {
                Err("bad record".to_string())
            } else {
                Ok(i)
            }
        });
        let err =
            run_ingest(&config, &runner, &pool, source, |i| *i, tiny_work, |_| {}).unwrap_err();
        match err {
            IngestError::Source { item, message } => {
                assert_eq!(item, 5);
                assert!(message.contains("bad record"));
            }
            other => panic!("expected Source error, got {other}"),
        }
        // The first full shard still committed before the error.
        assert!(matches!(
            manifest::load(&dir, 0),
            ManifestState::Committed(_)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn json_escape_handles_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
