//! Deterministic fault injection against the machine boundary.
//!
//! [`FaultPlan`] generates seeded adversarial cases: a valid base kernel
//! is drawn, its image is truncated / mutated / spliced with random
//! instructions ([`Program::from_raw`] deliberately bypasses the
//! builder's validation), architectural registers are loaded with
//! extreme operands, and QBUFFER SRAM cells take soft-error bit flips.
//! The contract under test — pinned by `tests/fault_injection.rs` and
//! enforced in CI — is that *every* such case terminates within budget
//! as either `Ok` or a typed [`SimError`](crate::SimError): no panics,
//! no hangs, no host-memory blowups.
//!
//! Everything is a pure function of `(seed, case index)`, so a failing
//! case replays exactly from its number.

use crate::{Machine, HEAP_BASE};
use quetzal_genomics::rng::SplitMix64;
use quetzal_isa::{
    BranchCond, ElemSize, Instruction, MemSize, PReg, Program, ProgramBuilder, QBufSel, QzOp,
    RedOp, SAluOp, VAluOp, VReg, XReg,
};

const SOPS: [SAluOp; 13] = [
    SAluOp::Add,
    SAluOp::Sub,
    SAluOp::Mul,
    SAluOp::And,
    SAluOp::Or,
    SAluOp::Xor,
    SAluOp::Shl,
    SAluOp::Shr,
    SAluOp::Sar,
    SAluOp::Min,
    SAluOp::Max,
    SAluOp::SetLt,
    SAluOp::SetEq,
];

const VOPS: [VAluOp; 10] = [
    VAluOp::Add,
    VAluOp::Sub,
    VAluOp::Mul,
    VAluOp::And,
    VAluOp::Or,
    VAluOp::Xor,
    VAluOp::Smin,
    VAluOp::Smax,
    VAluOp::Shl,
    VAluOp::Shr,
];

const CONDS: [BranchCond; 6] = [
    BranchCond::Eq,
    BranchCond::Ne,
    BranchCond::Lt,
    BranchCond::Le,
    BranchCond::Gt,
    BranchCond::Ge,
];

const QOPS: [QzOp; 7] = [
    QzOp::Count,
    QzOp::Add,
    QzOp::Sub,
    QzOp::CmpEq,
    QzOp::Min,
    QzOp::Max,
    QzOp::Mul,
];

const ROPS: [RedOp; 3] = [RedOp::Add, RedOp::Min, RedOp::Max];
const ESIZES: [ElemSize; 4] = [ElemSize::B8, ElemSize::B16, ElemSize::B32, ElemSize::B64];
const MSIZES: [MemSize; 4] = [MemSize::B1, MemSize::B2, MemSize::B4, MemSize::B8];
const SELS: [QBufSel; 2] = [QBufSel::Q0, QBufSel::Q1];

/// Adversarial operand values: zero, units, extremes of both
/// signednesses, heap-adjacent pointers and a deep unmapped address.
const EXTREMES: [u64; 10] = [
    0,
    1,
    7,
    63,
    u64::MAX,
    i64::MIN as u64,
    i64::MAX as u64,
    HEAP_BASE,
    HEAP_BASE + 4096,
    1 << 40,
];

fn xr(rng: &mut SplitMix64) -> XReg {
    XReg::new(rng.below(32) as u8)
}

fn vr(rng: &mut SplitMix64) -> VReg {
    VReg::new(rng.below(32) as u8)
}

fn pr(rng: &mut SplitMix64) -> PReg {
    PReg::new(rng.below(16) as u8)
}

fn imm(rng: &mut SplitMix64) -> i64 {
    const IMMS: [i64; 8] = [0, 1, -1, 64, -4096, i64::MIN, i64::MAX, HEAP_BASE as i64];
    if rng.chance(0.5) {
        *rng.pick(&IMMS)
    } else {
        rng.next_u64() as i64
    }
}

/// One random instruction with type-valid but otherwise unconstrained
/// fields: branch targets may leave the program, lane indices may exceed
/// the element count, QBUFFER indices may be misaligned. `len` bounds
/// the *plausible* branch-target range (targets up to `2 * len` are
/// drawn, so roughly half are out of range).
///
/// Public so the verifier's property fuzz can generate whole random
/// programs from the same instruction distribution the sweep mutates
/// with.
pub fn random_instruction(rng: &mut SplitMix64, len: usize) -> Instruction {
    let target_range = (2 * len.max(1)) as u64;
    match rng.below(24) {
        0 => Instruction::MovImm {
            rd: xr(rng),
            imm: imm(rng),
        },
        1 => Instruction::AluRR {
            op: *rng.pick(&SOPS),
            rd: xr(rng),
            rn: xr(rng),
            rm: xr(rng),
        },
        2 => Instruction::AluRI {
            op: *rng.pick(&SOPS),
            rd: xr(rng),
            rn: xr(rng),
            imm: imm(rng),
        },
        3 => Instruction::Load {
            rd: xr(rng),
            rn: xr(rng),
            offset: imm(rng),
            size: *rng.pick(&MSIZES),
        },
        4 => Instruction::Store {
            rs: xr(rng),
            rn: xr(rng),
            offset: imm(rng),
            size: *rng.pick(&MSIZES),
        },
        5 => Instruction::Branch {
            cond: *rng.pick(&CONDS),
            rn: xr(rng),
            rm: xr(rng),
            target: rng.below(target_range) as usize,
        },
        6 => Instruction::Jump {
            target: rng.below(target_range) as usize,
        },
        7 => Instruction::Dup {
            vd: vr(rng),
            rn: xr(rng),
            esize: *rng.pick(&ESIZES),
        },
        8 => Instruction::Index {
            vd: vr(rng),
            rn: xr(rng),
            step: imm(rng),
            esize: *rng.pick(&ESIZES),
        },
        9 => Instruction::VAluVV {
            op: *rng.pick(&VOPS),
            vd: vr(rng),
            vn: vr(rng),
            vm: vr(rng),
            pg: pr(rng),
            esize: *rng.pick(&ESIZES),
        },
        10 => Instruction::VCmpVI {
            cond: *rng.pick(&CONDS),
            pd: pr(rng),
            vn: vr(rng),
            imm: imm(rng),
            pg: pr(rng),
            esize: *rng.pick(&ESIZES),
        },
        11 => Instruction::VLoad {
            vd: vr(rng),
            rn: xr(rng),
            pg: pr(rng),
            esize: *rng.pick(&ESIZES),
        },
        12 => Instruction::VStore {
            vs: vr(rng),
            rn: xr(rng),
            pg: pr(rng),
            esize: *rng.pick(&ESIZES),
        },
        13 => Instruction::VGather {
            vd: vr(rng),
            rn: xr(rng),
            idx: vr(rng),
            pg: pr(rng),
            esize: *rng.pick(&ESIZES),
            msize: *rng.pick(&MSIZES),
            scale: rng.below(16) as u8,
        },
        14 => Instruction::VScatter {
            vs: vr(rng),
            rn: xr(rng),
            idx: vr(rng),
            pg: pr(rng),
            esize: *rng.pick(&ESIZES),
            msize: *rng.pick(&MSIZES),
            scale: rng.below(16) as u8,
        },
        15 => Instruction::VReduce {
            op: *rng.pick(&ROPS),
            rd: xr(rng),
            vn: vr(rng),
            pg: pr(rng),
            esize: *rng.pick(&ESIZES),
        },
        16 => Instruction::VExtract {
            rd: xr(rng),
            vn: vr(rng),
            lane: rng.next_u64() as u8,
            esize: *rng.pick(&ESIZES),
        },
        17 => Instruction::VInsert {
            vd: vr(rng),
            rn: xr(rng),
            lane: rng.next_u64() as u8,
            esize: *rng.pick(&ESIZES),
        },
        18 => Instruction::PWhileLt {
            pd: pr(rng),
            rn: xr(rng),
            esize: *rng.pick(&ESIZES),
        },
        19 => Instruction::QzConf {
            eb0: xr(rng),
            eb1: xr(rng),
            esiz: xr(rng),
        },
        20 => Instruction::QzEncode {
            sel: *rng.pick(&SELS),
            val: vr(rng),
            idx: xr(rng),
        },
        21 => Instruction::QzStore {
            val: vr(rng),
            idx: vr(rng),
            sel: *rng.pick(&SELS),
            pg: pr(rng),
        },
        22 => Instruction::QzMhm {
            op: *rng.pick(&QOPS),
            vd: vr(rng),
            idx0: vr(rng),
            idx1: vr(rng),
            pg: pr(rng),
        },
        _ => Instruction::QzMm {
            op: *rng.pick(&QOPS),
            vd: vr(rng),
            val: vr(rng),
            idx: vr(rng),
            sel: *rng.pick(&SELS),
            pg: pr(rng),
        },
    }
}

/// Scalar loop kernel: sum 0..n with a backward branch.
fn scalar_kernel(rng: &mut SplitMix64) -> Program {
    let n = 1 + rng.below(64) as i64;
    let mut b = ProgramBuilder::new();
    let top = b.label();
    b.mov_imm(X0, 0);
    b.mov_imm(X1, 0);
    b.mov_imm(X2, n);
    b.bind(top);
    b.alu_rr(SAluOp::Add, X1, X1, X0);
    b.alu_ri(SAluOp::Add, X0, X0, 1);
    b.branch(BranchCond::Lt, X0, X2, top);
    b.halt();
    b.build().expect("scalar base kernel")
}

/// Vector compute kernel: index/ALU/compare/select/reduce/slides.
fn vector_kernel(rng: &mut SplitMix64) -> Program {
    let esize = *rng.pick(&ESIZES);
    let mut b = ProgramBuilder::new();
    b.ptrue(P0, esize);
    b.mov_imm(X0, rng.i64_in(-8, 8));
    b.index(V0, X0, rng.i64_in(1, 4), esize);
    b.dup_imm(V1, rng.i64_in(-100, 100), esize);
    b.valu_vv(*rng.pick(&VOPS), V2, V0, V1, P0, esize);
    b.vcmp_vi(*rng.pick(&CONDS), P1, V2, rng.i64_in(-10, 10), P0, esize);
    b.vsel(V3, P1, V2, V0, esize);
    b.vslidedown(V4, V3, rng.below(8) as u8, esize);
    b.vreduce(*rng.pick(&ROPS), X1, V4, P0, esize);
    b.halt();
    b.build().expect("vector base kernel")
}

/// Strided memory kernel over a staged heap buffer.
fn memory_kernel(rng: &mut SplitMix64, machine: &mut Machine) -> Program {
    let buf = machine.alloc(4096);
    let data: Vec<u8> = (0..4096u64).map(|i| (i ^ rng.next_u64()) as u8).collect();
    machine.write_bytes(buf, &data);
    // The address also advances by X10, which the kernel deliberately
    // leaves uninitialized (zero on a clean machine). When operand
    // corruption loads it with an extreme value, every iteration lands
    // on a fresh page and the sweep's small page budget surfaces
    // `MemoryFault`; enough iterations are used that this happens
    // before `InstLimit` masks it.
    let iters = 64 + rng.below(960) as i64;
    let stride = 8 << rng.below(4);
    let mut b = ProgramBuilder::new();
    let top = b.label();
    b.mov_imm(X0, buf as i64);
    b.mov_imm(X1, 0);
    b.mov_imm(X2, iters);
    b.ptrue(P0, ElemSize::B8);
    b.bind(top);
    b.vload(V0, X0, P0, ElemSize::B8);
    b.load(X3, X0, 0, MemSize::B8);
    b.alu_ri(SAluOp::Add, X3, X3, 1);
    b.store(X3, X0, 0, MemSize::B8);
    b.vstore(V0, X0, P0, ElemSize::B8);
    b.alu_ri(SAluOp::Add, X0, X0, stride);
    b.alu_rr(SAluOp::Add, X0, X0, X10);
    b.alu_ri(SAluOp::Add, X1, X1, 1);
    b.branch(BranchCond::Lt, X1, X2, top);
    b.halt();
    b.build().expect("memory base kernel")
}

/// Gather/scatter kernel over a staged lookup table.
fn gather_kernel(rng: &mut SplitMix64, machine: &mut Machine) -> Program {
    let table = machine.alloc(64 * 8);
    for i in 0..64 {
        machine.write_u64(table + i * 8, rng.next_u64());
    }
    let mut b = ProgramBuilder::new();
    b.mov_imm(X0, table as i64);
    b.ptrue(P0, ElemSize::B64);
    b.mov_imm(X1, rng.i64_in(0, 8));
    b.index(V0, X1, rng.i64_in(1, 7), ElemSize::B64);
    b.vgather(V1, X0, V0, P0, ElemSize::B64, MemSize::B8, 8);
    b.valu_vi(VAluOp::Xor, V1, V1, 0x55, P0, ElemSize::B64);
    b.vscatter(V1, X0, V0, P0, ElemSize::B64, MemSize::B8, 8);
    b.vreduce(RedOp::Add, X2, V1, P0, ElemSize::B64);
    b.halt();
    b.build().expect("gather base kernel")
}

/// QUETZAL kernel: configure, encode from memory, then the read/write/
/// match-count instruction family.
fn qz_kernel(rng: &mut SplitMix64, machine: &mut Machine) -> Program {
    let seq_addr = machine.alloc(64);
    let seq: Vec<u8> = (0..64)
        .map(|i| b"ACGT"[((i as u64 + rng.below(4)) % 4) as usize])
        .collect();
    machine.write_bytes(seq_addr, &seq);
    let esiz_field = rng.below(3) as i64; // valid E2/E8/E64
    let mut b = ProgramBuilder::new();
    b.mov_imm(X0, 128).mov_imm(X1, 128).mov_imm(X2, esiz_field);
    b.qzconf(X0, X1, X2);
    b.mov_imm(X3, seq_addr as i64);
    b.ptrue(P0, ElemSize::B8);
    b.vload(V0, X3, P0, ElemSize::B8);
    // Aligned for every mode (32-, 8- and 1-element alignment).
    b.mov_imm(X4, 32 * rng.i64_in(0, 3));
    b.qzencode(QBufSel::Q0, V0, X4);
    b.ptrue(P1, ElemSize::B64);
    b.mov_imm(X5, rng.i64_in(0, 16));
    b.index(V1, X5, 1, ElemSize::B64);
    b.qzload(V2, V1, QBufSel::Q0, P1);
    b.qzmhm(*rng.pick(&QOPS), V3, V1, V1, P1);
    b.qzstore(V2, V1, QBufSel::Q1, P1);
    b.qzupdate(QzOp::Add, V2, V1, QBufSel::Q1, P1);
    b.qzcount(V4, V2, V3);
    b.halt();
    b.build().expect("qz base kernel")
}

use quetzal_isa::{P0, P1, V0, V1, V2, V3, V4, X0, X1, X10, X2, X3, X4, X5};

/// A seeded generator of adversarial simulation cases.
///
/// Each case is deterministic in `(seed, case)`: the same pair always
/// yields the same mutated program and the same staged machine state.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    seed: u64,
}

/// What [`FaultPlan::stage`] did to the case's base kernel — returned so
/// sweeps can tally coverage per mutation class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Image cut short (often removing the trailing `halt`).
    Truncated,
    /// One instruction overwritten with a random one.
    Mutated,
    /// A random instruction spliced in.
    Inserted,
    /// Program left intact; only operands / SRAM were corrupted.
    OperandsOnly,
}

impl FaultPlan {
    /// Creates a plan from a sweep seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed }
    }

    /// Builds case number `case`: stages adversarial state on `machine`
    /// (which should be freshly reset) and returns the program to run
    /// plus the mutation class applied. The caller is responsible for
    /// budgets (instruction, cycle, page) — faults must surface as
    /// typed errors within those budgets.
    pub fn stage(&self, case: u64, machine: &mut Machine) -> (Program, Mutation) {
        let mut rng = SplitMix64::new(
            self.seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(case),
        );

        let base = match rng.below(5) {
            0 => scalar_kernel(&mut rng),
            1 => vector_kernel(&mut rng),
            2 => memory_kernel(&mut rng, machine),
            3 => gather_kernel(&mut rng, machine),
            _ => qz_kernel(&mut rng, machine),
        };

        let mut insts = base.instructions().to_vec();
        let mutation = match rng.below(4) {
            0 => {
                let keep = 1 + rng.below(insts.len() as u64 - 1) as usize;
                insts.truncate(keep);
                Mutation::Truncated
            }
            1 => {
                let at = rng.below(insts.len() as u64) as usize;
                insts[at] = random_instruction(&mut rng, insts.len());
                Mutation::Mutated
            }
            2 => {
                let at = rng.below(insts.len() as u64 + 1) as usize;
                let inst = random_instruction(&mut rng, insts.len() + 1);
                insts.insert(at, inst);
                Mutation::Inserted
            }
            _ => Mutation::OperandsOnly,
        };

        // Adversarial operands: overwrite a handful of architectural
        // registers with extreme values. Base kernels re-stage their own
        // pointers with `mov_imm`, so this only bites mutated dataflow —
        // exactly the corruption we want to model.
        let state = machine.core_mut().state_mut();
        for _ in 0..rng.below(8) {
            state.set_x(xr(&mut rng), *rng.pick(&EXTREMES));
        }
        for _ in 0..rng.below(4) {
            let v = vr(&mut rng);
            for lane in 0..8 {
                state.set_v_elem(v, lane, ElemSize::B64, *rng.pick(&EXTREMES));
            }
        }
        for _ in 0..rng.below(3) {
            let p = pr(&mut rng);
            state.set_p(p, rng.next_u64());
        }

        // QBUFFER soft errors: flip up to eight SRAM bits per buffer
        // draw. `flip_bit` wraps, so any (word, bit) pair is a cell.
        if rng.chance(0.5) {
            for _ in 0..(1 + rng.below(8)) {
                let sel = rng.below(2) as usize;
                let word = rng.next_u64() as usize;
                let bit = rng.next_u64() as u32;
                state.qz.buf_mut(sel).flip_bit(word, bit);
            }
        }

        (
            Program::from_raw(insts, format!("fault-case-{case}")),
            mutation,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineConfig;

    #[test]
    fn staging_is_deterministic() {
        let plan = FaultPlan::new(0xF417);
        for case in 0..32 {
            let mut m1 = Machine::new(MachineConfig::default());
            let mut m2 = Machine::new(MachineConfig::default());
            let (p1, k1) = plan.stage(case, &mut m1);
            let (p2, k2) = plan.stage(case, &mut m2);
            assert_eq!(p1.instructions(), p2.instructions(), "case {case}");
            assert_eq!(k1, k2);
            assert_eq!(
                m1.core().state().x(quetzal_isa::X7),
                m2.core().state().x(quetzal_isa::X7)
            );
        }
    }

    #[test]
    fn plan_produces_every_mutation_class() {
        let plan = FaultPlan::new(1);
        let mut seen = [false; 4];
        for case in 0..64 {
            let mut m = Machine::new(MachineConfig::default());
            let (_, mutation) = plan.stage(case, &mut m);
            seen[match mutation {
                Mutation::Truncated => 0,
                Mutation::Mutated => 1,
                Mutation::Inserted => 2,
                Mutation::OperandsOnly => 3,
            }] = true;
        }
        assert_eq!(seen, [true; 4], "64 cases must cover all mutations");
    }
}
