//! # QUETZAL — vector acceleration framework for genome sequence analysis
//!
//! A full-system reproduction of *QUETZAL: Vector Acceleration Framework
//! for Modern Genome Sequence Analysis Algorithms* (ISCA 2024): the
//! QUETZAL ISA extension and accelerator micro-architecture, an
//! A64FX-like out-of-order vector CPU simulator to host it, and the
//! genomics substrate the paper's evaluation uses.
//!
//! This crate is the front door. It re-exports the layered workspace:
//!
//! * [`isa`] — the SVE-like vector ISA plus QUETZAL instructions;
//! * [`uarch`] — the cycle-level out-of-order core and cache hierarchy;
//! * [`accel`] — QBUFFERs, data encoder, count ALU, area model;
//! * [`genomics`] — sequences, datasets, distances, CIGAR;
//!
//! and provides [`Machine`]: one simulated core with a QUETZAL instance,
//! a bump allocator for staging inputs in simulated memory, and kernel
//! submission — plus [`BatchRunner`], the deterministic parallel
//! engine that shards independent work items (alignment pairs,
//! windows) across `QUETZAL_THREADS` host threads with bit-identical
//! output for every thread count.
//!
//! ```
//! use quetzal::{Machine, MachineConfig};
//! use quetzal::isa::*;
//!
//! let mut m = Machine::new(MachineConfig::default());
//! let buf = m.alloc(64);
//! m.write_bytes(buf, b"ACGTACGT");
//!
//! let mut b = ProgramBuilder::new();
//! b.mov_imm(X0, buf as i64);
//! b.load(X1, X0, 0, MemSize::B1);
//! b.halt();
//! let stats = m.run(&b.build()?)?;
//! assert_eq!(m.core().state().x(X1), b'A' as u64);
//! assert!(stats.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use quetzal_accel as accel;
pub use quetzal_genomics as genomics;
pub use quetzal_isa as isa;
pub use quetzal_uarch as uarch;
pub use quetzal_verify as verify;

pub mod batch;
pub mod fault;
pub mod ingest;
pub mod pool;

pub use batch::{BatchError, BatchRunner, RunReport};
pub use fault::{FaultPlan, Mutation};
pub use ingest::{
    CrashPlan, CrashSite, IngestConfig, IngestError, IngestSummary, ItemOutput, ShardDeadline,
    ShardReport,
};
pub use pool::{FailureCause, ItemFailure, MachinePool, PoolStats, PooledMachine};
pub use quetzal_accel::{PortCount, QzConfig};
pub use quetzal_isa::Program;
pub use quetzal_uarch::{
    Core, CoreConfig, ExecMode, MemLevelMix, NullProbe, PredecodeRegistry, Probe, RetireEvent,
    RunStats, SimError, StallCat,
};

/// Configuration of a simulated [`Machine`].
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// The core (and attached QUETZAL) configuration.
    pub core: CoreConfig,
}

impl MachineConfig {
    /// The paper's evaluated system: A64FX-like core with the QZ_8P
    /// QUETZAL instance (Table I).
    pub fn a64fx_qz8p() -> MachineConfig {
        MachineConfig {
            core: CoreConfig::a64fx_like(),
        }
    }

    /// Same core with a chosen QUETZAL port configuration (for the
    /// Fig. 12 design-space sweep).
    pub fn with_qz(qz: QzConfig) -> MachineConfig {
        MachineConfig {
            core: CoreConfig::a64fx_like().with_qz(qz),
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::a64fx_qz8p()
    }
}

/// Base of the simulated heap. Kernels receive addresses above this.
const HEAP_BASE: u64 = 0x1000_0000;

/// One simulated core with its QUETZAL accelerator, simulated memory and
/// a bump allocator for staging workload data.
///
/// Cache, accelerator and clock state persist across [`run`](Machine::run)
/// calls, so a driver can submit a workload as a sequence of kernels the
/// way the paper's algorithm implementations do.
/// Generic over an observation [`Probe`]; the default [`NullProbe`]
/// compiles all instrumentation out of the timing hot path.
#[derive(Debug, Clone)]
pub struct Machine<P: Probe = NullProbe> {
    core: Core<P>,
    heap: u64,
}

impl Machine {
    /// Creates a machine (no probe).
    pub fn new(config: MachineConfig) -> Machine {
        Machine::with_probe(config, NullProbe)
    }
}

impl<P: Probe> Machine<P> {
    /// Creates a machine with an attached observation probe.
    pub fn with_probe(config: MachineConfig, probe: P) -> Machine<P> {
        Machine {
            core: Core::with_probe(config.core, probe),
            heap: HEAP_BASE,
        }
    }

    /// The attached observation probe.
    pub fn probe(&self) -> &P {
        self.core.probe()
    }

    /// Mutable access to the attached probe (drain recorded data).
    pub fn probe_mut(&mut self) -> &mut P {
        self.core.probe_mut()
    }

    /// Allocates `bytes` of simulated memory (64-byte aligned). The
    /// memory is zero-initialised.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let addr = self.heap;
        self.heap = (self.heap + bytes + 63) & !63;
        addr
    }

    /// Writes bytes into simulated memory.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        self.core.state_mut().mem.write_bytes(addr, bytes);
    }

    /// Reads bytes from simulated memory.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        self.core.state().mem.read_bytes(addr, len)
    }

    /// Writes a little-endian 64-bit word.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.core.state_mut().mem.write_le(addr, value, 8);
    }

    /// Reads a little-endian 64-bit word.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.core.state().mem.read_le(addr, 8)
    }

    /// Submits a kernel for timed execution.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on instruction-budget exhaustion or invalid
    /// `qzconf`.
    pub fn run(&mut self, program: &Program) -> Result<RunStats, SimError> {
        self.core.run(program)
    }

    /// Submits a kernel to the compiled functional tier directly (no
    /// timing model): bit-identical architectural results and the same
    /// typed [`SimError`] boundary, budget enforcement included, but no
    /// clock. Returns the executed instruction count. Unlike
    /// [`set_exec_mode`](Machine::set_exec_mode) this is a one-off —
    /// the machine's configured engine is untouched.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on instruction-budget exhaustion or invalid
    /// `qzconf`.
    pub fn run_functional(&mut self, program: &Program) -> Result<u64, SimError> {
        self.core.run_functional(program)
    }

    /// Selects which engine [`run`](Machine::run) drives: the
    /// cycle-level out-of-order model (default) or the compiled
    /// functional tier. [`reset`](Machine::reset) restores the default.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.core.set_exec_mode(mode);
    }

    /// The currently selected execution engine.
    pub fn exec_mode(&self) -> ExecMode {
        self.core.exec_mode()
    }

    /// Routes predecode misses through a shared registry, so machines
    /// of one batch decode each program once between them (see
    /// [`PredecodeRegistry`]).
    pub fn set_predecode_registry(&mut self, registry: PredecodeRegistry) {
        self.core.set_predecode_registry(registry);
    }

    /// Cold-boots the machine in place: registers, memory, caches,
    /// QBUFFERs, clock and the heap allocator return to power-on
    /// values, while the big allocations (cache tag arrays, predecode
    /// tables) are reused. Behaviourally identical to constructing a
    /// fresh machine with the same configuration — the batch runner's
    /// machine pool relies on this, and `tests/parallel.rs` pins it.
    pub fn reset(&mut self) {
        self.core.reset();
        self.heap = HEAP_BASE;
    }

    /// The underlying core.
    pub fn core(&self) -> &Core<P> {
        &self.core
    }

    /// Mutable access to the underlying core.
    pub fn core_mut(&mut self) -> &mut Core<P> {
        &mut self.core
    }
}

impl Default for Machine {
    fn default() -> Self {
        Machine::new(MachineConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal_isa::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = Machine::default();
        let a = m.alloc(10);
        let b = m.alloc(100);
        let c = m.alloc(1);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 10);
        assert!(c >= b + 100);
    }

    #[test]
    fn memory_io_round_trip() {
        let mut m = Machine::default();
        let a = m.alloc(64);
        m.write_bytes(a, b"GATTACA");
        assert_eq!(m.read_bytes(a, 7), b"GATTACA");
        m.write_u64(a + 8, 0xFEED);
        assert_eq!(m.read_u64(a + 8), 0xFEED);
    }

    #[test]
    fn run_accumulates_machine_time() {
        let mut m = Machine::default();
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 1).halt();
        let p = b.build().unwrap();
        let s1 = m.run(&p).unwrap();
        let s2 = m.run(&p).unwrap();
        assert!(s1.cycles > 0);
        assert!(s2.cycles > 0);
    }

    #[test]
    fn reset_machine_is_indistinguishable_from_fresh() {
        // A kernel that exercises caches, the branch predictor, vector
        // state and the QBUFFERs, so any state surviving reset would
        // perturb the second run's timing or results.
        let kernel = || {
            let mut b = ProgramBuilder::new();
            let top = b.label();
            b.mov_imm(X0, 0);
            b.mov_imm(X1, 0x2000);
            b.mov_imm(X2, 200);
            b.bind(top);
            b.store(X0, X1, 0, MemSize::B8);
            b.load(X3, X1, 0, MemSize::B8);
            b.alu_ri(SAluOp::Add, X1, X1, 64);
            b.alu_ri(SAluOp::Add, X0, X0, 1);
            b.branch(BranchCond::Lt, X0, X2, top);
            b.mov_imm(X4, 128);
            b.mov_imm(X5, 2);
            b.qzconf(X4, X4, X5);
            b.ptrue(P0, ElemSize::B64);
            b.dup_imm(V0, 3, ElemSize::B64);
            b.dup_imm(V1, 9, ElemSize::B64);
            b.qzupdate(QzOp::Add, V1, V0, QBufSel::Q0, P0);
            b.halt();
            b.build().unwrap()
        };
        let p = kernel();

        let mut pooled = Machine::default();
        let dirty = kernel();
        pooled.alloc(4096);
        pooled.run(&dirty).unwrap();
        pooled.reset();

        let mut fresh = Machine::default();
        let a1 = pooled.alloc(256);
        let a2 = fresh.alloc(256);
        assert_eq!(a1, a2, "heap allocator must restart");
        let s_pooled = pooled.run(&p).unwrap();
        let s_fresh = fresh.run(&p).unwrap();
        assert_eq!(s_pooled, s_fresh, "reset must restore cold-boot timing");
        assert_eq!(
            pooled.core().state().x(X3),
            fresh.core().state().x(X3),
            "architectural results must match"
        );
        assert_eq!(
            pooled.core().state().qz.buf(0).words(),
            fresh.core().state().qz.buf(0).words(),
            "QBUFFER contents must match"
        );
        assert_eq!(
            pooled.core().state().mem.resident_pages(),
            fresh.core().state().mem.resident_pages()
        );
    }

    #[test]
    fn config_presets() {
        let m = MachineConfig::with_qz(QzConfig::QZ_1P);
        assert_eq!(m.core.qz, QzConfig::QZ_1P);
        assert_eq!(MachineConfig::default().core.qz, QzConfig::QZ_8P);
    }
}
