//! # QUETZAL — vector acceleration framework for genome sequence analysis
//!
//! A full-system reproduction of *QUETZAL: Vector Acceleration Framework
//! for Modern Genome Sequence Analysis Algorithms* (ISCA 2024): the
//! QUETZAL ISA extension and accelerator micro-architecture, an
//! A64FX-like out-of-order vector CPU simulator to host it, and the
//! genomics substrate the paper's evaluation uses.
//!
//! This crate is the front door. It re-exports the layered workspace:
//!
//! * [`isa`] — the SVE-like vector ISA plus QUETZAL instructions;
//! * [`uarch`] — the cycle-level out-of-order core and cache hierarchy;
//! * [`accel`] — QBUFFERs, data encoder, count ALU, area model;
//! * [`genomics`] — sequences, datasets, distances, CIGAR;
//!
//! and provides [`Machine`]: one simulated core with a QUETZAL instance,
//! a bump allocator for staging inputs in simulated memory, and kernel
//! submission — plus [`BatchRunner`], the deterministic parallel
//! engine that shards independent work items (alignment pairs,
//! windows) across `QUETZAL_THREADS` host threads with bit-identical
//! output for every thread count.
//!
//! ```
//! use quetzal::{Machine, MachineConfig};
//! use quetzal::isa::*;
//!
//! let mut m = Machine::new(MachineConfig::default());
//! let buf = m.alloc(64);
//! m.write_bytes(buf, b"ACGTACGT");
//!
//! let mut b = ProgramBuilder::new();
//! b.mov_imm(X0, buf as i64);
//! b.load(X1, X0, 0, MemSize::B1);
//! b.halt();
//! let stats = m.run(&b.build()?)?;
//! assert_eq!(m.core().state().x(X1), b'A' as u64);
//! assert!(stats.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use quetzal_accel as accel;
pub use quetzal_genomics as genomics;
pub use quetzal_isa as isa;
pub use quetzal_uarch as uarch;

pub mod batch;

pub use batch::{BatchError, BatchRunner};
pub use quetzal_accel::{PortCount, QzConfig};
pub use quetzal_isa::Program;
pub use quetzal_uarch::{Core, CoreConfig, RunStats, SimError, StallCat};

/// Configuration of a simulated [`Machine`].
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// The core (and attached QUETZAL) configuration.
    pub core: CoreConfig,
}

impl MachineConfig {
    /// The paper's evaluated system: A64FX-like core with the QZ_8P
    /// QUETZAL instance (Table I).
    pub fn a64fx_qz8p() -> MachineConfig {
        MachineConfig {
            core: CoreConfig::a64fx_like(),
        }
    }

    /// Same core with a chosen QUETZAL port configuration (for the
    /// Fig. 12 design-space sweep).
    pub fn with_qz(qz: QzConfig) -> MachineConfig {
        MachineConfig {
            core: CoreConfig::a64fx_like().with_qz(qz),
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::a64fx_qz8p()
    }
}

/// Base of the simulated heap. Kernels receive addresses above this.
const HEAP_BASE: u64 = 0x1000_0000;

/// One simulated core with its QUETZAL accelerator, simulated memory and
/// a bump allocator for staging workload data.
///
/// Cache, accelerator and clock state persist across [`run`](Machine::run)
/// calls, so a driver can submit a workload as a sequence of kernels the
/// way the paper's algorithm implementations do.
#[derive(Debug, Clone)]
pub struct Machine {
    core: Core,
    heap: u64,
}

impl Machine {
    /// Creates a machine.
    pub fn new(config: MachineConfig) -> Machine {
        Machine {
            core: Core::new(config.core),
            heap: HEAP_BASE,
        }
    }

    /// Allocates `bytes` of simulated memory (64-byte aligned). The
    /// memory is zero-initialised.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let addr = self.heap;
        self.heap = (self.heap + bytes + 63) & !63;
        addr
    }

    /// Writes bytes into simulated memory.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        self.core.state_mut().mem.write_bytes(addr, bytes);
    }

    /// Reads bytes from simulated memory.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        self.core.state().mem.read_bytes(addr, len)
    }

    /// Writes a little-endian 64-bit word.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.core.state_mut().mem.write_le(addr, value, 8);
    }

    /// Reads a little-endian 64-bit word.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.core.state().mem.read_le(addr, 8)
    }

    /// Submits a kernel for timed execution.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on instruction-budget exhaustion or invalid
    /// `qzconf`.
    pub fn run(&mut self, program: &Program) -> Result<RunStats, SimError> {
        self.core.run(program)
    }

    /// The underlying core.
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// Mutable access to the underlying core.
    pub fn core_mut(&mut self) -> &mut Core {
        &mut self.core
    }
}

impl Default for Machine {
    fn default() -> Self {
        Machine::new(MachineConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal_isa::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = Machine::default();
        let a = m.alloc(10);
        let b = m.alloc(100);
        let c = m.alloc(1);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 10);
        assert!(c >= b + 100);
    }

    #[test]
    fn memory_io_round_trip() {
        let mut m = Machine::default();
        let a = m.alloc(64);
        m.write_bytes(a, b"GATTACA");
        assert_eq!(m.read_bytes(a, 7), b"GATTACA");
        m.write_u64(a + 8, 0xFEED);
        assert_eq!(m.read_u64(a + 8), 0xFEED);
    }

    #[test]
    fn run_accumulates_machine_time() {
        let mut m = Machine::default();
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 1).halt();
        let p = b.build().unwrap();
        let s1 = m.run(&p).unwrap();
        let s2 = m.run(&p).unwrap();
        assert!(s1.cycles > 0);
        assert!(s2.cycles > 0);
    }

    #[test]
    fn config_presets() {
        let m = MachineConfig::with_qz(QzConfig::QZ_1P);
        assert_eq!(m.core.qz, QzConfig::QZ_1P);
        assert_eq!(MachineConfig::default().core.qz, QzConfig::QZ_8P);
    }
}
