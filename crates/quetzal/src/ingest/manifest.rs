//! Durable per-shard checkpoint manifests.
//!
//! A shard's results live in two files inside the checkpoint directory:
//!
//! * `shard-NNNNNN.out` — the shard's report lines (one compact JSON
//!   document per item, in item order);
//! * `shard-NNNNNN.manifest` — the commit record: shard identity, input
//!   checksum, outcome tallies, and the output file's length and
//!   checksum, terminated by a checksum over the manifest bytes
//!   themselves.
//!
//! The manifest is the *commit point*. It is written after the output
//! file, via write-to-temp + `sync_all` + `rename`, so a crash leaves
//! either no manifest, a stale temp file (ignored), or a complete
//! manifest — never a silently half-trusted checkpoint. Anything that
//! deviates from the expected shape — truncation, a bit flip, a stale
//! format version, an interrupted non-atomic write — fails the trailing
//! checksum or the field grammar and comes back as [`ManifestState::Torn`],
//! which resumption treats exactly like "shard not done": the shard is
//! re-run and the torn files are overwritten. Corruption is therefore a
//! typed, recoverable state, not a crash.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Incremental FNV-1a hasher — the workspace's zero-dependency content
/// checksum (collision resistance is not a goal; torn-write and
/// bit-flip *detection* is).
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// Fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64::default()
    }

    /// Absorbs bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The digest so far.
    pub fn digest(&self) -> u64 {
        self.0
    }
}

/// FNV-1a of one byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.digest()
}

/// How a completed shard ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStatus {
    /// Every item ran (some may still have failed individually).
    Done,
    /// The shard hit its deadline / budget; unrun items are recorded as
    /// failures and the shard is skipped on resume.
    Quarantined,
}

/// The durable commit record of one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Shard index (0-based, dense).
    pub shard: u64,
    /// Global index of the shard's first item.
    pub start: u64,
    /// Items in the shard.
    pub count: u64,
    /// Checksum over the shard's input items (order-sensitive), used to
    /// detect a checkpoint directory being resumed against different
    /// input.
    pub input_fnv: u64,
    /// Whether the shard ran to completion or was quarantined.
    pub status: ShardStatus,
    /// Human-readable quarantine cause (empty when [`ShardStatus::Done`]).
    pub cause: String,
    /// Items that produced a result.
    pub ok: u64,
    /// Items that failed (both attempts, or never ran due to quarantine).
    pub failed: u64,
    /// Items recovered by the fresh-machine retry.
    pub recovered: u64,
    /// Simulated cycles over the shard's healthy items.
    pub cycles: u64,
    /// Retired instructions over the shard's healthy items.
    pub instructions: u64,
    /// Byte length of the shard's output file.
    pub output_len: u64,
    /// FNV-1a of the shard's output file.
    pub output_fnv: u64,
}

/// Why a manifest on disk could not be trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestFault(pub String);

impl std::fmt::Display for ManifestFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// What [`load`] found for a shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestState {
    /// No manifest on disk: the shard never committed.
    Absent,
    /// A manifest exists but is torn, truncated, bit-flipped, stale, or
    /// unreadable. Treated exactly like [`ManifestState::Absent`] by
    /// resumption (re-run the shard), but surfaced distinctly so
    /// observers can count detected corruption.
    Torn(ManifestFault),
    /// A complete, checksum-valid manifest.
    Committed(ShardManifest),
}

const VERSION_LINE: &str = "qz-ingest-shard v1";

/// Parses exactly 16 *lowercase* hex digits. Strictness matters: a
/// case-insensitive parser would accept a case-bit flip in a stored
/// checksum as the same value, defeating the bit-flip detection the
/// manifest tests pin.
fn parse_hex16(s: &str) -> Option<u64> {
    if s.len() != 16 || !s.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

fn status_code(status: ShardStatus) -> &'static str {
    match status {
        ShardStatus::Done => "done",
        ShardStatus::Quarantined => "quarantined",
    }
}

fn parse_status(code: &str) -> Result<ShardStatus, ManifestFault> {
    match code {
        "done" => Ok(ShardStatus::Done),
        "quarantined" => Ok(ShardStatus::Quarantined),
        other => Err(ManifestFault(format!("unknown status '{other}'"))),
    }
}

/// Path of a shard's manifest file.
pub fn manifest_path(dir: &Path, shard: u64) -> PathBuf {
    dir.join(format!("shard-{shard:06}.manifest"))
}

/// Path of a shard's output file.
pub fn output_path(dir: &Path, shard: u64) -> PathBuf {
    dir.join(format!("shard-{shard:06}.out"))
}

impl ShardManifest {
    /// Serialises the manifest, trailing self-checksum included.
    pub fn encode(&self) -> Vec<u8> {
        // The cause rides on one line; newlines in it would break the
        // line grammar, so they are flattened.
        let cause = if self.cause.is_empty() {
            "-".to_string()
        } else {
            self.cause.replace(['\n', '\r'], " ")
        };
        let body = format!(
            "{VERSION_LINE}\nshard {}\nstart {}\ncount {}\ninput_fnv {:016x}\nstatus {}\ncause {}\nok {}\nfailed {}\nrecovered {}\ncycles {}\ninstructions {}\noutput_len {}\noutput_fnv {:016x}\n",
            self.shard,
            self.start,
            self.count,
            self.input_fnv,
            status_code(self.status),
            cause,
            self.ok,
            self.failed,
            self.recovered,
            self.cycles,
            self.instructions,
            self.output_len,
            self.output_fnv,
        );
        let mut bytes = body.into_bytes();
        let crc = fnv64(&bytes);
        bytes.extend_from_slice(format!("crc {crc:016x}\n").as_bytes());
        bytes
    }

    /// Parses and checksum-verifies a serialised manifest.
    ///
    /// # Errors
    ///
    /// Returns [`ManifestFault`] for *any* deviation — truncation, a
    /// failed trailing checksum, a stale version, unknown or out-of-order
    /// fields, non-numeric values. Every fault maps to "shard not done".
    pub fn decode(bytes: &[u8]) -> Result<ShardManifest, ManifestFault> {
        let text =
            std::str::from_utf8(bytes).map_err(|e| ManifestFault(format!("not UTF-8: {e}")))?;
        if !text.ends_with('\n') {
            return Err(ManifestFault("missing trailing newline (truncated)".into()));
        }
        let crc_start = text[..text.len() - 1]
            .rfind('\n')
            .map(|i| i + 1)
            .unwrap_or(0);
        let (body, crc_line) = text.split_at(crc_start);
        let claimed = crc_line
            .strip_prefix("crc ")
            .and_then(|s| parse_hex16(s.trim_end()))
            .ok_or_else(|| ManifestFault("missing or malformed crc line".into()))?;
        let actual = fnv64(body.as_bytes());
        if claimed != actual {
            return Err(ManifestFault(format!(
                "checksum mismatch (stored {claimed:016x}, computed {actual:016x})"
            )));
        }
        let mut lines = body.lines();
        if lines.next() != Some(VERSION_LINE) {
            return Err(ManifestFault("unknown manifest version".into()));
        }
        let mut field = |key: &str| -> Result<String, ManifestFault> {
            let line = lines
                .next()
                .ok_or_else(|| ManifestFault(format!("missing field '{key}'")))?;
            line.strip_prefix(key)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| ManifestFault(format!("expected field '{key}', got '{line}'")))
        };
        let dec = |key: &str, s: String| -> Result<u64, ManifestFault> {
            s.parse::<u64>()
                .map_err(|_| ManifestFault(format!("field '{key}' is not an integer")))
        };
        let hex = |key: &str, s: String| -> Result<u64, ManifestFault> {
            parse_hex16(&s)
                .ok_or_else(|| ManifestFault(format!("field '{key}' is not 16-digit hex")))
        };
        let shard = dec("shard", field("shard")?)?;
        let start = dec("start", field("start")?)?;
        let count = dec("count", field("count")?)?;
        let input_fnv = hex("input_fnv", field("input_fnv")?)?;
        let status = parse_status(&field("status")?)?;
        let cause_raw = field("cause")?;
        let cause = if cause_raw == "-" {
            String::new()
        } else {
            cause_raw
        };
        let ok = dec("ok", field("ok")?)?;
        let failed = dec("failed", field("failed")?)?;
        let recovered = dec("recovered", field("recovered")?)?;
        let cycles = dec("cycles", field("cycles")?)?;
        let instructions = dec("instructions", field("instructions")?)?;
        let output_len = dec("output_len", field("output_len")?)?;
        let output_fnv = hex("output_fnv", field("output_fnv")?)?;
        if lines.next().is_some() {
            return Err(ManifestFault("trailing data after manifest fields".into()));
        }
        Ok(ShardManifest {
            shard,
            start,
            count,
            input_fnv,
            status,
            cause,
            ok,
            failed,
            recovered,
            cycles,
            instructions,
            output_len,
            output_fnv,
        })
    }
}

/// Loads a shard's manifest: [`ManifestState::Absent`] when the file
/// does not exist, [`ManifestState::Torn`] for anything unreadable or
/// checksum-invalid, [`ManifestState::Committed`] otherwise.
pub fn load(dir: &Path, shard: u64) -> ManifestState {
    let path = manifest_path(dir, shard);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => return ManifestState::Absent,
        Err(e) => return ManifestState::Torn(ManifestFault(format!("unreadable: {e}"))),
        Ok(mut f) => {
            if let Err(e) = f.read_to_end(&mut bytes) {
                return ManifestState::Torn(ManifestFault(format!("unreadable: {e}")));
            }
        }
    }
    match ShardManifest::decode(&bytes) {
        Ok(m) if m.shard == shard => ManifestState::Committed(m),
        Ok(m) => ManifestState::Torn(ManifestFault(format!(
            "manifest names shard {} but sits in slot {shard}",
            m.shard
        ))),
        Err(fault) => ManifestState::Torn(fault),
    }
}

/// Writes `bytes` to `path` atomically: temp file in the same
/// directory, `sync_all`, then `rename` over the destination.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Durability of the rename itself: fsync the directory (best
    // effort — some filesystems refuse to sync a directory handle).
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Commits a shard's manifest atomically (the checkpoint's commit
/// point — call only after the output file is durable).
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn store(dir: &Path, manifest: &ShardManifest) -> io::Result<()> {
    write_atomic(&manifest_path(dir, manifest.shard), &manifest.encode())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardManifest {
        ShardManifest {
            shard: 3,
            start: 96,
            count: 32,
            input_fnv: 0xdead_beef_cafe_f00d,
            status: ShardStatus::Done,
            cause: String::new(),
            ok: 31,
            failed: 1,
            recovered: 2,
            cycles: 123_456,
            instructions: 78_910,
            output_len: 2048,
            output_fnv: 0x0123_4567_89ab_cdef,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let m = sample();
        assert_eq!(ShardManifest::decode(&m.encode()).unwrap(), m);
        let q = ShardManifest {
            status: ShardStatus::Quarantined,
            cause: "wall deadline 5ms exceeded\nafter 3 item(s)".to_string(),
            ..sample()
        };
        let back = ShardManifest::decode(&q.encode()).unwrap();
        assert_eq!(back.status, ShardStatus::Quarantined);
        assert!(back.cause.contains("wall deadline"), "cause survives");
        assert!(!back.cause.contains('\n'), "newlines are flattened");
    }

    #[test]
    fn every_truncation_is_torn_not_a_crash() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                ShardManifest::decode(&bytes[..cut]).is_err(),
                "truncation at byte {cut} must not decode"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[i] ^= 1 << bit;
                assert!(
                    ShardManifest::decode(&flipped).is_err(),
                    "bit flip at byte {i} bit {bit} must not decode"
                );
            }
        }
    }

    #[test]
    fn load_distinguishes_absent_and_torn() {
        let dir = std::env::temp_dir().join(format!(
            "qz-manifest-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(load(&dir, 0), ManifestState::Absent);
        let m = ShardManifest {
            shard: 0,
            ..sample()
        };
        store(&dir, &m).unwrap();
        assert_eq!(load(&dir, 0), ManifestState::Committed(m.clone()));
        // Torn write: only half the manifest bytes reach the disk.
        let enc = m.encode();
        fs::write(manifest_path(&dir, 0), &enc[..enc.len() / 2]).unwrap();
        assert!(matches!(load(&dir, 0), ManifestState::Torn(_)));
        // A manifest renamed into the wrong slot is torn, not trusted.
        store(&dir, &m).unwrap();
        fs::rename(manifest_path(&dir, 0), manifest_path(&dir, 7)).unwrap();
        assert!(matches!(load(&dir, 7), ManifestState::Torn(_)));
        fs::remove_dir_all(&dir).unwrap();
    }
}
