//! Machine lifecycle management: pooling, quarantine, and the
//! retry-on-fresh-machine fault boundary.
//!
//! This module is the **single owner** of `Machine` lifecycle semantics.
//! Both consumers drive it:
//!
//! * the one-shot [`BatchRunner`](crate::BatchRunner) entry points build
//!   a pool per call (or accept a caller-owned one);
//! * the `qzserved` alignment daemon (`quetzal-served`) keeps one
//!   long-lived pool per tenant across jobs.
//!
//! The rules, in one place:
//!
//! * **checkout** hands out a machine [`Machine::reset`] to cold-boot
//!   state, or builds a fresh one — reset ≡ fresh is pinned by
//!   `tests/parallel.rs`, so the two are indistinguishable;
//! * **return** happens on drop of the [`PooledMachine`] guard, back to
//!   the free list — unless the thread is unwinding, in which case the
//!   machine is **quarantined**: a panic mid-run leaves state `reset`
//!   is not pinned against;
//! * a machine live during any per-item failure is quarantined via
//!   [`PooledMachine::replace_with_fresh`] and the item retried **once**
//!   on a brand-new (never pooled) machine — the
//!   [`retry_item`] boundary used by every fault-tolerant entry point;
//! * quarantined machines are never handed out again, only counted
//!   ([`MachinePool::stats`]) — a service surfaces the tally instead of
//!   trying to prove a poisoned machine clean.

use crate::{ExecMode, Machine, MachineConfig, PredecodeRegistry, SimError};
use quetzal_verify::Report as VerifyReport;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Best-effort panic payload extraction.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Locks a pool list, ignoring lock poisoning: the lists are only ever
/// pushed to / popped from, and a panic cannot unwind mid-`Vec`
/// operation in a way that leaves the list structurally broken.
pub(crate) fn lock(list: &Mutex<Vec<Machine>>) -> std::sync::MutexGuard<'_, Vec<Machine>> {
    list.lock().unwrap_or_else(|e| e.into_inner())
}

/// Why a single batch item failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureCause {
    /// The work closure returned a typed simulation error.
    Sim(SimError),
    /// The work closure panicked; the payload, if it was a string.
    Panic(String),
    /// The `*_verified` entry points rejected the item's program before
    /// any simulation ran: `quetzal-verify` proved it would fault. The
    /// full static report says where and why.
    Rejected(VerifyReport),
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureCause::Sim(e) => write!(f, "simulation error: {e}"),
            FailureCause::Panic(msg) => write!(f, "panic: {msg}"),
            FailureCause::Rejected(report) => write!(
                f,
                "statically rejected: program '{}' has {} diagnostic(s)",
                report.name(),
                report.diagnostics().len()
            ),
        }
    }
}

/// One failed item of a [`RunReport`](crate::RunReport). The recorded
/// cause is the *first* attempt's failure; `recovered` says whether the
/// retry on a fresh context produced a result after all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemFailure {
    /// Index of the failing item in the input slice.
    pub item: usize,
    /// What the first attempt died of.
    pub cause: FailureCause,
    /// `true` if the one retry on a brand-new context succeeded (the
    /// item's result is present despite the failure entry).
    pub recovered: bool,
}

impl std::fmt::Display for ItemFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "item {}: {}{}",
            self.item,
            self.cause,
            if self.recovered {
                " (recovered on retry)"
            } else {
                ""
            }
        )
    }
}

/// Occupancy counters of a [`MachinePool`] — what a service reports per
/// tenant: how many machines were ever built, how many sit idle, and
/// how many were quarantined by failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Machines ever constructed by this pool (fresh + fault
    /// replacements).
    pub built: u64,
    /// Machines currently idle in the free list.
    pub free: usize,
    /// Machines quarantined by panics or per-item failures.
    pub quarantined: usize,
}

/// A pool of reusable [`Machine`]s over one configuration.
///
/// Machines are recycled through `free` (reset-on-checkout), except
/// machines that were live during a panic or a failed item: those are
/// moved to `quarantine` and never handed out again — a machine that
/// unwound mid-run may violate the invariants [`Machine::reset`]
/// assumes, and a machine involved in a fault is cheaper to replace
/// than to prove clean.
///
/// The machine-pooled [`BatchRunner`](crate::BatchRunner) entry points
/// build a pool per call; callers that run many batches over the same
/// configuration — repeated timing samples of one kernel, or a
/// long-lived service's per-tenant pools — build one pool up front and
/// pass it to the `*_pooled` entry points, amortising machine
/// construction (multi-megabyte cache tag arrays) across batches.
/// Checkout resets every recycled machine to cold-boot state (reset ≡
/// fresh is pinned by `tests/parallel.rs`), so results are bit-identical
/// to per-call pools.
pub struct MachinePool {
    config: MachineConfig,
    registry: PredecodeRegistry,
    /// Engine every pooled machine runs on. Applied after construction
    /// *and* after every reset ([`Machine::reset`] restores the
    /// cold-boot default, [`ExecMode::Cycle`]).
    exec_mode: ExecMode,
    built: AtomicU64,
    free: Mutex<Vec<Machine>>,
    quarantine: Mutex<Vec<Machine>>,
}

impl MachinePool {
    /// Creates an empty pool over `config` (cloned — the pool owns its
    /// configuration, so it can outlive the caller's borrow; a
    /// long-lived daemon keeps pools for the process lifetime). Every
    /// machine it hands out runs on `exec_mode` (applied after
    /// construction and after every reset-on-checkout).
    pub fn new(config: &MachineConfig, exec_mode: ExecMode) -> MachinePool {
        MachinePool {
            config: config.clone(),
            registry: PredecodeRegistry::new(),
            exec_mode,
            built: AtomicU64::new(0),
            free: Mutex::new(Vec::new()),
            quarantine: Mutex::new(Vec::new()),
        }
    }

    /// The configuration every pooled machine is built from.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The execution engine applied to every checkout.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Current occupancy counters (built / free / quarantined).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            built: self.built.load(Ordering::Relaxed),
            free: lock(&self.free).len(),
            quarantined: lock(&self.quarantine).len(),
        }
    }

    /// Drops every quarantined machine, returning how many were
    /// reclaimed. A long-lived service calls this to cap memory; the
    /// quarantine tally in [`stats`](Self::stats) then restarts from
    /// zero, so services should accumulate the count before purging.
    pub fn purge_quarantine(&self) -> usize {
        let mut q = lock(&self.quarantine);
        let n = q.len();
        q.clear();
        n
    }

    /// A brand-new machine (never pooled) sharing the run's predecode
    /// registry and execution mode.
    fn fresh(&self) -> Machine {
        self.built.fetch_add(1, Ordering::Relaxed);
        let mut machine = Machine::new(self.config.clone());
        machine.set_predecode_registry(self.registry.clone());
        machine.set_exec_mode(self.exec_mode);
        machine
    }

    /// Checks a machine out of the free list (reset to cold-boot
    /// state), or builds a fresh one if the list is empty.
    pub fn checkout(&self) -> PooledMachine<'_> {
        let machine = match lock(&self.free).pop() {
            Some(mut machine) => {
                machine.reset();
                machine.set_exec_mode(self.exec_mode);
                machine
            }
            None => self.fresh(),
        };
        PooledMachine {
            machine: Some(machine),
            pool: self,
        }
    }

    #[cfg(test)]
    pub(crate) fn free_list(&self) -> &Mutex<Vec<Machine>> {
        &self.free
    }

    #[cfg(test)]
    pub(crate) fn quarantine_list(&self) -> &Mutex<Vec<Machine>> {
        &self.quarantine
    }
}

impl std::fmt::Debug for MachinePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("MachinePool")
            .field("exec_mode", &self.exec_mode)
            .field("built", &stats.built)
            .field("free", &stats.free)
            .field("quarantined", &stats.quarantined)
            .finish_non_exhaustive()
    }
}

/// A machine checked out of a [`MachinePool`]. On drop it returns to
/// the free list — unless the thread is unwinding, in which case it is
/// quarantined (a panic mid-[`Machine::run`] leaves state `reset` is
/// not pinned against).
pub struct PooledMachine<'a> {
    machine: Option<Machine>,
    pool: &'a MachinePool,
}

impl PooledMachine<'_> {
    /// The checked-out machine.
    pub fn machine(&mut self) -> &mut Machine {
        self.machine.as_mut().expect("checked-out machine")
    }

    /// Quarantines the current machine and installs a brand-new one —
    /// the fault-recovery path: never re-pool a machine that was live
    /// during a failure.
    pub fn replace_with_fresh(&mut self) {
        if let Some(old) = self.machine.take() {
            lock(&self.pool.quarantine).push(old);
        }
        self.machine = Some(self.pool.fresh());
    }
}

impl Drop for PooledMachine<'_> {
    fn drop(&mut self) {
        let Some(machine) = self.machine.take() else {
            return;
        };
        if std::thread::panicking() {
            lock(&self.pool.quarantine).push(machine);
        } else {
            lock(&self.pool.free).push(machine);
        }
    }
}

/// Runs one attempt of a fallible work closure inside a panic boundary,
/// folding both failure modes into a [`FailureCause`].
pub(crate) fn attempt<C, R>(
    ctx: &mut C,
    work: impl FnOnce(&mut C) -> Result<R, SimError>,
) -> Result<R, FailureCause> {
    match catch_unwind(AssertUnwindSafe(|| work(ctx))) {
        Ok(Ok(r)) => Ok(r),
        Ok(Err(e)) => Err(FailureCause::Sim(e)),
        Err(payload) => Err(FailureCause::Panic(panic_message(payload))),
    }
}

/// The per-item fault boundary shared by every fault-tolerant batch
/// entry point: try the item, and on failure replace the context with a
/// brand-new one (`replace` — for machines, quarantine + fresh) and
/// retry **once**. After a failed retry the context is replaced again,
/// so later items of the shard never run on a context a failure
/// touched. Returns the item's result slot plus its failure-log entry.
pub(crate) fn retry_item<C, T, R>(
    ctx: &mut C,
    replace: impl Fn(&mut C),
    i: usize,
    item: &T,
    work: impl Fn(&mut C, usize, &T) -> Result<R, SimError> + Sync,
) -> (Option<R>, Option<ItemFailure>) {
    match attempt(ctx, |c| work(c, i, item)) {
        Ok(r) => (Some(r), None),
        Err(cause) => {
            replace(ctx);
            let failure = |recovered| ItemFailure {
                item: i,
                cause: cause.clone(),
                recovered,
            };
            match attempt(ctx, |c| work(c, i, item)) {
                Ok(r) => (Some(r), Some(failure(true))),
                Err(_) => {
                    replace(ctx);
                    (None, Some(failure(false)))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_counts_built_free_and_quarantined() {
        let config = MachineConfig::default();
        let pool = MachinePool::new(&config, ExecMode::default());
        assert_eq!(pool.stats(), PoolStats::default());
        {
            let mut a = pool.checkout();
            let _ = a.machine();
            let mut b = pool.checkout();
            let _ = b.machine();
            assert_eq!(pool.stats().built, 2);
            b.replace_with_fresh();
            assert_eq!(pool.stats().built, 3);
            assert_eq!(pool.stats().quarantined, 1);
        }
        let stats = pool.stats();
        assert_eq!(stats.free, 2, "both guards returned their machines");
        assert_eq!(pool.purge_quarantine(), 1);
        assert_eq!(pool.stats().quarantined, 0);
        // A checkout after the purge recycles, so nothing new is built.
        let _ = pool.checkout();
        assert_eq!(pool.stats().built, 3);
    }

    #[test]
    fn checkout_prefers_recycled_machines() {
        let config = MachineConfig::default();
        let pool = MachinePool::new(&config, ExecMode::default());
        drop(pool.checkout());
        assert_eq!(pool.stats().built, 1);
        drop(pool.checkout());
        assert_eq!(pool.stats().built, 1, "second checkout reused the first");
    }

    #[test]
    fn retry_item_replaces_context_on_both_failures() {
        // First attempt and retry both fail: the context must be
        // replaced twice, and the failure must be unrecovered.
        let replaced = std::sync::atomic::AtomicUsize::new(0);
        let mut ctx = 0u64;
        let (result, failure) = retry_item(
            &mut ctx,
            |_c| {
                replaced.fetch_add(1, Ordering::Relaxed);
            },
            4,
            &(),
            |_c, _i, _item| -> Result<u64, SimError> { Err(SimError::InstLimit { budget: 1 }) },
        );
        assert!(result.is_none());
        assert_eq!(replaced.load(Ordering::Relaxed), 2);
        let failure = failure.expect("failure entry");
        assert_eq!(failure.item, 4);
        assert!(!failure.recovered);
        assert_eq!(
            failure.cause,
            FailureCause::Sim(SimError::InstLimit { budget: 1 })
        );
    }
}
