//! Deterministic parallel batch simulation.
//!
//! The paper's evaluation simulates thousands of *independent*
//! alignment pairs per experiment — embarrassing parallelism that the
//! accelerator exploits in hardware and that the host-side experiment
//! harness exploits here. [`BatchRunner`] shards a slice of independent
//! work items across `QUETZAL_THREADS` worker threads, each shard
//! simulated on its own fresh [`Machine`] (core + caches + QBUFFERs).
//!
//! # Determinism guarantee
//!
//! The output is **bit-identical for every thread count**, including 1.
//! This holds by construction:
//!
//! 1. items are split into shards as a pure function of the item count
//!    and the configured shard size — never of the thread count;
//! 2. every shard starts from a cold, identically configured context
//!    (for simulations: a fresh [`Machine`], or a pooled one
//!    [`Machine::reset`] to the indistinguishable cold-boot state), so
//!    a shard's results do not depend on which worker ran it or on
//!    what ran before it;
//! 3. per-item results are written into pre-assigned slots and merged
//!    in shard order, never in completion order;
//! 4. a panicking shard poisons only itself (panic isolation); the
//!    runner reports the failure of the *lowest-numbered* failing
//!    shard, which again does not depend on scheduling.
//!
//! Thread-count invariance is enforced by `tests/parallel.rs`, and the
//! experiment harness (`quetzal-bench`) relies on it: speedup tables
//! must be byte-identical between `QUETZAL_THREADS=1` and `=N` runs.
//!
//! ```
//! use quetzal::{BatchRunner, Machine, MachineConfig};
//!
//! let runner = BatchRunner::new(4);
//! let items = [3u64, 1, 4, 1, 5, 9, 2, 6];
//! let doubled = runner
//!     .run(&items, || (), |(), _idx, &x| 2 * x)
//!     .unwrap();
//! assert_eq!(doubled, vec![6, 2, 8, 2, 10, 18, 4, 12]);
//! ```

use crate::{Machine, MachineConfig, PredecodeRegistry};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Shard context of [`BatchRunner::run_machines`]: a machine checked
/// out of the run's pool, returned on drop (including on shard panic —
/// the next checkout resets it back to cold-boot state).
struct PooledMachine<'a> {
    machine: Option<Machine>,
    pool: &'a Mutex<Vec<Machine>>,
}

impl Drop for PooledMachine<'_> {
    fn drop(&mut self) {
        if let (Some(machine), Ok(mut pool)) = (self.machine.take(), self.pool.lock()) {
            pool.push(machine);
        }
    }
}

/// Environment variable selecting the worker-thread count
/// (`QUETZAL_THREADS`). Unset or invalid values fall back to the host's
/// available parallelism.
pub const THREADS_ENV: &str = "QUETZAL_THREADS";

/// A shard of the batch panicked. The work closure of every other shard
/// still ran to completion (panic isolation); the runner reports the
/// lowest-numbered failing shard so the error, too, is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchError {
    /// Index of the failing shard.
    pub shard: usize,
    /// Range of item indices the shard covered.
    pub items: (usize, usize),
    /// The panic payload, if it was a string.
    pub message: String,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch shard {} (items {}..{}) panicked: {}",
            self.shard, self.items.0, self.items.1, self.message
        )
    }
}

impl std::error::Error for BatchError {}

/// Deterministic parallel executor for slices of independent work items.
///
/// See the [module docs](self) for the determinism guarantee.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    threads: usize,
    shard_size: usize,
}

impl BatchRunner {
    /// Creates a runner with an explicit worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> BatchRunner {
        assert!(threads > 0, "at least one worker thread");
        BatchRunner {
            threads,
            shard_size: 1,
        }
    }

    /// Creates a runner with the thread count from `QUETZAL_THREADS`,
    /// falling back to the host's available parallelism (then 1).
    pub fn from_env() -> BatchRunner {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        BatchRunner::new(threads)
    }

    /// Sets how many consecutive items share one shard (and therefore
    /// one fresh context / machine). Larger shards amortise context
    /// setup and keep simulated caches warm across a shard's items;
    /// the default of 1 maximises parallelism.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_shard_size(mut self, n: usize) -> BatchRunner {
        assert!(n > 0, "shard size must be positive");
        self.shard_size = n;
        self
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `work` over every item, in parallel across shards.
    ///
    /// `init` builds one fresh per-shard context (typically a
    /// [`Machine`]); `work(ctx, index, item)` processes item `index`.
    /// Items of one shard are processed in index order on the same
    /// context. Results come back in item order.
    ///
    /// # Errors
    ///
    /// Returns [`BatchError`] if any shard panicked.
    pub fn run<C, T, R>(
        &self,
        items: &[T],
        init: impl Fn() -> C + Sync,
        work: impl Fn(&mut C, usize, &T) -> R + Sync,
    ) -> Result<Vec<R>, BatchError>
    where
        T: Sync,
        R: Send,
    {
        // One slot per shard: the shard's results, or the panic message.
        type ShardSlot<R> = Mutex<Option<Result<Vec<R>, String>>>;
        let shard_count = items.len().div_ceil(self.shard_size);
        let mut slots: Vec<ShardSlot<R>> = Vec::new();
        slots.resize_with(shard_count, || Mutex::new(None));
        let next = AtomicUsize::new(0);

        let run_shard = |shard: usize| -> Result<Vec<R>, String> {
            let lo = shard * self.shard_size;
            let hi = (lo + self.shard_size).min(items.len());
            catch_unwind(AssertUnwindSafe(|| {
                let mut ctx = init();
                (lo..hi)
                    .map(|i| work(&mut ctx, i, &items[i]))
                    .collect::<Vec<R>>()
            }))
            .map_err(|payload| {
                if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                }
            })
        };

        let workers = self.threads.min(shard_count.max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let shard = next.fetch_add(1, Ordering::Relaxed);
                    if shard >= shard_count {
                        break;
                    }
                    let outcome = run_shard(shard);
                    *slots[shard].lock().expect("result slot") = Some(outcome);
                });
            }
        });

        // Deterministic merge: shard order, first failure wins.
        let mut out = Vec::with_capacity(items.len());
        for (shard, slot) in slots.into_iter().enumerate() {
            let outcome = slot
                .into_inner()
                .expect("result slot")
                .expect("every shard was claimed by a worker");
            match outcome {
                Ok(rs) => out.extend(rs),
                Err(message) => {
                    let lo = shard * self.shard_size;
                    let hi = (lo + self.shard_size).min(items.len());
                    return Err(BatchError {
                        shard,
                        items: (lo, hi),
                        message,
                    });
                }
            }
        }
        Ok(out)
    }

    /// [`run`](Self::run) specialised to simulation work: every shard
    /// starts from a cold [`Machine`] built from `config`, so simulated
    /// caches and QBUFFERs are warm across the items *within* a shard
    /// and cold at every shard boundary — independent of thread count.
    ///
    /// Two run-wide optimisations keep this cheap without touching the
    /// determinism guarantee:
    ///
    /// * machines are **pooled**: a shard checks a machine out of the
    ///   run's pool and [`Machine::reset`]s it to cold-boot state
    ///   instead of reallocating the multi-megabyte cache tag arrays
    ///   per shard (reset ≡ fresh is pinned by `tests/parallel.rs`);
    /// * predecode is **shared**: all machines of the run resolve
    ///   predecode misses through one [`PredecodeRegistry`], so each
    ///   kernel program is decoded once per run, not once per shard
    ///   (sound because predecode is a pure function of the program).
    ///
    /// # Errors
    ///
    /// Returns [`BatchError`] if any shard panicked.
    pub fn run_machines<T, R>(
        &self,
        config: &MachineConfig,
        items: &[T],
        work: impl Fn(&mut Machine, usize, &T) -> R + Sync,
    ) -> Result<Vec<R>, BatchError>
    where
        T: Sync,
        R: Send,
    {
        let registry = PredecodeRegistry::new();
        let pool: Mutex<Vec<Machine>> = Mutex::new(Vec::new());
        self.run(
            items,
            || {
                let machine = match pool.lock().expect("machine pool").pop() {
                    Some(mut machine) => {
                        machine.reset();
                        machine
                    }
                    None => {
                        let mut machine = Machine::new(config.clone());
                        machine.set_predecode_registry(registry.clone());
                        machine
                    }
                };
                PooledMachine {
                    machine: Some(machine),
                    pool: &pool,
                }
            },
            |pooled, i, item| {
                work(
                    pooled.machine.as_mut().expect("checked-out machine"),
                    i,
                    item,
                )
            },
        )
    }
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal_isa::*;

    fn square_batch(runner: &BatchRunner, n: usize) -> Vec<u64> {
        let items: Vec<u64> = (0..n as u64).collect();
        runner
            .run(
                &items,
                || 0u64,
                |acc, _i, &x| {
                    *acc += x;
                    *acc + x * x
                },
            )
            .unwrap()
    }

    #[test]
    fn results_are_in_item_order() {
        let runner = BatchRunner::new(3);
        let items: Vec<usize> = (0..17).collect();
        let got = runner.run(&items, || (), |(), i, &x| (i, x)).unwrap();
        assert_eq!(got, items.iter().map(|&x| (x, x)).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_output() {
        // Shard-local state (the accumulator) makes scheduling-dependent
        // sharding observable; with shard size fixed, it must not be.
        for shard in [1, 4] {
            let want = square_batch(&BatchRunner::new(1).with_shard_size(shard), 23);
            for threads in [2, 3, 8] {
                let got = square_batch(&BatchRunner::new(threads).with_shard_size(shard), 23);
                assert_eq!(want, got, "threads={threads} shard={shard}");
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let runner = BatchRunner::new(4);
        let got: Vec<u64> = runner.run(&[] as &[u64], || (), |(), _, &x| x).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn machines_run_real_kernels_per_shard() {
        let runner = BatchRunner::new(2);
        let items = [1i64, 2, 3, 4, 5];
        let got = runner
            .run_machines(&MachineConfig::default(), &items, |m, _i, &x| {
                let mut b = ProgramBuilder::new();
                b.mov_imm(X0, x);
                b.alu_ri(SAluOp::Mul, X0, X0, 10);
                b.halt();
                m.run(&b.build().unwrap()).unwrap();
                m.core().state().x(X0)
            })
            .unwrap();
        assert_eq!(got, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn pooled_machines_match_fresh_machines_exactly() {
        // One worker, shard size 1: the pool forces every shard after
        // the first onto a reset machine. Results (timing included)
        // must equal per-item fresh machines.
        let items: Vec<i64> = (1..=6).collect();
        let work = |m: &mut Machine, x: i64| {
            let mut b = ProgramBuilder::new();
            let top = b.label();
            b.mov_imm(X0, 0);
            b.mov_imm(X1, 0x3000);
            b.bind(top);
            b.store(X0, X1, 0, MemSize::B8);
            b.alu_ri(SAluOp::Add, X1, X1, 64);
            b.alu_ri(SAluOp::Add, X0, X0, 1);
            b.mov_imm(X2, 40);
            b.branch(BranchCond::Lt, X0, X2, top);
            b.alu_ri(SAluOp::Add, X0, X0, x);
            b.halt();
            let stats = m.run(&b.build().unwrap()).unwrap();
            (m.core().state().x(X0), stats.cycles)
        };
        let pooled = BatchRunner::new(1)
            .run_machines(&MachineConfig::default(), &items, |m, _i, &x| work(m, x))
            .unwrap();
        let fresh: Vec<(u64, u64)> = items
            .iter()
            .map(|&x| work(&mut Machine::new(MachineConfig::default()), x))
            .collect();
        assert_eq!(pooled, fresh);
    }

    #[test]
    fn panic_is_isolated_and_reported_deterministically() {
        let items: Vec<usize> = (0..10).collect();
        for threads in [1, 4] {
            let err = BatchRunner::new(threads)
                .run(
                    &items,
                    || (),
                    |(), i, _| {
                        if i == 3 || i == 7 {
                            panic!("boom at {i}");
                        }
                        i
                    },
                )
                .unwrap_err();
            // Lowest failing shard wins regardless of scheduling.
            assert_eq!(err.shard, 3, "threads={threads}");
            assert_eq!(err.items, (3, 4));
            assert!(err.message.contains("boom at 3"), "{}", err.message);
            assert!(err.to_string().contains("shard 3"));
        }
    }

    #[test]
    fn shard_size_groups_items_on_one_context() {
        let runner = BatchRunner::new(4).with_shard_size(3);
        let items: Vec<u64> = (0..9).collect();
        // Context counts how many items it has seen; with shard size 3
        // the per-item counter pattern must be 1,2,3,1,2,3,1,2,3.
        let got = runner
            .run(
                &items,
                || 0u64,
                |seen, _i, _x| {
                    *seen += 1;
                    *seen
                },
            )
            .unwrap();
        assert_eq!(got, vec![1, 2, 3, 1, 2, 3, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one worker thread")]
    fn zero_threads_panics() {
        let _ = BatchRunner::new(0);
    }

    #[test]
    #[should_panic(expected = "shard size must be positive")]
    fn zero_shard_size_panics() {
        let _ = BatchRunner::new(1).with_shard_size(0);
    }
}
