//! Deterministic parallel batch simulation.
//!
//! The paper's evaluation simulates thousands of *independent*
//! alignment pairs per experiment — embarrassing parallelism that the
//! accelerator exploits in hardware and that the host-side experiment
//! harness exploits here. [`BatchRunner`] shards a slice of independent
//! work items across `QUETZAL_THREADS` worker threads, each shard
//! simulated on its own fresh [`Machine`] (core + caches + QBUFFERs).
//!
//! Machine lifecycle — pooling, quarantine, reset ≡ fresh, the
//! retry-on-fresh-machine boundary — lives in [`crate::pool`]; this
//! module owns sharding, deterministic merging, and the report-shaped
//! entry points. The `qzserved` daemon (`quetzal-served`) drives the
//! same two layers over long-lived per-tenant pools.
//!
//! # Determinism guarantee
//!
//! The output is **bit-identical for every thread count**, including 1.
//! This holds by construction:
//!
//! 1. items are split into shards as a pure function of the item count
//!    and the configured shard size — never of the thread count;
//! 2. every shard starts from a cold, identically configured context
//!    (for simulations: a fresh [`Machine`], or a pooled one
//!    [`Machine::reset`] to the indistinguishable cold-boot state), so
//!    a shard's results do not depend on which worker ran it or on
//!    what ran before it;
//! 3. per-item results are written into pre-assigned slots and merged
//!    in shard order, never in completion order;
//! 4. a panicking shard poisons only itself (panic isolation); the
//!    runner reports the failure of the *lowest-numbered* failing
//!    shard, which again does not depend on scheduling.
//!
//! Thread-count invariance is enforced by `tests/parallel.rs`, and the
//! experiment harness (`quetzal-bench`) relies on it: speedup tables
//! must be byte-identical between `QUETZAL_THREADS=1` and `=N` runs.
//!
//! # Graceful degradation
//!
//! The `*_report` entry points ([`run_report`](BatchRunner::run_report),
//! [`run_machines_report`](BatchRunner::run_machines_report)) add a
//! fault boundary *per item*: a work closure that returns a typed
//! [`SimError`] or panics costs only its own item, not the shard or the
//! batch. The failing item is retried once on a brand-new (non-pooled)
//! context; the outcome lands in a [`RunReport`] whose `failures` list
//! is ordered by item index and independent of the thread count, while
//! every healthy item's result stays bit-identical to a fault-free run.
//! A machine that was live during a failure is **quarantined** — moved
//! to a kill list and never returned to the pool — because a panic may
//! have unwound mid-simulation and [`Machine::reset`]'s cold-boot
//! guarantee is only pinned for machines that completed their runs.
//!
//! The `*_verified` variants
//! ([`run_report_verified`](BatchRunner::run_report_verified),
//! [`run_machines_report_verified`](BatchRunner::run_machines_report_verified))
//! put a static gate in front of the fault boundary: each item's guest
//! program is checked by `quetzal-verify` first, and programs the
//! verifier can *prove* will fault are rejected up front
//! ([`FailureCause::Rejected`]) without ever checking a machine out of
//! the pool.
//!
//! ```
//! use quetzal::{BatchRunner, Machine, MachineConfig};
//!
//! let runner = BatchRunner::new(4);
//! let items = [3u64, 1, 4, 1, 5, 9, 2, 6];
//! let doubled = runner
//!     .run(&items, || (), |(), _idx, &x| 2 * x)
//!     .unwrap();
//! assert_eq!(doubled, vec![6, 2, 8, 2, 10, 18, 4, 12]);
//! ```

use crate::pool::{panic_message, retry_item, PooledMachine};
use crate::{ExecMode, Machine, MachineConfig, SimError};
use quetzal_isa::Program;
use quetzal_verify::{Report as VerifyReport, Verdict};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use crate::pool::{FailureCause, ItemFailure, MachinePool, PoolStats};

/// Environment variable selecting the worker-thread count
/// (`QUETZAL_THREADS`). Unset or invalid values fall back to the host's
/// available parallelism.
pub const THREADS_ENV: &str = "QUETZAL_THREADS";

/// A shard of the batch panicked. The work closure of every other shard
/// still ran to completion (panic isolation); the runner reports the
/// lowest-numbered failing shard so the error, too, is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchError {
    /// Index of the failing shard.
    pub shard: usize,
    /// Range of item indices the shard covered.
    pub items: (usize, usize),
    /// The panic payload, if it was a string.
    pub message: String,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch shard {} (items {}..{}) panicked: {}",
            self.shard, self.items.0, self.items.1, self.message
        )
    }
}

impl std::error::Error for BatchError {}

/// Partial results of a fault-tolerant batch run: one result slot per
/// input item (`None` where the item failed twice), plus the failure
/// log ordered by item index.
///
/// Both halves are deterministic: healthy items are bit-identical to a
/// fault-free run at any thread count, and `failures` depends only on
/// the items, never on scheduling.
#[derive(Debug, Clone)]
pub struct RunReport<R> {
    /// Per-item results, in item order; `None` iff the item failed and
    /// the retry failed too.
    pub results: Vec<Option<R>>,
    /// All failures (including recovered ones), ordered by item index.
    pub failures: Vec<ItemFailure>,
}

impl<R> RunReport<R> {
    /// `true` if every item produced a result on its first attempt.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// The healthy results with their item indices.
    pub fn healthy(&self) -> impl Iterator<Item = (usize, &R)> {
        self.results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|r| (i, r)))
    }
}

/// Deterministic parallel executor for slices of independent work items.
///
/// See the [module docs](self) for the determinism guarantee.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    threads: usize,
    shard_size: usize,
    exec_mode: ExecMode,
}

impl BatchRunner {
    /// Creates a runner with an explicit worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> BatchRunner {
        assert!(threads > 0, "at least one worker thread");
        BatchRunner {
            threads,
            shard_size: 1,
            exec_mode: ExecMode::default(),
        }
    }

    /// Creates a runner with the thread count from `QUETZAL_THREADS`,
    /// falling back to the host's available parallelism (then 1).
    pub fn from_env() -> BatchRunner {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        BatchRunner::new(threads)
    }

    /// Sets how many consecutive items share one shard (and therefore
    /// one fresh context / machine). Larger shards amortise context
    /// setup and keep simulated caches warm across a shard's items;
    /// the default of 1 maximises parallelism.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_shard_size(mut self, n: usize) -> BatchRunner {
        assert!(n > 0, "shard size must be positive");
        self.shard_size = n;
        self
    }

    /// Selects the execution engine the machine-pooled entry points
    /// drive: the cycle-level timing model (default) or the compiled
    /// functional tier. The pool applies the mode to every machine it
    /// hands out — fresh, recycled and fault-replaced alike — so a
    /// whole batch runs on one engine regardless of sharding.
    #[must_use]
    pub fn with_exec_mode(mut self, mode: ExecMode) -> BatchRunner {
        self.exec_mode = mode;
        self
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The execution engine the machine-pooled entry points drive (see
    /// [`with_exec_mode`](Self::with_exec_mode)) — also the mode to
    /// build a caller-owned [`MachinePool`] with so that
    /// [`run_machines_report_pooled`](Self::run_machines_report_pooled)
    /// matches the per-call entry points.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Runs `work` over every item, in parallel across shards.
    ///
    /// `init` builds one fresh per-shard context (typically a
    /// [`Machine`]); `work(ctx, index, item)` processes item `index`.
    /// Items of one shard are processed in index order on the same
    /// context. Results come back in item order.
    ///
    /// # Errors
    ///
    /// Returns [`BatchError`] if any shard panicked.
    pub fn run<C, T, R>(
        &self,
        items: &[T],
        init: impl Fn() -> C + Sync,
        work: impl Fn(&mut C, usize, &T) -> R + Sync,
    ) -> Result<Vec<R>, BatchError>
    where
        T: Sync,
        R: Send,
    {
        // One slot per shard: the shard's results, or the panic message.
        type ShardSlot<R> = Mutex<Option<Result<Vec<R>, String>>>;
        let shard_count = items.len().div_ceil(self.shard_size);
        let mut slots: Vec<ShardSlot<R>> = Vec::new();
        slots.resize_with(shard_count, || Mutex::new(None));
        let next = AtomicUsize::new(0);

        let run_shard = |shard: usize| -> Result<Vec<R>, String> {
            let lo = shard * self.shard_size;
            let hi = (lo + self.shard_size).min(items.len());
            catch_unwind(AssertUnwindSafe(|| {
                let mut ctx = init();
                (lo..hi)
                    .map(|i| work(&mut ctx, i, &items[i]))
                    .collect::<Vec<R>>()
            }))
            .map_err(panic_message)
        };

        let worker = || loop {
            let shard = next.fetch_add(1, Ordering::Relaxed);
            if shard >= shard_count {
                break;
            }
            let outcome = run_shard(shard);
            *slots[shard].lock().expect("result slot") = Some(outcome);
        };
        let workers = self.threads.min(shard_count.max(1));
        if workers == 1 {
            // A single worker drains the shards on the calling thread:
            // spawning even one OS thread costs hundreds of
            // microseconds on syscall-intercepting sandboxes, which
            // would dominate short serial batches. Shard claiming,
            // per-shard panic capture and the merge below are shared
            // with the parallel path, so results are bit-identical.
            worker();
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(worker);
                }
            });
        }

        // Deterministic merge: shard order, first failure wins.
        let mut out = Vec::with_capacity(items.len());
        for (shard, slot) in slots.into_iter().enumerate() {
            let outcome = slot
                .into_inner()
                .expect("result slot")
                .expect("every shard was claimed by a worker");
            match outcome {
                Ok(rs) => out.extend(rs),
                Err(message) => {
                    let lo = shard * self.shard_size;
                    let hi = (lo + self.shard_size).min(items.len());
                    return Err(BatchError {
                        shard,
                        items: (lo, hi),
                        message,
                    });
                }
            }
        }
        Ok(out)
    }

    /// [`run`](Self::run) specialised to simulation work: every shard
    /// starts from a cold [`Machine`] built from `config`, so simulated
    /// caches and QBUFFERs are warm across the items *within* a shard
    /// and cold at every shard boundary — independent of thread count.
    ///
    /// Two run-wide optimisations keep this cheap without touching the
    /// determinism guarantee:
    ///
    /// * machines are **pooled**: a shard checks a machine out of the
    ///   run's pool and [`Machine::reset`]s it to cold-boot state
    ///   instead of reallocating the multi-megabyte cache tag arrays
    ///   per shard (reset ≡ fresh is pinned by `tests/parallel.rs`);
    /// * predecode is **shared**: all machines of the run resolve
    ///   predecode misses through one
    ///   [`PredecodeRegistry`](crate::PredecodeRegistry), so each
    ///   kernel program is decoded once per run, not once per shard
    ///   (sound because predecode is a pure function of the program).
    ///
    /// A shard whose work closure panics quarantines its machine (the
    /// machine is *not* returned to the pool — unwinding mid-run leaves
    /// state `reset` is not pinned against) and the batch fails with
    /// [`BatchError`]; for per-item fault tolerance use
    /// [`run_machines_report`](Self::run_machines_report).
    ///
    /// # Errors
    ///
    /// Returns [`BatchError`] if any shard panicked.
    pub fn run_machines<T, R>(
        &self,
        config: &MachineConfig,
        items: &[T],
        work: impl Fn(&mut Machine, usize, &T) -> R + Sync,
    ) -> Result<Vec<R>, BatchError>
    where
        T: Sync,
        R: Send,
    {
        let pool = MachinePool::new(config, self.exec_mode);
        self.run(
            items,
            || pool.checkout(),
            |pooled, i, item| work(pooled.machine(), i, item),
        )
    }

    /// Fault-tolerant [`run`](Self::run): the work closure is fallible,
    /// and a failure (typed [`SimError`] or panic) costs only its item.
    ///
    /// Each failing item is retried **once** on a brand-new context from
    /// `init` — both to rule out contamination from earlier items that
    /// shared the shard's context, and because a panicked closure may
    /// have left the context inconsistent. After the retry the context
    /// is replaced again, so later items of the shard never run on a
    /// context a failure touched. Healthy items are bit-identical to a
    /// fault-free run at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`BatchError`] only for infrastructure panics (e.g. in
    /// `init` itself) — work-closure failures land in the report.
    pub fn run_report<C, T, R>(
        &self,
        items: &[T],
        init: impl Fn() -> C + Sync,
        work: impl Fn(&mut C, usize, &T) -> Result<R, SimError> + Sync,
    ) -> Result<RunReport<R>, BatchError>
    where
        T: Sync,
        R: Send,
    {
        let rows = self.run(items, &init, |ctx, i, item| {
            retry_item(ctx, |c| *c = init(), i, item, &work)
        })?;
        Ok(Self::collect_report(rows))
    }

    /// Fault-tolerant [`run_machines`](Self::run_machines): pooled
    /// machines, per-item fault boundary, one retry per failing item on
    /// a brand-new (never pooled) machine.
    ///
    /// Any machine that was live during a failure — first attempt or
    /// retry — is quarantined and never returned to the pool, so
    /// subsequent shards cannot inherit poisoned state.
    ///
    /// # Errors
    ///
    /// Returns [`BatchError`] only for infrastructure panics; simulation
    /// failures land in the report.
    pub fn run_machines_report<T, R>(
        &self,
        config: &MachineConfig,
        items: &[T],
        work: impl Fn(&mut Machine, usize, &T) -> Result<R, SimError> + Sync,
    ) -> Result<RunReport<R>, BatchError>
    where
        T: Sync,
        R: Send,
    {
        let pool = MachinePool::new(config, self.exec_mode);
        self.run_machines_report_pooled(&pool, items, work)
    }

    /// [`run_machines_report`](Self::run_machines_report) over a
    /// caller-owned [`MachinePool`]: machines (and the pool's shared
    /// predecode registry) survive across calls, so repeated batches on
    /// one configuration pay machine construction once instead of once
    /// per call. The pool's [`ExecMode`] governs every checkout;
    /// recycled machines are reset to cold-boot state, keeping results
    /// bit-identical to a per-call pool at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`BatchError`] only for infrastructure panics; simulation
    /// failures land in the report.
    pub fn run_machines_report_pooled<T, R>(
        &self,
        pool: &MachinePool,
        items: &[T],
        work: impl Fn(&mut Machine, usize, &T) -> Result<R, SimError> + Sync,
    ) -> Result<RunReport<R>, BatchError>
    where
        T: Sync,
        R: Send,
    {
        let rows = self.run(
            items,
            || pool.checkout(),
            |pooled, i, item| {
                retry_item(
                    pooled,
                    PooledMachine::replace_with_fresh,
                    i,
                    item,
                    |p, i, item| work(p.machine(), i, item),
                )
            },
        )?;
        Ok(Self::collect_report(rows))
    }

    /// [`run_report`](Self::run_report) with a static pre-verification
    /// gate: before any simulation, every item's [`Program`] (extracted
    /// by `program_of`, deduplicated by [`Program::id`]) runs through
    /// [`quetzal_verify::verify`]. Items whose program has a
    /// [`Verdict::Fatal`] report are rejected up front — they land in
    /// the failure log as [`FailureCause::Rejected`] and `work` is never
    /// called for them, so a program the verifier can prove will fault
    /// costs neither a simulation nor a retry.
    ///
    /// Contexts are built lazily: a shard whose items are all rejected
    /// never calls `init`. Warning-only reports do **not** reject — the
    /// verifier's soundness contract covers only its fatal findings.
    ///
    /// # Errors
    ///
    /// Returns [`BatchError`] only for infrastructure panics; rejections
    /// and simulation failures land in the report.
    pub fn run_report_verified<C, T, R>(
        &self,
        items: &[T],
        program_of: impl Fn(&T) -> &Program + Sync,
        init: impl Fn() -> C + Sync,
        work: impl Fn(&mut C, usize, &T) -> Result<R, SimError> + Sync,
    ) -> Result<RunReport<R>, BatchError>
    where
        T: Sync,
        R: Send,
    {
        let rejected = Self::reject_set(items, &program_of);
        let rows = self.run(
            items,
            || None::<C>,
            |slot, i, item| {
                if let Some(report) = rejected.get(&program_of(item).id()) {
                    return (None, Some(Self::rejection(i, report)));
                }
                let ctx = slot.get_or_insert_with(&init);
                retry_item(ctx, |c| *c = init(), i, item, &work)
            },
        )?;
        Ok(Self::collect_report(rows))
    }

    /// [`run_machines_report`](Self::run_machines_report) with the same
    /// static pre-verification gate as
    /// [`run_report_verified`](Self::run_report_verified): statically
    /// fatal programs are rejected before any machine is checked out of
    /// the pool, so they burn neither a simulation nor a pooled machine
    /// (a shard of nothing but rejected items never touches the pool).
    ///
    /// # Errors
    ///
    /// Returns [`BatchError`] only for infrastructure panics; rejections
    /// and simulation failures land in the report.
    pub fn run_machines_report_verified<T, R>(
        &self,
        config: &MachineConfig,
        items: &[T],
        program_of: impl Fn(&T) -> &Program + Sync,
        work: impl Fn(&mut Machine, usize, &T) -> Result<R, SimError> + Sync,
    ) -> Result<RunReport<R>, BatchError>
    where
        T: Sync,
        R: Send,
    {
        let pool = MachinePool::new(config, self.exec_mode);
        self.run_machines_report_verified_pooled(&pool, items, program_of, work)
    }

    /// [`run_machines_report_verified`](Self::run_machines_report_verified)
    /// over a caller-owned [`MachinePool`] — the entry point a
    /// long-lived service drives: verifier-gated admission (statically
    /// fatal programs never check a machine out of the tenant's pool),
    /// pooled machines across jobs, per-item fault boundary with
    /// quarantine + retry-on-fresh.
    ///
    /// # Errors
    ///
    /// Returns [`BatchError`] only for infrastructure panics; rejections
    /// and simulation failures land in the report.
    pub fn run_machines_report_verified_pooled<T, R>(
        &self,
        pool: &MachinePool,
        items: &[T],
        program_of: impl Fn(&T) -> &Program + Sync,
        work: impl Fn(&mut Machine, usize, &T) -> Result<R, SimError> + Sync,
    ) -> Result<RunReport<R>, BatchError>
    where
        T: Sync,
        R: Send,
    {
        let rejected = Self::reject_set(items, &program_of);
        let rows = self.run(
            items,
            || None::<PooledMachine<'_>>,
            |slot, i, item| {
                if let Some(report) = rejected.get(&program_of(item).id()) {
                    return (None, Some(Self::rejection(i, report)));
                }
                let pooled = slot.get_or_insert_with(|| pool.checkout());
                retry_item(
                    pooled,
                    PooledMachine::replace_with_fresh,
                    i,
                    item,
                    |p, i, item| work(p.machine(), i, item),
                )
            },
        )?;
        Ok(Self::collect_report(rows))
    }

    /// Verifies every distinct program among `items` (deduplicated by
    /// [`Program::id`], so a program shared by a thousand items is
    /// analysed once) and keeps the reports that came back
    /// [`Verdict::Fatal`].
    fn reject_set<T>(
        items: &[T],
        program_of: &(impl Fn(&T) -> &Program + Sync),
    ) -> HashMap<u64, VerifyReport> {
        let mut verdicts: HashMap<u64, Option<VerifyReport>> = HashMap::new();
        for item in items {
            let program = program_of(item);
            verdicts.entry(program.id()).or_insert_with(|| {
                let report = quetzal_verify::verify(program);
                (report.verdict() == Verdict::Fatal).then_some(report)
            });
        }
        verdicts
            .into_iter()
            .filter_map(|(id, report)| report.map(|r| (id, r)))
            .collect()
    }

    /// The failure-log entry of a statically rejected item. `recovered`
    /// is always `false`: the verdict is a property of the program, so
    /// a retry could only re-prove it.
    fn rejection(item: usize, report: &VerifyReport) -> ItemFailure {
        ItemFailure {
            item,
            cause: FailureCause::Rejected(report.clone()),
            recovered: false,
        }
    }

    /// Splits per-item `(result, failure)` rows into a [`RunReport`].
    /// Rows arrive in item order (the deterministic merge), so the
    /// failure list is ordered by item index with no extra sort.
    fn collect_report<R>(rows: Vec<(Option<R>, Option<ItemFailure>)>) -> RunReport<R> {
        let mut results = Vec::with_capacity(rows.len());
        let mut failures = Vec::new();
        for (result, failure) in rows {
            results.push(result);
            failures.extend(failure);
        }
        RunReport { results, failures }
    }
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::lock;
    use quetzal_isa::*;

    fn square_batch(runner: &BatchRunner, n: usize) -> Vec<u64> {
        let items: Vec<u64> = (0..n as u64).collect();
        runner
            .run(
                &items,
                || 0u64,
                |acc, _i, &x| {
                    *acc += x;
                    *acc + x * x
                },
            )
            .unwrap()
    }

    #[test]
    fn results_are_in_item_order() {
        let runner = BatchRunner::new(3);
        let items: Vec<usize> = (0..17).collect();
        let got = runner.run(&items, || (), |(), i, &x| (i, x)).unwrap();
        assert_eq!(got, items.iter().map(|&x| (x, x)).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_output() {
        // Shard-local state (the accumulator) makes scheduling-dependent
        // sharding observable; with shard size fixed, it must not be.
        for shard in [1, 4] {
            let want = square_batch(&BatchRunner::new(1).with_shard_size(shard), 23);
            for threads in [2, 3, 8] {
                let got = square_batch(&BatchRunner::new(threads).with_shard_size(shard), 23);
                assert_eq!(want, got, "threads={threads} shard={shard}");
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let runner = BatchRunner::new(4);
        let got: Vec<u64> = runner.run(&[] as &[u64], || (), |(), _, &x| x).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn machines_run_real_kernels_per_shard() {
        let runner = BatchRunner::new(2);
        let items = [1i64, 2, 3, 4, 5];
        let got = runner
            .run_machines(&MachineConfig::default(), &items, |m, _i, &x| {
                let mut b = ProgramBuilder::new();
                b.mov_imm(X0, x);
                b.alu_ri(SAluOp::Mul, X0, X0, 10);
                b.halt();
                m.run(&b.build().unwrap()).unwrap();
                m.core().state().x(X0)
            })
            .unwrap();
        assert_eq!(got, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn pooled_machines_match_fresh_machines_exactly() {
        // One worker, shard size 1: the pool forces every shard after
        // the first onto a reset machine. Results (timing included)
        // must equal per-item fresh machines.
        let items: Vec<i64> = (1..=6).collect();
        let work = |m: &mut Machine, x: i64| {
            let mut b = ProgramBuilder::new();
            let top = b.label();
            b.mov_imm(X0, 0);
            b.mov_imm(X1, 0x3000);
            b.bind(top);
            b.store(X0, X1, 0, MemSize::B8);
            b.alu_ri(SAluOp::Add, X1, X1, 64);
            b.alu_ri(SAluOp::Add, X0, X0, 1);
            b.mov_imm(X2, 40);
            b.branch(BranchCond::Lt, X0, X2, top);
            b.alu_ri(SAluOp::Add, X0, X0, x);
            b.halt();
            let stats = m.run(&b.build().unwrap()).unwrap();
            (m.core().state().x(X0), stats.cycles)
        };
        let pooled = BatchRunner::new(1)
            .run_machines(&MachineConfig::default(), &items, |m, _i, &x| work(m, x))
            .unwrap();
        let fresh: Vec<(u64, u64)> = items
            .iter()
            .map(|&x| work(&mut Machine::new(MachineConfig::default()), x))
            .collect();
        assert_eq!(pooled, fresh);
    }

    #[test]
    fn panic_is_isolated_and_reported_deterministically() {
        let items: Vec<usize> = (0..10).collect();
        for threads in [1, 4] {
            let err = BatchRunner::new(threads)
                .run(
                    &items,
                    || (),
                    |(), i, _| {
                        if i == 3 || i == 7 {
                            panic!("boom at {i}");
                        }
                        i
                    },
                )
                .unwrap_err();
            // Lowest failing shard wins regardless of scheduling.
            assert_eq!(err.shard, 3, "threads={threads}");
            assert_eq!(err.items, (3, 4));
            assert!(err.message.contains("boom at 3"), "{}", err.message);
            assert!(err.to_string().contains("shard 3"));
        }
    }

    #[test]
    fn shard_size_groups_items_on_one_context() {
        let runner = BatchRunner::new(4).with_shard_size(3);
        let items: Vec<u64> = (0..9).collect();
        // Context counts how many items it has seen; with shard size 3
        // the per-item counter pattern must be 1,2,3,1,2,3,1,2,3.
        let got = runner
            .run(
                &items,
                || 0u64,
                |seen, _i, _x| {
                    *seen += 1;
                    *seen
                },
            )
            .unwrap();
        assert_eq!(got, vec![1, 2, 3, 1, 2, 3, 1, 2, 3]);
    }

    #[test]
    fn shard_panic_quarantines_the_machine() {
        // Regression: a machine checked out by a panicking shard used to
        // be pushed back to the free pool on drop, mid-run state and
        // all. It must be quarantined, and the next checkout must be a
        // cold-boot-clean machine.
        let config = MachineConfig::default();
        let pool = MachinePool::new(&config, ExecMode::default());
        let heap_base = {
            let mut probe = pool.checkout();
            probe.machine().alloc(8)
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut pooled = pool.checkout();
            pooled.machine().alloc(4096); // dirty mid-run state
            panic!("shard died");
        }));
        assert!(outcome.is_err());
        assert_eq!(
            lock(pool.free_list()).len(),
            0,
            "panicked machine must not return to the free pool"
        );
        assert_eq!(
            lock(pool.quarantine_list()).len(),
            1,
            "the panicked machine"
        );
        let mut pooled = pool.checkout();
        assert_eq!(
            pooled.machine().alloc(8),
            heap_base,
            "checkout after a shard panic must be cold-boot clean"
        );
    }

    #[test]
    fn faulting_items_degrade_gracefully() {
        // Items 3 and 7 return typed errors; everything else succeeds.
        // The report must carry the healthy results bit-identically at
        // every thread count, with failures ordered by item index.
        let items: Vec<i64> = (0..10).collect();
        let run = |threads: usize| {
            BatchRunner::new(threads)
                .run_machines_report(&MachineConfig::default(), &items, |m, i, &x| {
                    let mut b = ProgramBuilder::new();
                    let top = b.label();
                    b.mov_imm(X0, x);
                    b.alu_ri(SAluOp::Mul, X0, X0, 10);
                    if i == 3 || i == 7 {
                        // Deterministic fault: spin forever under a
                        // tiny instruction budget.
                        b.bind(top);
                        b.jump(top);
                        m.core_mut().set_budget(100);
                    }
                    b.halt();
                    let stats = m.run(&b.build().unwrap())?;
                    Ok((m.core().state().x(X0), stats.cycles))
                })
                .unwrap()
        };
        let single = run(1);
        assert_eq!(single.results.len(), 10);
        assert_eq!(
            single.failures,
            vec![
                ItemFailure {
                    item: 3,
                    cause: FailureCause::Sim(SimError::InstLimit { budget: 100 }),
                    recovered: false,
                },
                ItemFailure {
                    item: 7,
                    cause: FailureCause::Sim(SimError::InstLimit { budget: 100 }),
                    recovered: false,
                },
            ]
        );
        assert!(single.results[3].is_none() && single.results[7].is_none());
        assert_eq!(single.healthy().count(), 8);
        for threads in [2, 4] {
            let multi = run(threads);
            assert_eq!(single.results, multi.results, "threads={threads}");
            assert_eq!(single.failures, multi.failures, "threads={threads}");
        }
    }

    #[test]
    fn panicking_item_is_retried_on_a_fresh_machine() {
        // Item 2 panics on its first attempt only; the retry must
        // succeed (recovered=true) and later items must be unaffected.
        let first_attempt = std::sync::atomic::AtomicBool::new(true);
        let items: Vec<i64> = (0..5).collect();
        let report = BatchRunner::new(1)
            .with_shard_size(5)
            .run_machines_report(&MachineConfig::default(), &items, |m, i, &x| {
                if i == 2 && first_attempt.swap(false, Ordering::Relaxed) {
                    m.alloc(1 << 20); // dirty the machine, then die
                    panic!("transient fault");
                }
                let mut b = ProgramBuilder::new();
                b.mov_imm(X0, x);
                b.halt();
                m.run(&b.build().unwrap())?;
                Ok(m.core().state().x(X0))
            })
            .unwrap();
        assert_eq!(
            report.results,
            vec![Some(0), Some(1), Some(2), Some(3), Some(4)]
        );
        assert_eq!(report.failures.len(), 1);
        let failure = &report.failures[0];
        assert_eq!(failure.item, 2);
        assert!(failure.recovered);
        assert_eq!(
            failure.cause,
            FailureCause::Panic("transient fault".to_string())
        );
        assert_eq!(
            failure.to_string(),
            "item 2: panic: transient fault (recovered on retry)"
        );
    }

    #[test]
    fn report_on_clean_batch_matches_run_machines() {
        let items: Vec<i64> = (1..=6).collect();
        let work = |m: &mut Machine, x: i64| {
            let mut b = ProgramBuilder::new();
            b.mov_imm(X0, x);
            b.alu_ri(SAluOp::Mul, X0, X0, 7);
            b.halt();
            let stats = m.run(&b.build().unwrap()).unwrap();
            (m.core().state().x(X0), stats.cycles)
        };
        let plain = BatchRunner::new(2)
            .run_machines(&MachineConfig::default(), &items, |m, _i, &x| work(m, x))
            .unwrap();
        let report = BatchRunner::new(2)
            .run_machines_report(&MachineConfig::default(), &items, |m, _i, &x| {
                Ok(work(m, x))
            })
            .unwrap();
        assert!(report.is_clean());
        let healthy: Vec<(u64, u64)> = report.healthy().map(|(_, r)| *r).collect();
        assert_eq!(healthy, plain);
    }

    #[test]
    fn pre_verification_rejects_fatal_programs_without_simulating() {
        // Item 1's program provably falls off the end of its image; the
        // verifier must reject it before the work closure ever runs,
        // and the healthy neighbours must be unaffected.
        let good = |x: i64| {
            let mut b = ProgramBuilder::new();
            b.mov_imm(X0, x);
            b.halt();
            b.build().unwrap()
        };
        let bad = Program::from_raw(vec![Instruction::MovImm { rd: X0, imm: 7 }], "falls-off");
        let items = [good(1), bad, good(3)];
        for threads in [1, 4] {
            let simulated = AtomicUsize::new(0);
            let report = BatchRunner::new(threads)
                .run_machines_report_verified(
                    &MachineConfig::default(),
                    &items,
                    |p| p,
                    |m, _i, p| {
                        simulated.fetch_add(1, Ordering::Relaxed);
                        m.run(p)?;
                        Ok(m.core().state().x(X0))
                    },
                )
                .unwrap();
            assert_eq!(simulated.load(Ordering::Relaxed), 2, "threads={threads}");
            assert_eq!(report.results, vec![Some(1), None, Some(3)]);
            assert_eq!(report.failures.len(), 1);
            let failure = &report.failures[0];
            assert_eq!(failure.item, 1);
            assert!(!failure.recovered);
            let FailureCause::Rejected(verify) = &failure.cause else {
                panic!("expected a static rejection, got {}", failure.cause);
            };
            assert_eq!(verify.verdict(), Verdict::Fatal);
            assert!(failure.to_string().contains("statically rejected"));
        }
    }

    #[test]
    fn verified_pooled_rejections_never_touch_the_pool() {
        // All items statically fatal: the tenant pool must stay empty —
        // no machine is ever built or checked out for rejected work.
        let bad = Program::from_raw(vec![Instruction::MovImm { rd: X0, imm: 7 }], "falls-off");
        let items = [bad.clone(), bad];
        let config = MachineConfig::default();
        let pool = MachinePool::new(&config, ExecMode::default());
        let report = BatchRunner::new(1)
            .run_machines_report_verified_pooled(
                &pool,
                &items,
                |p| p,
                |m, _i, p| {
                    m.run(p)?;
                    Ok(m.core().state().x(X0))
                },
            )
            .unwrap();
        assert_eq!(report.results, vec![None, None]);
        assert_eq!(report.failures.len(), 2);
        assert_eq!(
            pool.stats(),
            PoolStats::default(),
            "rejected-only batches must not build machines"
        );
    }

    #[test]
    fn warning_only_programs_are_not_rejected() {
        // Reads an uninitialised register: a warning, not a fatal
        // finding — the item must still simulate (registers are
        // architecturally zero at reset, so it runs fine).
        let mut b = ProgramBuilder::new();
        b.alu_ri(SAluOp::Add, X0, X10, 5);
        b.halt();
        let program = b.build().unwrap();
        let report = quetzal_verify::verify(&program);
        assert_eq!(report.verdict(), quetzal_verify::Verdict::Warnings);
        let items = [program];
        let run = BatchRunner::new(1)
            .run_machines_report_verified(
                &MachineConfig::default(),
                &items,
                |p| p,
                |m, _i, p| {
                    m.run(p)?;
                    Ok(m.core().state().x(X0))
                },
            )
            .unwrap();
        assert!(run.is_clean());
        assert_eq!(run.results, vec![Some(5)]);
    }

    #[test]
    fn verified_generic_contexts_are_built_lazily() {
        // Every item is rejected, so `init` must never run: a batch of
        // provably fatal programs costs zero contexts.
        let bad = Program::from_raw(vec![Instruction::MovImm { rd: X0, imm: 7 }], "falls-off");
        let items = [bad.clone(), bad];
        let inits = AtomicUsize::new(0);
        let report = BatchRunner::new(1)
            .with_shard_size(2)
            .run_report_verified(
                &items,
                |p| p,
                || inits.fetch_add(1, Ordering::Relaxed),
                |_, _, _| Ok(0u64),
            )
            .unwrap();
        assert_eq!(
            inits.load(Ordering::Relaxed),
            0,
            "no context for rejected-only shards"
        );
        assert_eq!(report.results, vec![None, None]);
        assert_eq!(report.failures.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker thread")]
    fn zero_threads_panics() {
        let _ = BatchRunner::new(0);
    }

    #[test]
    #[should_panic(expected = "shard size must be positive")]
    fn zero_shard_size_panics() {
        let _ = BatchRunner::new(1).with_shard_size(0);
    }
}
