//! Static dataflow verification of guest QUETZAL programs.
//!
//! `quetzal-verify` runs a forward abstract interpretation over a
//! [`Program`]'s recovered control-flow graph and reports typed,
//! source-located [`Diagnostic`]s *before* the program executes a
//! single simulated cycle. The diagnostic kinds mirror the simulator's
//! `SimError` taxonomy so the static verdict is directly comparable to
//! the runtime outcome; the fault-injection sweep cross-validates the
//! two on every mutant it builds.
//!
//! # Soundness contract
//!
//! For a program run on a freshly-reset machine (architectural
//! registers and QBUFFER *contents* may hold arbitrary values; the
//! QBUFFER *configuration* is the reset default, 64-bit elements):
//!
//! * [`Verdict::Clean`] ⇒ execution never raises a statically-decidable
//!   `SimError`: `DecodeError`, `InvalidRegister`, `InvalidQzConf`, or
//!   `QBufferIndexOutOfRange`.
//! * Every runtime `InvalidRegister` / `InvalidQzConf` /
//!   `QBufferIndexOutOfRange` at pc `p` has a diagnostic of the same
//!   kind at pc `p`; every runtime `DecodeError` has a fatal
//!   `DecodeError` diagnostic.
//!
//! `MemoryFault` (page-budget exhaustion) and the `InstLimit` /
//! `CycleLimit` budgets depend on dynamic allocation counts and are
//! deliberately left to the runtime; the verifier only warns when
//! provably-constant store addresses alone exceed the budget.
//!
//! [`Severity::Fatal`] marks sites that *must* fault if executed (for
//! branches: if the edge is taken); [`Severity::Warning`] marks
//! unprovable-at-compile-time hygiene findings (reads of never-written
//! registers, unverifiable `qzconf`/`qzencode` operands, QBUFFER index
//! wrap-around, unreachable code).
//!
//! # Example
//!
//! ```
//! use quetzal_isa::*;
//! use quetzal_verify::{verify, Verdict};
//!
//! let mut b = ProgramBuilder::new();
//! b.mov_imm(X0, 5);
//! b.halt();
//! let report = verify(&b.build()?);
//! assert_eq!(report.verdict(), Verdict::Clean);
//! # Ok::<(), BuildError>(())
//! ```

#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod lattice;

use lattice::{AbsVal, Def, EncState, VAbs};
use quetzal_isa::cfg::{Cfg, Succ};
use quetzal_isa::{ElemSize, EncSize, ImageFault, Instruction, Program, Reg};
use std::collections::BTreeSet;

/// Guest page size is 2^12 bytes (mirrors `quetzal-uarch`'s simulated
/// memory geometry).
const PAGE_BITS: u32 = 12;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not provably faulting.
    Warning,
    /// The site must raise a `SimError` if it executes (for control
    /// transfers: if the edge is taken).
    Fatal,
}

/// What a diagnostic is about. The first four kinds mirror the
/// statically-decidable `SimError` variants; the rest are
/// verifier-only findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagKind {
    /// Control flow leaves the program image (truncated image, branch
    /// target out of range, empty image).
    DecodeError,
    /// A lane index encoded in the instruction is out of range for its
    /// element size.
    InvalidRegister,
    /// A `qzconf` element-size operand is (or may be) outside the
    /// architectural {0, 1, 2} field values.
    InvalidQzConf,
    /// A `qzencode` element index violates (or may violate) the
    /// configured encoding's alignment.
    QBufferIndexOutOfRange,
    /// Provably-constant store addresses alone exceed the configured
    /// guest page budget.
    MemoryFault,
    /// A register is read before any instruction writes it.
    UndefinedRead,
    /// A QBUFFER access is reachable under conflicting `qzconf`
    /// element-size configurations.
    QBufferWidthMismatch,
    /// A provably-constant QBUFFER element index exceeds the buffer
    /// capacity and will wrap (direct-mapped aliasing, not a fault).
    QBufferIndexWraps,
    /// A basic block no path from the entry reaches.
    UnreachableBlock,
}

impl DiagKind {
    /// Stable kebab-case label used in rendered reports.
    pub fn label(self) -> &'static str {
        match self {
            DiagKind::DecodeError => "decode-error",
            DiagKind::InvalidRegister => "invalid-register",
            DiagKind::InvalidQzConf => "invalid-qzconf",
            DiagKind::QBufferIndexOutOfRange => "qbuffer-index-out-of-range",
            DiagKind::MemoryFault => "memory-fault",
            DiagKind::UndefinedRead => "undefined-read",
            DiagKind::QBufferWidthMismatch => "qbuffer-width-mismatch",
            DiagKind::QBufferIndexWraps => "qbuffer-index-wraps",
            DiagKind::UnreachableBlock => "unreachable-block",
        }
    }
}

/// One verifier finding, anchored to an instruction index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Instruction index the finding is about.
    pub pc: usize,
    /// What kind of finding.
    pub kind: DiagKind,
    /// Whether the site must fault or is merely suspicious.
    pub severity: Severity,
    /// Human-readable explanation.
    pub note: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Fatal => "fatal",
            Severity::Warning => "warning",
        };
        write!(
            f,
            "pc {:>3} [{sev}] {}: {}",
            self.pc,
            self.kind.label(),
            self.note
        )
    }
}

/// Overall verdict of a verification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// No diagnostics at all.
    Clean,
    /// Only warnings.
    Warnings,
    /// At least one fatal diagnostic: the program must fault if any
    /// flagged site executes, and batch pre-verification rejects it.
    Fatal,
}

/// The result of verifying one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    name: String,
    len: usize,
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Name of the verified program.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instruction count of the verified program.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the verified program was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All findings, sorted by pc.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// The overall verdict.
    pub fn verdict(&self) -> Verdict {
        if self.diagnostics.is_empty() {
            Verdict::Clean
        } else if self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Fatal)
        {
            Verdict::Fatal
        } else {
            Verdict::Warnings
        }
    }

    /// Whether there are no findings.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether a finding of `kind` exists at `pc` (any severity).
    pub fn has_kind_at(&self, kind: DiagKind, pc: usize) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.kind == kind && d.pc == pc)
    }

    /// Whether a fatal finding of `kind` exists anywhere.
    pub fn has_fatal_kind(&self, kind: DiagKind) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.kind == kind && d.severity == Severity::Fatal)
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let verdict = match self.verdict() {
            Verdict::Clean => "clean",
            Verdict::Warnings => "warnings",
            Verdict::Fatal => "FATAL",
        };
        writeln!(
            f,
            "{}: {} ({} instructions, {} diagnostics)",
            self.name,
            verdict,
            self.len,
            self.diagnostics.len()
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Parameters of the machine the program is verified against.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Bytes per QBUFFER (determines element capacity per encoding;
    /// default matches the paper's 8 KB buffers).
    pub qbuffer_bytes: usize,
    /// Guest resident-page budget to check provably-constant store
    /// footprints against, or `None` to skip the check.
    pub page_budget: Option<usize>,
}

impl Default for VerifyConfig {
    fn default() -> VerifyConfig {
        VerifyConfig {
            qbuffer_bytes: 8 * 1024,
            page_budget: None,
        }
    }
}

/// Verifies a program against the default machine parameters.
pub fn verify(program: &Program) -> Report {
    verify_with(program, &VerifyConfig::default())
}

/// Abstract machine state at one program point.
#[derive(Clone, PartialEq)]
struct State {
    x: [AbsVal; 32],
    v: [VAbs; 32],
    defs: [Def; Reg::FLAT_COUNT],
    enc: EncState,
}

impl State {
    /// State at program entry: register *values* are unknown (the host
    /// stages operands, fault sweeps corrupt them), nothing is defined
    /// by the program yet, and the QBUFFER configuration is the reset
    /// default (64-bit elements).
    fn entry() -> State {
        State {
            x: [AbsVal::TOP; 32],
            v: [VAbs::Top; 32],
            defs: [Def::Undef; Reg::FLAT_COUNT],
            enc: EncState::Known(EncSize::E64),
        }
    }

    /// Joins `other` into `self`; returns whether anything changed.
    fn join_into(&mut self, other: &State) -> bool {
        let before = self.clone();
        for (a, b) in self.x.iter_mut().zip(other.x.iter()) {
            *a = a.join(*b);
        }
        for (a, b) in self.v.iter_mut().zip(other.v.iter()) {
            *a = a.join(*b);
        }
        for (a, b) in self.defs.iter_mut().zip(other.defs.iter()) {
            *a = a.join(*b);
        }
        self.enc = self.enc.join(other.enc);
        *self != before
    }

    fn xv(&self, r: quetzal_isa::XReg) -> AbsVal {
        self.x[r.index() as usize]
    }

    /// Advances the state over one instruction (pure transfer, no
    /// diagnostics).
    fn step(&mut self, inst: &Instruction) {
        // Evaluate precise results against the *pre*-state — the
        // destination may also be a source (`x4 = x4 + 32`).
        let precise_x = match *inst {
            Instruction::MovImm { rd, imm } => Some((rd, AbsVal::constant(imm as u64))),
            Instruction::AluRR { op, rd, rn, rm } => {
                Some((rd, AbsVal::transfer(op, self.xv(rn), self.xv(rm))))
            }
            Instruction::AluRI { op, rd, rn, imm } => Some((
                rd,
                AbsVal::transfer(op, self.xv(rn), AbsVal::constant(imm as u64)),
            )),
            _ => None,
        };
        let precise_v = match *inst {
            Instruction::Dup {
                vd,
                rn,
                esize: ElemSize::B64,
            } => self.xv(rn).as_const().map(|c| (vd, VAbs::Splat(c))),
            Instruction::DupImm {
                vd,
                imm,
                esize: ElemSize::B64,
            } => Some((vd, VAbs::Splat(imm as u64))),
            Instruction::Index {
                vd,
                rn,
                step,
                esize: ElemSize::B64,
            } => self
                .xv(rn)
                .as_const()
                .map(|start| (vd, VAbs::Iota { start, step })),
            _ => None,
        };
        if let Instruction::QzConf { esiz, .. } = *inst {
            self.enc = match self.xv(esiz).as_const().map(EncSize::from_field) {
                Some(Some(e)) => EncState::Known(e),
                // Invalid constant: the instruction faults, so the
                // continuation is dead and any state is sound.
                Some(None) => EncState::AnyValid,
                None => EncState::AnyValid,
            };
        }

        // Generic def effect: destination becomes defined and (absent a
        // precise result above) unknown.
        inst.for_each_def(|r| {
            self.defs[r.flat_index()] = Def::Defined;
            match r {
                Reg::X(x) => self.x[x.index() as usize] = AbsVal::TOP,
                Reg::V(v) => self.v[v.index() as usize] = VAbs::Top,
                Reg::P(_) => {}
            }
        });
        if let Some((rd, val)) = precise_x {
            self.x[rd.index() as usize] = val;
        }
        if let Some((vd, val)) = precise_v {
            self.v[vd.index() as usize] = val;
        }
    }
}

/// `qzencode` element-index alignment required by an encoding.
fn encode_align(e: EncSize) -> u64 {
    match e {
        EncSize::E2 => 32,
        EncSize::E8 => 8,
        EncSize::E64 => 1,
    }
}

/// Per-run emission context (page-footprint tracking spans the whole
/// program, not one block).
struct Emitter<'a> {
    cfg: &'a VerifyConfig,
    diags: Vec<Diagnostic>,
    const_pages: BTreeSet<u64>,
    page_warned: bool,
}

impl Emitter<'_> {
    fn push(&mut self, pc: usize, kind: DiagKind, severity: Severity, note: String) {
        self.diags.push(Diagnostic {
            pc,
            kind,
            severity,
            note,
        });
    }

    /// QBUFFER element capacity under a known encoding.
    fn capacity_elems(&self, e: EncSize) -> u64 {
        ((self.cfg.qbuffer_bytes / 8) * e.per_word()) as u64
    }

    /// Records `len` bytes written starting at constant address `addr`
    /// and warns once if the provable footprint alone exceeds the page
    /// budget.
    fn touch_pages(&mut self, pc: usize, addr: u64, len: u64) {
        let Some(budget) = self.cfg.page_budget else {
            return;
        };
        let last = addr.wrapping_add(len.saturating_sub(1));
        for page in (addr >> PAGE_BITS)..=(last >> PAGE_BITS) {
            self.const_pages.insert(page);
        }
        if !self.page_warned && self.const_pages.len() > budget {
            self.page_warned = true;
            self.push(
                pc,
                DiagKind::MemoryFault,
                Severity::Warning,
                format!(
                    "provably-constant stores touch {} distinct pages, exceeding the page budget of {budget}",
                    self.const_pages.len()
                ),
            );
        }
    }

    /// Emits diagnostics for one instruction given the state before it.
    fn check(&mut self, state: &State, pc: usize, inst: &Instruction) {
        // Def-before-use. A read of a register the same instruction
        // redefines is exempt: that shape is either the merge source of
        // a predicated vector op or an in-place accumulator (`add
        // x29, x29, 1`), and both idioms lean on the architectural
        // zero-at-reset value on purpose (the Base tier's
        // compiled-overhead chains are exactly this).
        let mut self_defs: Vec<Reg> = Vec::new();
        inst.for_each_def(|r| self_defs.push(r));
        inst.for_each_use(|r| {
            if self_defs.contains(&r) {
                return;
            }
            match state.defs[r.flat_index()] {
                Def::Defined => {}
                Def::Undef => self.push(
                    pc,
                    DiagKind::UndefinedRead,
                    Severity::Warning,
                    format!("read of {r}, which no instruction writes before this point"),
                ),
                Def::Maybe => self.push(
                    pc,
                    DiagKind::UndefinedRead,
                    Severity::Warning,
                    format!("read of {r}, which is written on only some paths to this point"),
                ),
            }
        });

        match *inst {
            Instruction::VExtract { lane, esize, .. }
            | Instruction::VInsert { lane, esize, .. }
                if lane as usize >= esize.lanes() =>
            {
                self.push(
                    pc,
                    DiagKind::InvalidRegister,
                    Severity::Fatal,
                    format!(
                        "lane {lane} out of range for {} lanes of {esize}",
                        esize.lanes()
                    ),
                );
            }
            Instruction::QzConf { esiz, .. } => match state.xv(esiz).as_const() {
                Some(c) => {
                    if EncSize::from_field(c).is_none() {
                        self.push(
                            pc,
                            DiagKind::InvalidQzConf,
                            Severity::Fatal,
                            format!("element-size field {c} is not one of the architectural values 0/1/2"),
                        );
                    }
                }
                None => self.push(
                    pc,
                    DiagKind::InvalidQzConf,
                    Severity::Warning,
                    format!("element-size operand {esiz} is not provably a valid field value"),
                ),
            },
            Instruction::QzEncode { idx, .. } => match state.enc {
                EncState::Bot => {}
                EncState::Known(e) => {
                    let align = encode_align(e);
                    if align > 1 {
                        match state.xv(idx).residue(align) {
                            Some(0) => {}
                            Some(r) => self.push(
                                pc,
                                DiagKind::QBufferIndexOutOfRange,
                                Severity::Fatal,
                                format!(
                                    "element index ≡ {r} (mod {align}) violates the {align}-element alignment of {e} encoding"
                                ),
                            ),
                            None => self.push(
                                pc,
                                DiagKind::QBufferIndexOutOfRange,
                                Severity::Warning,
                                format!(
                                    "element index {idx} is not provably {align}-element aligned for {e} encoding"
                                ),
                            ),
                        }
                    }
                }
                EncState::AnyValid | EncState::Conflicting => {
                    // 32-alignment satisfies every encoding's constraint.
                    if state.xv(idx).residue(32) != Some(0) {
                        self.push(
                            pc,
                            DiagKind::QBufferIndexOutOfRange,
                            Severity::Warning,
                            format!(
                                "element index {idx} is not provably aligned for the (unknown) configured encoding"
                            ),
                        );
                    }
                }
            },
            Instruction::QzLoad { idx, .. } => self.check_qz_access(state, pc, &[idx]),
            Instruction::QzStore { idx, .. } | Instruction::QzUpdate { idx, .. } => {
                self.check_qz_access(state, pc, &[idx])
            }
            Instruction::QzMm { idx, .. } => self.check_qz_access(state, pc, &[idx]),
            Instruction::QzMhm { idx0, idx1, .. } => self.check_qz_access(state, pc, &[idx0, idx1]),
            Instruction::QzCount { .. } => self.check_qz_access(state, pc, &[]),
            Instruction::Store {
                rn, offset, size, ..
            } => {
                if let Some(base) = state.xv(rn).as_const() {
                    let addr = base.wrapping_add(offset as u64);
                    self.touch_pages(pc, addr, size.bytes() as u64);
                }
            }
            Instruction::VStore { rn, .. } => {
                if let Some(base) = state.xv(rn).as_const() {
                    self.touch_pages(pc, base, quetzal_isa::VLEN_BYTES as u64);
                }
            }
            Instruction::VScatter {
                rn,
                idx,
                msize,
                scale,
                ..
            } => {
                if let (Some(base), Some(lanes)) = (
                    state.xv(rn).as_const(),
                    state.v[idx.index() as usize].lanes64(),
                ) {
                    for lane in lanes {
                        let addr = base.wrapping_add(lane.wrapping_mul(scale as u64));
                        self.touch_pages(pc, addr, msize.bytes() as u64);
                    }
                }
            }
            _ => {}
        }
    }

    /// Width-consistency and static index-range checks shared by every
    /// QBUFFER read/write site.
    fn check_qz_access(&mut self, state: &State, pc: usize, idx_regs: &[quetzal_isa::VReg]) {
        if state.enc == EncState::Conflicting {
            self.push(
                pc,
                DiagKind::QBufferWidthMismatch,
                Severity::Warning,
                "access is reachable under conflicting qzconf element sizes".to_string(),
            );
        }
        if let EncState::Known(e) = state.enc {
            let cap = self.capacity_elems(e);
            for &r in idx_regs {
                if let Some(lanes) = state.v[r.index() as usize].lanes64() {
                    if let Some(&worst) = lanes.iter().filter(|&&l| l >= cap).max() {
                        self.push(
                            pc,
                            DiagKind::QBufferIndexWraps,
                            Severity::Warning,
                            format!(
                                "element index {worst} in {r} exceeds the {cap}-element capacity of {e} encoding and wraps"
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Verifies a program against explicit machine parameters.
pub fn verify_with(program: &Program, config: &VerifyConfig) -> Report {
    let mut em = Emitter {
        cfg: config,
        diags: Vec::new(),
        const_pages: BTreeSet::new(),
        page_warned: false,
    };

    // Structural pass — shared with `Program::build` / `from_raw_checked`.
    for fault in program.image_faults() {
        match fault {
            ImageFault::Empty => em.push(
                0,
                DiagKind::DecodeError,
                Severity::Fatal,
                "empty program image: execution faults at pc 0".to_string(),
            ),
            ImageFault::TargetOutOfRange { pc, target } => em.push(
                pc,
                DiagKind::DecodeError,
                Severity::Fatal,
                format!(
                    "control-transfer target {target} is outside the {}-instruction program",
                    program.len()
                ),
            ),
        }
    }
    if program.is_empty() {
        return finish(program, em.diags);
    }

    let insts = program.instructions();
    let cfg = Cfg::build(program);
    let reachable = cfg.reachable();
    for (b, block) in cfg.blocks().iter().enumerate() {
        if !reachable[b] {
            em.push(
                block.start,
                DiagKind::UnreachableBlock,
                Severity::Warning,
                format!(
                    "block @{}..@{} is unreachable from the entry",
                    block.start, block.end
                ),
            );
        }
    }

    // Fixpoint over reachable blocks.
    let mut entry: Vec<Option<State>> = vec![None; cfg.blocks().len()];
    entry[0] = Some(State::entry());
    let mut worklist = vec![0usize];
    while let Some(b) = worklist.pop() {
        let Some(mut state) = entry[b].clone() else {
            continue;
        };
        let block = &cfg.blocks()[b];
        for pc in block.pcs() {
            state.step(&insts[pc]);
        }
        for succ in &block.succs {
            let Succ::Block(s) = *succ else { continue };
            let changed = match &mut entry[s] {
                Some(existing) => existing.join_into(&state),
                slot @ None => {
                    *slot = Some(state.clone());
                    true
                }
            };
            if changed {
                worklist.push(s);
            }
        }
    }

    // Emission pass over the fixed entry states.
    for (b, block) in cfg.blocks().iter().enumerate() {
        let Some(entry_state) = entry[b].clone() else {
            continue;
        };
        let mut state = entry_state;
        for pc in block.pcs() {
            em.check(&state, pc, &insts[pc]);
            state.step(&insts[pc]);
        }
        // Falling off the end of the image is a decode fault the moment
        // this block's straight-line successor executes. Out-of-range
        // *branch* targets were already reported structurally.
        let last = block.end - 1;
        for succ in &block.succs {
            let Succ::OutOfProgram { target } = *succ else {
                continue;
            };
            if insts[last].branch_target() == Some(target) {
                continue;
            }
            em.push(
                last,
                DiagKind::DecodeError,
                Severity::Fatal,
                format!("execution falls off the end of the program (pc {target})"),
            );
        }
    }

    finish(program, em.diags)
}

fn finish(program: &Program, mut diags: Vec<Diagnostic>) -> Report {
    diags.sort_by_key(|d| (d.pc, d.severity == Severity::Warning));
    Report {
        name: program.name().to_string(),
        len: program.len(),
        diagnostics: diags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal_isa::reg::aliases::*;
    use quetzal_isa::{BranchCond, ProgramBuilder, QBufSel, SAluOp, VAluOp};

    fn clean_loop() -> Program {
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 0);
        b.mov_imm(X1, 10);
        let top = b.label();
        b.bind(top);
        b.alu_ri(SAluOp::Add, X0, X0, 1);
        b.branch(BranchCond::Lt, X0, X1, top);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn clean_program_is_clean() {
        let report = verify(&clean_loop());
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.verdict(), Verdict::Clean);
    }

    #[test]
    fn truncated_image_is_fatal_decode() {
        let p = Program::from_raw(vec![Instruction::MovImm { rd: X0, imm: 1 }], "truncated");
        let report = verify(&p);
        assert_eq!(report.verdict(), Verdict::Fatal);
        assert!(report.has_fatal_kind(DiagKind::DecodeError), "{report}");
    }

    #[test]
    fn empty_image_is_fatal_decode() {
        let p = Program::from_raw(Vec::new(), "empty");
        let report = verify(&p);
        assert!(report.has_fatal_kind(DiagKind::DecodeError));
    }

    #[test]
    fn wild_branch_target_is_fatal_decode_at_the_branch() {
        let p = Program::from_raw(
            vec![Instruction::Jump { target: 40 }, Instruction::Halt],
            "wild",
        );
        let report = verify(&p);
        assert!(report.has_kind_at(DiagKind::DecodeError, 0), "{report}");
        // The dead halt is reported as unreachable, not as a fault.
        assert!(report.has_kind_at(DiagKind::UnreachableBlock, 1));
    }

    #[test]
    fn bad_lane_is_fatal_invalid_register() {
        let mut b = ProgramBuilder::new();
        b.vextract(X0, V0, 9, ElemSize::B64); // B64 has 8 lanes
        b.halt();
        let report = verify(&b.build().unwrap());
        assert!(report.has_fatal_kind(DiagKind::InvalidRegister), "{report}");
        assert!(report.has_kind_at(DiagKind::InvalidRegister, 0));
    }

    #[test]
    fn constant_bad_esiz_is_fatal_qzconf() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 64);
        b.mov_imm(X1, 64);
        b.mov_imm(X2, 7); // not in {0, 1, 2}
        b.qzconf(X0, X1, X2);
        b.halt();
        let report = verify(&b.build().unwrap());
        assert!(report.has_fatal_kind(DiagKind::InvalidQzConf), "{report}");
        assert!(report.has_kind_at(DiagKind::InvalidQzConf, 3));
    }

    #[test]
    fn unknown_esiz_is_a_warning() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(X3, 0x100);
        b.load(X2, X3, 0, quetzal_isa::MemSize::B8);
        b.qzconf(X3, X3, X2);
        b.halt();
        let report = verify(&b.build().unwrap());
        assert_eq!(report.verdict(), Verdict::Warnings, "{report}");
        assert!(report.has_kind_at(DiagKind::InvalidQzConf, 2));
    }

    #[test]
    fn misaligned_constant_encode_under_e2_is_fatal() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 64);
        b.mov_imm(X1, 64);
        b.mov_imm(X2, 0); // E2
        b.qzconf(X0, X1, X2);
        b.mov_imm(X4, 7);
        b.qzencode(QBufSel::Q0, V0, X4);
        b.halt();
        let report = verify(&b.build().unwrap());
        assert!(
            report.has_kind_at(DiagKind::QBufferIndexOutOfRange, 5),
            "{report}"
        );
        assert!(report.has_fatal_kind(DiagKind::QBufferIndexOutOfRange));
    }

    #[test]
    fn strided_encode_loop_proves_alignment() {
        // idx starts at 0 and advances by 32 per iteration: every
        // qzencode is provably aligned even though idx is not constant.
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 64);
        b.mov_imm(X1, 64);
        b.mov_imm(X2, 0); // E2
        b.qzconf(X0, X1, X2);
        b.mov_imm(X4, 0);
        b.mov_imm(X5, 320);
        b.dup_imm(V0, 0x41, ElemSize::B8);
        let top = b.label();
        b.bind(top);
        b.qzencode(QBufSel::Q0, V0, X4);
        b.alu_ri(SAluOp::Add, X4, X4, 32);
        b.branch(BranchCond::Lt, X4, X5, top);
        b.halt();
        let report = verify(&b.build().unwrap());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn undefined_read_is_a_warning() {
        let mut b = ProgramBuilder::new();
        b.alu_rr(SAluOp::Add, X0, X10, X11); // X10/X11 never written
        b.halt();
        let report = verify(&b.build().unwrap());
        assert_eq!(report.verdict(), Verdict::Warnings);
        assert!(report.has_kind_at(DiagKind::UndefinedRead, 0));
    }

    #[test]
    fn merging_vector_destination_is_exempt_from_undef() {
        let mut b = ProgramBuilder::new();
        b.ptrue(P0, ElemSize::B64);
        b.dup_imm(V0, 1, ElemSize::B64);
        // V2 read as merge source only: no warning.
        b.valu_vv(VAluOp::Add, V2, V0, V0, P0, ElemSize::B64);
        b.halt();
        let report = verify(&b.build().unwrap());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn conflicting_configurations_warn_at_access() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 64);
        b.mov_imm(X1, 64);
        b.mov_imm(X9, 1);
        let other = b.label();
        let join = b.label();
        b.branch(BranchCond::Eq, X0, X1, other);
        b.mov_imm(X2, 0); // E2 on one path
        b.qzconf(X0, X1, X2);
        b.jump(join);
        b.bind(other);
        b.mov_imm(X2, 1); // E8 on the other
        b.qzconf(X0, X1, X2);
        b.bind(join);
        b.dup_imm(V1, 0, ElemSize::B64);
        b.ptrue(P0, ElemSize::B64);
        b.qzload(V2, V1, QBufSel::Q0, P0);
        b.halt();
        let report = verify(&b.build().unwrap());
        assert_eq!(report.verdict(), Verdict::Warnings, "{report}");
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.kind == DiagKind::QBufferWidthMismatch));
    }

    #[test]
    fn constant_index_beyond_capacity_warns_of_wrap() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 64);
        b.mov_imm(X1, 64);
        b.mov_imm(X2, 2); // E64: 1024-element capacity at 8 KiB
        b.qzconf(X0, X1, X2);
        b.dup_imm(V1, 5000, ElemSize::B64);
        b.ptrue(P0, ElemSize::B64);
        b.qzload(V2, V1, QBufSel::Q0, P0);
        b.halt();
        let report = verify(&b.build().unwrap());
        assert!(
            report
                .diagnostics()
                .iter()
                .any(|d| d.kind == DiagKind::QBufferIndexWraps),
            "{report}"
        );
    }

    #[test]
    fn constant_store_footprint_checked_against_budget() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 0x1000_0000);
        b.mov_imm(X1, 7);
        for i in 0..4 {
            b.store(X1, X0, i * 4096, quetzal_isa::MemSize::B8);
        }
        b.halt();
        let p = b.build().unwrap();
        let tight = VerifyConfig {
            page_budget: Some(2),
            ..VerifyConfig::default()
        };
        let report = verify_with(&p, &tight);
        assert!(
            report
                .diagnostics()
                .iter()
                .any(|d| d.kind == DiagKind::MemoryFault),
            "{report}"
        );
        // And clean under the default (no budget check).
        assert!(verify(&p).is_clean());
    }

    #[test]
    fn report_renders_every_diagnostic() {
        let p = Program::from_raw(
            vec![Instruction::Jump { target: 40 }, Instruction::Halt],
            "render",
        );
        let report = verify(&p);
        let text = report.to_string();
        assert!(text.contains("FATAL"));
        assert!(text.contains("decode-error"));
        assert!(text.contains("unreachable-block"));
    }
}
