//! Abstract domains for the dataflow pass.
//!
//! Three small lattices, chosen so that the properties the runtime
//! actually faults on are provable for real kernels:
//!
//! * [`AbsVal`] — scalar congruence constants: either an exact 64-bit
//!   value or `value ≡ r (mod 2^t)`. Restricting moduli to powers of
//!   two is what keeps the domain sound under the ISA's wrapping
//!   arithmetic (congruences mod `2^t` survive reduction mod `2^64`;
//!   congruences mod other numbers do not), and it is exactly enough
//!   to prove `qzencode` element-index alignment through `idx += 32`
//!   style loops.
//! * [`VAbs`] — vectors as splat/iota shapes, for static QBUFFER
//!   index-range warnings.
//! * [`EncState`] — the QBUFFER element-size configuration set by
//!   `qzconf`, which gates `qzencode` alignment faults.

use quetzal_isa::SAluOp;

/// Abstract 64-bit scalar value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// Unreachable / no value yet.
    Bot,
    /// `m == 0`: the value is exactly `r`. Otherwise `m` is a power of
    /// two and the value is congruent to `r` modulo `m` (`m == 1` means
    /// any value, i.e. top).
    Mod {
        /// Power-of-two modulus, or 0 for an exact constant.
        m: u64,
        /// Residue (`r < m` unless `m == 0`).
        r: u64,
    },
}

/// Largest power of two dividing `g` (`g != 0`).
fn low_bit(g: u64) -> u64 {
    g & g.wrapping_neg()
}

impl AbsVal {
    /// The unconstrained value.
    pub const TOP: AbsVal = AbsVal::Mod { m: 1, r: 0 };

    /// An exact constant.
    pub fn constant(v: u64) -> AbsVal {
        AbsVal::Mod { m: 0, r: v }
    }

    /// The exact value, if known.
    pub fn as_const(self) -> Option<u64> {
        match self {
            AbsVal::Mod { m: 0, r } => Some(r),
            _ => None,
        }
    }

    /// The value modulo `align` (a power of two), if decidable.
    pub fn residue(self, align: u64) -> Option<u64> {
        debug_assert!(align.is_power_of_two());
        match self {
            AbsVal::Bot => None,
            AbsVal::Mod { m: 0, r } => Some(r & (align - 1)),
            AbsVal::Mod { m, r } if m >= align => Some(r & (align - 1)),
            _ => None,
        }
    }

    /// Least upper bound of two abstract values.
    pub fn join(self, other: AbsVal) -> AbsVal {
        use AbsVal::*;
        let (Mod { m: m1, r: r1 }, Mod { m: m2, r: r2 }) = (self, other) else {
            return if self == Bot { other } else { self };
        };
        if self == other {
            return self;
        }
        // gcd over {m1, m2, r1 - r2}, with 0 as the gcd identity; the
        // largest power of two dividing it is a sound common modulus.
        let mut g = gcd(m1, m2);
        g = gcd(g, r1.wrapping_sub(r2));
        if g == 0 {
            // Only possible when both are the same constant — handled above.
            return self;
        }
        let m = low_bit(g);
        if m == 1 {
            AbsVal::TOP
        } else {
            Mod { m, r: r1 & (m - 1) }
        }
    }

    /// Abstract transfer of a scalar ALU op. Constant × constant folds
    /// through [`SAluOp::eval`] — the interpreter's own semantics — so
    /// a verifier-proven constant is the value the machine computes.
    pub fn transfer(op: SAluOp, a: AbsVal, b: AbsVal) -> AbsVal {
        use AbsVal::*;
        let (Mod { m: m1, r: r1 }, Mod { m: m2, r: r2 }) = (a, b) else {
            return Bot;
        };
        if m1 == 0 && m2 == 0 {
            return AbsVal::constant(op.eval(r1, r2));
        }
        match op {
            // Ring and bitwise ops act locally on low bits: inputs
            // congruent mod 2^t give outputs congruent mod 2^t.
            SAluOp::Add | SAluOp::Sub | SAluOp::Mul | SAluOp::And | SAluOp::Or | SAluOp::Xor => {
                let m = match (m1, m2) {
                    (0, m) | (m, 0) => m,
                    _ => m1.min(m2),
                };
                if m == 1 {
                    AbsVal::TOP
                } else {
                    Mod {
                        m,
                        r: op.eval(r1, r2) & (m - 1),
                    }
                }
            }
            // Left shift by a known amount widens the known-low-bits
            // window; if it reaches 64 bits the result is exact.
            SAluOp::Shl if m2 == 0 => {
                let s = (r2 & 63) as u32;
                // `a` is not constant here (both-const handled above).
                let t = m1.trailing_zeros();
                if t + s >= 64 {
                    AbsVal::constant(r1.wrapping_shl(s))
                } else {
                    let m = m1 << s;
                    Mod {
                        m,
                        r: r1.wrapping_shl(s) & (m - 1),
                    }
                }
            }
            _ => AbsVal::TOP,
        }
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Abstract 512-bit vector, tracked only in the shapes QBUFFER index
/// operands actually take in kernels (64-bit-lane splats and iotas).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VAbs {
    /// Unreachable / no value yet.
    Bot,
    /// Every 64-bit lane holds the same known value.
    Splat(u64),
    /// Lane `i` holds `start + i * step` over 64-bit lanes.
    Iota {
        /// Lane 0 value.
        start: u64,
        /// Per-lane increment.
        step: i64,
    },
    /// Anything.
    Top,
}

impl VAbs {
    /// Least upper bound.
    pub fn join(self, other: VAbs) -> VAbs {
        match (self, other) {
            (VAbs::Bot, x) | (x, VAbs::Bot) => x,
            (a, b) if a == b => a,
            _ => VAbs::Top,
        }
    }

    /// The eight 64-bit lane values, if they are all known.
    pub fn lanes64(self) -> Option<[u64; 8]> {
        match self {
            VAbs::Splat(v) => Some([v; 8]),
            VAbs::Iota { start, step } => {
                let mut lanes = [0u64; 8];
                for (i, lane) in lanes.iter_mut().enumerate() {
                    *lane = start.wrapping_add((step as u64).wrapping_mul(i as u64));
                }
                Some(lanes)
            }
            _ => None,
        }
    }
}

/// The QBUFFER element-size configuration, as set by `qzconf`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncState {
    /// Unreachable.
    Bot,
    /// Exactly this configuration (field value 0/1/2).
    Known(quetzal_isa::EncSize),
    /// Some valid configuration, unknown which (a `qzconf` with an
    /// unprovable element-size operand executed).
    AnyValid,
    /// Different known configurations merge here — reachable accesses
    /// see an ambiguous element width.
    Conflicting,
}

impl EncState {
    /// Least upper bound.
    pub fn join(self, other: EncState) -> EncState {
        use EncState::*;
        match (self, other) {
            (Bot, x) | (x, Bot) => x,
            (Known(a), Known(b)) if a == b => Known(a),
            (Known(_), Known(_)) | (Conflicting, _) | (_, Conflicting) => Conflicting,
            (AnyValid, _) | (_, AnyValid) => AnyValid,
        }
    }
}

/// Three-value def-before-use state of one architectural register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Def {
    /// Never written on any path to here.
    Undef,
    /// Written on every path to here.
    Defined,
    /// Written on some paths only.
    Maybe,
}

impl Def {
    /// Least upper bound.
    pub fn join(self, other: Def) -> Def {
        if self == other {
            self
        } else {
            Def::Maybe
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal_isa::EncSize;

    #[test]
    fn join_of_loop_counter_keeps_alignment() {
        // idx = 0 joined with idx = 32, 64, … stays ≡ 0 (mod 32).
        let mut v = AbsVal::constant(0);
        for k in 1..5u64 {
            v = v.join(AbsVal::constant(32 * k));
        }
        assert_eq!(v.residue(32), Some(0));
        assert_eq!(v.as_const(), None);
        // And survives another `idx += 32`.
        let v = AbsVal::transfer(SAluOp::Add, v, AbsVal::constant(32));
        assert_eq!(v.residue(32), Some(0));
    }

    #[test]
    fn join_of_misaligned_constants_is_decidably_misaligned() {
        let v = AbsVal::constant(7).join(AbsVal::constant(39));
        // 7 ≡ 39 (mod 32): still provably ≢ 0 (mod 32).
        assert_eq!(v.residue(32), Some(7));
    }

    #[test]
    fn constant_folding_matches_interpreter_semantics() {
        let a = AbsVal::constant(u64::MAX);
        let b = AbsVal::constant(3);
        assert_eq!(
            AbsVal::transfer(SAluOp::Add, a, b).as_const(),
            Some(u64::MAX.wrapping_add(3))
        );
        assert_eq!(AbsVal::transfer(SAluOp::SetLt, a, b).as_const(), Some(1));
    }

    #[test]
    fn wrapping_join_is_sound() {
        // 0 and 2^63 differ by 2^63: congruent mod 2^63, not equal.
        let v = AbsVal::constant(0).join(AbsVal::constant(1u64 << 63));
        assert_eq!(v.residue(32), Some(0));
        assert_eq!(v.as_const(), None);
    }

    #[test]
    fn shift_widens_to_exact() {
        // (x mod 2) << 63 determines the full value.
        let half = AbsVal::constant(1).join(AbsVal::constant(3));
        assert_eq!(half.residue(2), Some(1));
        let v = AbsVal::transfer(SAluOp::Shl, half, AbsVal::constant(63));
        assert_eq!(v.as_const(), Some(1u64 << 63));
    }

    #[test]
    fn unknown_operands_give_top() {
        let v = AbsVal::transfer(SAluOp::Shr, AbsVal::TOP, AbsVal::constant(3));
        assert_eq!(v, AbsVal::TOP);
        assert_eq!(v.residue(8), None);
    }

    #[test]
    fn vector_shapes() {
        let i = VAbs::Iota { start: 8, step: 8 };
        assert_eq!(i.lanes64(), Some([8, 16, 24, 32, 40, 48, 56, 64]));
        assert_eq!(i.join(i), i);
        assert_eq!(i.join(VAbs::Splat(0)), VAbs::Top);
        assert_eq!(VAbs::Bot.join(i), i);
    }

    #[test]
    fn enc_join_orders() {
        use EncState::*;
        assert_eq!(
            Known(EncSize::E2).join(Known(EncSize::E2)),
            Known(EncSize::E2)
        );
        assert_eq!(Known(EncSize::E2).join(Known(EncSize::E8)), Conflicting);
        assert_eq!(Known(EncSize::E2).join(AnyValid), AnyValid);
        assert_eq!(Conflicting.join(AnyValid), Conflicting);
        assert_eq!(Bot.join(Known(EncSize::E64)), Known(EncSize::E64));
    }

    #[test]
    fn def_join() {
        assert_eq!(Def::Undef.join(Def::Defined), Def::Maybe);
        assert_eq!(Def::Defined.join(Def::Defined), Def::Defined);
        assert_eq!(Def::Maybe.join(Def::Undef), Def::Maybe);
    }
}
