//! Combined edit-distance filtering + alignment pipeline (paper use
//! case 5, Fig. 14b).
//!
//! Real genome-analysis pipelines chain multiple algorithms: a cheap
//! filter (SneakySnake) rejects distant candidate pairs, and only the
//! survivors are aligned (WFA). The paper uses this to demonstrate that
//! QUETZAL accelerates *multiple* pipeline stages with the same
//! hardware — no per-algorithm accelerator, no data offloading between
//! stages.

use crate::common::Tier;
use crate::sneakysnake::{ss_filter, ss_sim};
use crate::wfa::wfa_edit_align;
use crate::wfa_sim::{wfa_sim, WfaSimError};
use quetzal::uarch::RunStats;
use quetzal::{BatchRunner, Machine, MachineConfig, Probe};
use quetzal_genomics::dataset::SeqPair;
use quetzal_genomics::Alphabet;

/// Aggregate result of running the filter+align pipeline over a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineResult {
    /// Pairs that passed the filter (and were aligned).
    pub accepted: usize,
    /// Pairs rejected by the filter.
    pub rejected: usize,
    /// Sum of alignment scores over accepted pairs.
    pub score_sum: u64,
}

/// Scalar reference pipeline.
pub fn pipeline_ref(pairs: &[SeqPair], threshold: u32) -> PipelineResult {
    let mut out = PipelineResult {
        accepted: 0,
        rejected: 0,
        score_sum: 0,
    };
    for pair in pairs {
        let v = ss_filter(pair.pattern.as_bytes(), pair.text.as_bytes(), threshold);
        if v.accepted {
            out.accepted += 1;
            out.score_sum +=
                wfa_edit_align(pair.pattern.as_bytes(), pair.text.as_bytes()).score as u64;
        } else {
            out.rejected += 1;
        }
    }
    out
}

/// Simulated pipeline: per pair, an SS kernel decides accept/reject and
/// accepted pairs run the WFA kernel — all on one machine, with warm
/// caches and QBUFFERs across stages (the paper's flexibility claim).
///
/// # Errors
///
/// Returns [`WfaSimError`] if any kernel fails.
pub fn pipeline_sim<P: Probe>(
    machine: &mut Machine<P>,
    pairs: &[SeqPair],
    alphabet: Alphabet,
    threshold: u32,
    tier: Tier,
) -> Result<(PipelineResult, RunStats), WfaSimError> {
    let mut stats = RunStats::default();
    let mut result = PipelineResult {
        accepted: 0,
        rejected: 0,
        score_sum: 0,
    };
    for pair in pairs {
        let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
        let ss = ss_sim(machine, p, t, alphabet, threshold, tier).map_err(WfaSimError::Sim)?;
        stats.accumulate(&ss.stats);
        if ss.value as u32 <= threshold {
            let wfa = wfa_sim(machine, p, t, alphabet, tier)?;
            stats.accumulate(&wfa.stats);
            result.accepted += 1;
            result.score_sum += wfa.value as u64;
        } else {
            result.rejected += 1;
        }
    }
    Ok((result, stats))
}

/// The filter+align pipeline over independent pairs, sharded across
/// `runner`'s worker threads: each pair is one work item on its own
/// fresh machine, where the SS kernel decides accept/reject and — on
/// the *same* machine, with warm caches and QBUFFERs across the two
/// stages (the paper's flexibility claim) — accepted pairs run the WFA
/// kernel. Per-pair results and statistics merge in pair order, so the
/// outcome is bit-identical for every thread count.
///
/// # Errors
///
/// Returns [`WfaSimError`] if any kernel fails (the error of the
/// lowest-numbered failing pair, deterministically).
///
/// # Panics
///
/// Panics if a worker shard panics.
pub fn pipeline_batch(
    runner: &BatchRunner,
    config: &MachineConfig,
    pairs: &[SeqPair],
    alphabet: Alphabet,
    threshold: u32,
    tier: Tier,
) -> Result<(PipelineResult, RunStats), WfaSimError> {
    let per_pair = runner
        .run_machines(
            config,
            pairs,
            |machine, _i, pair| -> Result<(Option<u64>, RunStats), WfaSimError> {
                let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
                let ss =
                    ss_sim(machine, p, t, alphabet, threshold, tier).map_err(WfaSimError::Sim)?;
                let mut stats = ss.stats;
                if ss.value as u32 <= threshold {
                    let wfa = wfa_sim(machine, p, t, alphabet, tier)?;
                    stats.merge(&wfa.stats);
                    Ok((Some(wfa.value as u64), stats))
                } else {
                    Ok((None, stats))
                }
            },
        )
        .expect("pipeline shard panicked");

    let mut stats = RunStats::default();
    let mut result = PipelineResult {
        accepted: 0,
        rejected: 0,
        score_sum: 0,
    };
    for outcome in per_pair {
        let (score, pair_stats) = outcome?;
        stats.merge(&pair_stats);
        match score {
            Some(s) => {
                result.accepted += 1;
                result.score_sum += s;
            }
            None => result.rejected += 1,
        }
    }
    Ok((result, stats))
}

/// Generates a filtering workload: `n` pairs of which roughly
/// `dissimilar_fraction` are unrelated random pairs (to be rejected)
/// and the rest are mutated copies (to be accepted). Deterministic in
/// `seed`.
pub fn mixed_pairs(
    spec: &quetzal_genomics::dataset::DatasetSpec,
    seed: u64,
    n: usize,
    dissimilar_fraction: f64,
) -> Vec<SeqPair> {
    use quetzal_genomics::dataset::{random_seq, SplitMix64};
    let mut rng = SplitMix64::new(seed ^ 0xD15_51A1);
    let similar = spec.generate_n(seed, n);
    similar
        .into_iter()
        .map(|pair| {
            if rng.f64() < dissimilar_fraction {
                SeqPair {
                    text: random_seq(&mut rng, pair.pattern.len(), spec.alphabet),
                    pattern: pair.pattern,
                }
            } else {
                pair
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal::MachineConfig;
    use quetzal_genomics::dataset::DatasetSpec;

    fn threshold_for(spec: &DatasetSpec) -> u32 {
        (spec.read_len as f64 * spec.edit_rate * 2.0).ceil() as u32
    }

    #[test]
    fn reference_pipeline_filters_dissimilar_pairs() {
        let spec = DatasetSpec::d100();
        let pairs = mixed_pairs(&spec, 71, 20, 0.5);
        let r = pipeline_ref(&pairs, threshold_for(&spec));
        assert!(r.accepted > 0, "similar pairs must pass");
        assert!(r.rejected > 0, "random pairs must be rejected");
        assert_eq!(r.accepted + r.rejected, 20);
    }

    #[test]
    fn sim_matches_reference_accept_set_and_scores() {
        let spec = DatasetSpec::d100();
        let pairs = mixed_pairs(&spec, 73, 6, 0.5);
        let e = threshold_for(&spec);
        let want = pipeline_ref(&pairs, e);
        for tier in [Tier::Vec, Tier::QuetzalC] {
            let mut m = Machine::new(MachineConfig::default());
            let (got, stats) = pipeline_sim(&mut m, &pairs, Alphabet::Dna, e, tier).unwrap();
            assert_eq!(got, want, "{tier}");
            assert!(stats.cycles > 0);
        }
    }

    #[test]
    fn batch_matches_reference_and_is_thread_invariant() {
        let spec = DatasetSpec::d100();
        let pairs = mixed_pairs(&spec, 77, 8, 0.5);
        let e = threshold_for(&spec);
        let want = pipeline_ref(&pairs, e);
        let cfg = MachineConfig::default();
        let (r1, s1) = pipeline_batch(
            &BatchRunner::new(1),
            &cfg,
            &pairs,
            Alphabet::Dna,
            e,
            Tier::QuetzalC,
        )
        .unwrap();
        assert_eq!(r1, want);
        assert!(s1.cycles > 0);
        for threads in [2, 4] {
            let (rn, sn) = pipeline_batch(
                &BatchRunner::new(threads),
                &cfg,
                &pairs,
                Alphabet::Dna,
                e,
                Tier::QuetzalC,
            )
            .unwrap();
            assert_eq!(rn, r1, "threads={threads}");
            assert_eq!(sn, s1, "threads={threads}");
        }
    }

    #[test]
    fn quetzal_c_accelerates_the_whole_pipeline() {
        let spec = DatasetSpec::d100();
        let pairs = mixed_pairs(&spec, 75, 4, 0.5);
        let e = threshold_for(&spec);
        let mut mv = Machine::new(MachineConfig::default());
        let (_, vec_stats) = pipeline_sim(&mut mv, &pairs, Alphabet::Dna, e, Tier::Vec).unwrap();
        let mut mq = Machine::new(MachineConfig::default());
        let (_, qz_stats) =
            pipeline_sim(&mut mq, &pairs, Alphabet::Dna, e, Tier::QuetzalC).unwrap();
        assert!(
            qz_stats.cycles < vec_stats.cycles,
            "QUETZAL+C pipeline {} must beat VEC {}",
            qz_stats.cycles,
            vec_stats.cycles
        );
    }
}
