//! SneakySnake edit-distance approximation (paper use case 2).
//!
//! SneakySnake is a pre-alignment *filter*: it computes a lower bound on
//! the edit distance of a pair and rejects the pair when the bound
//! exceeds a user threshold `E`. The guarantee a filter must provide is
//! one-sided: it may accept distant pairs (false positives cost only
//! alignment time) but must never reject a pair whose true distance is
//! within the threshold.
//!
//! Formulation (paper Fig. 1c): build a boolean grid whose row `k`
//! (`-E ≤ k ≤ E`) marks positions `i` where `pattern[i+k] == text[i]`;
//! then greedily chain the longest run of matches starting at the
//! current column across all rows. Each chain step beyond the first
//! consumes one edit. Greedy longest-interval chaining minimises the
//! number of intervals, so the step count lower-bounds the true
//! distance.
//!
//! The *diagonal comparison* step (counting consecutive matches per
//! row) is the hot loop the paper vectorises (Fig. 2b) and accelerates
//! with `qzmhm<qzcount>` (Fig. 6b).

use crate::common::{emit_compiled_overhead, emit_qz_stage_pair, stage_bytes, SimOutcome, Tier};
use crate::wfa_sim::SeqEnc;
use quetzal::isa::*;
use quetzal::uarch::SimError;
use quetzal::{Machine, Probe};
use quetzal_genomics::Alphabet;

/// Verdict of the SneakySnake filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsVerdict {
    /// The computed lower bound on the edit distance (number of chain
    /// steps taken).
    pub bound: u32,
    /// Whether the pair passes the filter (`bound <= threshold`).
    pub accepted: bool,
}

/// Scalar reference implementation of the SneakySnake filter.
///
/// ```
/// use quetzal_algos::sneakysnake::ss_filter;
///
/// // Identical pair: zero edits needed, always accepted.
/// let v = ss_filter(b"ACGTACGT", b"ACGTACGT", 2);
/// assert_eq!(v.bound, 0);
/// assert!(v.accepted);
/// ```
pub fn ss_filter(pattern: &[u8], text: &[u8], threshold: u32) -> SsVerdict {
    let n = text.len() as i64;
    let plen = pattern.len() as i64;
    let e = threshold as i64;
    let mut col = 0i64;
    let mut edits = 0u32;
    while col < n {
        // Longest run of matches starting at `col` over all rows.
        let mut best = 0i64;
        for k in -e..=e {
            let mut run = 0i64;
            while col + run < n {
                let pi = col + run + k;
                if pi < 0 || pi >= plen || pattern[pi as usize] != text[(col + run) as usize] {
                    break;
                }
                run += 1;
            }
            best = best.max(run);
        }
        col += best;
        if col >= n {
            break;
        }
        // The next column is consumed by an edit.
        col += 1;
        edits += 1;
        if edits > threshold {
            // Early exit: the pair is already rejected (real SneakySnake
            // stops as soon as the budget is exceeded).
            break;
        }
    }
    SsVerdict {
        bound: edits,
        accepted: edits <= threshold,
    }
}

/// Emits the tier-specific run-counting body. On entry `P6` holds the
/// active lanes, `V2` the per-lane run counters, `V5` the text indices
/// (`col + run`), `V7` the pattern indices (`col + run + k`), `V8`/`V9`
/// the `n`/`plen` splats. The body must advance `V2` for matching lanes
/// and leave continuing lanes in `P2`.
fn emit_count_body(b: &mut ProgramBuilder, tier: Tier, enc: &SeqEnc) {
    match tier {
        Tier::Base => unreachable!("base tier uses the scalar skeleton"),
        Tier::Vec => {
            b.vgather(V10, X1, V5, P6, ElemSize::B64, MemSize::B1, 1); // text
            b.vgather(V11, X0, V7, P6, ElemSize::B64, MemSize::B1, 1); // pattern
            b.vcmp_vv(BranchCond::Eq, P3, V10, V11, P6, ElemSize::B64);
            b.valu_vi(VAluOp::Add, V2, V2, 1, P3, ElemSize::B64);
            b.por(P2, P3, P3);
        }
        Tier::Quetzal => {
            b.qzload(V11, V7, QBufSel::Q0, P6); // pattern
            b.qzload(V10, V5, QBufSel::Q1, P6); // text
            b.valu_vi(VAluOp::And, V10, V10, enc.char_mask, P6, ElemSize::B64);
            b.valu_vi(VAluOp::And, V11, V11, enc.char_mask, P6, ElemSize::B64);
            b.vcmp_vv(BranchCond::Eq, P3, V10, V11, P6, ElemSize::B64);
            b.valu_vi(VAluOp::Add, V2, V2, 1, P3, ElemSize::B64);
            b.por(P2, P3, P3);
        }
        Tier::QuetzalC => {
            // Count whole segments of consecutive matches (Fig. 6b).
            b.qzmhm(QzOp::Count, V12, V7, V5, P6);
            // Clamp so zero padding beyond either sequence cannot match.
            b.valu_vv(VAluOp::Sub, V13, V8, V5, P6, ElemSize::B64); // n - tidx
            b.valu_vv(VAluOp::Sub, V14, V9, V7, P6, ElemSize::B64); // plen - pidx
            b.valu_vv(VAluOp::Smin, V12, V12, V13, P6, ElemSize::B64);
            b.valu_vv(VAluOp::Smin, V12, V12, V14, P6, ElemSize::B64);
            b.valu_vv(VAluOp::Add, V2, V2, V12, P6, ElemSize::B64);
            b.vcmp_vi(BranchCond::Eq, P3, V12, enc.seg_full, P6, ElemSize::B64);
            b.por(P2, P3, P3);
        }
    }
}

/// Builds the vectorised SneakySnake program.
fn build_vector_program(tier: Tier, args: &SsArgs) -> Program {
    let mut b = ProgramBuilder::new();
    b.name(format!("ss-{tier}"));
    if tier.uses_quetzal() {
        emit_qz_stage_pair(
            &mut b,
            args.pa,
            args.plen,
            args.ta,
            args.tlen,
            args.enc.esiz_field,
        );
    }
    // x0 PA, x1 TA, x2 PLEN, x3 n, x4 E, x5 col, x6 edits, x7 best,
    // x8 k, x10 result, x13 tmp, x21 zero.
    b.mov_imm(X0, args.pa as i64);
    b.mov_imm(X1, args.ta as i64);
    b.mov_imm(X2, args.plen as i64);
    b.mov_imm(X3, args.tlen as i64);
    b.mov_imm(X4, args.threshold as i64);
    b.mov_imm(X5, 0);
    b.mov_imm(X6, 0);
    b.mov_imm(X10, args.result as i64);
    b.mov_imm(X21, 0);
    b.ptrue(P0, ElemSize::B64);
    b.dup(V8, X3, ElemSize::B64); // n splat
    b.dup(V9, X2, ElemSize::B64); // plen splat

    let outer = b.label();
    let chunk_loop = b.label();
    let inner = b.label();
    let inner_done = b.label();
    let chunk_done = b.label();
    let done = b.label();

    b.bind(outer);
    b.branch(BranchCond::Ge, X5, X3, done);
    b.mov_imm(X7, 0); // best
    b.mov_imm(X8, -(args.threshold as i64)); // k = -E
    b.dup(V6, X5, ElemSize::B64); // col splat
    b.bind(chunk_loop);
    b.branch(BranchCond::Gt, X8, X4, chunk_done);
    b.alu_rr(SAluOp::Sub, X13, X4, X8);
    b.alu_ri(SAluOp::Add, X13, X13, 1);
    b.pwhilelt(P1, X13, ElemSize::B64);
    b.index(V1, X8, 1, ElemSize::B64); // k per lane
    b.dup_imm(V2, 0, ElemSize::B64); // run counters
    b.por(P2, P1, P1);
    b.bind(inner);
    // tidx = col + run, pidx = tidx + k.
    b.valu_vv(VAluOp::Add, V5, V2, V6, P1, ElemSize::B64);
    b.valu_vv(VAluOp::Add, V7, V5, V1, P1, ElemSize::B64);
    // Bounds: tidx < n, 0 <= pidx < plen, under continuing lanes.
    b.vcmp_vv(BranchCond::Lt, P4, V5, V8, P2, ElemSize::B64);
    b.vcmp_vi(BranchCond::Ge, P5, V7, 0, P4, ElemSize::B64);
    b.vcmp_vv(BranchCond::Lt, P6, V7, V9, P5, ElemSize::B64);
    b.pcount(X13, P6, ElemSize::B64);
    b.branch(BranchCond::Eq, X13, X21, inner_done);
    emit_count_body(&mut b, tier, &args.enc);
    b.jump(inner);
    b.bind(inner_done);
    b.vreduce(RedOp::Max, X13, V2, P1, ElemSize::B64);
    b.alu_rr(SAluOp::Max, X7, X7, X13);
    b.alu_ri(SAluOp::Add, X8, X8, 8);
    b.jump(chunk_loop);
    b.bind(chunk_done);
    b.alu_rr(SAluOp::Add, X5, X5, X7);
    b.branch(BranchCond::Ge, X5, X3, done);
    b.alu_ri(SAluOp::Add, X5, X5, 1);
    b.alu_ri(SAluOp::Add, X6, X6, 1);
    b.branch(BranchCond::Gt, X6, X4, done); // early reject
    b.jump(outer);
    b.bind(done);
    b.store(X6, X10, 0, MemSize::B8);
    b.halt();
    b.build().expect("ss kernel builds")
}

/// Builds the all-scalar baseline program.
fn build_base_program(args: &SsArgs) -> Program {
    let mut b = ProgramBuilder::new();
    b.name("ss-BASE");
    b.mov_imm(X0, args.pa as i64);
    b.mov_imm(X1, args.ta as i64);
    b.mov_imm(X2, args.plen as i64);
    b.mov_imm(X3, args.tlen as i64);
    b.mov_imm(X4, args.threshold as i64);
    b.mov_imm(X5, 0); // col
    b.mov_imm(X6, 0); // edits
    b.mov_imm(X10, args.result as i64);
    b.mov_imm(X21, 0);

    let outer = b.label();
    let k_loop = b.label();
    let run_loop = b.label();
    let run_done = b.label();
    let k_done = b.label();
    let done = b.label();

    b.bind(outer);
    b.branch(BranchCond::Ge, X5, X3, done);
    b.mov_imm(X7, 0); // best
    b.alu_rr(SAluOp::Sub, X8, X21, X4); // k = -E
    b.bind(k_loop);
    b.branch(BranchCond::Gt, X8, X4, k_done);
    b.mov_imm(X9, 0); // run
    b.bind(run_loop);
    b.alu_rr(SAluOp::Add, X13, X5, X9); // tidx
    b.branch(BranchCond::Ge, X13, X3, run_done);
    b.alu_rr(SAluOp::Add, X14, X13, X8); // pidx
    b.branch(BranchCond::Lt, X14, X21, run_done);
    b.branch(BranchCond::Ge, X14, X2, run_done);
    b.alu_rr(SAluOp::Add, X15, X1, X13);
    b.load(X17, X15, 0, MemSize::B1);
    b.alu_rr(SAluOp::Add, X15, X0, X14);
    b.load(X18, X15, 0, MemSize::B1);
    b.branch(BranchCond::Ne, X17, X18, run_done);
    b.alu_ri(SAluOp::Add, X9, X9, 1);
    emit_compiled_overhead(&mut b, 6);
    b.jump(run_loop);
    b.bind(run_done);
    b.alu_rr(SAluOp::Max, X7, X7, X9);
    b.alu_ri(SAluOp::Add, X8, X8, 1);
    b.jump(k_loop);
    b.bind(k_done);
    b.alu_rr(SAluOp::Add, X5, X5, X7);
    b.branch(BranchCond::Ge, X5, X3, done);
    b.alu_ri(SAluOp::Add, X5, X5, 1);
    b.alu_ri(SAluOp::Add, X6, X6, 1);
    b.branch(BranchCond::Gt, X6, X4, done); // early reject
    b.jump(outer);
    b.bind(done);
    b.store(X6, X10, 0, MemSize::B8);
    b.halt();
    b.build().expect("ss base kernel builds")
}

#[derive(Debug, Clone, Copy)]
struct SsArgs {
    pa: u64,
    ta: u64,
    plen: usize,
    tlen: usize,
    threshold: u32,
    result: u64,
    enc: SeqEnc,
}

/// Runs the SneakySnake filter on the simulated machine. The returned
/// [`SimOutcome::value`] is the computed edit-distance lower bound.
///
/// # Errors
///
/// Returns [`SimError`] on simulation failure.
pub fn ss_sim<P: Probe>(
    machine: &mut Machine<P>,
    pattern: &[u8],
    text: &[u8],
    alphabet: Alphabet,
    threshold: u32,
    tier: Tier,
) -> Result<SimOutcome, SimError> {
    let pa = stage_bytes(machine, pattern);
    let ta = stage_bytes(machine, text);
    let result = machine.alloc(8);
    let args = SsArgs {
        pa,
        ta,
        plen: pattern.len(),
        tlen: text.len(),
        threshold,
        result,
        enc: SeqEnc::for_alphabet(alphabet),
    };
    let program = match tier {
        Tier::Base => build_base_program(&args),
        _ => build_vector_program(tier, &args),
    };
    let stats = machine.run(&program)?;
    let bound = machine.read_u64(result) as i64;
    Ok(SimOutcome {
        value: bound,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal::MachineConfig;
    use quetzal_genomics::dataset::{DatasetSpec, SplitMix64};
    use quetzal_genomics::distance::levenshtein;

    #[test]
    fn identical_pair_needs_no_edits() {
        let v = ss_filter(b"ACGTACGT", b"ACGTACGT", 0);
        assert_eq!(v.bound, 0);
        assert!(v.accepted);
    }

    #[test]
    fn single_mismatch_one_edit() {
        let v = ss_filter(b"ACGTACGT", b"ACGAACGT", 1);
        assert_eq!(v.bound, 1);
        assert!(v.accepted);
        assert!(!ss_filter(b"ACGTACGT", b"ACGAACGT", 0).accepted);
    }

    #[test]
    fn shifted_sequence_uses_one_diagonal_switch() {
        // text = pattern shifted by one (insertion at front).
        let pattern = b"ACGTACGTAC";
        let text = b"GACGTACGTA";
        let v = ss_filter(pattern, text, 2);
        assert!(v.accepted);
        assert!(v.bound <= 2);
    }

    #[test]
    fn lower_bound_never_exceeds_edit_distance() {
        let mut rng = SplitMix64::new(77);
        for _ in 0..200 {
            let len = 20 + (rng.next_u64() % 80) as usize;
            let a: Vec<u8> = (0..len).map(|_| b"ACGT"[rng.below(4) as usize]).collect();
            let mut b = a.clone();
            for _ in 0..rng.below(10) {
                if b.is_empty() {
                    break;
                }
                let pos = rng.below(b.len() as u64) as usize;
                match rng.below(3) {
                    0 => b[pos] = b"ACGT"[rng.below(4) as usize],
                    1 => b.insert(pos, b"ACGT"[rng.below(4) as usize]),
                    _ => {
                        b.remove(pos);
                    }
                }
            }
            let d = levenshtein(&a, &b);
            let e = 5u32;
            let v = ss_filter(&a, &b, e);
            // One-sided guarantee: rejecting implies truly distant.
            if !v.accepted {
                assert!(d > e, "filter rejected a pair with distance {d} <= {e}");
            }
        }
    }

    #[test]
    fn random_pairs_are_rejected() {
        let mut rng = SplitMix64::new(5);
        let a: Vec<u8> = (0..100).map(|_| b"ACGT"[rng.below(4) as usize]).collect();
        let b: Vec<u8> = (0..100).map(|_| b"ACGT"[rng.below(4) as usize]).collect();
        let v = ss_filter(&a, &b, 3);
        assert!(!v.accepted, "random pairs differ by far more than 3 edits");
    }

    #[test]
    fn sim_tiers_match_scalar_reference() {
        for pair in DatasetSpec::d100().generate_n(21, 3) {
            let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
            let e = 6u32;
            let want = ss_filter(p, t, e).bound as i64;
            for tier in Tier::all() {
                let mut m = Machine::new(MachineConfig::default());
                let out = ss_sim(&mut m, p, t, Alphabet::Dna, e, tier).unwrap();
                assert_eq!(out.value, want, "{tier}");
            }
        }
    }

    #[test]
    fn sim_rejects_distant_pairs_like_reference() {
        let mut rng = SplitMix64::new(11);
        let a: Vec<u8> = (0..120).map(|_| b"ACGT"[rng.below(4) as usize]).collect();
        let b: Vec<u8> = (0..120).map(|_| b"ACGT"[rng.below(4) as usize]).collect();
        let want = ss_filter(&a, &b, 4).bound as i64;
        for tier in [Tier::Vec, Tier::QuetzalC] {
            let mut m = Machine::new(MachineConfig::default());
            let out = ss_sim(&mut m, &a, &b, Alphabet::Dna, 4, tier).unwrap();
            assert_eq!(out.value, want, "{tier}");
        }
    }

    #[test]
    fn quetzal_c_is_fastest_tier() {
        let pair = &DatasetSpec::d250().generate_n(13, 1)[0];
        let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
        let mut cycles = Vec::new();
        for tier in [Tier::Vec, Tier::QuetzalC] {
            let mut m = Machine::new(MachineConfig::default());
            let out = ss_sim(&mut m, p, t, Alphabet::Dna, 10, tier).unwrap();
            cycles.push(out.stats.cycles);
        }
        assert!(
            cycles[1] < cycles[0],
            "QUETZAL+C ({}) must beat VEC ({})",
            cycles[1],
            cycles[0]
        );
    }

    #[test]
    fn protein_filtering_works() {
        let pair = &DatasetSpec::protein().generate_n(3, 1)[0];
        let p = &pair.pattern.as_bytes()[..100];
        let t = &pair.text.as_bytes()[..100];
        let want = ss_filter(p, t, 8).bound as i64;
        let mut m = Machine::new(MachineConfig::default());
        let out = ss_sim(&mut m, p, t, Alphabet::Protein, 8, Tier::QuetzalC).unwrap();
        assert_eq!(out.value, want);
    }
}
